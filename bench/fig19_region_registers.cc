/**
 * @file
 * Thin wrapper: the fig19_region_registers generator lives in figures/fig19_region_registers.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig19_region_registers", argc, argv);
}
