/**
 * @file
 * Figure 19: per executed region — average preloads, average number of
 * concurrent live registers (the OSU reservation), and the standard
 * deviation of concurrent live registers, per benchmark.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Registers per region", "Figure 19");
    std::cout << sim::cell("benchmark", 18) << sim::cell("preloads", 10)
              << sim::cell("mean_live", 11) << sim::cell("stddev", 9)
              << "\n";

    for (const auto &name : workloads::rodiniaNames()) {
        sim::RunStats stats = sim::runKernel(
            workloads::makeRodinia(name), sim::ProviderKind::Regless);
        std::cout << sim::cell(name, 18)
                  << sim::cell(stats.regionPreloadsMean, 10, 2)
                  << sim::cell(stats.regionLiveMean, 11, 2)
                  << sim::cell(stats.regionLiveStddev, 9, 2) << "\n";
    }
    std::cout << "# paper: live registers consistently exceed preloads; "
                 "dwt2d/hotspot/myocyte reach 20+ live\n";
    return 0;
}
