/**
 * @file
 * Thin wrapper: the ablation_divergence generator lives in figures/ablation_divergence.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("ablation_divergence", argc, argv);
}
