/**
 * @file
 * Divergence-cost study (beyond the paper): sweep the fraction of
 * lanes that conditionally redefine a loop-carried value and measure
 * how the resulting soft definitions inflate preload traffic and
 * conservative liveness — the mechanism behind the paper's heartwall
 * and hybridsort slowdowns (§6.4).
 */

#include <iostream>

#include "compiler/compiler.hh"
#include "sim/experiment.hh"
#include "workloads/kernel_builder.hh"

using namespace regless;

namespace
{

/**
 * Loop where lanes with (tid & mask) == 0 softly redefine a carried
 * value. @a mask = 0 means every lane (a hard definition, no
 * divergence); larger masks leave more lanes holding the old value.
 */
ir::Kernel
divergenceKernel(unsigned mask)
{
    workloads::KernelBuilder b("div" + std::to_string(mask));
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId carried = b.reg();
    b.moviTo(carried, 7);
    RegId i = b.reg();
    b.moviTo(i, 0);
    RegId limit = b.movi(8);
    workloads::Label head = b.newLabel();
    b.bind(head);
    {
        RegId v = b.ld(b.iadd(addr, b.imuli(i, 16384)));
        if (mask == 0) {
            RegId mixed = b.bxor(v, carried);
            b.movTo(carried, mixed);
        } else {
            RegId bits = b.band(t, b.movi(mask));
            RegId skip_p = b.setNe(bits, b.movi(0));
            workloads::Label skip = b.newLabel();
            b.braIf(skip_p, skip);
            RegId mixed = b.bxor(v, carried);
            b.movTo(carried, mixed); // soft definition
            b.bind(skip);
        }
        RegId use = b.iadd(carried, i);
        b.st(use, b.iadd(addr, b.imuli(i, 16384)), 1 << 22);
    }
    b.iaddiTo(i, i, 1);
    RegId p = b.setLt(i, limit);
    b.braIf(p, head);
    b.st(carried, addr, 1 << 23);
    return b.build();
}

} // namespace

int
main()
{
    sim::banner("Soft-definition cost vs divergence degree",
                "section 4.4 / 6.4 (conservative liveness)");
    std::cout << sim::cell("active_lanes", 14)
              << sim::cell("soft_regs", 11)
              << sim::cell("preloads/region", 17)
              << sim::cell("runtime", 9) << "\n";

    double base = 0.0;
    for (unsigned mask : {0u, 1u, 3u, 7u, 15u}) {
        ir::Kernel kernel = divergenceKernel(mask);
        compiler::CompiledKernel ck = compiler::compile(kernel);
        sim::RunStats b = sim::runKernel(divergenceKernel(mask),
                                         sim::ProviderKind::Baseline);
        sim::RunStats rl = sim::runKernel(divergenceKernel(mask),
                                          sim::ProviderKind::Regless);
        if (mask == 0)
            base = static_cast<double>(rl.cycles) / b.cycles;
        std::cout << sim::cell(32.0 / (mask + 1), 14, 1)
                  << sim::cell(static_cast<double>(
                                   ck.lifetimeStats().softDefRegs),
                               11, 0)
                  << sim::cell(rl.regionPreloadsMean, 17, 2)
                  << sim::cell(static_cast<double>(rl.cycles) /
                                   b.cycles,
                               9, 4)
                  << "\n";
    }
    std::cout << "# relative to the uniform case (" << base
              << "): partially-written registers must be preloaded "
                 "and stay conservatively live\n";
    return 0;
}
