/**
 * @file
 * Thin wrapper: the fig12_power generator lives in figures/fig12_power.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig12_power", argc, argv);
}
