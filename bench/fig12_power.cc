/**
 * @file
 * Figure 12: combined static + average dynamic power of the RegLess
 * operand structures per OSU capacity, normalized to the baseline
 * register file. Power = register-structure energy / cycles, averaged
 * (geomean) across the Rodinia suite.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Normalized register-structure power per OSU capacity",
                "Figure 12");

    // Baseline RF power per benchmark.
    std::vector<double> base_power;
    for (const auto &name : workloads::rodiniaNames()) {
        sim::RunStats stats = sim::runKernel(
            workloads::makeRodinia(name), sim::ProviderKind::Baseline);
        base_power.push_back(stats.energy.registerStructures() /
                             static_cast<double>(stats.cycles));
    }

    std::cout << sim::cell("capacity", 10) << sim::cell("osu", 9)
              << sim::cell("compressor", 12) << sim::cell("total", 9)
              << "\n";
    for (unsigned cap : {128u, 192u, 256u, 384u, 512u, 1024u, 2048u}) {
        std::vector<double> osu_ratio, comp_ratio, total_ratio;
        unsigned i = 0;
        for (const auto &name : workloads::rodiniaNames()) {
            sim::RunStats stats =
                sim::runRegless(workloads::makeRodinia(name), cap);
            double cycles = static_cast<double>(stats.cycles);
            double osu = (stats.energy.regDynamic +
                          stats.energy.regStatic) /
                         cycles;
            double comp = stats.energy.compressor / cycles;
            osu_ratio.push_back(osu / base_power[i] + 1e-12);
            comp_ratio.push_back(comp / base_power[i] + 1e-12);
            total_ratio.push_back((osu + comp) / base_power[i]);
            ++i;
        }
        std::cout << sim::cell(static_cast<double>(cap), 10, 0)
                  << sim::cell(geomean(osu_ratio), 9)
                  << sim::cell(geomean(comp_ratio), 12)
                  << sim::cell(geomean(total_ratio), 9) << "\n";
    }
    std::cout << "# paper: power scales with capacity; RegLess slightly "
                 "above a plain RF of equal size\n";
    return 0;
}
