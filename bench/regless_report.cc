/**
 * @file
 * regless_report: the whole paper evaluation as one binary. Every
 * figure/table generator declares its simulation points on a shared
 * ExperimentEngine, so the Rodinia × provider grid is simulated once
 * per report (and zero times on a warm cache — see the footer).
 *
 *   regless_report                      # full report
 *   regless_report --filter fig16      # matching figures only
 *   regless_report --jobs 8            # worker threads
 *   regless_report --json out.json     # dump every unique RunStats
 *   regless_report --no-cache          # ignore + don't write the cache
 *   regless_report --cache-dir DIR     # default .regless-cache
 *   regless_report --lint              # verify staging annotations of
 *                                      # every kernel before simulating
 *   regless_report --list              # figure names
 *   regless_report --max-cycles N      # hard cycle budget per job
 *   regless_report --job-timeout SEC   # wall-clock budget per job
 *   regless_report --inject-deadlock   # fault drill: one doomed job
 *   regless_report --shard 2/4         # simulate only shard 2 of 4
 *                                      # (fleet runs over one shared
 *                                      # --cache-dir; the union of
 *                                      # all shards == an unsharded
 *                                      # run)
 *
 * A failed or deadlocked job never aborts the report: its figures
 * annotate the gap, the footer counts failures, and each one is
 * rendered (with its DeadlockReport when the watchdog fired) after
 * the footer. The exit status is 0 whenever the report completed.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "figures/figures.hh"
#include "sim/stats_io.hh"
#include "workloads/random_kernel.hh"

using namespace regless;

namespace
{

bool
matches(const std::string &name,
        const std::vector<std::string> &filters)
{
    if (filters.empty())
        return true;
    for (const std::string &filter : filters) {
        if (name.find(filter) != std::string::npos)
            return true;
    }
    return false;
}

/**
 * The --inject-deadlock drill: a small kernel under RegLess whose
 * fault plan leaks every OSU slot at cycle 0, so no region ever fits
 * and the forward-progress watchdog must fire. The tight window keeps
 * the drill fast; the budget is a backstop should the watchdog break.
 */
sim::ExperimentEngine::JobId
submitDoomedJob(sim::ExperimentEngine &engine)
{
    sim::SimJob doomed;
    doomed.kernel = "injected_deadlock";
    doomed.config =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    doomed.config.faults.kind = FaultPlan::Kind::LeakOsuSlot;
    doomed.config.faults.triggerCycle = 0;
    doomed.config.sm.watchdogWindow = 20'000;
    doomed.config.sm.maxCycles = 2'000'000;
    doomed.builder = [] { return workloads::randomKernel(1); };
    return engine.submit(doomed);
}

/**
 * One structured line on the cache subsystem's health: the
 * degradation ladder surfaces here (never as a crash), and the
 * counters make a fleet run's cache behaviour auditable after the
 * fact (DESIGN.md §15).
 */
void
printCacheFooter(const sim::ExperimentEngine &engine, std::ostream &os)
{
    const sim::JobCache &cache = engine.cache();
    if (!cache.enabled() && cache.options().dir.empty())
        return; // ran with --no-cache: nothing to report
    const sim::CacheCounters &c = cache.counters();
    os << "# cache: " << sim::cacheModeName(cache.mode()) << " ("
       << cache.options().dir << "): " << c.hits << " hits, "
       << c.misses << " misses, " << c.stores << " stores";
    if (c.coalesced)
        os << ", " << c.coalesced << " coalesced";
    if (c.storeFailures)
        os << ", " << c.storeFailures << " store failures";
    if (c.corrupt)
        os << ", " << c.corrupt << " corrupt entries healed";
    if (c.schemaRejects)
        os << ", " << c.schemaRejects << " schema rejects";
    if (c.janitorRemoved)
        os << ", " << c.janitorRemoved << " stale temps swept";
    if (c.lockWaits || c.lockTimeouts)
        os << ", " << c.lockWaits << " lock waits ("
           << c.lockTimeouts << " timed out)";
    os << "\n";
    if (cache.mode() != sim::CacheMode::ReadWrite)
        os << "# cache: degraded: " << cache.modeReason() << "\n";
}

void
printFailures(sim::ExperimentEngine &engine, std::ostream &os)
{
    for (sim::ExperimentEngine::JobId id : engine.failedJobs()) {
        const sim::JobResult &result = engine.result(id);
        const sim::SimJob &job = engine.job(id);
        os << "# " << sim::jobStatusName(result.status) << ": job '"
           << job.kernel << "' ("
           << sim::providerName(job.config.provider) << ", "
           << job.sms << " sms, " << result.attempts
           << (result.attempts == 1 ? " attempt)" : " attempts)")
           << ": " << result.error << "\n";
        if (result.deadlock.empty())
            continue;
        std::istringstream lines(result.deadlock);
        for (std::string line; std::getline(lines, line);)
            os << "#   " << line << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Library code throws SimError; this main is the process-exit
    // boundary.
    try {
        figures::ReportOptions options = figures::parseReportOptions(
            argc, argv, /*allow_filter=*/true);

        if (options.list) {
            for (const figures::Figure &figure : figures::allFigures())
                std::cout << figure.name << "\n";
            return 0;
        }

        sim::ExperimentEngine engine(figures::engineOptions(options));
        figures::FigureContext ctx{engine, std::cout};

        if (options.injectDeadlock)
            submitDoomedJob(engine);

        unsigned ran = 0;
        for (const figures::Figure &figure : figures::allFigures()) {
            if (!matches(figure.name, options.filters))
                continue;
            if (ran++)
                std::cout << "\n";
            figures::runFigure(figure, ctx);
        }
        if (!ran)
            fatal("no figure matches the given --filter; try --list");
        engine.flush(); // the doomed job may be in no figure

        if (!options.jsonPath.empty()) {
            std::ofstream out(options.jsonPath,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                fatal("cannot write '", options.jsonPath, "'");
            sim::writeJson(out, engine.allStats());
        }

        std::cout << "\n# engine: " << engine.pointsRequested()
                  << " points requested, " << engine.pointsUnique()
                  << " unique, " << engine.simulated()
                  << " simulated, " << engine.cacheHits()
                  << " cache hits";
        if (options.lint)
            std::cout << ", " << engine.kernelsLinted()
                      << " kernels linted clean";
        std::cout << ", " << engine.failed() << " failed, "
                  << engine.deadlocked() << " deadlocked";
        if (engine.retried())
            std::cout << ", " << engine.retried() << " retried";
        if (options.shardCount > 1)
            std::cout << ", " << engine.skipped()
                      << " left to other shards (this is shard "
                      << options.shardIndex << "/"
                      << options.shardCount << ")";
        std::cout << "\n";
        printCacheFooter(engine, std::cout);
        printFailures(engine, std::cout);
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
