/**
 * @file
 * regless_report: the whole paper evaluation as one binary. Every
 * figure/table generator declares its simulation points on a shared
 * ExperimentEngine, so the Rodinia × provider grid is simulated once
 * per report (and zero times on a warm cache — see the footer).
 *
 *   regless_report                      # full report
 *   regless_report --filter fig16      # matching figures only
 *   regless_report --jobs 8            # worker threads
 *   regless_report --json out.json     # dump every unique RunStats
 *   regless_report --no-cache          # ignore + don't write the cache
 *   regless_report --cache-dir DIR     # default .regless-cache
 *   regless_report --lint              # verify staging annotations of
 *                                      # every kernel before simulating
 *   regless_report --list              # figure names
 */

#include <fstream>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "figures/figures.hh"
#include "sim/stats_io.hh"

using namespace regless;

namespace
{

bool
matches(const std::string &name,
        const std::vector<std::string> &filters)
{
    if (filters.empty())
        return true;
    for (const std::string &filter : filters) {
        if (name.find(filter) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    figures::ReportOptions options =
        figures::parseReportOptions(argc, argv, /*allow_filter=*/true);

    if (options.list) {
        for (const figures::Figure &figure : figures::allFigures())
            std::cout << figure.name << "\n";
        return 0;
    }

    sim::ExperimentEngine engine(figures::engineOptions(options));
    figures::FigureContext ctx{engine, std::cout};

    unsigned ran = 0;
    for (const figures::Figure &figure : figures::allFigures()) {
        if (!matches(figure.name, options.filters))
            continue;
        if (ran++)
            std::cout << "\n";
        figures::runFigure(figure, ctx);
    }
    if (!ran)
        fatal("no figure matches the given --filter; try --list");

    if (!options.jsonPath.empty()) {
        std::ofstream out(options.jsonPath,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot write '", options.jsonPath, "'");
        sim::writeJson(out, engine.allStats());
    }

    std::cout << "\n# engine: " << engine.pointsRequested()
              << " points requested, " << engine.pointsUnique()
              << " unique, " << engine.simulated() << " simulated, "
              << engine.cacheHits() << " cache hits";
    if (options.lint)
        std::cout << ", " << engine.kernelsLinted()
                  << " kernels linted clean";
    std::cout << "\n";
    return 0;
}
