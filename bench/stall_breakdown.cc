/**
 * @file
 * Thin wrapper: the stall_breakdown generator lives in figures/stall_breakdown.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("stall_breakdown", argc, argv);
}
