/**
 * @file
 * Thin wrapper: the ablation_static_compression generator lives in
 * figures/ablation_static_compression.cc and is shared with the
 * regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("ablation_static_compression",
                                        argc, argv);
}
