/**
 * @file
 * Thin wrapper: the fig02_working_set generator lives in figures/fig02_working_set.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig02_working_set", argc, argv);
}
