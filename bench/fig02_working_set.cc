/**
 * @file
 * Figure 2: average register working set in 100-cycle windows for the
 * GTO and two-level warp schedulers, per Rodinia benchmark, on the
 * baseline register file.
 */

#include <cstdio>
#include <iostream>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Register working set per 100 cycles (KB)", "Figure 2");
    std::cout << sim::cell("benchmark", 18) << sim::cell("GTO", 10)
              << sim::cell("2-Level", 10) << "\n";

    for (const auto &name : workloads::rodiniaNames()) {
        sim::GpuConfig gto =
            sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
        sim::GpuConfig two_level = gto;
        two_level.sm.scheduler = arch::SchedulerPolicy::TwoLevel;

        sim::RunStats gto_stats =
            sim::runKernel(workloads::makeRodinia(name), gto);
        sim::RunStats tl_stats =
            sim::runKernel(workloads::makeRodinia(name), two_level);

        std::cout << sim::cell(name, 18)
                  << sim::cell(gto_stats.meanWorkingSetBytes / 1024.0,
                               10, 1)
                  << sim::cell(tl_stats.meanWorkingSetBytes / 1024.0,
                               10, 1)
                  << "\n";
    }
    return 0;
}
