/**
 * @file
 * Table 1: the simulation parameters, echoed from the live
 * configuration objects so the table can never drift from the code.
 */

#include <iostream>

#include "sim/experiment.hh"

using namespace regless;

int
main()
{
    sim::banner("Simulation parameters", "Table 1");
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);

    std::cout << "SMs modelled        1 in detail (shared-resource "
                 "bandwidth scaled per 16-SM GPU)\n";
    std::cout << "Warps per SM        " << cfg.sm.numWarps << ", "
              << cfg.sm.numSchedulers << " schedulers, issue width "
              << cfg.sm.issueWidth << "\n";
    std::cout << "Warp scheduler      GTO\n";
    std::cout << "L1 cache            " << cfg.mem.l1.sizeBytes / 1024
              << "KB, " << cfg.mem.l1.mshrs
              << " MSHRs, data accesses bypassed\n";
    std::cout << "L1 bandwidth        one request per cycle\n";
    std::cout << "L2 cache            " << cfg.mem.l2.sizeBytes / 1024 / 1024
              << "MB, " << cfg.mem.dram.channels
              << " memory partitions\n";
    std::cout << "DRAM                " << cfg.mem.dram.accessLatency
              << "-cycle latency, per-SM share "
              << cfg.mem.dram.bandwidthShare << "\n";
    std::cout << "Baseline RF         " << cfg.baselineRfEntries
              << " entries ("
              << cfg.baselineRfEntries * regBytes / 1024 << "KB)\n";
    std::cout << "RegLess OSU         " << cfg.regless.osuEntriesPerSm
              << " entries across " << cfg.regless.numShards
              << " shards of 8 banks\n";
    std::cout << "Compressor          one read or write per cycle, "
              << cfg.regless.compressor.cacheLines
              << " lines internal storage per shard ("
              << cfg.regless.compressor.cacheLines * cfg.regless.numShards
              << " per SM)\n";
    return 0;
}
