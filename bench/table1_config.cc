/**
 * @file
 * Thin wrapper: the table1_config generator lives in figures/table1_config.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("table1_config", argc, argv);
}
