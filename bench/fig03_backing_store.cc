/**
 * @file
 * Figure 3: accesses to the register backing store per 100 cycles
 * during the steady state of hotspot — baseline RF accesses, the RF
 * hierarchy's main-RF accesses, and RegLess's L1 requests.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

namespace
{

std::vector<double>
seriesFor(sim::ProviderKind kind)
{
    sim::RunStats stats =
        sim::runKernel(workloads::makeRodinia("hotspot"), kind);
    return stats.backingSeries;
}

} // namespace

int
main()
{
    sim::banner("Backing-store accesses per 100 cycles (hotspot)",
                "Figure 3");

    std::vector<double> base = seriesFor(sim::ProviderKind::Baseline);
    std::vector<double> rfh = seriesFor(sim::ProviderKind::Rfh);
    std::vector<double> rl = seriesFor(sim::ProviderKind::Regless);

    std::size_t n = std::max({base.size(), rfh.size(), rl.size()});
    std::cout << sim::cell("window", 8) << sim::cell("baseline", 12)
              << sim::cell("rf_hierarchy", 14) << sim::cell("regless", 10)
              << "\n";
    auto at = [](const std::vector<double> &v, std::size_t i) {
        return i < v.size() ? v[i] : 0.0;
    };
    double sum_base = 0, sum_rfh = 0, sum_rl = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::cout << sim::cell(static_cast<double>(i * 100), 8, 0)
                  << sim::cell(at(base, i), 12, 0)
                  << sim::cell(at(rfh, i), 14, 0)
                  << sim::cell(at(rl, i), 10, 0) << "\n";
        sum_base += at(base, i);
        sum_rfh += at(rfh, i);
        sum_rl += at(rl, i);
    }
    std::printf("# mean/window: baseline=%.1f rf_hierarchy=%.1f "
                "regless=%.1f\n",
                sum_base / n, sum_rfh / n, sum_rl / n);
    std::printf("# regless/baseline access ratio: %.4f "
                "(paper: ~0.009 of baseline reach L1)\n",
                sum_base > 0 ? sum_rl / sum_base : 0.0);
    return 0;
}
