/**
 * @file
 * Thin wrapper: the fig03_backing_store generator lives in figures/fig03_backing_store.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig03_backing_store", argc, argv);
}
