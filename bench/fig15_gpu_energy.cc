/**
 * @file
 * Thin wrapper: the fig15_gpu_energy generator lives in figures/fig15_gpu_energy.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig15_gpu_energy", argc, argv);
}
