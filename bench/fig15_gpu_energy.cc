/**
 * @file
 * Figure 15: total GPU energy (including added instruction and memory
 * traffic) for the "No RF" upper bound, RFH, RFV, and RegLess,
 * normalized to baseline, per benchmark plus geomean.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Normalized total GPU energy", "Figure 15");
    std::cout << sim::cell("benchmark", 18) << sim::cell("no_rf", 9)
              << sim::cell("rfh", 9) << sim::cell("rfv", 9)
              << sim::cell("regless", 9) << "\n";

    std::vector<double> norf_r, rfh_r, rfv_r, rl_r;
    for (const auto &name : workloads::rodiniaNames()) {
        sim::RunStats base = sim::runKernel(
            workloads::makeRodinia(name), sim::ProviderKind::Baseline);
        double b = base.energy.total();
        double norf = sim::noRfBound(base).total();
        double rfh = sim::runKernel(workloads::makeRodinia(name),
                                    sim::ProviderKind::Rfh)
                         .energy.total();
        double rfv = sim::runKernel(workloads::makeRodinia(name),
                                    sim::ProviderKind::Rfv)
                         .energy.total();
        double rl = sim::runKernel(workloads::makeRodinia(name),
                                   sim::ProviderKind::Regless)
                        .energy.total();
        norf_r.push_back(norf / b);
        rfh_r.push_back(rfh / b);
        rfv_r.push_back(rfv / b);
        rl_r.push_back(rl / b);
        std::cout << sim::cell(name, 18) << sim::cell(norf / b, 9)
                  << sim::cell(rfh / b, 9) << sim::cell(rfv / b, 9)
                  << sim::cell(rl / b, 9) << "\n";
    }
    std::cout << sim::cell("GEOMEAN", 18)
              << sim::cell(geomean(norf_r), 9)
              << sim::cell(geomean(rfh_r), 9)
              << sim::cell(geomean(rfv_r), 9)
              << sim::cell(geomean(rl_r), 9) << "\n";
    std::cout << "# paper: no_rf=0.833 rfh=0.971 rfv=0.963 "
                 "regless=0.890 (11% total saving)\n";
    return 0;
}
