/**
 * @file
 * Thin wrapper: the fig05_liveness_seams generator lives in figures/fig05_liveness_seams.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig05_liveness_seams", argc, argv);
}
