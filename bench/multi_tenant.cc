/**
 * @file
 * Thin wrapper: the multi_tenant generator lives in figures/multi_tenant.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("multi_tenant", argc, argv);
}
