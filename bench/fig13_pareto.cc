/**
 * @file
 * Thin wrapper: the fig13_pareto generator lives in figures/fig13_pareto.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig13_pareto", argc, argv);
}
