/**
 * @file
 * Figure 13: geomean run time vs geomean total GPU energy for RegLess
 * capacities, normalized to the baseline — the Pareto tradeoff that
 * selects the 512-entry configuration.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Run time vs GPU energy per OSU capacity", "Figure 13");

    std::vector<double> base_cycles, base_energy;
    for (const auto &name : workloads::rodiniaNames()) {
        sim::RunStats stats = sim::runKernel(
            workloads::makeRodinia(name), sim::ProviderKind::Baseline);
        base_cycles.push_back(static_cast<double>(stats.cycles));
        base_energy.push_back(stats.energy.total());
    }

    std::cout << sim::cell("capacity", 10) << sim::cell("runtime", 10)
              << sim::cell("gpu_energy", 12) << "\n";
    for (unsigned cap : {128u, 192u, 256u, 384u, 512u, 1024u}) {
        std::vector<double> rt, en;
        unsigned i = 0;
        for (const auto &name : workloads::rodiniaNames()) {
            sim::RunStats stats =
                sim::runRegless(workloads::makeRodinia(name), cap);
            rt.push_back(static_cast<double>(stats.cycles) /
                         base_cycles[i]);
            en.push_back(stats.energy.total() / base_energy[i]);
            ++i;
        }
        std::cout << sim::cell(static_cast<double>(cap), 10, 0)
                  << sim::cell(geomean(rt), 10, 4)
                  << sim::cell(geomean(en), 12, 4) << "\n";
    }
    std::cout << "# paper: 512 entries chosen — no average performance "
                 "loss with ~0.89x GPU energy\n";
    return 0;
}
