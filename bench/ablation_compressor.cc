/**
 * @file
 * Compressor pattern-set ablation (beyond the paper): which of the six
 * §5.3 value patterns earn their hardware? Reports the match rate,
 * RegLess L1 traffic, and runtime for progressively smaller pattern
 * sets across the Rodinia suite.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "regless/regless_provider.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/rodinia.hh"

using namespace regless;

namespace
{

struct Variant
{
    const char *name;
    unsigned mask; // bit per staging::Pattern enum value
};

constexpr unsigned bit(staging::Pattern p)
{
    return 1u << static_cast<unsigned>(p);
}

} // namespace

int
main()
{
    const Variant variants[] = {
        {"all_patterns", bit(staging::Pattern::Constant) |
                             bit(staging::Pattern::Stride1) |
                             bit(staging::Pattern::Stride4) |
                             bit(staging::Pattern::HalfStride1) |
                             bit(staging::Pattern::HalfStride4)},
        {"no_half_warp", bit(staging::Pattern::Constant) |
                             bit(staging::Pattern::Stride1) |
                             bit(staging::Pattern::Stride4)},
        {"constant_only", bit(staging::Pattern::Constant)},
        {"strides_only", bit(staging::Pattern::Stride1) |
                             bit(staging::Pattern::Stride4)},
        {"none", 0},
    };

    sim::banner("Compressor pattern-set ablation",
                "section 5.3 (the six value patterns)");
    std::cout << sim::cell("variant", 16) << sim::cell("match%", 9)
              << sim::cell("l1_req/kcyc", 13) << sim::cell("runtime", 9)
              << "\n";

    std::vector<double> base_cycles;
    for (const auto &name : workloads::rodiniaNames()) {
        base_cycles.push_back(static_cast<double>(
            sim::runKernel(workloads::makeRodinia(name),
                           sim::ProviderKind::Baseline)
                .cycles));
    }

    for (const Variant &variant : variants) {
        std::uint64_t matches = 0, attempts = 0;
        double l1 = 0, cyc = 0;
        std::vector<double> rt;
        unsigned i = 0;
        for (const auto &name : workloads::rodiniaNames()) {
            sim::GpuConfig cfg =
                sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
            cfg.regless.compressor.patternMask = variant.mask;
            sim::GpuSimulator g(workloads::makeRodinia(name), cfg);
            sim::RunStats stats = g.run();
            auto &rp =
                static_cast<staging::ReglessProvider &>(g.provider());
            for (unsigned s = 0; s < rp.numShards(); ++s) {
                if (auto *comp = rp.compressor(s)) {
                    matches +=
                        comp->stats().counter("matches").value();
                    attempts +=
                        comp->stats().counter("matches").value() +
                        comp->stats()
                            .counter("incompressible")
                            .value();
                }
            }
            l1 += static_cast<double>(stats.l1PreloadReqs +
                                      stats.l1StoreReqs +
                                      stats.l1InvalidateReqs);
            cyc += static_cast<double>(stats.cycles);
            rt.push_back(static_cast<double>(stats.cycles) /
                         base_cycles[i]);
            ++i;
        }
        std::cout << sim::cell(variant.name, 16)
                  << sim::cell(attempts ? 100.0 * matches / attempts
                                        : 0.0,
                               9, 1)
                  << sim::cell(1000.0 * l1 / cyc, 13, 3)
                  << sim::cell(geomean(rt), 9, 4) << "\n";
    }
    std::cout << "# constant + stride-1 capture most of the benefit; "
                 "half-warp patterns add the tail\n";
    return 0;
}
