/**
 * @file
 * Thin wrapper: the ablation_compressor generator lives in figures/ablation_compressor.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("ablation_compressor", argc, argv);
}
