/**
 * @file
 * Figure 14: register-structure energy of RFH [11], RFV [19], and
 * RegLess, normalized to the baseline register file, per benchmark
 * plus geomean.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Normalized register-file energy", "Figure 14");
    std::cout << sim::cell("benchmark", 18) << sim::cell("rfh", 9)
              << sim::cell("rfv", 9) << sim::cell("regless", 9) << "\n";

    std::vector<double> rfh_r, rfv_r, rl_r;
    for (const auto &name : workloads::rodiniaNames()) {
        double base = sim::runKernel(workloads::makeRodinia(name),
                                     sim::ProviderKind::Baseline)
                          .energy.registerStructures();
        double rfh = sim::runKernel(workloads::makeRodinia(name),
                                    sim::ProviderKind::Rfh)
                         .energy.registerStructures();
        double rfv = sim::runKernel(workloads::makeRodinia(name),
                                    sim::ProviderKind::Rfv)
                         .energy.registerStructures();
        double rl = sim::runKernel(workloads::makeRodinia(name),
                                   sim::ProviderKind::Regless)
                        .energy.registerStructures();
        rfh_r.push_back(rfh / base);
        rfv_r.push_back(rfv / base);
        rl_r.push_back(rl / base);
        std::cout << sim::cell(name, 18) << sim::cell(rfh / base, 9)
                  << sim::cell(rfv / base, 9) << sim::cell(rl / base, 9)
                  << "\n";
    }
    std::cout << sim::cell("GEOMEAN", 18) << sim::cell(geomean(rfh_r), 9)
              << sim::cell(geomean(rfv_r), 9)
              << sim::cell(geomean(rl_r), 9) << "\n";
    std::cout << "# paper: rfh=0.380 rfv=0.548 regless=0.247 "
                 "(75.3% RegLess saving)\n";
    return 0;
}
