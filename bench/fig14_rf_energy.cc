/**
 * @file
 * Thin wrapper: the fig14_rf_energy generator lives in figures/fig14_rf_energy.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig14_rf_energy", argc, argv);
}
