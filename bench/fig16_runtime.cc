/**
 * @file
 * Thin wrapper: the fig16_runtime generator lives in figures/fig16_runtime.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig16_runtime", argc, argv);
}
