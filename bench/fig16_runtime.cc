/**
 * @file
 * Figure 16: run time of the 512-entry RegLess design normalized to
 * the baseline with a full register file, per benchmark; geomean
 * comparisons against RegLess without the compressor, RFV, and RFH.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Normalized run time (lower is better)", "Figure 16");
    std::cout << sim::cell("benchmark", 18) << sim::cell("regless", 10)
              << "\n";

    std::vector<double> rl_r, nc_r, rfv_r, rfh_r;
    for (const auto &name : workloads::rodiniaNames()) {
        double base = static_cast<double>(
            sim::runKernel(workloads::makeRodinia(name),
                           sim::ProviderKind::Baseline)
                .cycles);
        double rl = static_cast<double>(
            sim::runKernel(workloads::makeRodinia(name),
                           sim::ProviderKind::Regless)
                .cycles);
        double nc = static_cast<double>(
            sim::runKernel(workloads::makeRodinia(name),
                           sim::ProviderKind::ReglessNoCompressor)
                .cycles);
        double rfv = static_cast<double>(
            sim::runKernel(workloads::makeRodinia(name),
                           sim::ProviderKind::Rfv)
                .cycles);
        double rfh = static_cast<double>(
            sim::runKernel(workloads::makeRodinia(name),
                           sim::ProviderKind::Rfh)
                .cycles);
        rl_r.push_back(rl / base);
        nc_r.push_back(nc / base);
        rfv_r.push_back(rfv / base);
        rfh_r.push_back(rfh / base);
        std::cout << sim::cell(name, 18) << sim::cell(rl / base, 10)
                  << "\n";
    }
    std::cout << sim::cell("GEOMEAN", 18) << sim::cell(geomean(rl_r), 10)
              << "\n";
    std::cout << sim::cell("geomean no-compressor", 24)
              << sim::cell(geomean(nc_r), 10) << "\n";
    std::cout << sim::cell("geomean rfv", 24)
              << sim::cell(geomean(rfv_r), 10) << "\n";
    std::cout << sim::cell("geomean rfh", 24)
              << sim::cell(geomean(rfh_r), 10) << "\n";
    std::cout << "# paper: regless geomean ~1.00; no-compressor +10.2%; "
                 "rfv/rfh slower (two-level scheduler)\n";
    return 0;
}
