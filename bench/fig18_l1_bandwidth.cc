/**
 * @file
 * Figure 18: average RegLess L1 requests per cycle, split into
 * preloads, stores (evictions and compressed-line flushes), and
 * invalidations, per benchmark.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("RegLess L1 requests per cycle", "Figure 18");
    std::cout << sim::cell("benchmark", 18) << sim::cell("preloads", 11)
              << sim::cell("stores", 11) << sim::cell("invalidations", 14)
              << sim::cell("total", 9) << "\n";

    double worst = 0.0;
    double sum = 0.0;
    unsigned n = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        sim::RunStats stats = sim::runKernel(
            workloads::makeRodinia(name), sim::ProviderKind::Regless);
        double cycles = static_cast<double>(stats.cycles);
        double pre = stats.l1PreloadReqs / cycles;
        double st = stats.l1StoreReqs / cycles;
        double inv = stats.l1InvalidateReqs / cycles;
        std::cout << sim::cell(name, 18) << sim::cell(pre, 11, 4)
                  << sim::cell(st, 11, 4) << sim::cell(inv, 14, 4)
                  << sim::cell(pre + st + inv, 9, 4) << "\n";
        worst = std::max(worst, pre + st + inv);
        sum += pre + st + inv;
        ++n;
    }
    std::printf("# mean total %.4f req/cycle, worst %.4f "
                "(paper: < 0.02 on average, budget 1.0)\n",
                sum / n, worst);
    return 0;
}
