/**
 * @file
 * Thin wrapper: the fig18_l1_bandwidth generator lives in figures/fig18_l1_bandwidth.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig18_l1_bandwidth", argc, argv);
}
