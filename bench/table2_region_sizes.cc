/**
 * @file
 * Thin wrapper: the table2_region_sizes generator lives in figures/table2_region_sizes.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("table2_region_sizes", argc, argv);
}
