/**
 * @file
 * Table 2: average static instructions per region and average dynamic
 * cycles each region was active, per benchmark.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Region sizes", "Table 2");
    std::cout << sim::cell("benchmark", 18) << sim::cell("insns", 8)
              << sim::cell("cycles", 8) << sim::cell("regions", 9)
              << "\n";

    for (const auto &name : workloads::rodiniaNames()) {
        sim::RunStats stats = sim::runKernel(
            workloads::makeRodinia(name), sim::ProviderKind::Regless);
        std::cout << sim::cell(name, 18)
                  << sim::cell(stats.staticInsnsPerRegion, 8, 1)
                  << sim::cell(stats.regionCyclesMean, 8, 0)
                  << sim::cell(static_cast<double>(stats.numRegions), 9,
                               0)
                  << "\n";
    }
    std::cout << "# paper: 3.3-16.0 insns/region; 16-1601 cycles; "
                 "compute-heavy kernels have the largest regions\n";
    return 0;
}
