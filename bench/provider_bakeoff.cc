/**
 * @file
 * Thin wrapper: the provider_bakeoff generator lives in
 * figures/provider_bakeoff.cc and is shared with the regless_report
 * driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("provider_bakeoff", argc, argv);
}
