/**
 * @file
 * Google-benchmark microbenchmarks of the RegLess building blocks:
 * compressor pattern matching, OSU allocate/erase, liveness analysis,
 * the full compiler pipeline, and SM cycle throughput.
 */

#include <benchmark/benchmark.h>

#include "compiler/compiler.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "mem/memory_system.hh"
#include "regfile/baseline_rf.hh"
#include "regless/compressor.hh"
#include "regless/operand_staging_unit.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/rodinia.hh"

namespace
{

using namespace regless;

void
BM_CompressorMatch(benchmark::State &state)
{
    ir::LaneValues values{};
    for (unsigned i = 0; i < warpSize; ++i)
        values[i] = 1000 + i * static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            staging::Compressor::matchPattern(values));
    }
}
BENCHMARK(BM_CompressorMatch)->Arg(0)->Arg(1)->Arg(3);

void
BM_OsuAllocateErase(benchmark::State &state)
{
    staging::OperandStagingUnit osu(
        "bench", 128, staging::VictimOrder::FreeCleanDirty);
    RegId reg = 0;
    for (auto _ : state) {
        osu.allocate(3, reg, false);
        osu.erase(3, reg);
        reg = (reg + 1) % 64;
    }
}
BENCHMARK(BM_OsuAllocateErase);

void
BM_OsuReclaimPath(benchmark::State &state)
{
    staging::OperandStagingUnit osu(
        "bench", 64, staging::VictimOrder::FreeCleanDirty);
    // Fill bank 0 with evictable lines so every allocation reclaims.
    for (unsigned i = 0; i < 8; ++i) {
        osu.allocate(0, static_cast<RegId>(i * 8), true);
        osu.markEvictable(0, static_cast<RegId>(i * 8));
    }
    RegId reg = 64;
    for (auto _ : state) {
        osu.allocate(0, reg, true);
        osu.markEvictable(0, reg);
        reg = static_cast<RegId>(64 + ((reg - 64) + 8) % 512);
    }
}
BENCHMARK(BM_OsuReclaimPath);

void
BM_LivenessAnalysis(benchmark::State &state)
{
    ir::Kernel kernel = workloads::makeRodinia("heartwall");
    for (auto _ : state) {
        ir::CfgAnalysis cfg(kernel);
        ir::Liveness live(kernel, cfg);
        benchmark::DoNotOptimize(live.liveCountBefore(0));
    }
}
BENCHMARK(BM_LivenessAnalysis);

void
BM_CompilerPipeline(benchmark::State &state)
{
    ir::Kernel kernel = workloads::makeRodinia("dwt2d");
    for (auto _ : state) {
        compiler::CompiledKernel ck = compiler::compile(kernel);
        benchmark::DoNotOptimize(ck.regions().size());
    }
}
BENCHMARK(BM_CompilerPipeline);

void
BM_SmCyclesBaseline(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
        sim::GpuSimulator sim(workloads::makeRodinia("hotspot"), cfg);
        state.ResumeTiming();
        benchmark::DoNotOptimize(sim.run().cycles);
    }
}
BENCHMARK(BM_SmCyclesBaseline)->Unit(benchmark::kMillisecond);

void
BM_SmCyclesRegless(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        sim::GpuSimulator sim(workloads::makeRodinia("hotspot"), cfg);
        state.ResumeTiming();
        benchmark::DoNotOptimize(sim.run().cycles);
    }
}
BENCHMARK(BM_SmCyclesRegless)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
