/**
 * @file
 * Figure 5: live-register count across the static instructions of a
 * particle_filter portion, with the low points (natural region seams)
 * highlighted. Pure compiler analysis, no simulation.
 */

#include "figures/figures.hh"

#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig05LivenessSeams(FigureContext &ctx)
{
    ir::Kernel kernel = workloads::makeRodinia("particle_filter");
    ir::CfgAnalysis cfg(kernel);
    ir::Liveness live(kernel, cfg);

    // Local-minimum detection over the live count curve.
    std::vector<unsigned> counts(kernel.numInsns());
    for (Pc pc = 0; pc < kernel.numInsns(); ++pc)
        counts[pc] = live.liveCountBefore(pc);

    // Not a TableWriter table: the trailing disassembly column is
    // unpadded free text.
    ctx.out << sim::cell("pc", 6) << sim::cell("live", 6)
            << "seam  instruction\n";
    for (Pc pc = 0; pc < kernel.numInsns(); ++pc) {
        bool seam = pc > 0 && pc + 1 < kernel.numInsns() &&
                    counts[pc] <= counts[pc - 1] &&
                    counts[pc] < counts[pc + 1];
        ctx.out << sim::cell(static_cast<double>(pc), 6, 0)
                << sim::cell(static_cast<double>(counts[pc]), 6, 0)
                << (seam ? "  *   " : "      ")
                << kernel.insn(pc).toString() << "\n";
    }
}

} // namespace regless::figures
