/**
 * @file
 * Stall-attribution breakdown (DESIGN.md section 10): for every
 * Rodinia benchmark under the baseline RF and under RegLess, the
 * percentage of issue slots that issued vs. the percentage charged to
 * each stall cause. Every scheduler slot of every cycle is charged to
 * exactly one bucket, so each row sums to 100%; comparing the
 * baseline and RegLess rows shows where RegLess's staging latency
 * goes (cm_not_staged / cm_no_capacity) and which baseline stalls it
 * absorbs.
 */

#include "figures/figures.hh"

#include <array>
#include <cstdint>
#include <vector>

#include "arch/stall.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

namespace
{

/** Column headers, abbreviated to keep the table on one screen. */
constexpr std::array<const char *, arch::kNumStallCauses> kCauseHeader =
    {"no_warp", "sb_dep", "not_stag", "no_cap",
     "bank_cf", "mem_pnd", "port_bsy", "barrier"};

/** Accumulated slot totals for one provider across benchmarks. */
struct SlotTotals
{
    std::uint64_t issued = 0;
    std::array<std::uint64_t, arch::kNumStallCauses> stalls{};

    void
    add(const sim::RunStats &s)
    {
        issued += s.issuedSlots;
        for (std::size_t c = 0; c < arch::kNumStallCauses; ++c)
            stalls[c] += s.stallSlots[c];
    }
};

void
emitRow(const sim::TableWriter &table, const std::string &name,
        const char *provider, std::uint64_t issued,
        const std::array<std::uint64_t, arch::kNumStallCauses> &stalls)
{
    std::uint64_t slots = issued;
    for (std::uint64_t s : stalls)
        slots += s;
    if (slots == 0) {
        table.row({name, provider, "-"});
        return;
    }
    auto pct = [slots](std::uint64_t v) {
        return 100.0 * static_cast<double>(v) /
               static_cast<double>(slots);
    };
    table.row({name, provider, pct(issued), pct(stalls[0]),
               pct(stalls[1]), pct(stalls[2]), pct(stalls[3]),
               pct(stalls[4]), pct(stalls[5]), pct(stalls[6]),
               pct(stalls[7])});
}

} // namespace

void
genStallBreakdown(FigureContext &ctx)
{
    struct Row
    {
        sim::ExperimentEngine::JobId base, rl;
    };
    std::vector<Row> jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.push_back(
            {ctx.engine.submit(name, sim::ProviderKind::Baseline),
             ctx.engine.submit(name, sim::ProviderKind::Regless)});

    std::vector<sim::TableColumn> columns = {{"benchmark", 24},
                                             {"provider", 9},
                                             {"issue%", 7, 1}};
    for (const char *header : kCauseHeader)
        columns.push_back({header, 9, 1});
    sim::TableWriter table(ctx.out, columns);
    table.header();

    SlotTotals base_total, rl_total;
    std::size_t i = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const Row &row = jobs[i++];
        // Fault isolation: a failed point drops only its own row.
        for (auto [id, provider, totals] :
             {std::tuple{row.base, "baseline", &base_total},
              std::tuple{row.rl, "regless", &rl_total}}) {
            const sim::RunStats *s = ctx.engine.tryStats(id);
            if (!s) {
                ctx.out << "# " << name << " (" << provider
                        << "): excluded ("
                        << ctx.engine.result(id).error << ")\n";
                continue;
            }
            totals->add(*s);
            emitRow(table, name, provider, s->issuedSlots,
                    s->stallSlots);
        }
    }
    emitRow(table, "ALL", "baseline", base_total.issued,
            base_total.stalls);
    emitRow(table, "ALL", "regless", rl_total.issued, rl_total.stalls);
    ctx.out << "# every slot of every scheduler cycle is charged to "
               "exactly one column; rows sum to 100%\n";
}

} // namespace regless::figures
