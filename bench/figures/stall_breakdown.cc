/**
 * @file
 * Stall-attribution breakdown (DESIGN.md section 10): for every
 * Rodinia benchmark under every registered provider, the percentage
 * of issue slots that issued vs. the percentage charged to each stall
 * cause. Every scheduler slot of every cycle is charged to exactly
 * one bucket, so each row sums to 100%; comparing the providers' rows
 * shows where each design's operand latency goes (cm_not_staged /
 * cm_no_capacity for RegLess, port_bsy for RegDem's spill traffic)
 * and which baseline stalls it absorbs.
 */

#include "figures/figures.hh"

#include <array>
#include <cstdint>
#include <vector>

#include "arch/stall.hh"
#include "sim/experiment.hh"
#include "sim/provider_registry.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

namespace
{

/** Column headers, abbreviated to keep the table on one screen. */
constexpr std::array<const char *, arch::kNumStallCauses> kCauseHeader =
    {"no_warp", "sb_dep", "not_stag", "no_cap",
     "bank_cf", "mem_pnd", "port_bsy", "barrier"};

/** Accumulated slot totals for one provider across benchmarks. */
struct SlotTotals
{
    std::uint64_t issued = 0;
    std::array<std::uint64_t, arch::kNumStallCauses> stalls{};

    void
    add(const sim::RunStats &s)
    {
        issued += s.issuedSlots;
        for (std::size_t c = 0; c < arch::kNumStallCauses; ++c)
            stalls[c] += s.stallSlots[c];
    }
};

void
emitRow(const sim::TableWriter &table, const std::string &name,
        const char *provider, std::uint64_t issued,
        const std::array<std::uint64_t, arch::kNumStallCauses> &stalls)
{
    std::uint64_t slots = issued;
    for (std::uint64_t s : stalls)
        slots += s;
    if (slots == 0) {
        table.row({name, provider, "-"});
        return;
    }
    auto pct = [slots](std::uint64_t v) {
        return 100.0 * static_cast<double>(v) /
               static_cast<double>(slots);
    };
    table.row({name, provider, pct(issued), pct(stalls[0]),
               pct(stalls[1]), pct(stalls[2]), pct(stalls[3]),
               pct(stalls[4]), pct(stalls[5]), pct(stalls[6]),
               pct(stalls[7])});
}

} // namespace

void
genStallBreakdown(FigureContext &ctx)
{
    const auto &registry = sim::providerRegistry();

    // jobs[w][p]: one job per (workload, registered provider).
    std::vector<std::vector<sim::ExperimentEngine::JobId>> jobs;
    for (const auto &name : workloads::rodiniaNames()) {
        jobs.emplace_back();
        for (const sim::ProviderDescriptor &d : registry)
            jobs.back().push_back(ctx.engine.submit(name, d.kind));
    }

    std::vector<sim::TableColumn> columns = {{"benchmark", 24},
                                             {"provider", 15},
                                             {"issue%", 7, 1}};
    for (const char *header : kCauseHeader)
        columns.push_back({header, 9, 1});
    sim::TableWriter table(ctx.out, columns);
    table.header();

    std::vector<SlotTotals> totals(registry.size());
    std::size_t w = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        // Fault isolation: a failed point drops only its own row.
        for (std::size_t p = 0; p < registry.size(); ++p) {
            const auto id = jobs[w][p];
            const sim::RunStats *s = ctx.engine.tryStats(id);
            if (!s) {
                ctx.out << "# " << name << " (" << registry[p].name
                        << "): excluded ("
                        << ctx.engine.result(id).error << ")\n";
                continue;
            }
            totals[p].add(*s);
            emitRow(table, name, registry[p].name, s->issuedSlots,
                    s->stallSlots);
        }
        ++w;
    }
    for (std::size_t p = 0; p < registry.size(); ++p)
        emitRow(table, "ALL", registry[p].name, totals[p].issued,
                totals[p].stalls);
    ctx.out << "# every slot of every scheduler cycle is charged to "
               "exactly one column; rows sum to 100%\n";
}

} // namespace regless::figures
