/**
 * @file
 * Figure 2: average register working set in 100-cycle windows for the
 * GTO and two-level warp schedulers, per Rodinia benchmark, on the
 * baseline register file.
 */

#include "figures/figures.hh"

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig02WorkingSet(FigureContext &ctx)
{
    sim::GpuConfig gto =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuConfig two_level = gto;
    two_level.sm.scheduler = arch::SchedulerPolicy::TwoLevel;

    // Declare the whole grid before reading anything so the engine
    // flushes it as one parallel batch.
    std::vector<std::pair<sim::ExperimentEngine::JobId,
                          sim::ExperimentEngine::JobId>>
        jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.emplace_back(ctx.engine.submit(name, gto),
                          ctx.engine.submit(name, two_level));

    sim::TableWriter table(ctx.out, {{"benchmark", 18},
                                     {"GTO", 10, 1},
                                     {"2-Level", 10, 1}});
    table.header();
    std::size_t i = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const auto &[gto_id, tl_id] = jobs[i++];
        table.row({name,
                   ctx.engine.stats(gto_id).meanWorkingSetBytes / 1024.0,
                   ctx.engine.stats(tl_id).meanWorkingSetBytes /
                       1024.0});
    }
}

} // namespace regless::figures
