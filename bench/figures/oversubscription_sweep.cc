/**
 * @file
 * Oversubscription sweep (paper §7 / related-work claim): as kernels
 * allocate more register names per warp, a fixed register file loses
 * occupancy while RegLess stays at full residency with a quarter of
 * the storage. Reports the crossover.
 */

#include "figures/figures.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/kernel_builder.hh"

namespace regless::figures
{

namespace
{

/**
 * Kernel with @a phases sequential 12-register windows: register names
 * grow with phases, instantaneous pressure stays ~15.
 */
ir::Kernel
phasedKernel(unsigned phases)
{
    workloads::KernelBuilder b("phased" + std::to_string(phases));
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId acc = b.reg();
    b.moviTo(acc, 0);
    for (unsigned phase = 0; phase < phases; ++phase) {
        RegId v = b.ld(b.iadd(addr, b.movi(16384 * phase)));
        std::vector<RegId> window;
        for (int k = 0; k < 12; ++k)
            window.push_back(b.imad(v, b.movi(k + 2 + phase), t));
        while (window.size() > 1) {
            std::vector<RegId> next;
            for (std::size_t k = 0; k + 1 < window.size(); k += 2)
                next.push_back(b.iadd(window[k], window[k + 1]));
            if (window.size() % 2)
                next.push_back(window.back());
            window = std::move(next);
        }
        b.iaddTo(acc, acc, window[0]);
    }
    b.st(acc, addr, 1 << 22);
    return b.build();
}

constexpr unsigned kPhases[] = {2u, 4u, 6u, 8u, 10u};

} // namespace

void
genOversubscriptionSweep(FigureContext &ctx)
{
    sim::GpuConfig base_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    base_cfg.limitOccupancyByRf = true;
    sim::GpuConfig rl_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);

    std::vector<std::pair<sim::ExperimentEngine::JobId,
                          sim::ExperimentEngine::JobId>>
        jobs;
    for (unsigned phases : kPhases) {
        const std::string name = "phased" + std::to_string(phases);
        auto builder = [phases] { return phasedKernel(phases); };
        jobs.emplace_back(
            ctx.engine.submit({name, base_cfg, 0, builder}),
            ctx.engine.submit({name, rl_cfg, 0, builder}));
    }

    sim::TableWriter table(ctx.out, {{"names/warp", 12, 0},
                                     {"resident", 10, 0},
                                     {"baseline", 10, 0},
                                     {"regless", 10, 0},
                                     {"speedup", 9, 2}});
    table.header();

    std::size_t i = 0;
    for (unsigned phases : kPhases) {
        const auto &[base_id, rl_id] = jobs[i++];
        ir::Kernel kernel = phasedKernel(phases);
        unsigned regs = kernel.numRegs();

        const sim::RunStats &base = ctx.engine.stats(base_id);
        const sim::RunStats &rl = ctx.engine.stats(rl_id);

        unsigned wpb = kernel.warpsPerBlock();
        unsigned fit = base_cfg.baselineRfEntries / regs;
        fit = std::max(wpb, fit - fit % wpb);
        fit = std::min(fit, base_cfg.sm.numWarps);

        table.row({static_cast<double>(regs),
                   static_cast<double>(fit),
                   static_cast<double>(base.cycles),
                   static_cast<double>(rl.cycles),
                   static_cast<double>(base.cycles) /
                       static_cast<double>(rl.cycles)});
    }
    ctx.out << "# RegLess holds 64 resident warps with 512 staging "
               "entries regardless of the name count\n";
}

} // namespace regless::figures
