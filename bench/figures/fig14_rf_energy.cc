/**
 * @file
 * Figure 14: register-structure energy of RFH [11], RFV [19], and
 * RegLess, normalized to the baseline register file, per benchmark
 * plus geomean.
 */

#include "figures/figures.hh"

#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig14RfEnergy(FigureContext &ctx)
{
    struct Row
    {
        sim::ExperimentEngine::JobId base, rfh, rfv, rl;
    };
    std::vector<Row> jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.push_back(
            {ctx.engine.submit(name, sim::ProviderKind::Baseline),
             ctx.engine.submit(name, sim::ProviderKind::Rfh),
             ctx.engine.submit(name, sim::ProviderKind::Rfv),
             ctx.engine.submit(name, sim::ProviderKind::Regless)});

    sim::TableWriter table(ctx.out, {{"benchmark", 18},
                                     {"rfh", 9},
                                     {"rfv", 9},
                                     {"regless", 9}});
    table.header();

    sim::GeomeanSeries rfh_r("fig14 rfh RF-energy ratio");
    sim::GeomeanSeries rfv_r("fig14 rfv RF-energy ratio");
    sim::GeomeanSeries rl_r("fig14 regless RF-energy ratio");
    std::size_t i = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const Row &row = jobs[i++];
        double base =
            ctx.engine.stats(row.base).energy.registerStructures();
        double rfh =
            ctx.engine.stats(row.rfh).energy.registerStructures();
        double rfv =
            ctx.engine.stats(row.rfv).energy.registerStructures();
        double rl =
            ctx.engine.stats(row.rl).energy.registerStructures();
        rfh_r.add(name, rfh / base);
        rfv_r.add(name, rfv / base);
        rl_r.add(name, rl / base);
        table.row({name, rfh / base, rfv / base, rl / base});
    }
    table.row({"GEOMEAN", rfh_r.value(), rfv_r.value(), rl_r.value()});
    ctx.out << "# paper: rfh=0.380 rfv=0.548 regless=0.247 "
               "(75.3% RegLess saving)\n";
}

} // namespace regless::figures
