/**
 * @file
 * Figure 16: run time of the 512-entry RegLess design normalized to
 * the baseline with a full register file, per benchmark; geomean
 * comparisons against RegLess without the compressor, RFV, and RFH.
 *
 * Formatting note: the pre-engine binary printed its per-benchmark
 * rows 18 wide and its comparison rows 24 wide under a header that
 * named only one column; every row now shares one TableWriter layout
 * (label 24 wide, one "runtime" value column). The numbers are
 * unchanged.
 */

#include "figures/figures.hh"

#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig16Runtime(FigureContext &ctx)
{
    struct Row
    {
        sim::ExperimentEngine::JobId base, rl, nc, rfv, rfh;
    };
    std::vector<Row> jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.push_back(
            {ctx.engine.submit(name, sim::ProviderKind::Baseline),
             ctx.engine.submit(name, sim::ProviderKind::Regless),
             ctx.engine.submit(name,
                               sim::ProviderKind::ReglessNoCompressor),
             ctx.engine.submit(name, sim::ProviderKind::Rfv),
             ctx.engine.submit(name, sim::ProviderKind::Rfh)});

    sim::TableWriter table(ctx.out,
                           {{"benchmark", 24}, {"runtime", 10}});
    table.header();

    sim::GeomeanSeries rl_r("fig16 regless runtime ratio");
    sim::GeomeanSeries nc_r("fig16 no-compressor runtime ratio");
    sim::GeomeanSeries rfv_r("fig16 rfv runtime ratio");
    sim::GeomeanSeries rfh_r("fig16 rfh runtime ratio");
    std::size_t i = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const Row &row = jobs[i++];
        double base =
            static_cast<double>(ctx.engine.stats(row.base).cycles);
        double rl =
            static_cast<double>(ctx.engine.stats(row.rl).cycles);
        rl_r.add(name, rl / base);
        nc_r.add(name,
                 static_cast<double>(ctx.engine.stats(row.nc).cycles) /
                     base);
        rfv_r.add(name,
                  static_cast<double>(
                      ctx.engine.stats(row.rfv).cycles) /
                      base);
        rfh_r.add(name,
                  static_cast<double>(
                      ctx.engine.stats(row.rfh).cycles) /
                      base);
        table.row({name, rl / base});
    }
    table.row({"GEOMEAN", rl_r.value()});
    table.row({"geomean no-compressor", nc_r.value()});
    table.row({"geomean rfv", rfv_r.value()});
    table.row({"geomean rfh", rfh_r.value()});
    ctx.out << "# paper: regless geomean ~1.00; no-compressor +10.2%; "
               "rfv/rfh slower (two-level scheduler)\n";
}

} // namespace regless::figures
