/**
 * @file
 * Figure 16: run time of the 512-entry RegLess design normalized to
 * the baseline with a full register file, per benchmark; geomean
 * comparisons against RegLess without the compressor, RFV, and RFH.
 *
 * Formatting note: the pre-engine binary printed its per-benchmark
 * rows 18 wide and its comparison rows 24 wide under a header that
 * named only one column; every row now shares one TableWriter layout
 * (label 24 wide, one "runtime" value column). The numbers are
 * unchanged.
 */

#include "figures/figures.hh"

#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig16Runtime(FigureContext &ctx)
{
    struct Row
    {
        sim::ExperimentEngine::JobId base, rl, nc, rfv, rfh;
    };
    std::vector<Row> jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.push_back(
            {ctx.engine.submit(name, sim::ProviderKind::Baseline),
             ctx.engine.submit(name, sim::ProviderKind::Regless),
             ctx.engine.submit(name,
                               sim::ProviderKind::ReglessNoCompressor),
             ctx.engine.submit(name, sim::ProviderKind::Rfv),
             ctx.engine.submit(name, sim::ProviderKind::Rfh)});

    sim::TableWriter table(ctx.out,
                           {{"benchmark", 24}, {"runtime", 10}});
    table.header();

    sim::GeomeanSeries rl_r("fig16 regless runtime ratio");
    sim::GeomeanSeries nc_r("fig16 no-compressor runtime ratio");
    sim::GeomeanSeries rfv_r("fig16 rfv runtime ratio");
    sim::GeomeanSeries rfh_r("fig16 rfh runtime ratio");
    std::size_t i = 0;
    unsigned excluded = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const Row &row = jobs[i++];
        // Fault isolation: a failed/deadlocked point drops only its
        // own row from the figure (and from every geomean it feeds);
        // the gap is annotated so a short geomean is never silent.
        const sim::RunStats *base_s = ctx.engine.tryStats(row.base);
        const sim::RunStats *rl_s = ctx.engine.tryStats(row.rl);
        const sim::RunStats *nc_s = ctx.engine.tryStats(row.nc);
        const sim::RunStats *rfv_s = ctx.engine.tryStats(row.rfv);
        const sim::RunStats *rfh_s = ctx.engine.tryStats(row.rfh);
        if (!base_s || !rl_s) {
            ctx.out << "# " << name << ": excluded ("
                    << ctx.engine.result(!base_s ? row.base : row.rl)
                           .error
                    << ")\n";
            ++excluded;
            continue;
        }
        double base = static_cast<double>(base_s->cycles);
        double rl = static_cast<double>(rl_s->cycles);
        rl_r.add(name, rl / base);
        if (nc_s)
            nc_r.add(name, static_cast<double>(nc_s->cycles) / base);
        if (rfv_s)
            rfv_r.add(name, static_cast<double>(rfv_s->cycles) / base);
        if (rfh_s)
            rfh_r.add(name, static_cast<double>(rfh_s->cycles) / base);
        table.row({name, rl / base});
    }
    if (excluded) {
        ctx.out << "# geomeans over "
                << workloads::rodiniaNames().size() - excluded
                << " of " << workloads::rodiniaNames().size()
                << " benchmarks (failed jobs excluded)\n";
    }
    table.row({"GEOMEAN", rl_r.value()});
    table.row({"geomean no-compressor", nc_r.value()});
    table.row({"geomean rfv", rfv_r.value()});
    table.row({"geomean rfh", rfh_r.value()});
    ctx.out << "# paper: regless geomean ~1.00; no-compressor +10.2%; "
               "rfv/rfh slower (two-level scheduler)\n";
}

} // namespace regless::figures
