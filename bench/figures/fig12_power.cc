/**
 * @file
 * Figure 12: combined static + average dynamic power of the RegLess
 * operand structures per OSU capacity, normalized to the baseline
 * register file. Power = register-structure energy / cycles, averaged
 * (geomean) across the Rodinia suite.
 */

#include "figures/figures.hh"

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

namespace
{

constexpr unsigned kCapacities[] = {128u, 192u, 256u, 384u,
                                    512u, 1024u, 2048u};

} // namespace

void
genFig12Power(FigureContext &ctx)
{
    std::vector<sim::ExperimentEngine::JobId> base_ids;
    for (const auto &name : workloads::rodiniaNames())
        base_ids.push_back(
            ctx.engine.submit(name, sim::ProviderKind::Baseline));

    std::vector<std::vector<sim::ExperimentEngine::JobId>> cap_ids;
    for (unsigned cap : kCapacities) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        cfg.setOsuCapacity(cap);
        auto &ids = cap_ids.emplace_back();
        for (const auto &name : workloads::rodiniaNames())
            ids.push_back(ctx.engine.submit(name, cfg));
    }

    // Baseline RF power per benchmark.
    std::vector<double> base_power;
    for (auto id : base_ids) {
        const sim::RunStats &stats = ctx.engine.stats(id);
        base_power.push_back(stats.energy.registerStructures() /
                             static_cast<double>(stats.cycles));
    }

    sim::TableWriter table(ctx.out, {{"capacity", 10, 0},
                                     {"osu", 9},
                                     {"compressor", 12},
                                     {"total", 9}});
    table.header();
    std::size_t c = 0;
    for (unsigned cap : kCapacities) {
        sim::GeomeanSeries osu_ratio("fig12 osu power ratio");
        sim::GeomeanSeries comp_ratio("fig12 compressor power ratio");
        sim::GeomeanSeries total_ratio("fig12 total power ratio");
        unsigned i = 0;
        for (const auto &name : workloads::rodiniaNames()) {
            const sim::RunStats &stats =
                ctx.engine.stats(cap_ids[c][i]);
            const std::string label =
                name + "@" + std::to_string(cap);
            double cycles = static_cast<double>(stats.cycles);
            double osu = (stats.energy.regDynamic +
                          stats.energy.regStatic) /
                         cycles;
            double comp = stats.energy.compressor / cycles;
            osu_ratio.add(label, osu / base_power[i] + 1e-12);
            comp_ratio.add(label, comp / base_power[i] + 1e-12);
            total_ratio.add(label, (osu + comp) / base_power[i]);
            ++i;
        }
        table.row({static_cast<double>(cap), osu_ratio.value(),
                   comp_ratio.value(), total_ratio.value()});
        ++c;
    }
    ctx.out << "# paper: power scales with capacity; RegLess slightly "
               "above a plain RF of equal size\n";
}

} // namespace regless::figures
