/**
 * @file
 * Ablation study of the RegLess design choices DESIGN.md §5 calls out:
 * compressor on/off, LIFO vs FIFO warp-stack activation, clean-first
 * vs dirty-first victim selection, and bank-aware register
 * renumbering. Reports geomean runtime and L1-traffic ratios against
 * the default configuration.
 */

#include "figures/figures.hh"

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

namespace
{

struct Variant
{
    const char *name;
    void (*apply)(sim::GpuConfig &);
};

void
applyDefault(sim::GpuConfig &)
{
}

void
applyNoCompressor(sim::GpuConfig &cfg)
{
    cfg.regless.compressorEnabled = false;
}

void
applyFifo(sim::GpuConfig &cfg)
{
    cfg.regless.fifoActivation = true;
}

void
applyDirtyFirst(sim::GpuConfig &cfg)
{
    cfg.regless.victimOrder = staging::VictimOrder::DirtyFirst;
}

void
applyNoBankReassign(sim::GpuConfig &cfg)
{
    cfg.compiler.reassignBanks = false;
}

void
applyNoLoadUseSplit(sim::GpuConfig &cfg)
{
    cfg.compiler.splitLoadUse = false;
}

constexpr Variant kVariants[] = {
    {"default", applyDefault},
    {"no_compressor", applyNoCompressor},
    {"fifo_activation", applyFifo},
    {"dirty_first_victims", applyDirtyFirst},
    {"no_bank_reassign", applyNoBankReassign},
    {"no_load_use_split", applyNoLoadUseSplit},
};

double
l1Traffic(const sim::RunStats &stats)
{
    return static_cast<double>(stats.l1PreloadReqs +
                               stats.l1StoreReqs +
                               stats.l1InvalidateReqs) +
           1.0;
}

} // namespace

void
genAblationRegless(FigureContext &ctx)
{
    // The "default" variant is byte-identical to the reference
    // configuration, so the engine collapses both onto the shared
    // Rodinia × Regless grid.
    std::vector<sim::ExperimentEngine::JobId> ref_ids;
    for (const auto &name : workloads::rodiniaNames())
        ref_ids.push_back(
            ctx.engine.submit(name, sim::ProviderKind::Regless));

    std::vector<std::vector<sim::ExperimentEngine::JobId>> variant_ids;
    for (const Variant &variant : kVariants) {
        auto &ids = variant_ids.emplace_back();
        for (const auto &name : workloads::rodiniaNames()) {
            sim::GpuConfig cfg =
                sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
            variant.apply(cfg);
            ids.push_back(ctx.engine.submit(name, cfg));
        }
    }

    std::vector<double> ref_cycles, ref_l1;
    for (auto id : ref_ids) {
        const sim::RunStats &stats = ctx.engine.stats(id);
        ref_cycles.push_back(static_cast<double>(stats.cycles));
        ref_l1.push_back(l1Traffic(stats));
    }

    sim::TableWriter table(ctx.out, {{"variant", 22},
                                     {"runtime", 10, 4},
                                     {"l1_traffic", 12, 4},
                                     {"bank_conflict/insn", 20, 4}});
    table.header();
    std::size_t v = 0;
    for (const Variant &variant : kVariants) {
        sim::GeomeanSeries rt("ablation_regless runtime ratio");
        sim::GeomeanSeries l1("ablation_regless l1-traffic ratio");
        double conflicts = 0, insns = 0;
        unsigned i = 0;
        for (const auto &name : workloads::rodiniaNames()) {
            const sim::RunStats &stats =
                ctx.engine.stats(variant_ids[v][i]);
            const std::string label =
                std::string(variant.name) + ":" + name;
            rt.add(label, static_cast<double>(stats.cycles) /
                              ref_cycles[i]);
            l1.add(label, l1Traffic(stats) / ref_l1[i]);
            conflicts += static_cast<double>(stats.osuBankConflicts);
            insns += static_cast<double>(stats.insns);
            ++i;
        }
        table.row({variant.name, rt.value(), l1.value(),
                   conflicts / insns});
        ++v;
    }
    ctx.out << "# paper reports -10.2% geomean performance without "
               "the compressor (Fig 16)\n";
}

} // namespace regless::figures
