/**
 * @file
 * Figure 19: per executed region — average preloads, average number of
 * concurrent live registers (the OSU reservation), and the standard
 * deviation of concurrent live registers, per benchmark.
 */

#include "figures/figures.hh"

#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig19RegionRegisters(FigureContext &ctx)
{
    std::vector<sim::ExperimentEngine::JobId> jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.push_back(
            ctx.engine.submit(name, sim::ProviderKind::Regless));

    sim::TableWriter table(ctx.out, {{"benchmark", 18},
                                     {"preloads", 10, 2},
                                     {"mean_live", 11, 2},
                                     {"stddev", 9, 2}});
    table.header();

    std::size_t i = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const sim::RunStats &stats = ctx.engine.stats(jobs[i++]);
        table.row({name, stats.regionPreloadsMean,
                   stats.regionLiveMean, stats.regionLiveStddev});
    }
    ctx.out << "# paper: live registers consistently exceed preloads; "
               "dwt2d/hotspot/myocyte reach 20+ live\n";
}

} // namespace regless::figures
