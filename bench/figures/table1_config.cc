/**
 * @file
 * Table 1: the simulation parameters, echoed from the live
 * configuration objects so the table can never drift from the code.
 * No simulation.
 */

#include "figures/figures.hh"

#include "sim/experiment.hh"

namespace regless::figures
{

void
genTable1Config(FigureContext &ctx)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);

    ctx.out << "SMs modelled        1 in detail (shared-resource "
               "bandwidth scaled per 16-SM GPU)\n";
    ctx.out << "Warps per SM        " << cfg.sm.numWarps << ", "
            << cfg.sm.numSchedulers << " schedulers, issue width "
            << cfg.sm.issueWidth << "\n";
    ctx.out << "Warp scheduler      GTO\n";
    ctx.out << "L1 cache            " << cfg.mem.l1.sizeBytes / 1024
            << "KB, " << cfg.mem.l1.mshrs
            << " MSHRs, data accesses bypassed\n";
    ctx.out << "L1 bandwidth        one request per cycle\n";
    ctx.out << "L2 cache            "
            << cfg.mem.l2.sizeBytes / 1024 / 1024 << "MB, "
            << cfg.mem.dram.channels << " memory partitions\n";
    ctx.out << "DRAM                " << cfg.mem.dram.accessLatency
            << "-cycle latency, per-SM share "
            << cfg.mem.dram.bandwidthShare << "\n";
    ctx.out << "Baseline RF         " << cfg.baselineRfEntries
            << " entries ("
            << cfg.baselineRfEntries * regBytes / 1024 << "KB)\n";
    ctx.out << "RegLess OSU         " << cfg.regless.osuEntriesPerSm
            << " entries across " << cfg.regless.numShards
            << " shards of 8 banks\n";
    ctx.out << "Compressor          one read or write per cycle, "
            << cfg.regless.compressor.cacheLines
            << " lines internal storage per shard ("
            << cfg.regless.compressor.cacheLines * cfg.regless.numShards
            << " per SM)\n";
}

} // namespace regless::figures
