/**
 * @file
 * Figure 13: geomean run time vs geomean total GPU energy for RegLess
 * capacities, normalized to the baseline — the Pareto tradeoff that
 * selects the 512-entry configuration.
 */

#include "figures/figures.hh"

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

namespace
{

constexpr unsigned kCapacities[] = {128u, 192u, 256u, 384u,
                                    512u, 1024u};

} // namespace

void
genFig13Pareto(FigureContext &ctx)
{
    std::vector<sim::ExperimentEngine::JobId> base_ids;
    for (const auto &name : workloads::rodiniaNames())
        base_ids.push_back(
            ctx.engine.submit(name, sim::ProviderKind::Baseline));

    std::vector<std::vector<sim::ExperimentEngine::JobId>> cap_ids;
    for (unsigned cap : kCapacities) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        cfg.setOsuCapacity(cap);
        auto &ids = cap_ids.emplace_back();
        for (const auto &name : workloads::rodiniaNames())
            ids.push_back(ctx.engine.submit(name, cfg));
    }

    std::vector<double> base_cycles, base_energy;
    for (auto id : base_ids) {
        const sim::RunStats &stats = ctx.engine.stats(id);
        base_cycles.push_back(static_cast<double>(stats.cycles));
        base_energy.push_back(stats.energy.total());
    }

    sim::TableWriter table(ctx.out, {{"capacity", 10, 0},
                                     {"runtime", 10, 4},
                                     {"gpu_energy", 12, 4}});
    table.header();
    std::size_t c = 0;
    for (unsigned cap : kCapacities) {
        sim::GeomeanSeries rt("fig13 runtime ratio");
        sim::GeomeanSeries en("fig13 GPU-energy ratio");
        unsigned i = 0;
        for (const auto &name : workloads::rodiniaNames()) {
            const sim::RunStats &stats =
                ctx.engine.stats(cap_ids[c][i]);
            const std::string label =
                name + "@" + std::to_string(cap);
            rt.add(label, static_cast<double>(stats.cycles) /
                              base_cycles[i]);
            en.add(label, stats.energy.total() / base_energy[i]);
            ++i;
        }
        table.row(
            {static_cast<double>(cap), rt.value(), en.value()});
        ++c;
    }
    ctx.out << "# paper: 512 entries chosen — no average performance "
               "loss with ~0.89x GPU energy\n";
}

} // namespace regless::figures
