/**
 * @file
 * Figure 11: area of RegLess configurations (128..2048 OSU entries),
 * normalized to the 2048-entry baseline register file, split into
 * logic, storage, and compressor components. Pure area model, no
 * simulation.
 */

#include "figures/figures.hh"

#include "energy/area_model.hh"
#include "sim/experiment.hh"

namespace regless::figures
{

void
genFig11Area(FigureContext &ctx)
{
    energy::AreaConfig area;
    const double baseline = area.plainRf(2048).total();

    sim::TableWriter table(ctx.out, {{"capacity", 10, 0},
                                     {"logic", 9},
                                     {"storage", 9},
                                     {"compressor", 12},
                                     {"total", 9}});
    table.header();
    for (unsigned cap : {128u, 192u, 256u, 384u, 512u, 1024u, 2048u}) {
        energy::AreaBreakdown b = area.regless(cap);
        table.row({static_cast<double>(cap), b.logic / baseline,
                   b.storage / baseline, b.compressor / baseline,
                   b.total() / baseline});
    }
    ctx.out << "# paper: RegLess-512 total ~0.3x of baseline RF area\n";
}

} // namespace regless::figures
