/**
 * @file
 * Figure 3: accesses to the register backing store per 100 cycles
 * during the steady state of hotspot — baseline RF accesses, the RF
 * hierarchy's main-RF accesses, and RegLess's L1 requests.
 */

#include "figures/figures.hh"

#include <algorithm>
#include <cstdio>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig03BackingStore(FigureContext &ctx)
{
    const auto base_id =
        ctx.engine.submit("hotspot", sim::ProviderKind::Baseline);
    const auto rfh_id =
        ctx.engine.submit("hotspot", sim::ProviderKind::Rfh);
    const auto rl_id =
        ctx.engine.submit("hotspot", sim::ProviderKind::Regless);

    const std::vector<double> &base =
        ctx.engine.stats(base_id).backingSeries;
    const std::vector<double> &rfh =
        ctx.engine.stats(rfh_id).backingSeries;
    const std::vector<double> &rl = ctx.engine.stats(rl_id).backingSeries;

    std::size_t n = std::max({base.size(), rfh.size(), rl.size()});
    sim::TableWriter table(ctx.out, {{"window", 8, 0},
                                     {"baseline", 12, 0},
                                     {"rf_hierarchy", 14, 0},
                                     {"regless", 10, 0}});
    table.header();
    auto at = [](const std::vector<double> &v, std::size_t i) {
        return i < v.size() ? v[i] : 0.0;
    };
    double sum_base = 0, sum_rfh = 0, sum_rl = 0;
    for (std::size_t i = 0; i < n; ++i) {
        table.row({static_cast<double>(i * 100), at(base, i),
                   at(rfh, i), at(rl, i)});
        sum_base += at(base, i);
        sum_rfh += at(rfh, i);
        sum_rl += at(rl, i);
    }
    char line[160];
    std::snprintf(line, sizeof(line),
                  "# mean/window: baseline=%.1f rf_hierarchy=%.1f "
                  "regless=%.1f\n",
                  sum_base / n, sum_rfh / n, sum_rl / n);
    ctx.out << line;
    std::snprintf(line, sizeof(line),
                  "# regless/baseline access ratio: %.4f "
                  "(paper: ~0.009 of baseline reach L1)\n",
                  sum_base > 0 ? sum_rl / sum_base : 0.0);
    ctx.out << line;
}

} // namespace regless::figures
