#include "figures/figures.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/logging.hh"
#include "common/sim_error.hh"
#include "sim/experiment.hh"
#include "sim/stats_io.hh"

namespace regless::figures
{

// Generator functions, one translation unit per figure.
void genFig02WorkingSet(FigureContext &ctx);
void genFig03BackingStore(FigureContext &ctx);
void genFig05LivenessSeams(FigureContext &ctx);
void genFig11Area(FigureContext &ctx);
void genFig12Power(FigureContext &ctx);
void genFig13Pareto(FigureContext &ctx);
void genFig14RfEnergy(FigureContext &ctx);
void genFig15GpuEnergy(FigureContext &ctx);
void genFig16Runtime(FigureContext &ctx);
void genFig17PreloadLocation(FigureContext &ctx);
void genFig18L1Bandwidth(FigureContext &ctx);
void genFig19RegionRegisters(FigureContext &ctx);
void genTable1Config(FigureContext &ctx);
void genTable2RegionSizes(FigureContext &ctx);
void genAblationRegless(FigureContext &ctx);
void genAblationCompressor(FigureContext &ctx);
void genAblationStaticCompression(FigureContext &ctx);
void genAblationDivergence(FigureContext &ctx);
void genOversubscriptionSweep(FigureContext &ctx);
void genMultiSmScaling(FigureContext &ctx);
void genStallBreakdown(FigureContext &ctx);
void genProviderBakeoff(FigureContext &ctx);
void genMultiTenant(FigureContext &ctx);

const std::vector<Figure> &
allFigures()
{
    // Explicit table (no static registration) so the report order is
    // the paper's figure order and the linker can never drop one.
    static const std::vector<Figure> figures = {
        {"fig02_working_set",
         "Register working set per 100 cycles (KB)", "Figure 2",
         genFig02WorkingSet},
        {"fig03_backing_store",
         "Backing-store accesses per 100 cycles (hotspot)", "Figure 3",
         genFig03BackingStore},
        {"fig05_liveness_seams",
         "Live registers per static instruction (particle_filter)",
         "Figure 5", genFig05LivenessSeams},
        {"fig11_area", "Normalized area per OSU capacity", "Figure 11",
         genFig11Area},
        {"fig12_power",
         "Normalized register-structure power per OSU capacity",
         "Figure 12", genFig12Power},
        {"fig13_pareto", "Run time vs GPU energy per OSU capacity",
         "Figure 13", genFig13Pareto},
        {"fig14_rf_energy", "Normalized register-file energy",
         "Figure 14", genFig14RfEnergy},
        {"fig15_gpu_energy", "Normalized total GPU energy",
         "Figure 15", genFig15GpuEnergy},
        {"fig16_runtime", "Normalized run time (lower is better)",
         "Figure 16", genFig16Runtime},
        {"fig17_preload_location", "Preload source breakdown (%)",
         "Figure 17", genFig17PreloadLocation},
        {"fig18_l1_bandwidth", "RegLess L1 requests per cycle",
         "Figure 18", genFig18L1Bandwidth},
        {"fig19_region_registers", "Registers per region", "Figure 19",
         genFig19RegionRegisters},
        {"table1_config", "Simulation parameters", "Table 1",
         genTable1Config},
        {"table2_region_sizes", "Region sizes", "Table 2",
         genTable2RegionSizes},
        {"ablation_regless", "RegLess design ablations",
         "DESIGN.md section 5", genAblationRegless},
        {"ablation_compressor", "Compressor pattern-set ablation",
         "section 5.3 (the six value patterns)",
         genAblationCompressor},
        {"ablation_static_compression",
         "Static vs dynamic compression encodings + bank gating",
         "DESIGN.md section 14 (value-range analysis)",
         genAblationStaticCompression},
        {"ablation_divergence",
         "Soft-definition cost vs divergence degree",
         "section 4.4 / 6.4 (conservative liveness)",
         genAblationDivergence},
        {"oversubscription_sweep",
         "Register-file oversubscription sweep",
         "section 7 (RegLess needs no design change to oversubscribe)",
         genOversubscriptionSweep},
        {"multi_sm_scaling", "Multi-SM scaling with shared DRAM",
         "section 6.5 (RegLess adds no L2/DRAM pressure)",
         genMultiSmScaling},
        {"stall_breakdown", "Issue-slot stall attribution (%)",
         "DESIGN.md section 10 (one cause per slot)",
         genStallBreakdown},
        {"provider_bakeoff",
         "Provider bake-off: runtime / energy / area, all providers",
         "DESIGN.md section 13 (the provider registry)",
         genProviderBakeoff},
        {"multi_tenant",
         "Multi-tenant QoS: co-run slowdown, preemption, capacity "
         "policies",
         "DESIGN.md section 16 (concurrent kernel residency)",
         genMultiTenant},
    };
    return figures;
}

const Figure *
findFigure(const std::string &name)
{
    for (const Figure &figure : allFigures()) {
        if (name == figure.name)
            return &figure;
    }
    return nullptr;
}

void
runFigure(const Figure &figure, FigureContext &ctx)
{
    sim::banner(ctx.out, figure.title, figure.paperRef);
    try {
        figure.generate(ctx);
    } catch (const sim::SimError &e) {
        ctx.out << "# figure skipped: " << e.what() << "\n";
    }
}

ReportOptions
parseReportOptions(int argc, char **argv, bool allow_filter)
{
    ReportOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (allow_filter && arg == "--filter") {
            options.filters.push_back(value());
        } else if (allow_filter && arg == "--list") {
            options.list = true;
        } else if (arg == "--jobs") {
            options.jobs = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--json") {
            options.jsonPath = value();
        } else if (arg == "--no-cache") {
            options.cache = false;
        } else if (arg == "--cache-dir") {
            options.cacheDir = value();
        } else if (arg == "--lint") {
            options.lint = true;
        } else if (arg == "--max-cycles") {
            options.maxCycles = static_cast<Cycle>(
                std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--job-timeout") {
            options.jobTimeoutSec =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--shard") {
            const std::string spec = value();
            char *end = nullptr;
            options.shardIndex = static_cast<unsigned>(
                std::strtoul(spec.c_str(), &end, 10));
            if (!end || *end != '/')
                fatal("--shard wants I/N (e.g. 2/4), got '", spec,
                      "'");
            options.shardCount = static_cast<unsigned>(
                std::strtoul(end + 1, &end, 10));
            if ((end && *end) || options.shardCount < 1 ||
                options.shardIndex < 1 ||
                options.shardIndex > options.shardCount)
                fatal("--shard wants I/N with 1 <= I <= N, got '",
                      spec, "'");
        } else if (allow_filter && arg == "--inject-deadlock") {
            options.injectDeadlock = true;
        } else {
            std::cerr
                << "usage: " << argv[0]
                << (allow_filter ? " [--filter SUBSTR] [--list]"
                                   " [--inject-deadlock]"
                                 : "")
                << " [--jobs N] [--json PATH] [--no-cache]"
                   " [--cache-dir DIR] [--lint] [--max-cycles N]"
                   " [--job-timeout SEC] [--shard I/N]\n";
            std::exit(arg == "--help" ? 0 : 1);
        }
    }
    if (options.shardCount > 1 && !options.cache)
        fatal("--shard partitions work through the shared cache; it "
              "cannot be combined with --no-cache");
    return options;
}

sim::ExperimentEngine::Options
engineOptions(const ReportOptions &options)
{
    sim::ExperimentEngine::Options engine;
    engine.jobs = options.jobs;
    engine.cacheDir = options.cache ? options.cacheDir : "";
    engine.lint = options.lint;
    engine.maxCycles = options.maxCycles;
    engine.jobTimeoutSec = options.jobTimeoutSec;
    engine.shardIndex = options.shardIndex;
    engine.shardCount = options.shardCount;
    return engine;
}

int
figureMain(const std::string &name, int argc, char **argv)
{
    // The library throws; this is the process-exit boundary.
    try {
        const Figure *figure = findFigure(name);
        if (!figure)
            fatal("unknown figure '", name, "'");
        const ReportOptions options =
            parseReportOptions(argc, argv, /*allow_filter=*/false);
        sim::ExperimentEngine engine(engineOptions(options));
        FigureContext ctx{engine, std::cout};
        runFigure(*figure, ctx);
        if (!options.jsonPath.empty()) {
            std::ofstream out(options.jsonPath,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                fatal("cannot write '", options.jsonPath, "'");
            sim::writeJson(out, engine.allStats());
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}

} // namespace regless::figures
