/**
 * @file
 * Figure 17: the location registers were preloaded from — OSU,
 * compressor, L1 cache, or L2/DRAM — per benchmark, for the 512-entry
 * RegLess design.
 */

#include "figures/figures.hh"

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig17PreloadLocation(FigureContext &ctx)
{
    std::vector<sim::ExperimentEngine::JobId> jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.push_back(
            ctx.engine.submit(name, sim::ProviderKind::Regless));

    sim::TableWriter table(ctx.out, {{"benchmark", 18},
                                     {"osu", 9, 1},
                                     {"compressor", 12, 1},
                                     {"l1", 9, 1},
                                     {"l2_dram", 9, 3}});
    table.header();

    std::uint64_t tot_all = 0, tot_l1 = 0, tot_far = 0;
    std::size_t i = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const sim::RunStats &stats = ctx.engine.stats(jobs[i++]);
        double total = static_cast<double>(stats.totalPreloads());
        if (total == 0)
            total = 1;
        table.row({name, 100.0 * stats.preloadSrcOsu / total,
                   100.0 * stats.preloadSrcCompressor / total,
                   100.0 * stats.preloadSrcL1 / total,
                   100.0 * stats.preloadSrcL2Dram / total});
        tot_all += stats.totalPreloads();
        tot_l1 += stats.preloadSrcL1;
        tot_far += stats.preloadSrcL2Dram;
    }
    char line[160];
    std::snprintf(line, sizeof(line),
                  "# suite-wide: %.2f%% of preloads from L1, %.4f%% "
                  "from L2/DRAM (paper: 0.9%% and 0.013%%)\n",
                  100.0 * tot_l1 / tot_all, 100.0 * tot_far / tot_all);
    ctx.out << line;
}

} // namespace regless::figures
