/**
 * @file
 * Multi-tenant QoS figure (DESIGN.md §16): a latency-sensitive (LS)
 * kernel co-resident with a throughput hog on one SM, across the
 * Rodinia pairing matrix, under every OSU capacity policy and with
 * region-boundary QoS preemption. Three views:
 *
 *  1. the pairing matrix — each tenant's finish cycle and its co-run
 *     slowdown against a solo run of the same kernel, plus how long
 *     the hog sat parked and how often it was preempted;
 *  2. per-tenant stall attribution for one representative pairing,
 *     showing where the LS tenant's slots go under each policy (the
 *     per-tenant closed account: rows sum to 100%);
 *  3. an isolation summary — how much less the LS tenant degrades
 *     under priority-reserve + QoS preemption than under free-for-all
 *     sharing.
 */

#include "figures/figures.hh"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/stall.hh"
#include "regfile/tenant_arbiter.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

namespace
{

using regfile::CapacityPolicy;

constexpr std::array<const char *, arch::kNumStallCauses> kCauseHeader =
    {"no_warp", "sb_dep", "not_stag", "no_cap",
     "bank_cf", "mem_pnd", "port_bsy", "barrier"};

const std::vector<std::string> &
lsKernels()
{
    static const std::vector<std::string> kernels = {"nn", "backprop"};
    return kernels;
}

const std::vector<std::string> &
hogKernels()
{
    static const std::vector<std::string> kernels = {"srad_v1",
                                                     "hotspot"};
    return kernels;
}

/** One policy point of the sweep. */
struct Variant
{
    CapacityPolicy policy;
    bool qos;
    const char *label;
};

const std::vector<Variant> &
variants()
{
    static const std::vector<Variant> all = {
        {CapacityPolicy::FreeForAll, false, "free_for_all"},
        {CapacityPolicy::StaticQuota, false, "static_quota"},
        {CapacityPolicy::PriorityReserve, false, "priority_reserve"},
        {CapacityPolicy::PriorityReserve, true, "prio_reserve+qos"},
    };
    return all;
}

/** Co-run job for (ls, hog) under @a variant. */
sim::SimJob
coRunJob(const std::string &ls, const std::string &hog,
         const Variant &variant)
{
    sim::SimJob job;
    job.kernel = ls + "+" + hog;
    job.config = sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    job.config.tenants.workloads = {{ls, 1}, {hog, 0}};
    job.config.tenants.policy = variant.policy;
    if (variant.qos) {
        // Sized against these kernels' few-thousand-cycle co-runs:
        // several park/resume phases per run, park phases long enough
        // for the region-boundary handoff to complete inside them.
        job.config.tenants.qosPreemption = true;
        job.config.tenants.qosInterval = 2000;
        job.config.tenants.qosShare = 0.25;
    }
    return job;
}

double
slowdown(Cycle co_run_finish, Cycle solo_cycles)
{
    if (solo_cycles == 0)
        return 0.0;
    return static_cast<double>(co_run_finish) /
           static_cast<double>(solo_cycles);
}

void
emitLaneStalls(const sim::TableWriter &table, const std::string &pair,
               const char *variant, const sim::TenantLane &lane)
{
    std::uint64_t slots = lane.issuedSlots;
    for (std::uint64_t s : lane.stallSlots)
        slots += s;
    if (slots == 0) {
        table.row({pair, variant, lane.kernel, "-"});
        return;
    }
    auto pct = [slots](std::uint64_t v) {
        return 100.0 * static_cast<double>(v) /
               static_cast<double>(slots);
    };
    std::vector<sim::TableCell> cells = {pair, variant, lane.kernel,
                                         pct(lane.issuedSlots)};
    for (std::size_t c = 0; c < arch::kNumStallCauses; ++c)
        cells.emplace_back(pct(lane.stallSlots[c]));
    table.row(cells);
}

} // namespace

void
genMultiTenant(FigureContext &ctx)
{
    // Solo baselines: each kernel alone on a half SM — the same warp
    // partition and scheduler share a co-resident tenant owns (a
    // kernel's grid follows its warp count, so a whole-SM solo run
    // would execute twice the work and corrupt the slowdown ratio).
    // The denominator of every co-run slowdown.
    sim::GpuConfig solo_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    solo_cfg.sm.numWarps /= 2;
    solo_cfg.sm.numSchedulers /= 2;
    std::vector<std::string> solo_kernels = lsKernels();
    solo_kernels.insert(solo_kernels.end(), hogKernels().begin(),
                        hogKernels().end());
    std::vector<sim::ExperimentEngine::JobId> solo_jobs;
    for (const std::string &name : solo_kernels)
        solo_jobs.push_back(ctx.engine.submit(name, solo_cfg));

    // The pairing matrix, every policy variant.
    struct Point
    {
        std::string ls, hog;
        const Variant *variant;
        sim::ExperimentEngine::JobId job;
    };
    std::vector<Point> points;
    for (const std::string &ls : lsKernels()) {
        for (const std::string &hog : hogKernels()) {
            for (const Variant &v : variants()) {
                points.push_back(
                    {ls, hog, &v,
                     ctx.engine.submit(coRunJob(ls, hog, v))});
            }
        }
    }

    auto soloCycles = [&](const std::string &name) -> Cycle {
        for (std::size_t i = 0; i < solo_kernels.size(); ++i) {
            if (solo_kernels[i] == name) {
                const sim::RunStats *s =
                    ctx.engine.tryStats(solo_jobs[i]);
                return s ? s->cycles : 0;
            }
        }
        return 0;
    };

    sim::TableWriter matrix(
        ctx.out,
        {{"pairing", 22},
         {"policy", 18},
         {"ls_finish", 10, 0},
         {"ls_slow", 8, 2},
         {"hog_finish", 11, 0},
         {"hog_slow", 9, 2},
         {"hog_parked", 11, 0},
         {"preempts", 9, 0}});
    matrix.header();

    // Isolation summary accumulators: LS slowdown per variant.
    std::vector<double> ls_slow_sum(variants().size(), 0.0);
    std::vector<unsigned> ls_slow_n(variants().size(), 0);

    for (const Point &p : points) {
        const sim::RunStats *s = ctx.engine.tryStats(p.job);
        const std::string pair = p.ls + "+" + p.hog;
        if (!s || s->tenants.size() != 2) {
            ctx.out << "# " << pair << " (" << p.variant->label
                    << "): excluded ("
                    << ctx.engine.result(p.job).error << ")\n";
            continue;
        }
        const sim::TenantLane &ls = s->tenants[0];
        const sim::TenantLane &hog = s->tenants[1];
        const double ls_slow =
            slowdown(ls.finishCycle, soloCycles(p.ls));
        matrix.row({pair, p.variant->label,
                    static_cast<double>(ls.finishCycle), ls_slow,
                    static_cast<double>(hog.finishCycle),
                    slowdown(hog.finishCycle, soloCycles(p.hog)),
                    static_cast<double>(hog.suspendedCycles),
                    static_cast<double>(hog.preemptions)});
        const std::size_t v =
            static_cast<std::size_t>(p.variant - &variants()[0]);
        if (ls_slow > 0.0) {
            ls_slow_sum[v] += ls_slow;
            ++ls_slow_n[v];
        }
    }
    ctx.out << "# slowdown = co-run finish cycle / solo-run cycles "
               "(same kernel, solo on its half-SM partition)\n\n";

    // Per-tenant stall attribution for the representative pairing.
    ctx.out << "# per-tenant issue-slot attribution, nn+srad_v1 "
               "(rows sum to 100%)\n";
    std::vector<sim::TableColumn> columns = {{"pairing", 22},
                                             {"policy", 18},
                                             {"tenant", 10},
                                             {"issue%", 7, 1}};
    for (const char *header : kCauseHeader)
        columns.push_back({header, 9, 1});
    sim::TableWriter stalls(ctx.out, columns);
    stalls.header();
    for (const Point &p : points) {
        if (p.ls != "nn" || p.hog != "srad_v1")
            continue;
        const sim::RunStats *s = ctx.engine.tryStats(p.job);
        if (!s || s->tenants.size() != 2)
            continue;
        for (const sim::TenantLane &lane : s->tenants)
            emitLaneStalls(stalls, p.ls + "+" + p.hog,
                           p.variant->label, lane);
    }

    // The isolation headline: priority-reserve + QoS must degrade the
    // LS tenant measurably less than free-for-all sharing.
    ctx.out << "\n";
    for (std::size_t v = 0; v < variants().size(); ++v) {
        if (ls_slow_n[v] == 0)
            continue;
        ctx.out << "# mean LS co-run slowdown, "
                << variants()[v].label << ": "
                << sim::cell(ls_slow_sum[v] / ls_slow_n[v], 0, 2)
                << "x over " << ls_slow_n[v] << " pairings\n";
    }
    ctx.out << "# isolation: lower LS slowdown under "
               "prio_reserve+qos than free_for_all demonstrates "
               "per-tenant QoS\n";
}

} // namespace regless::figures
