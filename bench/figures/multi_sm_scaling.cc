/**
 * @file
 * Multi-SM scaling (beyond the paper's figures, supporting its §6.5
 * claim): RegLess's register traffic stays inside each SM's L1, so
 * scaling the SM count raises DRAM contention identically for the
 * baseline and RegLess — operand staging adds no shared-resource
 * pressure.
 *
 * The wall-clock throughput column of the pre-engine binary is not
 * reproducible from cached results and lives on in the wrapper's
 * --threads timed mode only.
 */

#include "figures/figures.hh"

#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genMultiSmScaling(FigureContext &ctx)
{
    std::vector<std::pair<sim::ExperimentEngine::JobId,
                          sim::ExperimentEngine::JobId>>
        jobs;
    for (unsigned sms : {1u, 2u, 4u, 8u})
        jobs.emplace_back(
            ctx.engine.submit(
                {"streamcluster",
                 sim::GpuConfig::forProvider(
                     sim::ProviderKind::Baseline),
                 sms, {}}),
            ctx.engine.submit(
                {"streamcluster",
                 sim::GpuConfig::forProvider(
                     sim::ProviderKind::Regless),
                 sms, {}}));

    sim::TableWriter table(ctx.out, {{"sms", 5, 0},
                                     {"base_cycles", 13, 0},
                                     {"rl_cycles", 11, 0},
                                     {"ratio", 8},
                                     {"dram_accesses", 15, 0},
                                     {"rl_dram", 9, 0}});
    table.header();

    std::size_t i = 0;
    for (unsigned sms : {1u, 2u, 4u, 8u}) {
        const auto &[base_id, rl_id] = jobs[i++];
        const sim::RunStats &b = ctx.engine.stats(base_id);
        const sim::RunStats &r = ctx.engine.stats(rl_id);
        table.row({static_cast<double>(sms),
                   static_cast<double>(b.cycles),
                   static_cast<double>(r.cycles),
                   static_cast<double>(r.cycles) /
                       static_cast<double>(b.cycles),
                   static_cast<double>(b.dramAccesses),
                   static_cast<double>(r.dramAccesses)});
    }
    ctx.out << "# RegLess's runtime ratio and DRAM footprint stay "
               "flat as SMs contend\n";
}

} // namespace regless::figures
