/**
 * @file
 * Figure 18: average RegLess L1 requests per cycle, split into
 * preloads, stores (evictions and compressed-line flushes), and
 * invalidations, per benchmark.
 */

#include "figures/figures.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig18L1Bandwidth(FigureContext &ctx)
{
    std::vector<sim::ExperimentEngine::JobId> jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.push_back(
            ctx.engine.submit(name, sim::ProviderKind::Regless));

    sim::TableWriter table(ctx.out, {{"benchmark", 18},
                                     {"preloads", 11, 4},
                                     {"stores", 11, 4},
                                     {"invalidations", 14, 4},
                                     {"total", 9, 4}});
    table.header();

    double worst = 0.0;
    double sum = 0.0;
    unsigned n = 0;
    std::size_t i = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const sim::RunStats &stats = ctx.engine.stats(jobs[i++]);
        double cycles = static_cast<double>(stats.cycles);
        double pre = stats.l1PreloadReqs / cycles;
        double st = stats.l1StoreReqs / cycles;
        double inv = stats.l1InvalidateReqs / cycles;
        table.row({name, pre, st, inv, pre + st + inv});
        worst = std::max(worst, pre + st + inv);
        sum += pre + st + inv;
        ++n;
    }
    char line[160];
    std::snprintf(line, sizeof(line),
                  "# mean total %.4f req/cycle, worst %.4f "
                  "(paper: < 0.02 on average, budget 1.0)\n",
                  sum / n, worst);
    ctx.out << line;
}

} // namespace regless::figures
