/**
 * @file
 * Divergence-cost study (beyond the paper): sweep the fraction of
 * lanes that conditionally redefine a loop-carried value and measure
 * how the resulting soft definitions inflate preload traffic and
 * conservative liveness — the mechanism behind the paper's heartwall
 * and hybridsort slowdowns (§6.4).
 */

#include "figures/figures.hh"

#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "sim/experiment.hh"
#include "workloads/kernel_builder.hh"

namespace regless::figures
{

namespace
{

/**
 * Loop where lanes with (tid & mask) == 0 softly redefine a carried
 * value. @a mask = 0 means every lane (a hard definition, no
 * divergence); larger masks leave more lanes holding the old value.
 */
ir::Kernel
divergenceKernel(unsigned mask)
{
    workloads::KernelBuilder b("div" + std::to_string(mask));
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId carried = b.reg();
    b.moviTo(carried, 7);
    RegId i = b.reg();
    b.moviTo(i, 0);
    RegId limit = b.movi(8);
    workloads::Label head = b.newLabel();
    b.bind(head);
    {
        RegId v = b.ld(b.iadd(addr, b.imuli(i, 16384)));
        if (mask == 0) {
            RegId mixed = b.bxor(v, carried);
            b.movTo(carried, mixed);
        } else {
            RegId bits = b.band(t, b.movi(mask));
            RegId skip_p = b.setNe(bits, b.movi(0));
            workloads::Label skip = b.newLabel();
            b.braIf(skip_p, skip);
            RegId mixed = b.bxor(v, carried);
            b.movTo(carried, mixed); // soft definition
            b.bind(skip);
        }
        RegId use = b.iadd(carried, i);
        b.st(use, b.iadd(addr, b.imuli(i, 16384)), 1 << 22);
    }
    b.iaddiTo(i, i, 1);
    RegId p = b.setLt(i, limit);
    b.braIf(p, head);
    b.st(carried, addr, 1 << 23);
    return b.build();
}

constexpr unsigned kMasks[] = {0u, 1u, 3u, 7u, 15u};

} // namespace

void
genAblationDivergence(FigureContext &ctx)
{
    std::vector<std::pair<sim::ExperimentEngine::JobId,
                          sim::ExperimentEngine::JobId>>
        jobs;
    for (unsigned mask : kMasks) {
        const std::string name = "div" + std::to_string(mask);
        auto builder = [mask] { return divergenceKernel(mask); };
        jobs.emplace_back(
            ctx.engine.submit(
                {name,
                 sim::GpuConfig::forProvider(
                     sim::ProviderKind::Baseline),
                 0, builder}),
            ctx.engine.submit(
                {name,
                 sim::GpuConfig::forProvider(
                     sim::ProviderKind::Regless),
                 0, builder}));
    }

    sim::TableWriter table(ctx.out, {{"active_lanes", 14, 1},
                                     {"soft_regs", 11, 0},
                                     {"preloads/region", 17, 2},
                                     {"runtime", 9, 4}});
    table.header();

    double base = 0.0;
    std::size_t i = 0;
    for (unsigned mask : kMasks) {
        const auto &[base_id, rl_id] = jobs[i++];
        compiler::CompiledKernel ck =
            compiler::compile(divergenceKernel(mask));
        const sim::RunStats &b = ctx.engine.stats(base_id);
        const sim::RunStats &rl = ctx.engine.stats(rl_id);
        if (mask == 0)
            base = static_cast<double>(rl.cycles) / b.cycles;
        table.row({32.0 / (mask + 1),
                   static_cast<double>(ck.lifetimeStats().softDefRegs),
                   rl.regionPreloadsMean,
                   static_cast<double>(rl.cycles) / b.cycles});
    }
    ctx.out << "# relative to the uniform case (" << base
            << "): partially-written registers must be preloaded "
               "and stay conservatively live\n";
}

} // namespace regless::figures
