/**
 * @file
 * Figure 15: total GPU energy (including added instruction and memory
 * traffic) for the "No RF" upper bound, RFH, RFV, and RegLess,
 * normalized to baseline, per benchmark plus geomean.
 */

#include "figures/figures.hh"

#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genFig15GpuEnergy(FigureContext &ctx)
{
    struct Row
    {
        sim::ExperimentEngine::JobId base, rfh, rfv, rl;
    };
    std::vector<Row> jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.push_back(
            {ctx.engine.submit(name, sim::ProviderKind::Baseline),
             ctx.engine.submit(name, sim::ProviderKind::Rfh),
             ctx.engine.submit(name, sim::ProviderKind::Rfv),
             ctx.engine.submit(name, sim::ProviderKind::Regless)});

    sim::TableWriter table(ctx.out, {{"benchmark", 18},
                                     {"no_rf", 9},
                                     {"rfh", 9},
                                     {"rfv", 9},
                                     {"regless", 9}});
    table.header();

    sim::GeomeanSeries norf_r("fig15 no-RF GPU-energy ratio");
    sim::GeomeanSeries rfh_r("fig15 rfh GPU-energy ratio");
    sim::GeomeanSeries rfv_r("fig15 rfv GPU-energy ratio");
    sim::GeomeanSeries rl_r("fig15 regless GPU-energy ratio");
    std::size_t i = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const Row &row = jobs[i++];
        const sim::RunStats &base = ctx.engine.stats(row.base);
        double b = base.energy.total();
        double norf = sim::noRfBound(base).total();
        double rfh = ctx.engine.stats(row.rfh).energy.total();
        double rfv = ctx.engine.stats(row.rfv).energy.total();
        double rl = ctx.engine.stats(row.rl).energy.total();
        norf_r.add(name, norf / b);
        rfh_r.add(name, rfh / b);
        rfv_r.add(name, rfv / b);
        rl_r.add(name, rl / b);
        table.row({name, norf / b, rfh / b, rfv / b, rl / b});
    }
    table.row({"GEOMEAN", norf_r.value(), rfh_r.value(), rfv_r.value(),
               rl_r.value()});
    ctx.out << "# paper: no_rf=0.833 rfh=0.971 rfv=0.963 "
               "regless=0.890 (11% total saving)\n";
}

} // namespace regless::figures
