/**
 * @file
 * Table 2: average static instructions per region and average dynamic
 * cycles each region was active, per benchmark.
 */

#include "figures/figures.hh"

#include <vector>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genTable2RegionSizes(FigureContext &ctx)
{
    std::vector<sim::ExperimentEngine::JobId> jobs;
    for (const auto &name : workloads::rodiniaNames())
        jobs.push_back(
            ctx.engine.submit(name, sim::ProviderKind::Regless));

    sim::TableWriter table(ctx.out, {{"benchmark", 18},
                                     {"insns", 8, 1},
                                     {"cycles", 8, 0},
                                     {"regions", 9, 0}});
    table.header();

    std::size_t i = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        const sim::RunStats &stats = ctx.engine.stats(jobs[i++]);
        table.row({name, stats.staticInsnsPerRegion,
                   stats.regionCyclesMean,
                   static_cast<double>(stats.numRegions)});
    }
    ctx.out << "# paper: 3.3-16.0 insns/region; 16-1601 cycles; "
               "compute-heavy kernels have the largest regions\n";
}

} // namespace regless::figures
