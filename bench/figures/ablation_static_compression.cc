/**
 * @file
 * Static-compression ablation (beyond the paper): how much of the
 * runtime pattern matcher's work can the compile-time value-range
 * analysis (compiler/value_range.hh, DESIGN.md §14) take over, and
 * what do statically-gated OSU banks save? Compares the dynamic
 * matcher against static-only and hybrid encoding selection plus a
 * no-gating control across the Rodinia suite.
 */

#include "figures/figures.hh"

#include <string>
#include <vector>

#include "regless/regless_config.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

namespace
{

struct Variant
{
    const char *name;
    staging::CompressionMode mode;
    bool bankGating;
};

const Variant kVariants[] = {
    {"dynamic", staging::CompressionMode::Dynamic, true},
    {"no_gating", staging::CompressionMode::Dynamic, false},
    {"static", staging::CompressionMode::Static, true},
    {"hybrid", staging::CompressionMode::Hybrid, true},
};

} // namespace

void
genAblationStaticCompression(FigureContext &ctx)
{
    std::vector<std::vector<sim::ExperimentEngine::JobId>> variant_ids;
    for (const Variant &variant : kVariants) {
        auto &ids = variant_ids.emplace_back();
        for (const auto &name : workloads::rodiniaNames()) {
            sim::GpuConfig cfg =
                sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
            cfg.regless.compressionMode = variant.mode;
            cfg.regless.bankGating = variant.bankGating;
            ids.push_back(ctx.engine.submit(name, cfg));
        }
    }

    sim::TableWriter table(ctx.out, {{"variant", 12},
                                     {"match%", 9, 1},
                                     {"static%", 9, 1},
                                     {"unsound", 9},
                                     {"gated/kcyc", 12, 1},
                                     {"rf_energy", 11, 4},
                                     {"runtime", 9, 4}});
    table.header();

    // Everything is reported relative to the dynamic matcher with
    // gating on (variant 0), the configuration the rest of the report
    // uses.
    std::vector<double> ref_cycles, ref_rf;
    for (auto id : variant_ids[0]) {
        const sim::RunStats &stats = ctx.engine.stats(id);
        ref_cycles.push_back(static_cast<double>(stats.cycles));
        ref_rf.push_back(stats.energy.registerStructures());
    }

    std::size_t v = 0;
    for (const Variant &variant : kVariants) {
        std::uint64_t matches = 0, attempts = 0;
        std::uint64_t static_hits = 0, unsound = 0;
        double gated = 0, cyc = 0;
        sim::GeomeanSeries rf("ablation_static_compression RF ratio");
        sim::GeomeanSeries rt("ablation_static_compression runtime");
        unsigned i = 0;
        for (const auto &name : workloads::rodiniaNames()) {
            const sim::RunStats &stats =
                ctx.engine.stats(variant_ids[v][i]);
            matches += stats.compressorMatches;
            attempts +=
                stats.compressorMatches + stats.compressorIncompressible;
            static_hits += stats.compressorStaticHits;
            unsound += stats.compressorStaticUnsound;
            gated += static_cast<double>(stats.osuGatedBankCycles);
            cyc += static_cast<double>(stats.cycles);
            rf.add(std::string(variant.name) + ":" + name,
                   stats.energy.registerStructures() / ref_rf[i]);
            rt.add(std::string(variant.name) + ":" + name,
                   static_cast<double>(stats.cycles) / ref_cycles[i]);
            ++i;
        }
        table.row({variant.name,
                   attempts ? 100.0 * matches / attempts : 0.0,
                   attempts ? 100.0 * static_hits / attempts : 0.0,
                   static_cast<double>(unsound), 1000.0 * gated / cyc,
                   rf.value(), rt.value()});
        ++v;
    }
    ctx.out << "# static encodings are lane-guarded: unsound counts "
               "fallbacks, never corruption; hybrid recovers the "
               "dynamic match rate\n";
}

} // namespace regless::figures
