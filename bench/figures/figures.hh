/**
 * @file
 * Figure-generator registry for the paper's evaluation. Each table
 * and figure is a function that declares the simulation points it
 * needs on a shared ExperimentEngine and then formats the results, so
 * the common Rodinia × provider grid is simulated once per report run
 * (and zero times on a warm cache). The `regless_report` driver runs
 * every generator; the per-figure bench binaries are thin wrappers
 * around the same functions.
 */

#ifndef REGLESS_BENCH_FIGURES_FIGURES_HH
#define REGLESS_BENCH_FIGURES_FIGURES_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment_engine.hh"

namespace regless::figures
{

/** Everything a generator needs: where to simulate, where to print. */
struct FigureContext
{
    sim::ExperimentEngine &engine;
    std::ostream &out;
};

/** One registered table/figure generator. */
struct Figure
{
    /** Registry key and wrapper-binary name, e.g. "fig16_runtime". */
    const char *name;
    /** Banner title. */
    const char *title;
    /** Banner paper reference, e.g. "Figure 16". */
    const char *paperRef;
    void (*generate)(FigureContext &ctx);
};

/** Every generator, in the paper's figure order. */
const std::vector<Figure> &allFigures();

/** Lookup by exact name; nullptr when absent. */
const Figure *findFigure(const std::string &name);

/**
 * Print the banner and run the generator (driver and wrappers). A
 * SimError escaping the generator — a failed job whose stats() a
 * figure insists on, or a config error — is caught and rendered as a
 * "# figure skipped" line, so one bad figure never aborts the report.
 */
void runFigure(const Figure &figure, FigureContext &ctx);

/** @name Shared CLI for regless_report and the wrapper binaries. */
/// @{
struct ReportOptions
{
    /** Substring filters on figure names; empty = all. */
    std::vector<std::string> filters;
    /** Worker threads (0 = auto). */
    unsigned jobs = 0;
    /** Write every unique RunStats as a JSON array here. */
    std::string jsonPath;
    /** On-disk memoization of simulation points. */
    bool cache = true;
    std::string cacheDir = ".regless-cache";
    /** Strict gate: lint every kernel once before simulating it. */
    bool lint = false;
    /** List figure names and exit. */
    bool list = false;
    /** Hard cycle budget forced onto every job (0 = per-job default). */
    Cycle maxCycles = 0;
    /** Per-job wall-clock budget in seconds (0 = unlimited). */
    double jobTimeoutSec = 0.0;
    /**
     * Fleet partitioning (`--shard i/n`): simulate only the jobs
     * whose fingerprint lands on shard i of n, serving the rest from
     * the shared cache (or leaving them skipped). Requires the cache;
     * the union of all n shard runs equals an unsharded run.
     */
    unsigned shardIndex = 0;
    unsigned shardCount = 0;
    /**
     * Fault drill (regless_report only): submit one doomed job with an
     * injected OSU-slot leak so the watchdog, the failure footer, and
     * the isolation of healthy jobs can be exercised end to end.
     */
    bool injectDeadlock = false;
};

/**
 * Parse the shared flags (--filter, --jobs, --json, --no-cache,
 * --cache-dir, --lint, --list, --max-cycles, --job-timeout,
 * --inject-deadlock); fatal() with usage on anything unknown.
 * @param allow_filter False for wrapper binaries, which are already
 *        a single figure (also gates --list and --inject-deadlock).
 */
ReportOptions parseReportOptions(int argc, char **argv,
                                 bool allow_filter);

/** Engine configured from @a options. */
sim::ExperimentEngine::Options engineOptions(
    const ReportOptions &options);

/**
 * Wrapper-binary entry point: run the named figure to stdout with the
 * shared CLI (minus --filter). Returns the process exit code.
 */
int figureMain(const std::string &name, int argc, char **argv);
/// @}

} // namespace regless::figures

#endif // REGLESS_BENCH_FIGURES_FIGURES_HH
