/**
 * @file
 * Provider bake-off (DESIGN.md §13): every provider in the registry —
 * including the compiler-assisted RF cache and RegDem spilling rivals
 * — runs the full Rodinia set, and the figure cross-compares runtime,
 * energy, and area, all normalized to the baseline register file. The
 * column set comes from the registry, so a newly registered provider
 * appears here without touching this file.
 */

#include "figures/figures.hh"

#include <cstring>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/provider_registry.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

void
genProviderBakeoff(FigureContext &ctx)
{
    const auto &registry = sim::providerRegistry();
    const auto &names = workloads::rodiniaNames();

    // One job per (workload, provider); jobs[w][p] mirrors the loops.
    std::vector<std::vector<sim::ExperimentEngine::JobId>> jobs;
    for (const auto &name : names) {
        jobs.emplace_back();
        for (const sim::ProviderDescriptor &d : registry)
            jobs.back().push_back(ctx.engine.submit(name, d.kind));
    }

    std::vector<sim::TableColumn> columns = {{"benchmark", 24}};
    for (const sim::ProviderDescriptor &d : registry) {
        const unsigned width = std::max<unsigned>(
            9, static_cast<unsigned>(std::strlen(d.name)) + 2);
        columns.push_back({d.name, width});
    }
    sim::TableWriter table(ctx.out, columns);
    table.header();

    // Per-provider ratio series; the baseline run of the same
    // workload is the denominator for both runtime and energy.
    std::vector<sim::GeomeanSeries> runtime, gpu_energy;
    for (const sim::ProviderDescriptor &d : registry) {
        runtime.emplace_back(std::string("bakeoff runtime ratio ") +
                             d.name);
        gpu_energy.emplace_back(std::string("bakeoff energy ratio ") +
                                d.name);
    }

    for (std::size_t w = 0; w < names.size(); ++w) {
        // Fault isolation: a failed baseline drops the whole row (no
        // denominator); any other failed point drops only its cell.
        const sim::RunStats *base = ctx.engine.tryStats(jobs[w][0]);
        if (!base) {
            ctx.out << "# " << names[w] << ": excluded ("
                    << ctx.engine.result(jobs[w][0]).error << ")\n";
            continue;
        }
        std::vector<sim::TableCell> cells = {names[w]};
        for (std::size_t p = 0; p < registry.size(); ++p) {
            const sim::RunStats *s = ctx.engine.tryStats(jobs[w][p]);
            if (!s) {
                ctx.out << "# " << names[w] << " ("
                        << registry[p].name << "): excluded ("
                        << ctx.engine.result(jobs[w][p]).error
                        << ")\n";
                cells.emplace_back("-");
                continue;
            }
            const double ratio = static_cast<double>(s->cycles) /
                                 static_cast<double>(base->cycles);
            runtime[p].add(names[w], ratio);
            gpu_energy[p].add(names[w], s->energy.total() /
                                            base->energy.total());
            cells.emplace_back(ratio);
        }
        table.row(cells);
    }

    auto footer = [&table](const char *label, auto value) {
        std::vector<sim::TableCell> cells = {label};
        for (std::size_t p = 0; p < sim::kNumProviderKinds; ++p)
            cells.emplace_back(value(p));
        table.row(cells);
    };
    footer("GEOMEAN runtime", [&](std::size_t p) {
        return runtime[p].count() ? runtime[p].value() : 0.0;
    });
    footer("GEOMEAN gpu energy", [&](std::size_t p) {
        return gpu_energy[p].count() ? gpu_energy[p].value() : 0.0;
    });

    // Area is a pure model (no simulation): each design's storage
    // structures under its canonical config, vs the baseline RF.
    const double base_area =
        registry[0]
            .area(sim::GpuConfig::forProvider(registry[0].kind))
            .total();
    footer("AREA (model)", [&](std::size_t p) {
        const sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(registry[p].kind);
        return registry[p].area(cfg).total() / base_area;
    });

    ctx.out << "# runtime/energy normalized per-benchmark to the "
               "baseline run; area from the analytical model\n";
}

} // namespace regless::figures
