/**
 * @file
 * Compressor pattern-set ablation (beyond the paper): which of the six
 * §5.3 value patterns earn their hardware? Reports the match rate,
 * RegLess L1 traffic, and runtime for progressively smaller pattern
 * sets across the Rodinia suite.
 */

#include "figures/figures.hh"

#include <string>
#include <vector>

#include "regless/compressor.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

namespace regless::figures
{

namespace
{

struct Variant
{
    const char *name;
    unsigned mask; // bit per staging::Pattern enum value
};

constexpr unsigned
bit(staging::Pattern p)
{
    return 1u << static_cast<unsigned>(p);
}

const Variant kVariants[] = {
    {"all_patterns", bit(staging::Pattern::Constant) |
                         bit(staging::Pattern::Stride1) |
                         bit(staging::Pattern::Stride4) |
                         bit(staging::Pattern::HalfStride1) |
                         bit(staging::Pattern::HalfStride4)},
    {"no_half_warp", bit(staging::Pattern::Constant) |
                         bit(staging::Pattern::Stride1) |
                         bit(staging::Pattern::Stride4)},
    {"constant_only", bit(staging::Pattern::Constant)},
    {"strides_only", bit(staging::Pattern::Stride1) |
                         bit(staging::Pattern::Stride4)},
    {"none", 0},
};

} // namespace

void
genAblationCompressor(FigureContext &ctx)
{
    std::vector<sim::ExperimentEngine::JobId> base_ids;
    for (const auto &name : workloads::rodiniaNames())
        base_ids.push_back(
            ctx.engine.submit(name, sim::ProviderKind::Baseline));

    std::vector<std::vector<sim::ExperimentEngine::JobId>> variant_ids;
    for (const Variant &variant : kVariants) {
        auto &ids = variant_ids.emplace_back();
        for (const auto &name : workloads::rodiniaNames()) {
            sim::GpuConfig cfg =
                sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
            cfg.regless.compressor.patternMask = variant.mask;
            ids.push_back(ctx.engine.submit(name, cfg));
        }
    }

    sim::TableWriter table(ctx.out, {{"variant", 16},
                                     {"match%", 9, 1},
                                     {"l1_req/kcyc", 13, 3},
                                     {"runtime", 9, 4}});
    table.header();

    std::vector<double> base_cycles;
    for (auto id : base_ids)
        base_cycles.push_back(
            static_cast<double>(ctx.engine.stats(id).cycles));

    std::size_t v = 0;
    for (const Variant &variant : kVariants) {
        std::uint64_t matches = 0, attempts = 0;
        double l1 = 0, cyc = 0;
        sim::GeomeanSeries rt("ablation_compressor runtime ratio");
        unsigned i = 0;
        for (const auto &name : workloads::rodiniaNames()) {
            const sim::RunStats &stats =
                ctx.engine.stats(variant_ids[v][i]);
            matches += stats.compressorMatches;
            attempts +=
                stats.compressorMatches + stats.compressorIncompressible;
            l1 += static_cast<double>(stats.l1PreloadReqs +
                                      stats.l1StoreReqs +
                                      stats.l1InvalidateReqs);
            cyc += static_cast<double>(stats.cycles);
            rt.add(std::string(variant.name) + ":" + name,
                   static_cast<double>(stats.cycles) / base_cycles[i]);
            ++i;
        }
        table.row({variant.name,
                   attempts ? 100.0 * matches / attempts : 0.0,
                   1000.0 * l1 / cyc, rt.value()});
        ++v;
    }
    ctx.out << "# constant + stride-1 capture most of the benefit; "
               "half-warp patterns add the tail\n";
}

} // namespace regless::figures
