/**
 * @file
 * Multi-SM scaling (beyond the paper's figures, supporting its §6.5
 * claim): RegLess's register traffic stays inside each SM's L1, so
 * scaling the SM count raises DRAM contention identically for the
 * baseline and RegLess — operand staging adds no shared-resource
 * pressure.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "sim/multi_sm.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Multi-SM scaling with shared DRAM",
                "section 6.5 (RegLess adds no L2/DRAM pressure)");
    std::cout << sim::cell("sms", 5) << sim::cell("base_cycles", 13)
              << sim::cell("rl_cycles", 11) << sim::cell("ratio", 8)
              << sim::cell("dram_accesses", 15)
              << sim::cell("rl_dram", 9) << "\n";

    for (unsigned sms : {1u, 2u, 4u, 8u}) {
        sim::MultiSmSimulator base(
            workloads::makeRodinia("streamcluster"),
            sim::GpuConfig::forProvider(sim::ProviderKind::Baseline),
            sms);
        sim::RunStats b = base.run();

        sim::MultiSmSimulator rl(
            workloads::makeRodinia("streamcluster"),
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless),
            sms);
        sim::RunStats r = rl.run();

        std::cout << sim::cell(static_cast<double>(sms), 5, 0)
                  << sim::cell(static_cast<double>(b.cycles), 13, 0)
                  << sim::cell(static_cast<double>(r.cycles), 11, 0)
                  << sim::cell(static_cast<double>(r.cycles) /
                                   static_cast<double>(b.cycles),
                               8)
                  << sim::cell(static_cast<double>(b.dramAccesses), 15,
                               0)
                  << sim::cell(static_cast<double>(r.dramAccesses), 9,
                               0)
                  << "\n";
    }
    std::cout << "# RegLess's runtime ratio and DRAM footprint stay "
                 "flat as SMs contend\n";
    return 0;
}
