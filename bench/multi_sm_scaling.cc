/**
 * @file
 * Multi-SM scaling (beyond the paper's figures, supporting its §6.5
 * claim): RegLess's register traffic stays inside each SM's L1, so
 * scaling the SM count raises DRAM contention identically for the
 * baseline and RegLess — operand staging adds no shared-resource
 * pressure.
 *
 * Modes:
 *  - no arguments: the §6.5 sweep over SM counts (both providers).
 *  - --threads N [--sms M] [--kernel K] [--provider P]: one full-chip
 *    run (default 16 SMs) on N worker threads, reporting wall-clock
 *    time and simulated cycles per wall-clock second. Results are
 *    bit-identical for every N; only the wall clock changes.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/multi_sm.hh"
#include "workloads/rodinia.hh"

using namespace regless;

namespace
{

/** Wall-clock seconds of one run(). */
double
timedRun(sim::MultiSmSimulator &multi, sim::RunStats &out)
{
    auto start = std::chrono::steady_clock::now();
    out = multi.run();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

int
timedMode(unsigned threads, unsigned sms, const std::string &kernel,
          sim::ProviderKind provider)
{
    sim::banner("Multi-SM parallel execution",
                "epoch-barrier executor; results thread-invariant");
    sim::MultiSmSimulator multi(workloads::makeRodinia(kernel),
                                sim::GpuConfig::forProvider(provider),
                                sms, threads);
    sim::RunStats stats;
    double wall = timedRun(multi, stats);
    double cps = static_cast<double>(stats.cycles) / wall;

    std::cout << sim::cell("kernel", 15) << sim::cell("sms", 5)
              << sim::cell("threads", 9) << sim::cell("cycles", 12)
              << sim::cell("insns", 12) << sim::cell("wall_s", 9)
              << sim::cell("Mcycles/s", 11) << "\n";
    std::cout << sim::cell(kernel, 15)
              << sim::cell(static_cast<double>(sms), 5, 0)
              << sim::cell(static_cast<double>(multi.threads()), 9, 0)
              << sim::cell(static_cast<double>(stats.cycles), 12, 0)
              << sim::cell(static_cast<double>(stats.insns), 12, 0)
              << sim::cell(wall, 9)
              << sim::cell(cps / 1e6, 11) << "\n";
    std::cout << "# rerun with --threads 1 for the serial reference; "
                 "stats are bit-identical\n";
    return 0;
}

int
sweepMode()
{
    sim::banner("Multi-SM scaling with shared DRAM",
                "section 6.5 (RegLess adds no L2/DRAM pressure)");
    std::cout << sim::cell("sms", 5) << sim::cell("base_cycles", 13)
              << sim::cell("rl_cycles", 11) << sim::cell("ratio", 8)
              << sim::cell("dram_accesses", 15)
              << sim::cell("rl_dram", 9)
              << sim::cell("Mcycles/s", 11) << "\n";

    for (unsigned sms : {1u, 2u, 4u, 8u}) {
        sim::MultiSmSimulator base(
            workloads::makeRodinia("streamcluster"),
            sim::GpuConfig::forProvider(sim::ProviderKind::Baseline),
            sms);
        sim::RunStats b;
        double wall = timedRun(base, b);

        sim::MultiSmSimulator rl(
            workloads::makeRodinia("streamcluster"),
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless),
            sms);
        sim::RunStats r;
        wall += timedRun(rl, r);

        double cps =
            static_cast<double>(b.cycles + r.cycles) / wall / 1e6;
        std::cout << sim::cell(static_cast<double>(sms), 5, 0)
                  << sim::cell(static_cast<double>(b.cycles), 13, 0)
                  << sim::cell(static_cast<double>(r.cycles), 11, 0)
                  << sim::cell(static_cast<double>(r.cycles) /
                                   static_cast<double>(b.cycles),
                               8)
                  << sim::cell(static_cast<double>(b.dramAccesses), 15,
                               0)
                  << sim::cell(static_cast<double>(r.dramAccesses), 9,
                               0)
                  << sim::cell(cps, 11) << "\n";
    }
    std::cout << "# RegLess's runtime ratio and DRAM footprint stay "
                 "flat as SMs contend\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = 0;
    unsigned sms = 16;
    std::string kernel = "streamcluster";
    sim::ProviderKind provider = sim::ProviderKind::Baseline;
    bool timed = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--threads") {
            threads = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
            timed = true;
        } else if (arg == "--sms") {
            sms = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--kernel") {
            kernel = value();
        } else if (arg == "--provider") {
            provider = sim::providerFromName(value());
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--threads N [--sms M] [--kernel K]"
                         " [--provider P]]\n";
            return arg == "--help" ? 0 : 1;
        }
    }

    if (timed)
        return timedMode(threads, sms, kernel, provider);
    return sweepMode();
}
