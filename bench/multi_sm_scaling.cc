/**
 * @file
 * Multi-SM scaling wrapper. With no arguments this is a thin wrapper
 * over the multi_sm_scaling generator in figures/multi_sm_scaling.cc
 * (shared with regless_report). The timed mode stays here: it measures
 * wall-clock throughput of the parallel executor, which is not a
 * cacheable simulation result.
 *
 *   --threads N [--sms M] [--kernel K] [--provider P]: one full-chip
 *   run (default 16 SMs) on N worker threads, reporting wall-clock
 *   time and simulated cycles per wall-clock second. Results are
 *   bit-identical for every N; only the wall clock changes.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "figures/figures.hh"
#include "sim/experiment.hh"
#include "sim/multi_sm.hh"
#include "workloads/rodinia.hh"

using namespace regless;

namespace
{

/** Wall-clock seconds of one run(). */
double
timedRun(sim::MultiSmSimulator &multi, sim::RunStats &out)
{
    auto start = std::chrono::steady_clock::now();
    out = multi.run();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

int
timedMode(unsigned threads, unsigned sms, const std::string &kernel,
          sim::ProviderKind provider, bool cycle_skip)
{
    sim::banner("Multi-SM parallel execution",
                "epoch-barrier executor; results thread-invariant");
    sim::GpuConfig config = sim::GpuConfig::forProvider(provider);
    config.sm.cycleSkip = cycle_skip;
    sim::MultiSmSimulator multi(workloads::makeRodinia(kernel), config,
                                sms, threads);
    sim::RunStats stats;
    double wall = timedRun(multi, stats);
    double cps = static_cast<double>(stats.cycles) / wall;

    std::cout << sim::cell("kernel", 15) << sim::cell("sms", 5)
              << sim::cell("threads", 9) << sim::cell("skip", 6)
              << sim::cell("cycles", 12) << sim::cell("insns", 12)
              << sim::cell("skipped", 12) << sim::cell("wall_s", 9)
              << sim::cell("Mcycles/s", 11) << "\n";
    std::cout << sim::cell(kernel, 15)
              << sim::cell(static_cast<double>(sms), 5, 0)
              << sim::cell(static_cast<double>(multi.threads()), 9, 0)
              << sim::cell(cycle_skip ? "on" : "off", 6)
              << sim::cell(static_cast<double>(stats.cycles), 12, 0)
              << sim::cell(static_cast<double>(stats.insns), 12, 0)
              << sim::cell(static_cast<double>(stats.skippedCycles), 12,
                           0)
              << sim::cell(wall, 9)
              << sim::cell(cps / 1e6, 11) << "\n";
    std::cout << "# rerun with --threads 1 for the serial reference; "
                 "stats are bit-identical (and match --no-skip)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Only intercept the timed mode; everything else (including the
    // shared --jobs/--json/--no-cache flags) goes to the generator.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--threads")
            continue;
        unsigned threads = 0;
        unsigned sms = 16;
        std::string kernel = "streamcluster";
        sim::ProviderKind provider = sim::ProviderKind::Baseline;
        bool cycle_skip = true;
        for (int j = 1; j < argc; ++j) {
            std::string arg = argv[j];
            auto value = [&]() -> std::string {
                if (j + 1 >= argc)
                    fatal("missing value for ", arg);
                return argv[++j];
            };
            if (arg == "--threads") {
                threads = static_cast<unsigned>(
                    std::strtoul(value().c_str(), nullptr, 10));
            } else if (arg == "--sms") {
                sms = static_cast<unsigned>(
                    std::strtoul(value().c_str(), nullptr, 10));
            } else if (arg == "--kernel") {
                kernel = value();
            } else if (arg == "--provider") {
                provider = sim::providerFromName(value());
            } else if (arg == "--no-skip") {
                cycle_skip = false;
            } else {
                std::cerr << "usage: " << argv[0]
                          << " [--threads N [--sms M] [--kernel K]"
                             " [--provider P] [--no-skip]]\n";
                return arg == "--help" ? 0 : 1;
            }
        }
        return timedMode(threads, sms, kernel, provider, cycle_skip);
    }
    return regless::figures::figureMain("multi_sm_scaling", argc, argv);
}
