/**
 * @file
 * Thin wrapper: the fig17_preload_location generator lives in figures/fig17_preload_location.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig17_preload_location", argc, argv);
}
