/**
 * @file
 * Figure 17: the location registers were preloaded from — OSU,
 * compressor, L1 cache, or L2/DRAM — per benchmark, for the 512-entry
 * RegLess design.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
main()
{
    sim::banner("Preload source breakdown (%)", "Figure 17");
    std::cout << sim::cell("benchmark", 18) << sim::cell("osu", 9)
              << sim::cell("compressor", 12) << sim::cell("l1", 9)
              << sim::cell("l2_dram", 9) << "\n";

    std::uint64_t tot_all = 0, tot_l1 = 0, tot_far = 0;
    for (const auto &name : workloads::rodiniaNames()) {
        sim::RunStats stats = sim::runKernel(
            workloads::makeRodinia(name), sim::ProviderKind::Regless);
        double total = static_cast<double>(stats.totalPreloads());
        if (total == 0)
            total = 1;
        std::cout << sim::cell(name, 18)
                  << sim::cell(100.0 * stats.preloadSrcOsu / total, 9, 1)
                  << sim::cell(
                         100.0 * stats.preloadSrcCompressor / total, 12,
                         1)
                  << sim::cell(100.0 * stats.preloadSrcL1 / total, 9, 1)
                  << sim::cell(100.0 * stats.preloadSrcL2Dram / total, 9,
                               3)
                  << "\n";
        tot_all += stats.totalPreloads();
        tot_l1 += stats.preloadSrcL1;
        tot_far += stats.preloadSrcL2Dram;
    }
    std::printf("# suite-wide: %.2f%% of preloads from L1, %.4f%% from "
                "L2/DRAM (paper: 0.9%% and 0.013%%)\n",
                100.0 * tot_l1 / tot_all, 100.0 * tot_far / tot_all);
    return 0;
}
