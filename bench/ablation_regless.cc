/**
 * @file
 * Thin wrapper: the ablation_regless generator lives in figures/ablation_regless.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("ablation_regless", argc, argv);
}
