/**
 * @file
 * Ablation study of the RegLess design choices DESIGN.md §5 calls out:
 * compressor on/off, LIFO vs FIFO warp-stack activation, clean-first
 * vs dirty-first victim selection, and bank-aware register
 * renumbering. Reports geomean runtime and L1-traffic ratios against
 * the default configuration.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

namespace
{

struct Variant
{
    const char *name;
    void (*apply)(sim::GpuConfig &);
};

void
applyDefault(sim::GpuConfig &)
{
}

void
applyNoCompressor(sim::GpuConfig &cfg)
{
    cfg.regless.compressorEnabled = false;
}

void
applyFifo(sim::GpuConfig &cfg)
{
    cfg.regless.fifoActivation = true;
}

void
applyDirtyFirst(sim::GpuConfig &cfg)
{
    cfg.regless.victimOrder = staging::VictimOrder::DirtyFirst;
}

void
applyNoBankReassign(sim::GpuConfig &cfg)
{
    cfg.compiler.reassignBanks = false;
}

void
applyNoLoadUseSplit(sim::GpuConfig &cfg)
{
    cfg.compiler.splitLoadUse = false;
}

} // namespace

int
main()
{
    sim::banner("RegLess design ablations", "DESIGN.md section 5");

    const Variant variants[] = {
        {"default", applyDefault},
        {"no_compressor", applyNoCompressor},
        {"fifo_activation", applyFifo},
        {"dirty_first_victims", applyDirtyFirst},
        {"no_bank_reassign", applyNoBankReassign},
        {"no_load_use_split", applyNoLoadUseSplit},
    };

    // Reference: default RegLess.
    std::vector<double> ref_cycles, ref_l1;
    for (const auto &name : workloads::rodiniaNames()) {
        sim::RunStats stats = sim::runKernel(
            workloads::makeRodinia(name), sim::ProviderKind::Regless);
        ref_cycles.push_back(static_cast<double>(stats.cycles));
        ref_l1.push_back(static_cast<double>(stats.l1PreloadReqs +
                                             stats.l1StoreReqs +
                                             stats.l1InvalidateReqs) +
                         1.0);
    }

    std::cout << sim::cell("variant", 22) << sim::cell("runtime", 10)
              << sim::cell("l1_traffic", 12)
              << sim::cell("bank_conflict/insn", 20) << "\n";
    for (const Variant &variant : variants) {
        std::vector<double> rt, l1;
        double conflicts = 0, insns = 0;
        unsigned i = 0;
        for (const auto &name : workloads::rodiniaNames()) {
            sim::GpuConfig cfg =
                sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
            variant.apply(cfg);
            sim::GpuSimulator g(workloads::makeRodinia(name), cfg);
            sim::RunStats stats = g.run();
            rt.push_back(static_cast<double>(stats.cycles) /
                         ref_cycles[i]);
            l1.push_back((static_cast<double>(stats.l1PreloadReqs +
                                              stats.l1StoreReqs +
                                              stats.l1InvalidateReqs) +
                          1.0) /
                         ref_l1[i]);
            conflicts += static_cast<double>(
                g.provider().stats().counter("osu_bank_conflicts")
                    .value());
            insns += static_cast<double>(stats.insns);
            ++i;
        }
        std::cout << sim::cell(variant.name, 22)
                  << sim::cell(geomean(rt), 10, 4)
                  << sim::cell(geomean(l1), 12, 4)
                  << sim::cell(conflicts / insns, 20, 4) << "\n";
    }
    std::cout << "# paper reports -10.2% geomean performance without "
                 "the compressor (Fig 16)\n";
    return 0;
}
