/**
 * @file
 * Thin wrapper: the fig11_area generator lives in figures/fig11_area.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("fig11_area", argc, argv);
}
