/**
 * @file
 * Figure 11: area of RegLess configurations (128..2048 OSU entries),
 * normalized to the 2048-entry baseline register file, split into
 * logic, storage, and compressor components.
 */

#include <iostream>

#include "energy/area_model.hh"
#include "sim/experiment.hh"

using namespace regless;

int
main()
{
    sim::banner("Normalized area per OSU capacity", "Figure 11");

    energy::AreaConfig area;
    const double baseline = area.plainRf(2048).total();

    std::cout << sim::cell("capacity", 10) << sim::cell("logic", 9)
              << sim::cell("storage", 9) << sim::cell("compressor", 12)
              << sim::cell("total", 9) << "\n";
    for (unsigned cap : {128u, 192u, 256u, 384u, 512u, 1024u, 2048u}) {
        energy::AreaBreakdown b = area.regless(cap);
        std::cout << sim::cell(static_cast<double>(cap), 10, 0)
                  << sim::cell(b.logic / baseline, 9)
                  << sim::cell(b.storage / baseline, 9)
                  << sim::cell(b.compressor / baseline, 12)
                  << sim::cell(b.total() / baseline, 9) << "\n";
    }
    std::cout << "# paper: RegLess-512 total ~0.3x of baseline RF area\n";
    return 0;
}
