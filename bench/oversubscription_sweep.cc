/**
 * @file
 * Oversubscription sweep (paper §7 / related-work claim): as kernels
 * allocate more register names per warp, a fixed register file loses
 * occupancy while RegLess stays at full residency with a quarter of
 * the storage. Reports the crossover.
 */

#include <iostream>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/kernel_builder.hh"

using namespace regless;

namespace
{

/**
 * Kernel with @a phases sequential 12-register windows: register names
 * grow with phases, instantaneous pressure stays ~15.
 */
ir::Kernel
phasedKernel(unsigned phases)
{
    workloads::KernelBuilder b("phased" + std::to_string(phases));
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId acc = b.reg();
    b.moviTo(acc, 0);
    for (unsigned phase = 0; phase < phases; ++phase) {
        RegId v = b.ld(b.iadd(addr, b.movi(16384 * phase)));
        std::vector<RegId> window;
        for (int k = 0; k < 12; ++k)
            window.push_back(b.imad(v, b.movi(k + 2 + phase), t));
        while (window.size() > 1) {
            std::vector<RegId> next;
            for (std::size_t k = 0; k + 1 < window.size(); k += 2)
                next.push_back(b.iadd(window[k], window[k + 1]));
            if (window.size() % 2)
                next.push_back(window.back());
            window = std::move(next);
        }
        b.iaddTo(acc, acc, window[0]);
    }
    b.st(acc, addr, 1 << 22);
    return b.build();
}

} // namespace

int
main()
{
    sim::banner("Register-file oversubscription sweep",
                "section 7 (RegLess needs no design change to "
                "oversubscribe)");
    std::cout << sim::cell("names/warp", 12)
              << sim::cell("resident", 10)
              << sim::cell("baseline", 10) << sim::cell("regless", 10)
              << sim::cell("speedup", 9) << "\n";

    for (unsigned phases : {2u, 4u, 6u, 8u, 10u}) {
        ir::Kernel kernel = phasedKernel(phases);
        unsigned regs = kernel.numRegs();

        sim::GpuConfig base_cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
        base_cfg.limitOccupancyByRf = true;
        sim::GpuConfig rl_cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);

        sim::RunStats base = sim::runKernel(phasedKernel(phases),
                                            base_cfg);
        sim::RunStats rl = sim::runKernel(phasedKernel(phases), rl_cfg);

        unsigned wpb = kernel.warpsPerBlock();
        unsigned fit = base_cfg.baselineRfEntries / regs;
        fit = std::max(wpb, fit - fit % wpb);
        fit = std::min(fit, base_cfg.sm.numWarps);

        std::cout << sim::cell(static_cast<double>(regs), 12, 0)
                  << sim::cell(static_cast<double>(fit), 10, 0)
                  << sim::cell(static_cast<double>(base.cycles), 10, 0)
                  << sim::cell(static_cast<double>(rl.cycles), 10, 0)
                  << sim::cell(static_cast<double>(base.cycles) /
                                   static_cast<double>(rl.cycles),
                               9, 2)
                  << "\n";
    }
    std::cout << "# RegLess holds 64 resident warps with 512 staging "
                 "entries regardless of the name count\n";
    return 0;
}
