/**
 * @file
 * Thin wrapper: the oversubscription_sweep generator lives in figures/oversubscription_sweep.cc and is
 * shared with the regless_report driver.
 */

#include "figures/figures.hh"

int
main(int argc, char **argv)
{
    return regless::figures::figureMain("oversubscription_sweep", argc, argv);
}
