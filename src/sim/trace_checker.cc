#include "sim/trace_checker.hh"

#include <sstream>

namespace regless::sim
{

TraceChecker::TraceChecker(const compiler::CompiledKernel &ck,
                           unsigned num_warps, bool check_regions,
                           bool keep_events)
    : _ck(ck),
      _kernel(ck.kernel()),
      _checkRegions(check_regions),
      _keepEvents(keep_events)
{
    _warps.resize(num_warps);
    for (WarpTrace &wt : _warps)
        wt.defined.assign(_kernel.numRegs(), false);
}

void
TraceChecker::attach(arch::Sm &sm)
{
    sm.setIssueHook([this](const arch::Warp &warp, Pc pc,
                           const ir::Instruction &insn, Cycle now) {
        onIssue(warp, pc, insn, now);
    });
}

void
TraceChecker::flag(const std::string &message)
{
    if (_violations.size() < 64)
        _violations.push_back(message);
}

bool
TraceChecker::legalSuccessor(Pc from, Pc to) const
{
    const ir::Instruction &insn = _kernel.insn(from);
    // Straight-line successor.
    if (!insn.isExit() && to == from + 1)
        return true;
    // Branch / jump target.
    if ((insn.isBranch() || insn.isJump()) && to == insn.target())
        return true;
    // Divergence: after any instruction the SIMT stack may switch to
    // another pending side, which always resumes at a block start.
    return _kernel.block(_kernel.blockOf(to)).firstPc() == to;
}

void
TraceChecker::onIssue(const arch::Warp &warp, Pc pc,
                      const ir::Instruction &insn, Cycle now)
{
    ++_eventCount;
    if (_keepEvents)
        _events.push_back(IssueEvent{now, warp.id(), pc});

    WarpTrace &wt = _warps.at(warp.id());
    std::ostringstream where;
    where << "warp " << warp.id() << " pc " << pc << " cycle " << now;

    // Program order.
    if (wt.lastPc == invalidPc) {
        if (pc != 0 &&
            _kernel.block(_kernel.blockOf(pc)).firstPc() != pc) {
            flag(where.str() + ": first issue not at a block start");
        }
    } else if (!legalSuccessor(wt.lastPc, pc)) {
        flag(where.str() + ": illegal successor of pc " +
             std::to_string(wt.lastPc));
    }
    wt.lastPc = pc;

    // Define-before-use.
    for (RegId src : insn.srcs()) {
        if (!wt.defined[src]) {
            flag(where.str() + ": reads r" + std::to_string(src) +
                 " before any definition");
        }
    }
    if (insn.writesReg())
        wt.defined[insn.dst()] = true;

    // Region atomicity.
    if (_checkRegions) {
        compiler::RegionId rid = _ck.regionAt(pc);
        const compiler::Region &region = _ck.region(rid);
        if (pc == region.startPc) {
            wt.region = rid;
        } else if (wt.region != rid) {
            flag(where.str() + ": entered region " +
                 std::to_string(rid) + " mid-way");
        }
        if (pc == region.endPc)
            wt.region = compiler::invalidRegion;
    }
}

} // namespace regless::sim
