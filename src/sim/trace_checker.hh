/**
 * @file
 * Issue-trace recorder and invariant checker.
 *
 * Attaches to the SM's issue hook and validates, instruction by
 * instruction, properties the rest of the system relies on:
 *
 *  - program order per warp: every issued PC is a legal successor of
 *    the previous one (fall-through, branch target, divergence re-entry
 *    at a block start, or barrier fall-through);
 *  - define-before-use: a warp never reads a register it has not
 *    written (catches malformed workloads and DSL bugs);
 *  - region atomicity (RegLess runs): once a warp issues from a
 *    region, it issues that region's instructions contiguously in
 *    ascending PC order until the region ends.
 *
 * Violations are recorded, not fatal, so tests can assert on them.
 */

#ifndef REGLESS_SIM_TRACE_CHECKER_HH
#define REGLESS_SIM_TRACE_CHECKER_HH

#include <string>
#include <vector>

#include "arch/sm.hh"
#include "compiler/compiler.hh"

namespace regless::sim
{

/** One recorded issue event. */
struct IssueEvent
{
    Cycle cycle;
    WarpId warp;
    Pc pc;
};

/** Records and validates the issue stream of one SM. */
class TraceChecker
{
  public:
    /**
     * @param ck Compiled kernel (region map + CFG source).
     * @param num_warps SM warp count.
     * @param check_regions Enforce region atomicity (RegLess runs).
     * @param keep_events Retain the raw event list (memory heavy).
     */
    TraceChecker(const compiler::CompiledKernel &ck, unsigned num_warps,
                 bool check_regions, bool keep_events = false);

    /** Bind to @a sm's issue hook. */
    void attach(arch::Sm &sm);

    /** Number of events observed. */
    std::uint64_t events() const { return _eventCount; }

    /** All violations found so far (empty = clean trace). */
    const std::vector<std::string> &violations() const
    {
        return _violations;
    }

    /** Raw events (only when keep_events was set). */
    const std::vector<IssueEvent> &eventLog() const { return _events; }

  private:
    void onIssue(const arch::Warp &warp, Pc pc,
                 const ir::Instruction &insn, Cycle now);

    void flag(const std::string &message);

    /** @return true when @a to can follow @a from in program order. */
    bool legalSuccessor(Pc from, Pc to) const;

    const compiler::CompiledKernel &_ck;
    const ir::Kernel &_kernel;
    bool _checkRegions;
    bool _keepEvents;

    struct WarpTrace
    {
        Pc lastPc = invalidPc;
        compiler::RegionId region = compiler::invalidRegion;
        std::vector<bool> defined;
    };
    std::vector<WarpTrace> _warps;
    std::uint64_t _eventCount = 0;
    std::vector<IssueEvent> _events;
    std::vector<std::string> _violations;
};

} // namespace regless::sim

#endif // REGLESS_SIM_TRACE_CHECKER_HH
