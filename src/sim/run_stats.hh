/**
 * @file
 * Per-run results: timing, traffic, provider activity, and energy.
 * Everything the benches need to regenerate the paper's tables and
 * figures comes out of this structure.
 */

#ifndef REGLESS_SIM_RUN_STATS_HH
#define REGLESS_SIM_RUN_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/stall.hh"
#include "common/types.hh"
#include "energy/energy_model.hh"
#include "sim/gpu_config.hh"

namespace regless::sim
{

/**
 * Per-tenant accounting for one multi-tenant run (DESIGN.md §16).
 * One lane per co-resident kernel; the lane's issue-slot account is
 * closed on its own — insns issued + stalls == the tenant's scheduler
 * slots × cycles — and the lanes sum to the whole-SM invariant.
 */
struct TenantLane
{
    std::string kernel;
    std::uint64_t insns = 0;
    std::uint64_t issuedSlots = 0;
    std::array<std::uint64_t, arch::kNumStallCauses> stallSlots{};
    /** Cycle the tenant's last warp retired (its solo runtime under
     *  co-residency; the LS tenant's tail latency). */
    Cycle finishCycle = 0;
    /** Cycles spent suspended by the QoS controller. */
    std::uint64_t suspendedCycles = 0;
    /** Region-boundary preemptions taken. */
    std::uint64_t preemptions = 0;
};

bool operator==(const TenantLane &a, const TenantLane &b);

/** Everything measured in one kernel execution. */
struct RunStats
{
    std::string kernel;
    ProviderKind provider = ProviderKind::Baseline;

    /** @name Timing. */
    /// @{
    Cycle cycles = 0;
    std::uint64_t insns = 0;
    std::uint64_t metadataInsns = 0; ///< dynamic metadata fetches
    /// @}

    /** @name Memory hierarchy. */
    /// @{
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t dramAccesses = 0;
    /// @}

    /** @name Register-structure activity (per provider). */
    /// @{
    std::uint64_t rfReads = 0;
    std::uint64_t rfWrites = 0;
    std::uint64_t renameLookups = 0;
    std::uint64_t lrfAccesses = 0;
    std::uint64_t orfAccesses = 0;
    std::uint64_t mrfAccesses = 0;
    std::uint64_t osuAccesses = 0;
    std::uint64_t osuTagLookups = 0;
    std::uint64_t osuBankConflicts = 0;
    std::uint64_t compressorAccesses = 0;
    std::uint64_t compressorMatches = 0;
    std::uint64_t compressorIncompressible = 0;
    /** @name Static compression (DESIGN.md §14). */
    /** Evictions compressed via a compile-time proven encoding. */
    std::uint64_t compressorStaticHits = 0;
    /** Evictions whose value escaped its proven encoding. */
    std::uint64_t compressorStaticUnsound = 0;
    /** Sum over cycles of OSU banks power-gated as provably empty. */
    std::uint64_t osuGatedBankCycles = 0;
    /** Compiler-assisted RF cache (DESIGN.md §13.2). */
    std::uint64_t rfCacheHits = 0;
    std::uint64_t rfCacheMisses = 0;
    /** RegDem demotion traffic (DESIGN.md §13.3). */
    std::uint64_t spillStores = 0;
    std::uint64_t fillLoads = 0;
    /// @}

    /** @name RegLess preload/traffic detail (Figures 17, 18). */
    /// @{
    std::uint64_t preloadSrcOsu = 0;
    std::uint64_t preloadSrcCompressor = 0;
    std::uint64_t preloadSrcL1 = 0;
    std::uint64_t preloadSrcL2Dram = 0;
    std::uint64_t l1PreloadReqs = 0;
    std::uint64_t l1StoreReqs = 0;
    std::uint64_t l1InvalidateReqs = 0;
    /// @}

    /** @name Issue-slot attribution (DESIGN.md section 10). */
    /// @{
    /** Scheduler slots that issued (one per scheduler per cycle). */
    std::uint64_t issuedSlots = 0;
    /** Slots lost, charged to exactly one cause each; indexed by
     *  arch::StallCause. issuedSlots + sum == schedulers * cycles
     *  per SM (summed over SMs in multi-SM runs). */
    std::array<std::uint64_t, arch::kNumStallCauses> stallSlots{};
    /** @name Cycle-skip meta-counters (DESIGN.md §12). Zero in
     *  skip-off reference runs; excluded from differential oracles. */
    /** Cycles collapsed by the skip-ahead engine. */
    std::uint64_t skippedCycles = 0;
    /** Skip jumps taken. */
    std::uint64_t skipEvents = 0;
    /// @}

    /** Mean register working set per 100 cycles, bytes (Figure 2). */
    double meanWorkingSetBytes = 0.0;

    /** Backing-store accesses per 100 cycles over time (Figure 3). */
    std::vector<double> backingSeries;

    /** @name Dynamic region behaviour (Figure 19, Table 2). */
    /// @{
    double regionPreloadsMean = 0.0;
    double regionLiveMean = 0.0;
    double regionLiveStddev = 0.0;
    double regionCyclesMean = 0.0;
    double regionInsnsMean = 0.0;
    double staticInsnsPerRegion = 0.0;
    unsigned numRegions = 0;
    /// @}

    /** Per-tenant lanes; empty for single-tenant runs, so classic
     *  results keep their exact serialized form. */
    std::vector<TenantLane> tenants;

    /** Energy under the model (filled by computeEnergy). */
    energy::EnergyBreakdown energy;

    /** Total preloads (all sources). */
    std::uint64_t
    totalPreloads() const
    {
        return preloadSrcOsu + preloadSrcCompressor + preloadSrcL1 +
               preloadSrcL2Dram;
    }
};

/**
 * Exact (bit-level, including doubles) equality over every field.
 * Used by the determinism tests and the serialization round-trip.
 */
bool operator==(const RunStats &a, const RunStats &b);
inline bool
operator!=(const RunStats &a, const RunStats &b)
{
    return !(a == b);
}

/** Fill @a stats.energy from its counters under @a config's model. */
void computeEnergy(RunStats &stats, const GpuConfig &config);

/** The "No RF" bound: @a baseline's run with free register accesses. */
energy::EnergyBreakdown noRfBound(const RunStats &baseline);

} // namespace regless::sim

#endif // REGLESS_SIM_RUN_STATS_HH
