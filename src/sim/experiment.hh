/**
 * @file
 * Shared experiment drivers and table formatting for the benchmark
 * harnesses (one binary per paper figure/table; see DESIGN.md §4).
 */

#ifndef REGLESS_SIM_EXPERIMENT_HH
#define REGLESS_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "ir/kernel.hh"
#include "sim/gpu_config.hh"
#include "sim/gpu_simulator.hh"
#include "sim/run_stats.hh"

namespace regless::sim
{

/** Run @a kernel under the canonical configuration for @a kind. */
RunStats runKernel(const ir::Kernel &kernel, ProviderKind kind);

/** Run @a kernel under an explicit configuration. */
RunStats runKernel(const ir::Kernel &kernel, const GpuConfig &config);

/**
 * Run @a kernel under RegLess with a specific OSU capacity (derives
 * matching compiler constraints).
 */
RunStats runRegless(const ir::Kernel &kernel, unsigned osu_entries,
                    bool compressor = true);

/** Fixed-width left-aligned cell. */
std::string cell(const std::string &text, unsigned width);

/** Fixed-width numeric cell with @a digits decimals. */
std::string cell(double value, unsigned width, unsigned digits = 3);

/** Print a standard bench banner with the figure/table reference. */
void banner(const std::string &title, const std::string &paper_ref);

} // namespace regless::sim

#endif // REGLESS_SIM_EXPERIMENT_HH
