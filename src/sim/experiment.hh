/**
 * @file
 * Shared experiment drivers and table formatting for the benchmark
 * harnesses (one binary per paper figure/table; see DESIGN.md §4).
 */

#ifndef REGLESS_SIM_EXPERIMENT_HH
#define REGLESS_SIM_EXPERIMENT_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "ir/kernel.hh"
#include "sim/gpu_config.hh"
#include "sim/gpu_simulator.hh"
#include "sim/run_stats.hh"

namespace regless::sim
{

/** Run @a kernel under the canonical configuration for @a kind. */
RunStats runKernel(const ir::Kernel &kernel, ProviderKind kind);

/** Run @a kernel under an explicit configuration. */
RunStats runKernel(const ir::Kernel &kernel, const GpuConfig &config);

/**
 * Run @a kernel under RegLess with a specific OSU capacity (derives
 * matching compiler constraints).
 */
RunStats runRegless(const ir::Kernel &kernel, unsigned osu_entries,
                    bool compressor = true);

/** Fixed-width left-aligned cell. */
std::string cell(const std::string &text, unsigned width);

/** Fixed-width numeric cell with @a digits decimals. */
std::string cell(double value, unsigned width, unsigned digits = 3);

/** Print a standard bench banner with the figure/table reference. */
void banner(const std::string &title, const std::string &paper_ref);

/** Banner variant writing to an arbitrary stream. */
void banner(std::ostream &os, const std::string &title,
            const std::string &paper_ref);

/** One column of a fixed-width text table. */
struct TableColumn
{
    std::string header;
    unsigned width;
    /** Decimals for numeric cells in this column. */
    unsigned digits = 3;
};

/** Heterogeneous table cell: text or a number. */
class TableCell
{
  public:
    TableCell(const char *text) : _kind(Kind::Text), _text(text) {}
    TableCell(std::string text)
        : _kind(Kind::Text), _text(std::move(text))
    {
    }
    TableCell(double value) : _kind(Kind::Number), _number(value) {}
    TableCell(unsigned value)
        : _kind(Kind::Number), _number(static_cast<double>(value))
    {
    }

    bool isText() const { return _kind == Kind::Text; }
    const std::string &text() const { return _text; }
    double number() const { return _number; }

  private:
    enum class Kind
    {
        Text,
        Number,
    } _kind;
    std::string _text;
    double _number = 0.0;
};

/**
 * Fixed-width table writer shared by every figure generator so data
 * rows, summary rows, and headers stay aligned (bench tables used to
 * hand-roll widths and drift — fig16's geomean rows were 24 wide
 * under an 18-wide header that named only one of four columns).
 */
class TableWriter
{
  public:
    TableWriter(std::ostream &os, std::vector<TableColumn> columns);

    /** Print the header row (every column's name). */
    void header() const;

    /**
     * Print one row. Fewer cells than columns leaves the tail empty;
     * more is fatal(). Numeric cells use their column's digits.
     */
    void row(std::initializer_list<TableCell> cells) const;

    /** row() for cell lists built at run time (e.g. one column per
     *  registered provider). */
    void row(const std::vector<TableCell> &cells) const;

  private:
    std::ostream &_os;
    std::vector<TableColumn> _columns;
};

/**
 * Labelled ratio series for geomean summaries. geomean() panic()s on
 * a non-positive sample with only the bare value; this wrapper checks
 * each sample as it is added and fatal()s naming the offending job
 * (kernel/variant) and metric instead, so a zero-cycle or zero-energy
 * run is diagnosable from the report output.
 */
class GeomeanSeries
{
  public:
    /** @param what Metric description, e.g. "fig16 runtime ratio". */
    explicit GeomeanSeries(std::string what);

    /** Record @a value for job @a label; fatal() unless 0 < value < inf. */
    void add(const std::string &label, double value);

    /** Geometric mean of all samples. */
    double value() const;

    std::size_t count() const { return _values.size(); }

  private:
    std::string _what;
    std::vector<double> _values;
};

} // namespace regless::sim

#endif // REGLESS_SIM_EXPERIMENT_HH
