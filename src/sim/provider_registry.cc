#include "sim/provider_registry.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compiler/compiler.hh"
#include "regfile/baseline_rf.hh"
#include "regfile/compiler_rf_cache.hh"
#include "regfile/regdem.hh"
#include "regfile/rf_hierarchy.hh"
#include "regfile/rf_virtualization.hh"
#include "regless/regless_provider.hh"

namespace regless::sim
{

namespace
{

using Provider = std::unique_ptr<regfile::RegisterProvider>;

/* ---------------- factories ---------------- */

Provider
makeBaseline(const compiler::CompiledKernel &, mem::MemorySystem &,
             const GpuConfig &, WarpId, unsigned)
{
    return std::make_unique<regfile::BaselineRf>();
}

Provider
makeRfh(const compiler::CompiledKernel &ck, mem::MemorySystem &,
        const GpuConfig &config, WarpId, unsigned)
{
    if (config.sm.scheduler != arch::SchedulerPolicy::TwoLevel)
        warn("RFH without the two-level scheduler is not the "
             "published technique");
    return std::make_unique<regfile::RfHierarchy>(ck, config.rfh);
}

Provider
makeRfv(const compiler::CompiledKernel &ck, mem::MemorySystem &,
        const GpuConfig &config, WarpId, unsigned)
{
    return std::make_unique<regfile::RfVirtualization>(
        ck, config.rfvPhysEntries);
}

Provider
makeRegless(const compiler::CompiledKernel &ck, mem::MemorySystem &mem,
            const GpuConfig &config, WarpId warp_base,
            unsigned warp_count)
{
    return std::make_unique<staging::ReglessProvider>(
        ck, mem, config.regless, config.sm.numWarps, warp_base,
        warp_count);
}

Provider
makeReglessNoCompressor(const compiler::CompiledKernel &ck,
                        mem::MemorySystem &mem, const GpuConfig &config,
                        WarpId warp_base, unsigned warp_count)
{
    // Force the ablation even for configs built without forProvider().
    staging::ReglessConfig rcfg = config.regless;
    rcfg.compressorEnabled = false;
    return std::make_unique<staging::ReglessProvider>(
        ck, mem, rcfg, config.sm.numWarps, warp_base, warp_count);
}

Provider
makeCompilerRfCache(const compiler::CompiledKernel &ck,
                    mem::MemorySystem &, const GpuConfig &config,
                    WarpId, unsigned)
{
    return std::make_unique<regfile::CompilerRfCache>(ck,
                                                      config.rfCache);
}

Provider
makeRegDem(const compiler::CompiledKernel &ck, mem::MemorySystem &mem,
           const GpuConfig &config, WarpId, unsigned)
{
    return std::make_unique<regfile::RegDemProvider>(ck, mem,
                                                     config.regdem);
}

/* ---------------- config tuning ---------------- */

void
tuneReglessNoCompressor(GpuConfig &config)
{
    config.regless.compressorEnabled = false;
}

/* ---------------- stat collection ---------------- */

void
collectBaseline(regfile::RegisterProvider &provider, RunStats &stats)
{
    auto &rf = static_cast<regfile::BaselineRf &>(provider);
    stats.rfReads = rf.stats().counter("reads").value();
    stats.rfWrites = rf.stats().counter("writes").value();
    stats.meanWorkingSetBytes = rf.meanWorkingSetBytes();
    rf.flushSeries();
    stats.backingSeries = rf.accessSeries().points();
}

void
collectRfh(regfile::RegisterProvider &provider, RunStats &stats)
{
    auto &rfh = static_cast<regfile::RfHierarchy &>(provider);
    auto &s = rfh.stats();
    stats.lrfAccesses = s.counter("lrf_reads").value() +
                        s.counter("lrf_writes").value();
    stats.orfAccesses = s.counter("orf_reads").value() +
                        s.counter("orf_writes").value();
    stats.mrfAccesses = s.counter("mrf_reads").value() +
                        s.counter("mrf_writes").value();
    rfh.mrfSeries().flush();
    stats.backingSeries = rfh.mrfSeries().points();
}

void
collectRfv(regfile::RegisterProvider &provider, RunStats &stats)
{
    auto &rfv = static_cast<regfile::RfVirtualization &>(provider);
    stats.rfReads = rfv.stats().counter("reads").value();
    stats.rfWrites = rfv.stats().counter("writes").value();
    stats.renameLookups =
        rfv.stats().counter("rename_lookups").value();
}

void
collectRegless(regfile::RegisterProvider &provider, RunStats &stats)
{
    auto &rp = static_cast<staging::ReglessProvider &>(provider);
    stats.osuAccesses = rp.osuAccesses();
    stats.compressorAccesses = rp.compressorAccesses();
    std::uint64_t tags = 0;
    for (unsigned s = 0; s < rp.numShards(); ++s)
        tags += rp.osu(s).stats().counter("tag_lookups").value();
    stats.osuTagLookups = tags;
    stats.preloadSrcOsu = rp.preloadsFrom("preload_src_osu");
    stats.preloadSrcCompressor =
        rp.preloadsFrom("preload_src_compressor");
    stats.preloadSrcL1 = rp.preloadsFrom("preload_src_l1");
    stats.preloadSrcL2Dram = rp.preloadsFrom("preload_src_l2dram");
    stats.l1PreloadReqs = rp.l1Requests("l1_preload_reqs");
    stats.l1StoreReqs = rp.l1Requests("l1_store_reqs");
    stats.l1InvalidateReqs = rp.l1Requests("l1_invalidate_reqs");
    stats.metadataInsns = rp.l1Requests("metadata_insns");
    stats.osuGatedBankCycles = rp.preloadsFrom("gated_bank_cycles");
    stats.regionPreloadsMean = rp.meanRegionPreloads();
    stats.regionLiveMean = rp.meanRegionLive();
    stats.regionLiveStddev = rp.stddevRegionLive();
    stats.regionCyclesMean = rp.meanRegionCycles();
    stats.regionInsnsMean = rp.meanRegionInsns();
    stats.backingSeries = rp.l1SeriesPoints();
    stats.osuBankConflicts =
        rp.stats().counter("osu_bank_conflicts").value();
    // Compressed line flushes are L1 stores too (Figure 18).
    for (unsigned s = 0; s < rp.numShards(); ++s) {
        if (auto *comp = rp.compressor(s)) {
            stats.l1StoreReqs +=
                comp->stats().counter("line_flushes").value();
            stats.compressorMatches +=
                comp->stats().counter("matches").value();
            stats.compressorIncompressible +=
                comp->stats().counter("incompressible").value();
            stats.compressorStaticHits +=
                comp->stats().counter("static_hits").value();
            stats.compressorStaticUnsound +=
                comp->stats().counter("static_unsound").value();
        }
    }
}

void
collectCompilerRfCache(regfile::RegisterProvider &provider,
                       RunStats &stats)
{
    auto &rc = static_cast<regfile::CompilerRfCache &>(provider);
    auto &s = rc.stats();
    stats.rfCacheHits = s.counter("cache_hits").value();
    stats.rfCacheMisses = s.counter("cache_misses").value();
    // The backing MRF absorbs whatever the cache did not.
    stats.rfReads = s.counter("mrf_reads").value();
    stats.rfWrites = s.counter("mrf_writes").value();
}

void
collectRegDem(regfile::RegisterProvider &provider, RunStats &stats)
{
    auto &rd = static_cast<regfile::RegDemProvider &>(provider);
    auto &s = rd.stats();
    stats.rfReads = s.counter("rf_reads").value();
    stats.rfWrites = s.counter("rf_writes").value();
    stats.fillLoads = s.counter("fill_loads").value();
    stats.spillStores = s.counter("spill_stores").value();
}

/* ---------------- energy models ---------------- */

void
energyBaseline(const RunStats &stats, const GpuConfig &config,
               energy::EnergyBreakdown &out)
{
    const energy::EnergyConfig &e = config.energy;
    out.regDynamic =
        static_cast<double>(stats.rfReads + stats.rfWrites) *
        e.accessEnergy(config.baselineRfEntries);
    out.regStatic = e.staticPower(config.baselineRfEntries) *
                    static_cast<double>(stats.cycles);
}

void
energyRfh(const RunStats &stats, const GpuConfig &config,
          energy::EnergyBreakdown &out)
{
    const energy::EnergyConfig &e = config.energy;
    // The MRF stays full size; short-lived values hit the small
    // levels instead.
    out.regDynamic =
        static_cast<double>(stats.lrfAccesses) * e.lrfAccess +
        static_cast<double>(stats.orfAccesses) * e.orfAccess +
        static_cast<double>(stats.mrfAccesses) *
            e.accessEnergy(config.baselineRfEntries);
    out.regStatic = e.staticPower(config.baselineRfEntries) *
                    static_cast<double>(stats.cycles);
}

void
energyRfv(const RunStats &stats, const GpuConfig &config,
          energy::EnergyBreakdown &out)
{
    const energy::EnergyConfig &e = config.energy;
    out.regDynamic =
        static_cast<double>(stats.rfReads + stats.rfWrites) *
            e.accessEnergy(config.rfvPhysEntries) +
        static_cast<double>(stats.renameLookups) * e.renameAccess;
    out.regStatic = e.staticPower(config.rfvPhysEntries) *
                    static_cast<double>(stats.cycles);
}

void
energyRegless(const RunStats &stats, const GpuConfig &config,
              energy::EnergyBreakdown &out)
{
    const energy::EnergyConfig &e = config.energy;
    const double cycles = static_cast<double>(stats.cycles);
    out.regDynamic =
        (static_cast<double>(stats.osuAccesses) *
             e.accessEnergy(config.regless.osuEntriesPerSm) +
         static_cast<double>(stats.osuTagLookups) * e.tagAccess) *
        e.osuOverheadFactor;
    out.regStatic = e.staticPower(config.regless.osuEntriesPerSm) *
                    e.osuOverheadFactor * cycles;
    // Static footprint gating (DESIGN.md §14): banks proven empty by
    // the per-region bound leak nothing while gated. The counter sums
    // gated banks over cycles and shards, so the discount is its share
    // of the total bank-cycles.
    if (config.regless.bankGating && stats.cycles > 0) {
        const double bank_cycles =
            cycles * static_cast<double>(config.regless.numShards) *
            static_cast<double>(staging::osuBanks);
        const double gated_frac = std::min(
            1.0,
            static_cast<double>(stats.osuGatedBankCycles) / bank_cycles);
        out.regStatic *= 1.0 - gated_frac;
    }
    out.compressor = static_cast<double>(stats.compressorAccesses) *
                         e.compressorAccess +
                     e.compressorStaticPerCycle * cycles;
}

void
energyReglessNoCompressor(const RunStats &stats,
                          const GpuConfig &config,
                          energy::EnergyBreakdown &out)
{
    energyRegless(stats, config, out);
    out.compressor = 0.0; // the ablation has no compressor at all
}

unsigned
rfCacheEntries(const GpuConfig &config)
{
    return config.rfCache.cacheEntriesPerWarp * config.sm.numWarps;
}

void
energyCompilerRfCache(const RunStats &stats, const GpuConfig &config,
                      energy::EnergyBreakdown &out)
{
    const energy::EnergyConfig &e = config.energy;
    // Hits and miss-refills touch the small cache; everything the
    // cache did not absorb pays full-MRF access energy.
    out.regDynamic =
        static_cast<double>(stats.rfCacheHits + stats.rfCacheMisses) *
            e.accessEnergy(rfCacheEntries(config)) +
        static_cast<double>(stats.rfReads + stats.rfWrites) *
            e.accessEnergy(config.baselineRfEntries);
    out.regStatic = (e.staticPower(config.baselineRfEntries) +
                     e.staticPower(rfCacheEntries(config))) *
                    static_cast<double>(stats.cycles);
}

unsigned
regdemEntries(const GpuConfig &config)
{
    return std::min(config.baselineRfEntries,
                    config.regdem.hotRegsPerWarp *
                        config.sm.numWarps);
}

void
energyRegDem(const RunStats &stats, const GpuConfig &config,
             energy::EnergyBreakdown &out)
{
    const energy::EnergyConfig &e = config.energy;
    // Only the shrunken hot file remains; spill/fill traffic is real
    // memory traffic and is charged in the memory term.
    out.regDynamic =
        static_cast<double>(stats.rfReads + stats.rfWrites) *
        e.accessEnergy(regdemEntries(config));
    out.regStatic = e.staticPower(regdemEntries(config)) *
                    static_cast<double>(stats.cycles);
}

/* ---------------- area models ---------------- */

energy::AreaBreakdown
areaBaselineRf(const GpuConfig &config)
{
    return config.area.plainRf(config.baselineRfEntries);
}

energy::AreaBreakdown
areaRfh(const GpuConfig &config)
{
    // The full-size MRF dominates; LRF/ORF storage rides on top.
    energy::AreaBreakdown a =
        config.area.plainRf(config.baselineRfEntries);
    energy::AreaBreakdown small = config.area.plainRf(
        config.rfh.orfEntriesPerWarp * config.sm.numWarps);
    a.storage += small.storage;
    a.logic += small.logic;
    return a;
}

energy::AreaBreakdown
areaRfv(const GpuConfig &config)
{
    return config.area.plainRf(config.rfvPhysEntries);
}

energy::AreaBreakdown
areaRegless(const GpuConfig &config)
{
    return config.area.regless(config.regless.osuEntriesPerSm,
                               /*with_compressor=*/true);
}

energy::AreaBreakdown
areaReglessNoCompressor(const GpuConfig &config)
{
    return config.area.regless(config.regless.osuEntriesPerSm,
                               /*with_compressor=*/false);
}

energy::AreaBreakdown
areaCompilerRfCache(const GpuConfig &config)
{
    energy::AreaBreakdown a =
        config.area.plainRf(config.baselineRfEntries);
    energy::AreaBreakdown cache =
        config.area.plainRf(rfCacheEntries(config));
    a.storage += cache.storage;
    a.logic += cache.logic;
    return a;
}

energy::AreaBreakdown
areaRegDem(const GpuConfig &config)
{
    return config.area.plainRf(regdemEntries(config));
}

const std::array<ProviderDescriptor, kNumProviderKinds> registry{{
    {ProviderKind::Baseline, "baseline", "Baseline RF",
     arch::SchedulerPolicy::Gto, /*fixedArchitecturalRf=*/true,
     makeBaseline, nullptr, collectBaseline, energyBaseline,
     areaBaselineRf},
    {ProviderKind::Rfh, "rfh", "RF hierarchy",
     arch::SchedulerPolicy::TwoLevel, /*fixedArchitecturalRf=*/true,
     makeRfh, nullptr, collectRfh, energyRfh, areaRfh},
    {ProviderKind::Rfv, "rfv", "RF virtualization",
     arch::SchedulerPolicy::TwoLevel, /*fixedArchitecturalRf=*/false,
     makeRfv, nullptr, collectRfv, energyRfv, areaRfv},
    {ProviderKind::Regless, "regless", "RegLess",
     arch::SchedulerPolicy::Gto, /*fixedArchitecturalRf=*/false,
     makeRegless, nullptr, collectRegless, energyRegless, areaRegless},
    {ProviderKind::ReglessNoCompressor, "regless_nocomp",
     "RegLess (no compressor)", arch::SchedulerPolicy::Gto,
     /*fixedArchitecturalRf=*/false, makeReglessNoCompressor,
     tuneReglessNoCompressor, collectRegless,
     energyReglessNoCompressor, areaReglessNoCompressor},
    {ProviderKind::CompilerRfCache, "rfcache", "Compiler RF cache",
     arch::SchedulerPolicy::Gto, /*fixedArchitecturalRf=*/true,
     makeCompilerRfCache, nullptr, collectCompilerRfCache,
     energyCompilerRfCache, areaCompilerRfCache},
    {ProviderKind::RegDem, "regdem", "RegDem spilling",
     arch::SchedulerPolicy::Gto, /*fixedArchitecturalRf=*/true,
     makeRegDem, nullptr, collectRegDem, energyRegDem, areaRegDem},
}};

} // namespace

const std::array<ProviderDescriptor, kNumProviderKinds> &
providerRegistry()
{
    return registry;
}

const ProviderDescriptor &
providerDescriptor(ProviderKind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    if (index >= registry.size() ||
        registry[index].kind != kind) {
        fatal("provider kind ", index, " is not registered");
    }
    return registry[index];
}

const std::array<ProviderKind, kNumProviderKinds> &
allProviderKinds()
{
    static const std::array<ProviderKind, kNumProviderKinds> kinds =
        [] {
            std::array<ProviderKind, kNumProviderKinds> out{};
            for (std::size_t i = 0; i < registry.size(); ++i)
                out[i] = registry[i].kind;
            return out;
        }();
    return kinds;
}

const char *
providerName(ProviderKind kind)
{
    return providerDescriptor(kind).name;
}

bool
tryProviderFromName(const std::string &name, ProviderKind &out)
{
    for (const ProviderDescriptor &d : registry) {
        if (name == d.name) {
            out = d.kind;
            return true;
        }
    }
    return false;
}

ProviderKind
providerFromName(const std::string &name)
{
    ProviderKind kind;
    if (!tryProviderFromName(name, kind))
        fatal("unknown provider name '", name, "'");
    return kind;
}

GpuConfig
GpuConfig::forProvider(ProviderKind kind)
{
    const ProviderDescriptor &d = providerDescriptor(kind);
    GpuConfig config;
    config.provider = kind;
    // The scheduler default is part of each published technique
    // ([11] integrally; [19] as evaluated in the paper, Fig. 16);
    // everything else uses GTO (Table 1).
    config.sm.scheduler = d.scheduler;
    if (d.tuneConfig)
        d.tuneConfig(config);
    return config;
}

} // namespace regless::sim
