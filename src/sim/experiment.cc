#include "sim/experiment.hh"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace regless::sim
{

RunStats
runKernel(const ir::Kernel &kernel, ProviderKind kind)
{
    return runKernel(kernel, GpuConfig::forProvider(kind));
}

RunStats
runKernel(const ir::Kernel &kernel, const GpuConfig &config)
{
    GpuSimulator simulator(kernel, config);
    return simulator.run();
}

RunStats
runRegless(const ir::Kernel &kernel, unsigned osu_entries,
           bool compressor)
{
    GpuConfig config = GpuConfig::forProvider(
        compressor ? ProviderKind::Regless
                   : ProviderKind::ReglessNoCompressor);
    config.setOsuCapacity(osu_entries);
    return runKernel(kernel, config);
}

std::string
cell(const std::string &text, unsigned width)
{
    std::ostringstream oss;
    oss << std::left << std::setw(width) << text;
    return oss.str();
}

std::string
cell(double value, unsigned width, unsigned digits)
{
    std::ostringstream oss;
    oss << std::left << std::setw(width) << std::fixed
        << std::setprecision(digits) << value;
    return oss.str();
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "# " << title << "\n";
    std::cout << "# Reproduces: " << paper_ref
              << " (RegLess, MICRO-50 2017)\n";
    std::cout << "#" << std::string(70, '-') << "\n";
}

} // namespace regless::sim
