#include "sim/experiment.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"

namespace regless::sim
{

RunStats
runKernel(const ir::Kernel &kernel, ProviderKind kind)
{
    return runKernel(kernel, GpuConfig::forProvider(kind));
}

RunStats
runKernel(const ir::Kernel &kernel, const GpuConfig &config)
{
    GpuSimulator simulator(kernel, config);
    return simulator.run();
}

RunStats
runRegless(const ir::Kernel &kernel, unsigned osu_entries,
           bool compressor)
{
    GpuConfig config = GpuConfig::forProvider(
        compressor ? ProviderKind::Regless
                   : ProviderKind::ReglessNoCompressor);
    config.setOsuCapacity(osu_entries);
    return runKernel(kernel, config);
}

std::string
cell(const std::string &text, unsigned width)
{
    std::ostringstream oss;
    oss << std::left << std::setw(width) << text;
    return oss.str();
}

std::string
cell(double value, unsigned width, unsigned digits)
{
    std::ostringstream oss;
    oss << std::left << std::setw(width) << std::fixed
        << std::setprecision(digits) << value;
    return oss.str();
}

void
banner(std::ostream &os, const std::string &title,
       const std::string &paper_ref)
{
    os << "# " << title << "\n";
    os << "# Reproduces: " << paper_ref
       << " (RegLess, MICRO-50 2017)\n";
    os << "#" << std::string(70, '-') << "\n";
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    banner(std::cout, title, paper_ref);
}

TableWriter::TableWriter(std::ostream &os,
                         std::vector<TableColumn> columns)
    : _os(os), _columns(std::move(columns))
{
}

void
TableWriter::header() const
{
    for (const TableColumn &column : _columns)
        _os << cell(column.header, column.width);
    _os << "\n";
}

void
TableWriter::row(std::initializer_list<TableCell> cells) const
{
    row(std::vector<TableCell>(cells));
}

void
TableWriter::row(const std::vector<TableCell> &cells) const
{
    if (cells.size() > _columns.size())
        fatal("table row has ", cells.size(), " cells but only ",
              _columns.size(), " columns");
    std::size_t i = 0;
    for (const TableCell &c : cells) {
        const TableColumn &column = _columns[i++];
        if (c.isText())
            _os << cell(c.text(), column.width);
        else
            _os << cell(c.number(), column.width, column.digits);
    }
    _os << "\n";
}

GeomeanSeries::GeomeanSeries(std::string what) : _what(std::move(what))
{
}

void
GeomeanSeries::add(const std::string &label, double value)
{
    if (!(value > 0.0) || !std::isfinite(value))
        fatal(_what, ": job '", label, "' produced degenerate value ",
              value,
              " — a zero-cycle or zero-energy run; rerun with"
              " --no-cache or delete its cache entry to re-simulate");
    _values.push_back(value);
}

double
GeomeanSeries::value() const
{
    return geomean(_values);
}

} // namespace regless::sim
