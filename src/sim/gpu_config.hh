/**
 * @file
 * Top-level simulation configuration: which operand-storage design to
 * run and all sub-component parameters (Table 1 defaults).
 */

#ifndef REGLESS_SIM_GPU_CONFIG_HH
#define REGLESS_SIM_GPU_CONFIG_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <array>

#include "arch/sm.hh"
#include "common/fault_injector.hh"
#include "compiler/config.hh"
#include "energy/area_model.hh"
#include "energy/energy_model.hh"
#include "mem/memory_system.hh"
#include "regfile/compiler_rf_cache.hh"
#include "regfile/regdem.hh"
#include "regfile/rf_hierarchy.hh"
#include "regfile/tenant_arbiter.hh"
#include "regless/regless_config.hh"

namespace regless::sim
{

/** Operand-storage designs compared in the evaluation. */
enum class ProviderKind
{
    Baseline,            ///< full register file (Figure 1a)
    Rfh,                 ///< register file hierarchy [11] (Figure 1b)
    Rfv,                 ///< register file virtualization [19] (1c)
    Regless,             ///< operand staging (Figure 1e)
    ReglessNoCompressor, ///< Figure 16 ablation
    CompilerRfCache,     ///< compiler-assisted RF cache (2310.17501)
    RegDem,              ///< register demotion / spilling (1907.02894)
};

/**
 * Number of registered providers. Keep in sync with ProviderKind; the
 * registry has a static_assert against its descriptor table.
 */
inline constexpr std::size_t kNumProviderKinds = 7;

/** Every registered provider, in canonical (enum) order. */
const std::array<ProviderKind, kNumProviderKinds> &allProviderKinds();

/** Human-readable provider name (from the provider registry). */
const char *providerName(ProviderKind kind);

/** Inverse of providerName(); fatal() on an unknown name. */
ProviderKind providerFromName(const std::string &name);

/** providerFromName() that reports failure instead of dying. */
bool tryProviderFromName(const std::string &name, ProviderKind &out);

/**
 * Optional Chrome-trace emission (DESIGN.md section 10). Part of the
 * fingerprint, so traced and untraced runs never share cache entries.
 */
struct TraceConfig
{
    /** Emit per-warp stall/issue timeline + CM activation events. */
    bool enabled = false;
    /** Output path; multi-SM runs append ".smN" per instance. */
    std::string path = "regless_trace.json";
};

/** One co-resident kernel of a multi-tenant SM run. */
struct TenantWorkload
{
    /** Rodinia workload name. */
    std::string kernel;
    /**
     * QoS class: 0 = best-effort (throughput), > 0 = latency-
     * sensitive. PriorityReserve admits priority tenants into the
     * reserved OSU lines; the QoS controller preempts best-effort
     * tenants on behalf of priority ones.
     */
    unsigned priority = 0;
};

/**
 * Multi-tenant SM configuration (DESIGN.md §16). With fewer than two
 * workloads (the default) the simulator runs the classic single-
 * kernel path, bit-identical to pre-tenant builds.
 */
struct TenantConfig
{
    /** Co-resident kernels, one per tenant, in tenant-id order. */
    std::vector<TenantWorkload> workloads;

    /** How tenants share the OSU capacity. */
    regfile::CapacityPolicy policy =
        regfile::CapacityPolicy::FreeForAll;

    /** StaticQuota lines per tenant (0 = total / tenants). */
    unsigned quotaLines = 0;

    /** PriorityReserve: fraction held for priority tenants. */
    double reserveFrac = 0.25;

    /**
     * Region-boundary QoS preemption: while any latency-sensitive
     * tenant is unfinished, best-effort tenants run only qosShare of
     * every qosInterval and are suspended (staged state drained and
     * handed off) for the rest.
     */
    bool qosPreemption = false;
    Cycle qosInterval = 20000;
    double qosShare = 0.5;

    /**
     * Per-tenant address-space strides. Tenant t's data segment
     * starts at sm.dataBase + t * dataStride and its shared segment
     * at sm.sharedBase + t * sharedStride, and the synthetic value
     * generator is translated per segment — so each tenant reads the
     * same values at the same kernel-relative addresses as a solo
     * run (the memory-image parity the preemption tests check).
     */
    Addr dataStride = 0x0400'0000;
    Addr sharedStride = 0x1000'0000;
};

/** Full simulator configuration. */
struct GpuConfig
{
    ProviderKind provider = ProviderKind::Baseline;
    arch::SmConfig sm;
    mem::MemConfig mem;
    compiler::CompilerConfig compiler;
    staging::ReglessConfig regless;
    energy::EnergyConfig energy;
    energy::AreaConfig area;

    /** Baseline register-file entries per SM (2048 = 256 KB). */
    unsigned baselineRfEntries = 2048;

    /**
     * Model register-file occupancy limits: providers with a fixed
     * architectural file (baseline, RFH) can only keep
     * rfEntries / kernelRegs warps resident. RegLess and RFV
     * oversubscribe (the paper's §7 observation that RegLess needs no
     * design change to do so). Off by default: Table 1 kernels fit.
     */
    bool limitOccupancyByRf = false;

    /** RFV physical file entries (half the baseline). */
    unsigned rfvPhysEntries = 1024;

    regfile::RfHierarchy::Params rfh;

    /** Compiler-assisted RF-cache parameters (DESIGN.md §13.2). */
    regfile::CompilerRfCache::Params rfCache;

    /** RegDem demotion parameters (DESIGN.md §13.3). */
    regfile::RegDemProvider::Params regdem;

    /**
     * Deterministic fault-injection plan (common/fault_injector.hh).
     * Part of the fingerprint: an injected failure is an ordinary,
     * cacheable simulation point. Kind::None (the default) injects
     * nothing and adds no per-cycle work.
     */
    FaultPlan faults;

    /** Stall/activation timeline emission (off by default). */
    TraceConfig trace;

    /** Multi-tenant SM operation (inactive below two workloads). */
    TenantConfig tenants;

    /**
     * Canonical configuration for @a kind. Scheduler policy and any
     * per-provider tuning come from the provider registry descriptor.
     */
    static GpuConfig forProvider(ProviderKind kind);

    /**
     * Set the RegLess OSU capacity and derive matching compiler
     * constraints (regions must fit in the smaller banks).
     */
    void setOsuCapacity(unsigned entries);
};

/**
 * Canonical key/value dump of every field of @a config and its
 * sub-configs, in a fixed order with full-precision numbers. Two
 * configs produce the same dump iff every field compares equal, so
 * the dump (and the fingerprint derived from it) is a valid cache
 * key. The implementation destructures each struct with structured
 * bindings, so adding a field anywhere breaks the build until the
 * dump learns about it — new fields cannot silently escape.
 */
std::vector<std::pair<std::string, std::string>>
configKeyValues(const GpuConfig &config);

/** The dump as one "key=value\n" text block (cache-key material). */
std::string configCanonicalText(const GpuConfig &config);

/**
 * Canonical text of the compiler sub-config alone. Compiled regions —
 * and hence lint verdicts — depend on nothing else, so this is the
 * memo key for lint-once-per-kernel gating.
 */
std::string compilerConfigText(const compiler::CompilerConfig &config);

/** FNV-1a 64-bit hash of configCanonicalText(). */
std::uint64_t configFingerprint(const GpuConfig &config);

} // namespace regless::sim

#endif // REGLESS_SIM_GPU_CONFIG_HH
