/**
 * @file
 * Top-level simulation configuration: which operand-storage design to
 * run and all sub-component parameters (Table 1 defaults).
 */

#ifndef REGLESS_SIM_GPU_CONFIG_HH
#define REGLESS_SIM_GPU_CONFIG_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <array>

#include "arch/sm.hh"
#include "common/fault_injector.hh"
#include "compiler/config.hh"
#include "energy/area_model.hh"
#include "energy/energy_model.hh"
#include "mem/memory_system.hh"
#include "regfile/compiler_rf_cache.hh"
#include "regfile/regdem.hh"
#include "regfile/rf_hierarchy.hh"
#include "regless/regless_config.hh"

namespace regless::sim
{

/** Operand-storage designs compared in the evaluation. */
enum class ProviderKind
{
    Baseline,            ///< full register file (Figure 1a)
    Rfh,                 ///< register file hierarchy [11] (Figure 1b)
    Rfv,                 ///< register file virtualization [19] (1c)
    Regless,             ///< operand staging (Figure 1e)
    ReglessNoCompressor, ///< Figure 16 ablation
    CompilerRfCache,     ///< compiler-assisted RF cache (2310.17501)
    RegDem,              ///< register demotion / spilling (1907.02894)
};

/**
 * Number of registered providers. Keep in sync with ProviderKind; the
 * registry has a static_assert against its descriptor table.
 */
inline constexpr std::size_t kNumProviderKinds = 7;

/** Every registered provider, in canonical (enum) order. */
const std::array<ProviderKind, kNumProviderKinds> &allProviderKinds();

/** Human-readable provider name (from the provider registry). */
const char *providerName(ProviderKind kind);

/** Inverse of providerName(); fatal() on an unknown name. */
ProviderKind providerFromName(const std::string &name);

/** providerFromName() that reports failure instead of dying. */
bool tryProviderFromName(const std::string &name, ProviderKind &out);

/**
 * Optional Chrome-trace emission (DESIGN.md section 10). Part of the
 * fingerprint, so traced and untraced runs never share cache entries.
 */
struct TraceConfig
{
    /** Emit per-warp stall/issue timeline + CM activation events. */
    bool enabled = false;
    /** Output path; multi-SM runs append ".smN" per instance. */
    std::string path = "regless_trace.json";
};

/** Full simulator configuration. */
struct GpuConfig
{
    ProviderKind provider = ProviderKind::Baseline;
    arch::SmConfig sm;
    mem::MemConfig mem;
    compiler::CompilerConfig compiler;
    staging::ReglessConfig regless;
    energy::EnergyConfig energy;
    energy::AreaConfig area;

    /** Baseline register-file entries per SM (2048 = 256 KB). */
    unsigned baselineRfEntries = 2048;

    /**
     * Model register-file occupancy limits: providers with a fixed
     * architectural file (baseline, RFH) can only keep
     * rfEntries / kernelRegs warps resident. RegLess and RFV
     * oversubscribe (the paper's §7 observation that RegLess needs no
     * design change to do so). Off by default: Table 1 kernels fit.
     */
    bool limitOccupancyByRf = false;

    /** RFV physical file entries (half the baseline). */
    unsigned rfvPhysEntries = 1024;

    regfile::RfHierarchy::Params rfh;

    /** Compiler-assisted RF-cache parameters (DESIGN.md §13.2). */
    regfile::CompilerRfCache::Params rfCache;

    /** RegDem demotion parameters (DESIGN.md §13.3). */
    regfile::RegDemProvider::Params regdem;

    /**
     * Deterministic fault-injection plan (common/fault_injector.hh).
     * Part of the fingerprint: an injected failure is an ordinary,
     * cacheable simulation point. Kind::None (the default) injects
     * nothing and adds no per-cycle work.
     */
    FaultPlan faults;

    /** Stall/activation timeline emission (off by default). */
    TraceConfig trace;

    /**
     * Canonical configuration for @a kind. Scheduler policy and any
     * per-provider tuning come from the provider registry descriptor.
     */
    static GpuConfig forProvider(ProviderKind kind);

    /**
     * Set the RegLess OSU capacity and derive matching compiler
     * constraints (regions must fit in the smaller banks).
     */
    void setOsuCapacity(unsigned entries);
};

/**
 * Canonical key/value dump of every field of @a config and its
 * sub-configs, in a fixed order with full-precision numbers. Two
 * configs produce the same dump iff every field compares equal, so
 * the dump (and the fingerprint derived from it) is a valid cache
 * key. The implementation destructures each struct with structured
 * bindings, so adding a field anywhere breaks the build until the
 * dump learns about it — new fields cannot silently escape.
 */
std::vector<std::pair<std::string, std::string>>
configKeyValues(const GpuConfig &config);

/** The dump as one "key=value\n" text block (cache-key material). */
std::string configCanonicalText(const GpuConfig &config);

/**
 * Canonical text of the compiler sub-config alone. Compiled regions —
 * and hence lint verdicts — depend on nothing else, so this is the
 * memo key for lint-once-per-kernel gating.
 */
std::string compilerConfigText(const compiler::CompilerConfig &config);

/** FNV-1a 64-bit hash of configCanonicalText(). */
std::uint64_t configFingerprint(const GpuConfig &config);

} // namespace regless::sim

#endif // REGLESS_SIM_GPU_CONFIG_HH
