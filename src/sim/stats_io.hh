/**
 * @file
 * Machine-readable export of run results: RunStats as JSON, for
 * downstream plotting and regression tracking. Hand-rolled writer (no
 * dependency); the schema is flat and stable.
 */

#ifndef REGLESS_SIM_STATS_IO_HH
#define REGLESS_SIM_STATS_IO_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/run_stats.hh"

namespace regless::sim
{

/** Write @a stats as a single JSON object. */
void writeJson(std::ostream &os, const RunStats &stats);

/** Write several runs as a JSON array. */
void writeJson(std::ostream &os, const std::vector<RunStats> &runs);

/** JSON string of one run (convenience). */
std::string toJson(const RunStats &stats);

} // namespace regless::sim

#endif // REGLESS_SIM_STATS_IO_HH
