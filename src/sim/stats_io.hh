/**
 * @file
 * Machine-readable export/import of run results: RunStats as JSON, for
 * downstream plotting, regression tracking, and archiving sweeps.
 * Hand-rolled writer and reader (no dependency); the schema is flat
 * and stable, doubles are written with full precision, and
 * write -> read round-trips to an equal RunStats.
 */

#ifndef REGLESS_SIM_STATS_IO_HH
#define REGLESS_SIM_STATS_IO_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/run_stats.hh"

namespace regless::sim
{

/** Write @a stats as a single JSON object. */
void writeJson(std::ostream &os, const RunStats &stats);

/** Write several runs as a JSON array. */
void writeJson(std::ostream &os, const std::vector<RunStats> &runs);

/** JSON string of one run (convenience). */
std::string toJson(const RunStats &stats);

/**
 * Parse one RunStats from a JSON object produced by writeJson().
 * Unknown keys are ignored (schema may grow); missing keys leave the
 * field at its default. fatal() on malformed input.
 */
RunStats fromJson(const std::string &json);

/**
 * Non-fatal fromJson(): parse into @a out and return true, or return
 * false on malformed/truncated input (leaving @a out unspecified).
 * If @a error is non-null it receives the parse diagnostic. Used by
 * the experiment engine to treat corrupt cache entries as misses.
 */
bool tryFromJson(const std::string &json, RunStats &out,
                 std::string *error = nullptr);

/** Parse a JSON array of runs produced by writeJson(). */
std::vector<RunStats> runsFromJson(const std::string &json);

} // namespace regless::sim

#endif // REGLESS_SIM_STATS_IO_HH
