/**
 * @file
 * Machine-readable export/import of run results: RunStats as JSON, for
 * downstream plotting, regression tracking, and archiving sweeps.
 * Hand-rolled writer and reader (no dependency); the schema is flat
 * and stable, doubles are written with full precision, and
 * write -> read round-trips to an equal RunStats.
 *
 * The experiment engine's cache entries are JobRecords: a RunStats
 * plus outcome metadata (record_* keys) in the same flat object, so
 * failed and deadlocked jobs are memoized alongside successes and a
 * warm rerun never re-executes a known-bad point.
 */

#ifndef REGLESS_SIM_STATS_IO_HH
#define REGLESS_SIM_STATS_IO_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/run_stats.hh"

namespace regless::sim
{

/** Terminal outcome of one engine job. */
enum class JobStatus
{
    Ok,         ///< simulated to completion
    Failed,     ///< threw (config error, internal bug, wall timeout)
    Deadlocked, ///< forward-progress watchdog fired
    /**
     * Left for another shard of a partitioned run (`--shard i/n`):
     * neither simulated nor an error. Skipped results are never
     * written to the cache — the owning shard publishes the real
     * entry — and never counted as failures.
     */
    Skipped,
};

/** Name for a JobStatus ("ok", "failed", "deadlocked"). */
const char *jobStatusName(JobStatus status);

/** Parse a jobStatusName() string; false on unknown. */
bool tryJobStatusFromName(const std::string &name, JobStatus &out);

/**
 * One cache entry of the experiment engine: the run's outcome, its
 * stats (meaningful only when status == Ok), the error text and the
 * rendered DeadlockReport for failures, and how many attempts the
 * execution took (> 1 when a transient fault was retried).
 */
struct JobRecord
{
    /** Cache schema version the record was written under. */
    unsigned schema = 0;
    JobStatus status = JobStatus::Ok;
    RunStats stats;
    /** what() of the escaped exception (Failed / Deadlocked). */
    std::string error;
    /** Rendered DeadlockReport (Deadlocked only). */
    std::string deadlock;
    /** Execution attempts (retries + 1). */
    unsigned attempts = 1;
};

/** Write @a stats as a single JSON object. */
void writeJson(std::ostream &os, const RunStats &stats);

/** Write several runs as a JSON array. */
void writeJson(std::ostream &os, const std::vector<RunStats> &runs);

/** JSON string of one run (convenience). */
std::string toJson(const RunStats &stats);

/**
 * Parse one RunStats from a JSON object produced by writeJson().
 * Unknown keys are ignored (schema may grow); missing keys leave the
 * field at its default. fatal() on malformed input.
 */
RunStats fromJson(const std::string &json);

/**
 * Non-fatal fromJson(): parse into @a out and return true, or return
 * false on malformed/truncated input (leaving @a out unspecified).
 * If @a error is non-null it receives the parse diagnostic. Used by
 * the experiment engine to treat corrupt cache entries as misses.
 */
bool tryFromJson(const std::string &json, RunStats &out,
                 std::string *error = nullptr);

/** Parse a JSON array of runs produced by writeJson(). */
std::vector<RunStats> runsFromJson(const std::string &json);

/**
 * Write @a record as a single flat JSON object: the record_* outcome
 * keys first, then the RunStats fields of writeJson().
 */
void writeJson(std::ostream &os, const JobRecord &record);

/**
 * Parse a JobRecord produced by writeJson(JobRecord). Inputs without
 * the record_* keys — including bare RunStats objects written before
 * the watchdog existed — are rejected, so pre-watchdog cache entries
 * miss instead of masquerading as successful records.
 */
bool tryRecordFromJson(const std::string &json, JobRecord &out,
                       std::string *error = nullptr);

} // namespace regless::sim

#endif // REGLESS_SIM_STATS_IO_HH
