#include "sim/progress_monitor.hh"

#include <algorithm>
#include <limits>

namespace regless::sim
{

namespace
{

/** Cycles between wall-clock polls (a syscall per poll). */
constexpr Cycle wallCheckInterval = 1 << 16;

} // namespace

ProgressMonitor::ProgressMonitor(Cycle window, Cycle max_cycles,
                                 double wall_timeout_sec)
    : _window(window), _maxCycles(max_cycles),
      _wallTimeoutSec(wall_timeout_sec),
      _start(std::chrono::steady_clock::now())
{
}

ProgressMonitor::Verdict
ProgressMonitor::check(Cycle now, std::uint64_t progress)
{
    if (progress > _lastProgress) {
        _lastProgress = progress;
        _lastProgressCycle = now;
    }
    if (_maxCycles && now >= _maxCycles)
        return Verdict::CycleBudget;
    if (_window && now >= _lastProgressCycle + _window)
        return Verdict::Stalled;
    if (_wallTimeoutSec > 0.0 && now % wallCheckInterval == 0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - _start;
        if (elapsed.count() > _wallTimeoutSec)
            return Verdict::WallTimeout;
    }
    return Verdict::Ok;
}

void
ProgressMonitor::trackTenants(unsigned count)
{
    _tenants.assign(count, TenantTrack{});
}

bool
ProgressMonitor::checkTenant(unsigned t, Cycle now,
                             std::uint64_t progress, bool exempt)
{
    TenantTrack &track = _tenants[t];
    track.exempt = exempt;
    if (exempt || progress > track.lastProgress) {
        // Suspension/completion restarts the window: time parked by
        // the QoS controller never counts against the tenant.
        track.lastProgress = progress;
        track.lastProgressCycle = now;
        return false;
    }
    return _window != 0 && now >= track.lastProgressCycle + _window;
}

Cycle
ProgressMonitor::skipLimit(Cycle now) const
{
    Cycle limit = std::numeric_limits<Cycle>::max() / 2;
    if (_maxCycles)
        limit = std::min(limit, _maxCycles);
    if (_window) {
        limit = std::min(limit, _lastProgressCycle + _window);
        // Per-tenant windows trip on their own cycle too; exempt
        // tenants' windows restart at every check, so their bound
        // trails the skip target instead of clamping it.
        for (const TenantTrack &track : _tenants) {
            if (!track.exempt) {
                limit =
                    std::min(limit, track.lastProgressCycle + _window);
            }
        }
    }
    if (_wallTimeoutSec > 0.0) {
        // Land on wall-poll cycles so a skipped-over run still honours
        // its wall-clock budget (the poll cadence, not the verdict, is
        // what matters here).
        limit = std::min(
            limit, (now / wallCheckInterval + 1) * wallCheckInterval);
    }
    return limit;
}

const char *
ProgressMonitor::reason(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Ok:
        return "ok";
      case Verdict::Stalled:
        return "made no forward progress for a full watchdog window";
      case Verdict::CycleBudget:
        return "exceeded its hard cycle budget";
      case Verdict::WallTimeout:
        return "exceeded its wall-clock budget";
    }
    return "?";
}

} // namespace regless::sim
