#include "sim/experiment_engine.hh"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "compiler/staging_checker.hh"
#include "sim/gpu_simulator.hh"
#include "sim/multi_sm.hh"
#include "sim/stats_io.hh"
#include "workloads/rodinia.hh"

namespace regless::sim
{

namespace
{

/**
 * Bumped whenever RunStats gains fields the report layer consumes, so
 * cache entries written before the field existed (and which would
 * silently deserialize it to zero) miss instead of serving stale data.
 */
// v3: divergence-aware invalidating preloads changed compiled regions
// (and so every simulated trajectory).
constexpr unsigned kCacheSchemaVersion = 3;

/** Fingerprint of everything that determines a job's results. */
std::uint64_t
jobFingerprint(const SimJob &job)
{
    std::string text = configCanonicalText(job.config);
    text += "kernel=" + job.kernel + "\n";
    text += "sms=" + std::to_string(job.sms) + "\n";
    text += "schema=" + std::to_string(kCacheSchemaVersion) + "\n";
    std::uint64_t hash = 1469598103934665603ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::string
sanitize(const std::string &name)
{
    std::string out;
    for (char c : name) {
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    }
    return out;
}

} // namespace

std::string
ExperimentEngine::cacheFileName(const SimJob &job)
{
    std::ostringstream oss;
    oss << sanitize(job.kernel) << "-"
        << providerName(job.config.provider) << "-" << job.sms << "sm-"
        << std::hex << jobFingerprint(job) << ".json";
    return oss.str();
}

ExperimentEngine::ExperimentEngine() : ExperimentEngine(Options{}) {}

ExperimentEngine::ExperimentEngine(Options options)
    : _options(std::move(options))
{
}

ExperimentEngine::JobId
ExperimentEngine::submit(const SimJob &job)
{
    ++_requested;
    const std::string key = cacheFileName(job);
    auto [it, inserted] = _index.try_emplace(key, _entries.size());
    if (inserted)
        _entries.push_back(Entry{job, RunStats{}, false});
    return it->second;
}

ExperimentEngine::JobId
ExperimentEngine::submit(const std::string &name,
                         const GpuConfig &config)
{
    return submit(SimJob{name, config, 0, {}});
}

ExperimentEngine::JobId
ExperimentEngine::submit(const std::string &name, ProviderKind kind)
{
    return submit(SimJob{name, GpuConfig::forProvider(kind), 0, {}});
}

const RunStats &
ExperimentEngine::stats(JobId id)
{
    if (id >= _entries.size())
        panic("ExperimentEngine: unknown job id ", id);
    if (!_entries[id].done)
        flush();
    return _entries[id].stats;
}

RunStats
ExperimentEngine::execute(const SimJob &job)
{
    ir::Kernel kernel = job.builder
                            ? job.builder()
                            : workloads::makeRodinia(job.kernel);
    if (job.sms >= 1) {
        // Single-threaded inside: the engine already parallelizes
        // across jobs, and results are thread-invariant anyway.
        MultiSmSimulator multi(kernel, job.config, job.sms,
                               /*threads=*/1);
        return multi.run();
    }
    GpuSimulator simulator(kernel, job.config);
    return simulator.run();
}

bool
ExperimentEngine::loadFromCache(Entry &entry)
{
    if (_options.cacheDir.empty())
        return false;
    const std::filesystem::path path =
        std::filesystem::path(_options.cacheDir) /
        cacheFileName(entry.job);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();

    // A corrupt or truncated entry is a miss, never an error: the
    // point is re-simulated and the entry rewritten.
    RunStats parsed;
    if (!tryFromJson(buffer.str(), parsed))
        return false;
    // Entries are keyed by fingerprint, so a provider mismatch means
    // the file was tampered with or collided; treat it as a miss too.
    if (parsed.provider != entry.job.config.provider)
        return false;
    entry.stats = std::move(parsed);
    return true;
}

void
ExperimentEngine::storeToCache(const Entry &entry)
{
    if (_options.cacheDir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(_options.cacheDir, ec);
    if (ec) {
        warn("experiment cache: cannot create '", _options.cacheDir,
             "': ", ec.message());
        return;
    }
    const std::filesystem::path path =
        std::filesystem::path(_options.cacheDir) /
        cacheFileName(entry.job);
    const std::filesystem::path tmp =
        path.string() + ".tmp" + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("experiment cache: cannot write '", tmp.string(),
                 "'");
            return;
        }
        writeJson(out, entry.stats);
    }
    // Atomic publish so concurrent report runs never see a torn file.
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

void
ExperimentEngine::lintPending()
{
    for (Entry &entry : _entries) {
        if (entry.done)
            continue;
        const std::string key =
            entry.job.kernel + "|" +
            compilerConfigText(entry.job.config.compiler);
        if (!_linted.insert(key).second)
            continue;
        const ir::Kernel kernel =
            entry.job.builder ? entry.job.builder()
                              : workloads::makeRodinia(entry.job.kernel);
        const compiler::CompiledKernel ck =
            compiler::compile(kernel, entry.job.config.compiler);
        compiler::LintOptions opts;
        opts.checkLoadUse = entry.job.config.compiler.splitLoadUse;
        const std::vector<compiler::Finding> findings =
            compiler::lintCompiledKernel(ck, opts);
        if (compiler::hasErrors(findings)) {
            fatal("lint: kernel '", entry.job.kernel,
                  "' failed staging verification:\n",
                  compiler::formatFindings(findings));
        }
    }
}

void
ExperimentEngine::flush()
{
    // Lint before touching the cache: a cached result must never let a
    // kernel with unsound annotations slip past the gate.
    if (_options.lint)
        lintPending();

    std::vector<Entry *> to_run;
    for (Entry &entry : _entries) {
        if (entry.done)
            continue;
        if (loadFromCache(entry)) {
            entry.done = true;
            ++_cacheHits;
        } else {
            to_run.push_back(&entry);
        }
    }
    if (to_run.empty())
        return;

    const unsigned threads =
        _options.jobs
            ? _options.jobs
            : ThreadPool::defaultThreads(
                  static_cast<unsigned>(to_run.size()));
    ThreadPool pool(threads);
    pool.parallelFor(to_run.size(), [&](std::size_t i) {
        to_run[i]->stats = execute(to_run[i]->job);
    });

    // Publish serially: deterministic counters and no concurrent
    // filesystem writes.
    for (Entry *entry : to_run) {
        entry->done = true;
        ++_simulated;
        storeToCache(*entry);
    }
}

std::vector<RunStats>
ExperimentEngine::allStats()
{
    flush();
    std::vector<RunStats> out;
    out.reserve(_entries.size());
    for (const Entry &entry : _entries)
        out.push_back(entry.stats);
    return out;
}

} // namespace regless::sim
