#include "sim/experiment_engine.hh"

#include <cctype>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "compiler/staging_checker.hh"
#include "sim/gpu_simulator.hh"
#include "sim/multi_sm.hh"
#include "sim/stats_io.hh"
#include "workloads/rodinia.hh"

namespace regless::sim
{

namespace
{

std::string
sanitize(const std::string &name)
{
    std::string out;
    for (char c : name) {
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    }
    return out;
}

} // namespace

/** Fingerprint of everything that determines a job's results. */
std::uint64_t
ExperimentEngine::jobFingerprint(const SimJob &job)
{
    std::string text = configCanonicalText(job.config);
    text += "kernel=" + job.kernel + "\n";
    text += "sms=" + std::to_string(job.sms) + "\n";
    text += "schema=" + std::to_string(kJobCacheSchemaVersion) + "\n";
    std::uint64_t hash = 1469598103934665603ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::string
ExperimentEngine::cacheFileName(const SimJob &job)
{
    std::ostringstream oss;
    oss << sanitize(job.kernel) << "-"
        << providerName(job.config.provider) << "-" << job.sms << "sm-"
        << std::hex << jobFingerprint(job) << ".json";
    return oss.str();
}

std::filesystem::path
ExperimentEngine::cacheEntryPath(const SimJob &job)
{
    return JobCache::relativePath(
        JobCache::Key{cacheFileName(job), jobFingerprint(job)});
}

namespace
{

JobCache::Options
cacheOptions(const ExperimentEngine::Options &options)
{
    JobCache::Options cache;
    cache.dir = options.cacheDir;
    cache.readOnly = options.cacheReadOnly;
    cache.faults = options.cacheFaults;
    return cache;
}

} // namespace

ExperimentEngine::ExperimentEngine() : ExperimentEngine(Options{}) {}

ExperimentEngine::ExperimentEngine(Options options)
    : _options(std::move(options)), _cache(cacheOptions(_options))
{
    if (_options.shardCount > 1 &&
        (_options.shardIndex < 1 ||
         _options.shardIndex > _options.shardCount))
        panic("ExperimentEngine: shard index ", _options.shardIndex,
              " outside 1..", _options.shardCount);
}

ExperimentEngine::JobId
ExperimentEngine::submit(const SimJob &job)
{
    ++_requested;
    SimJob effective = job;
    // Apply the engine-wide cycle budget before fingerprinting, so
    // entries simulated under different budgets never share a key.
    if (_options.maxCycles)
        effective.config.sm.maxCycles = _options.maxCycles;
    const std::string key = cacheFileName(effective);
    auto [it, inserted] = _index.try_emplace(key, _entries.size());
    if (inserted) {
        const std::uint64_t fp = jobFingerprint(effective);
        _entries.push_back(
            Entry{std::move(effective), fp, JobResult{}, false});
    }
    return it->second;
}

ExperimentEngine::JobId
ExperimentEngine::submit(const std::string &name,
                         const GpuConfig &config)
{
    return submit(SimJob{name, config, 0, {}});
}

ExperimentEngine::JobId
ExperimentEngine::submit(const std::string &name, ProviderKind kind)
{
    return submit(SimJob{name, GpuConfig::forProvider(kind), 0, {}});
}

const JobResult &
ExperimentEngine::result(JobId id)
{
    if (id >= _entries.size())
        panic("ExperimentEngine: unknown job id ", id);
    if (!_entries[id].done)
        flush();
    return _entries[id].result;
}

const RunStats &
ExperimentEngine::stats(JobId id)
{
    const JobResult &r = result(id);
    if (r.status != JobStatus::Ok) {
        const SimJob &job = _entries[id].job;
        throw SimError(
            r.status == JobStatus::Deadlocked ? SimErrorKind::Deadlock
                                              : SimErrorKind::Internal,
            "job '" + job.kernel + "' (" +
                providerName(job.config.provider) + ", " +
                std::to_string(job.sms) + " sms) " +
                jobStatusName(r.status) + ": " + r.error);
    }
    return r.stats;
}

const RunStats *
ExperimentEngine::tryStats(JobId id)
{
    const JobResult &r = result(id);
    return r.status == JobStatus::Ok ? &r.stats : nullptr;
}

RunStats
ExperimentEngine::execute(const SimJob &job, double timeout_sec)
{
    // Multi-tenant jobs name their co-resident kernels in
    // config.tenants.workloads; job.kernel stays the display and cache
    // name (the workloads are part of the config fingerprint).
    if (job.config.tenants.workloads.size() >= 2) {
        std::vector<ir::Kernel> kernels;
        for (const TenantWorkload &w : job.config.tenants.workloads)
            kernels.push_back(workloads::makeRodinia(w.kernel));
        if (job.sms >= 1) {
            MultiSmSimulator multi(kernels, job.config, job.sms,
                                   /*threads=*/1);
            return multi.run(timeout_sec);
        }
        GpuSimulator simulator(kernels, job.config);
        return simulator.run(timeout_sec);
    }
    ir::Kernel kernel = job.builder
                            ? job.builder()
                            : workloads::makeRodinia(job.kernel);
    if (job.sms >= 1) {
        // Single-threaded inside: the engine already parallelizes
        // across jobs, and results are thread-invariant anyway.
        MultiSmSimulator multi(kernel, job.config, job.sms,
                               /*threads=*/1);
        return multi.run(timeout_sec);
    }
    GpuSimulator simulator(kernel, job.config);
    return simulator.run(timeout_sec);
}

JobResult
ExperimentEngine::runIsolated(SimJob job, const Options &options)
{
    JobResult result;
    result.attempts = 0;
    for (unsigned attempt = 0;; ++attempt) {
        ++result.attempts;
        try {
            result.stats = execute(job, options.jobTimeoutSec);
            result.status = JobStatus::Ok;
            result.error.clear();
            result.deadlock.clear();
            return result;
        } catch (const DeadlockError &e) {
            result.error = e.what();
            result.deadlock = e.report().render();
            // A wall-clock trip is load-dependent and worth a retry;
            // a cycle-domain deadlock is deterministic and is not.
            const bool wall_trip =
                e.report().reason ==
                ProgressMonitor::reason(
                    ProgressMonitor::Verdict::WallTimeout);
            result.status = wall_trip ? JobStatus::Failed
                                      : JobStatus::Deadlocked;
            if (!wall_trip)
                return result;
        } catch (const std::exception &e) {
            result.status = JobStatus::Failed;
            result.error = e.what();
            result.deadlock.clear();
        }
        if (attempt >= options.retries)
            return result;
        // Transient-fault model: an injected fault marked transient
        // does not recur on the retry.
        if (job.config.faults.transient)
            job.config.faults = FaultPlan{};
        if (options.retryBackoffMs) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                options.retryBackoffMs << attempt));
        }
    }
}

bool
ExperimentEngine::loadFromCache(Entry &entry)
{
    if (!_cache.enabled())
        return false;
    JobRecord record;
    if (!_cache.load(
            JobCache::Key{cacheFileName(entry.job), entry.fingerprint},
            record))
        return false;
    // Entries are keyed by fingerprint, so a provider mismatch means
    // the file was tampered with or collided; a Skipped record can
    // only be hand-placed (shards never store them). Miss on both.
    if (record.status == JobStatus::Skipped)
        return false;
    if (record.status == JobStatus::Ok &&
        record.stats.provider != entry.job.config.provider)
        return false;
    entry.result.status = record.status;
    entry.result.stats = std::move(record.stats);
    entry.result.error = std::move(record.error);
    entry.result.deadlock = std::move(record.deadlock);
    entry.result.attempts = record.attempts;
    return true;
}

void
ExperimentEngine::storeToCache(const Entry &entry)
{
    // Skipped results carry no data: the owning shard publishes the
    // real entry. Never negative-cache them.
    if (entry.result.status == JobStatus::Skipped)
        return;
    JobRecord record;
    record.schema = kJobCacheSchemaVersion;
    record.status = entry.result.status;
    record.stats = entry.result.stats;
    record.error = entry.result.error;
    record.deadlock = entry.result.deadlock;
    record.attempts = entry.result.attempts;
    _cache.store(
        JobCache::Key{cacheFileName(entry.job), entry.fingerprint},
        record);
}

void
ExperimentEngine::lintPending()
{
    for (Entry &entry : _entries) {
        if (entry.done)
            continue;
        const std::string key =
            entry.job.kernel + "|" +
            compilerConfigText(entry.job.config.compiler);
        if (!_linted.insert(key).second)
            continue;
        // Multi-tenant jobs lint every co-resident kernel; otherwise
        // exactly the job's own kernel.
        std::vector<ir::Kernel> kernels;
        if (entry.job.config.tenants.workloads.size() >= 2) {
            for (const TenantWorkload &w :
                 entry.job.config.tenants.workloads)
                kernels.push_back(workloads::makeRodinia(w.kernel));
        } else {
            kernels.push_back(
                entry.job.builder
                    ? entry.job.builder()
                    : workloads::makeRodinia(entry.job.kernel));
        }
        for (const ir::Kernel &kernel : kernels) {
            const compiler::CompiledKernel ck =
                compiler::compile(kernel, entry.job.config.compiler);
            compiler::LintOptions opts;
            opts.checkLoadUse = entry.job.config.compiler.splitLoadUse;
            const std::vector<compiler::Finding> findings =
                compiler::lintCompiledKernel(ck, opts);
            if (compiler::hasErrors(findings)) {
                fatal("lint: kernel '", kernel.name(),
                      "' failed staging verification:\n",
                      compiler::formatFindings(findings));
            }
        }
    }
}

void
ExperimentEngine::flush()
{
    // Lint before touching the cache: a cached result must never let a
    // kernel with unsound annotations slip past the gate.
    if (_options.lint)
        lintPending();

    std::vector<Entry *> to_run;
    for (Entry &entry : _entries) {
        if (entry.done)
            continue;
        if (loadFromCache(entry)) {
            entry.done = true;
            ++_cacheHits;
            continue;
        }
        // The shard filter applies to *simulation* only: a shard run
        // still serves any cross-shard cache hit (above), so figures
        // of a late shard render everything earlier shards published.
        if (_options.shardCount > 1 &&
            entry.fingerprint % _options.shardCount !=
                _options.shardIndex - 1) {
            entry.result.status = JobStatus::Skipped;
            entry.result.error =
                "left to shard " +
                std::to_string(entry.fingerprint %
                                   _options.shardCount +
                               1) +
                "/" + std::to_string(_options.shardCount) +
                " of this partitioned run";
            entry.done = true;
            continue;
        }
        to_run.push_back(&entry);
    }
    if (to_run.empty())
        return;

    const unsigned threads =
        _options.jobs
            ? _options.jobs
            : ThreadPool::defaultThreads(
                  static_cast<unsigned>(to_run.size()));
    ThreadPool pool(threads);
    // runIsolated() never lets an exception escape: one wedged or
    // crashing job must not take down the worker (worker threads
    // terminate on escaping exceptions) or its sibling jobs.
    pool.parallelFor(to_run.size(), [&](std::size_t i) {
        to_run[i]->result = runIsolated(to_run[i]->job, _options);
    });

    // Publish serially: deterministic counters and no concurrent
    // filesystem writes.
    for (Entry *entry : to_run) {
        entry->done = true;
        ++_simulated;
        storeToCache(*entry);
    }
}

std::uint64_t
ExperimentEngine::countStatus(JobStatus status) const
{
    std::uint64_t n = 0;
    for (const Entry &entry : _entries)
        n += entry.done && entry.result.status == status;
    return n;
}

std::uint64_t
ExperimentEngine::retried() const
{
    std::uint64_t n = 0;
    for (const Entry &entry : _entries) {
        if (entry.done && entry.result.attempts > 1)
            n += entry.result.attempts - 1;
    }
    return n;
}

std::vector<ExperimentEngine::JobId>
ExperimentEngine::failedJobs() const
{
    std::vector<JobId> out;
    for (JobId id = 0; id < _entries.size(); ++id) {
        // Skipped is not a failure: the footer counts those
        // separately instead of diagnosing each one.
        if (_entries[id].done &&
            _entries[id].result.status != JobStatus::Ok &&
            _entries[id].result.status != JobStatus::Skipped)
            out.push_back(id);
    }
    return out;
}

const SimJob &
ExperimentEngine::job(JobId id) const
{
    if (id >= _entries.size())
        panic("ExperimentEngine: unknown job id ", id);
    return _entries[id].job;
}

std::vector<RunStats>
ExperimentEngine::allStats()
{
    flush();
    std::vector<RunStats> out;
    out.reserve(_entries.size());
    for (const Entry &entry : _entries) {
        if (entry.result.status == JobStatus::Ok)
            out.push_back(entry.result.stats);
    }
    return out;
}

} // namespace regless::sim
