#include "sim/job_cache.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define REGLESS_HAVE_FLOCK 1
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "common/logging.hh"

namespace regless::sim
{

namespace fs = std::filesystem;

namespace
{

/** Shard lock-file leaf name; never an entry, skipped by survey/gc. */
constexpr const char *kLockName = ".lock";

double
ageSeconds(fs::file_time_type then, fs::file_time_type now)
{
    return std::chrono::duration<double>(now - then).count();
}

/**
 * Advisory per-shard writer lock: flock with bounded exponential
 * backoff. Failing to lock is never an error — the caller proceeds
 * lock-free (atomic rename keeps that correct; the lock only
 * coalesces redundant work). Where flock does not exist the class
 * degenerates to the deterministic lock-free fallback.
 */
class ShardLock
{
  public:
    ShardLock(const fs::path &shard, unsigned timeout_ms,
              CacheCounters *counters)
    {
#ifdef REGLESS_HAVE_FLOCK
        const fs::path lock_path = shard / kLockName;
        _fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                     0666);
        if (_fd < 0)
            return; // unwritable shard: lock-free fallback
        unsigned waited_ms = 0;
        unsigned delay_ms = 1;
        bool waited = false;
        for (;;) {
            if (::flock(_fd, LOCK_EX | LOCK_NB) == 0) {
                _held = true;
                break;
            }
            if (errno == EINTR)
                continue;
            if (errno != EWOULDBLOCK)
                break; // e.g. flock unsupported on this filesystem
            if (!waited && counters)
                ++counters->lockWaits;
            waited = true;
            if (waited_ms >= timeout_ms) {
                if (counters)
                    ++counters->lockTimeouts;
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
            waited_ms += delay_ms;
            delay_ms = std::min(delay_ms * 2, 50u);
        }
        if (!_held) {
            ::close(_fd);
            _fd = -1;
        }
#else
        (void)shard;
        (void)timeout_ms;
        (void)counters;
#endif
    }

    ~ShardLock()
    {
#ifdef REGLESS_HAVE_FLOCK
        if (_fd >= 0) {
            ::flock(_fd, LOCK_UN);
            ::close(_fd);
        }
#endif
    }

    ShardLock(const ShardLock &) = delete;
    ShardLock &operator=(const ShardLock &) = delete;

    /** True when the flock is actually held (not the fallback). */
    bool held() const { return _held; }

  private:
    int _fd = -1;
    bool _held = false;
};

/** PID + per-process nonce so temp names never collide across (or
 * within) writer processes, even after a crash left old ones. */
std::string
tempSuffix()
{
    static std::atomic<unsigned> nonce{0};
#ifdef REGLESS_HAVE_FLOCK
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    return ".tmp." + std::to_string(pid) + "." +
           std::to_string(nonce.fetch_add(1));
}

bool
isHexShardName(const std::string &name)
{
    return name.size() == 2 &&
           std::isxdigit(static_cast<unsigned char>(name[0])) &&
           std::isxdigit(static_cast<unsigned char>(name[1]));
}

/** Read a whole file; false when it cannot be opened. */
bool
slurp(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

} // namespace

const char *
cacheFaultKindName(CacheFaultPlan::Kind kind)
{
    switch (kind) {
      case CacheFaultPlan::Kind::None:
        return "none";
      case CacheFaultPlan::Kind::TornWrite:
        return "torn_write";
      case CacheFaultPlan::Kind::RenameFail:
        return "rename_fail";
      case CacheFaultPlan::Kind::Enospc:
        return "enospc";
      case CacheFaultPlan::Kind::Clobber:
        return "clobber";
      case CacheFaultPlan::Kind::CrashAfterTmp:
        return "crash_after_tmp";
    }
    return "?";
}

const char *
cacheModeName(CacheMode mode)
{
    switch (mode) {
      case CacheMode::ReadWrite:
        return "read-write";
      case CacheMode::ReadOnly:
        return "read-only";
      case CacheMode::Disabled:
        return "disabled";
    }
    return "?";
}

JobCache::JobCache(Options options) : _options(std::move(options))
{
    if (!_options.dir.empty()) {
        // Open lazily: constructing an engine must not touch the
        // filesystem, only a load/store may.
        _mode = CacheMode::ReadWrite;
        _modeReason.clear();
    }
}

std::string
JobCache::shardName(std::uint64_t fingerprint)
{
    static const char *digits = "0123456789abcdef";
    const unsigned byte = static_cast<unsigned>(fingerprint & 0xff);
    std::string out;
    out.push_back(digits[byte >> 4]);
    out.push_back(digits[byte & 0xf]);
    return out;
}

std::filesystem::path
JobCache::relativePath(const Key &key)
{
    return fs::path(shardName(key.fingerprint)) / key.file;
}

std::filesystem::path
JobCache::entryPath(const Key &key) const
{
    return fs::path(_options.dir) / relativePath(key);
}

bool
JobCache::parseEntryName(const std::string &file,
                         std::uint64_t &fingerprint)
{
    const std::string suffix = ".json";
    if (file.size() <= suffix.size() ||
        file.compare(file.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    if (isTempName(file))
        return false;
    const std::string stem =
        file.substr(0, file.size() - suffix.size());
    const std::size_t dash = stem.rfind('-');
    if (dash == std::string::npos || dash + 1 >= stem.size())
        return false;
    const std::string hex = stem.substr(dash + 1);
    if (hex.size() > 16)
        return false;
    std::uint64_t value = 0;
    for (char c : hex) {
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
        value = value * 16 +
                static_cast<std::uint64_t>(
                    c <= '9' ? c - '0'
                             : std::tolower(
                                   static_cast<unsigned char>(c)) -
                                   'a' + 10);
    }
    fingerprint = value;
    return true;
}

bool
JobCache::isTempName(const std::string &file)
{
    return file.find(".tmp") != std::string::npos;
}

void
JobCache::degrade(CacheMode mode, std::string reason)
{
    if (static_cast<int>(mode) <= static_cast<int>(_mode))
        return; // never move back up the ladder
    _mode = mode;
    _modeReason = std::move(reason);
    warn("experiment cache: degraded to ", cacheModeName(_mode), ": ",
         _modeReason);
}

bool
JobCache::ensureOpen()
{
    if (_opened)
        return enabled();
    _opened = true;
    if (_options.dir.empty())
        return false;
    if (_options.readOnly) {
        // Read-only by configuration: don't even create the
        // directory; a missing one just means every load misses.
        degrade(CacheMode::ReadOnly, "configured read-only");
        return enabled();
    }
    std::error_code ec;
    fs::create_directories(_options.dir, ec);
    if (ec) {
        if (fs::exists(_options.dir)) {
            degrade(CacheMode::ReadOnly,
                    "cannot prepare '" + _options.dir +
                        "': " + ec.message());
        } else {
            degrade(CacheMode::Disabled,
                    "cannot create '" + _options.dir +
                        "': " + ec.message());
        }
    }
    return enabled();
}

bool
JobCache::load(const Key &key, JobRecord &out)
{
    if (!ensureOpen())
        return false;
    std::string text;
    if (!slurp(entryPath(key), text)) {
        ++_counters.misses;
        return false;
    }
    // A corrupt or truncated entry is a miss, never an error: the
    // point is re-simulated and the entry rewritten (healed).
    JobRecord record;
    if (!tryRecordFromJson(text, record)) {
        ++_counters.corrupt;
        ++_counters.misses;
        return false;
    }
    if (record.schema != _options.expectedSchema) {
        // Parseable but foreign: the flat key-value body would
        // *half-parse* (unknown keys dropped, new fields zeroed), so
        // the schema gate must reject it outright — and say why.
        ++_counters.schemaRejects;
        ++_counters.misses;
        if (!_warnedSchema) {
            _warnedSchema = true;
            warn("experiment cache: rejecting '", key.file,
                 "': entry schema ", record.schema, " != expected ",
                 _options.expectedSchema, " (",
                 record.schema > _options.expectedSchema
                     ? "written by a newer build sharing this cache; "
                       "upgrade this binary or use a separate "
                       "--cache-dir"
                     : "stale entry from an older build; "
                       "`regless_cache gc` can reclaim it",
                 "); re-simulating");
        }
        return false;
    }
    ++_counters.hits;
    out = std::move(record);
    return true;
}

bool
JobCache::faultFires(CacheFaultPlan::Kind kind, unsigned index) const
{
    if (_options.faults.kind != kind)
        return false;
    return _options.faults.repeat
               ? index >= _options.faults.triggerStore
               : index == _options.faults.triggerStore;
}

void
JobCache::janitor(const fs::path &shard)
{
    if (!_sweptShards.insert(shard.string()).second)
        return; // once per shard per process
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    for (const auto &it : fs::directory_iterator(shard, ec)) {
        if (!it.is_regular_file(ec))
            continue;
        const std::string leaf = it.path().filename().string();
        if (!isTempName(leaf))
            continue;
        const auto mtime = fs::last_write_time(it.path(), ec);
        if (ec)
            continue;
        // Fresh temps may belong to a live writer mid-publish; only
        // ones past the staleness threshold are crash leftovers.
        if (ageSeconds(mtime, now) < _options.staleTmpAgeSec)
            continue;
        if (fs::remove(it.path(), ec))
            ++_counters.janitorRemoved;
    }
}

bool
JobCache::store(const Key &key, const JobRecord &record)
{
    if (!ensureOpen() || _mode != CacheMode::ReadWrite)
        return false;
    const unsigned index = _storeIndex++;

    const fs::path path = entryPath(key);
    const fs::path shard = path.parent_path();
    std::error_code ec;
    fs::create_directories(shard, ec);
    if (ec) {
        storeFailed(path, "cannot create shard: " + ec.message());
        return false;
    }
    janitor(shard);

    // Coalesce concurrent writers: take the shard's advisory lock
    // (bounded backoff, lock-free fallback on timeout), then check
    // whether the race winner already published this entry — entries
    // are deterministic functions of their fingerprint, so a valid
    // same-schema record on disk makes this write redundant.
    ShardLock lock(shard, _options.lockTimeoutMs, &_counters);
    {
        std::string existing;
        JobRecord prior;
        if (slurp(path, existing) &&
            tryRecordFromJson(existing, prior) &&
            prior.schema == _options.expectedSchema) {
            ++_counters.coalesced;
            return true;
        }
    }

    std::ostringstream payload_stream;
    writeJson(payload_stream, record);
    std::string payload = payload_stream.str();
    if (faultFires(CacheFaultPlan::Kind::TornWrite, index)) {
        // Simulated disk corruption: publish only half the bytes.
        payload.resize(payload.size() / 2);
    }

    const fs::path tmp = path.string() + tempSuffix();
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        const bool enospc =
            faultFires(CacheFaultPlan::Kind::Enospc, index);
        if (out && !enospc)
            out.write(payload.data(),
                      static_cast<std::streamsize>(payload.size()));
        out.flush();
        if (!out || enospc) {
            // A partial temp must not linger (satellite of PR 9: the
            // old engine-inline writer leaked it silently).
            out.close();
            fs::remove(tmp, ec);
            storeFailed(path, enospc ? "no space left on device"
                                     : "short write");
            return false;
        }
    }

    if (faultFires(CacheFaultPlan::Kind::CrashAfterTmp, index)) {
        // Writer "dies" here: the temp is orphaned for the janitor,
        // nothing is published, no cleanup runs.
        return false;
    }

    if (faultFires(CacheFaultPlan::Kind::Clobber, index)) {
        // A rival writer wins the publish race first. Rival content
        // is what any writer of this fingerprint would produce, so
        // whoever's rename lands last, readers see a valid record.
        const fs::path rival_tmp = path.string() + tempSuffix();
        std::ostringstream rival;
        writeJson(rival, record);
        std::ofstream(rival_tmp, std::ios::binary | std::ios::trunc)
            << rival.str();
        fs::rename(rival_tmp, path, ec);
    }

    // Atomic publish so readers never observe a torn file.
    ec.clear();
    if (faultFires(CacheFaultPlan::Kind::RenameFail, index))
        ec = std::make_error_code(std::errc::io_error);
    else
        fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code ignored;
        fs::remove(tmp, ignored);
        storeFailed(path, "rename failed: " + ec.message());
        return false;
    }
    ++_counters.stores;
    _consecutiveStoreFailures = 0;
    return true;
}

void
JobCache::storeFailed(const std::filesystem::path &path,
                      const std::string &why)
{
    ++_counters.storeFailures;
    if (!_warnedStoreFailure) {
        _warnedStoreFailure = true;
        warn("experiment cache: cannot store '", path.string(), "': ",
             why, " (warning once; see the report footer for counts)");
    }
    if (++_consecutiveStoreFailures >= _options.maxStoreFailures) {
        degrade(CacheMode::ReadOnly,
                "writes disabled after " +
                    std::to_string(_consecutiveStoreFailures) +
                    " consecutive store failures (last: " + why + ")");
    }
}

// ---------------------------------------------------------------------
// Maintenance: survey (stats/verify) and gc.
// ---------------------------------------------------------------------

namespace
{

/** One file seen by the gc scan. */
struct GcFile
{
    fs::path path;
    fs::path shard; ///< shard dir to lock ("" = cache root)
    std::uint64_t bytes = 0;
    double ageSec = 0.0;
    bool isTemp = false;
    bool isSuspect = false; ///< corrupt or misplaced
};

void
surveyFile(const fs::path &root, const fs::path &path,
           const std::string &shard_name, unsigned expected_schema,
           CacheSurvey &survey)
{
    const std::string leaf = path.filename().string();
    if (leaf == kLockName || leaf[0] == '.')
        return; // internal bookkeeping, not cache content
    std::error_code ec;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(fs::file_size(path, ec));
    if (JobCache::isTempName(leaf)) {
        ++survey.tempFiles;
        survey.totalBytes += bytes;
        return;
    }
    std::uint64_t fingerprint = 0;
    if (!JobCache::parseEntryName(leaf, fingerprint)) {
        ++survey.otherFiles;
        return;
    }
    survey.totalBytes += bytes;
    const std::string home = JobCache::shardName(fingerprint);
    if (shard_name != home) {
        // Filed under the wrong shard (or at the pre-shard flat
        // root): unreachable by lookups, pure dead weight.
        ++survey.misplaced;
        survey.suspects.push_back(
            fs::relative(path, root, ec).string());
    }
    std::string text;
    JobRecord record;
    if (!slurp(path, text) || !tryRecordFromJson(text, record)) {
        ++survey.corrupt;
        survey.suspects.push_back(
            fs::relative(path, root, ec).string());
        return;
    }
    ++survey.entries;
    if (record.schema != expected_schema) {
        ++survey.wrongSchema;
        if (record.schema > expected_schema)
            ++survey.newerSchema;
    }
    switch (record.status) {
      case JobStatus::Ok:
        ++survey.okRecords;
        break;
      case JobStatus::Failed:
        ++survey.failedRecords;
        break;
      case JobStatus::Deadlocked:
        ++survey.deadlockedRecords;
        break;
      case JobStatus::Skipped:
        break; // never stored; tolerated if hand-placed
    }
}

} // namespace

CacheSurvey
cacheSurveyDir(const fs::path &dir, unsigned expected_schema)
{
    CacheSurvey survey;
    std::error_code ec;
    if (!fs::exists(dir, ec))
        return survey;
    for (const auto &it : fs::directory_iterator(dir, ec)) {
        if (it.is_directory(ec)) {
            const std::string name = it.path().filename().string();
            if (!isHexShardName(name))
                continue;
            ++survey.shardsUsed;
            for (const auto &f :
                 fs::directory_iterator(it.path(), ec)) {
                if (f.is_regular_file(ec))
                    surveyFile(dir, f.path(), name, expected_schema,
                               survey);
            }
        } else if (it.is_regular_file(ec)) {
            // Flat root files: legacy pre-shard entries and strays.
            surveyFile(dir, it.path(), "", expected_schema, survey);
        }
    }
    return survey;
}

CacheGcResult
cacheGcDir(const fs::path &dir, const CacheGcOptions &options)
{
    CacheGcResult result;
    std::error_code ec;
    if (!fs::exists(dir, ec))
        return result;
    const auto now = fs::file_time_type::clock::now();

    // Phase 1: scan without locks.
    std::vector<GcFile> files;
    auto scan = [&](const fs::path &path, const fs::path &shard,
                    const std::string &shard_name) {
        const std::string leaf = path.filename().string();
        if (leaf == kLockName || leaf[0] == '.')
            return;
        GcFile f;
        f.path = path;
        f.shard = shard;
        f.bytes = static_cast<std::uint64_t>(fs::file_size(path, ec));
        const auto mtime = fs::last_write_time(path, ec);
        f.ageSec = ec ? 0.0 : ageSeconds(mtime, now);
        f.isTemp = JobCache::isTempName(leaf);
        if (!f.isTemp) {
            std::uint64_t fingerprint = 0;
            if (!JobCache::parseEntryName(leaf, fingerprint)) {
                return; // unrecognized: leave it alone
            }
            std::string text;
            JobRecord record;
            f.isSuspect =
                JobCache::shardName(fingerprint) != shard_name ||
                !slurp(path, text) ||
                !tryRecordFromJson(text, record);
        }
        files.push_back(std::move(f));
    };
    for (const auto &it : fs::directory_iterator(dir, ec)) {
        if (it.is_directory(ec)) {
            const std::string name = it.path().filename().string();
            if (!isHexShardName(name))
                continue;
            for (const auto &f :
                 fs::directory_iterator(it.path(), ec)) {
                if (f.is_regular_file(ec))
                    scan(f.path(), it.path(), name);
            }
        } else if (it.is_regular_file(ec)) {
            scan(it.path(), fs::path(), "");
        }
    }

    // Decide removals. The grace margin is the live-lock/live-writer
    // safety net: nothing young enough to be mid-publish is touched,
    // so gc can never race a writer into data loss.
    auto protectedByGrace = [&](const GcFile &f) {
        return f.ageSec < options.graceSec;
    };
    std::vector<const GcFile *> doomed;
    std::vector<const GcFile *> kept;
    for (const GcFile &f : files) {
        if (protectedByGrace(f)) {
            if (!f.isTemp)
                kept.push_back(&f);
            continue;
        }
        if (f.isTemp || (f.isSuspect && options.removeCorrupt) ||
            (options.maxAgeSec > 0.0 && f.ageSec > options.maxAgeSec))
            doomed.push_back(&f);
        else
            kept.push_back(&f);
    }
    if (options.maxBytes > 0) {
        std::uint64_t kept_bytes = 0;
        for (const GcFile *f : kept)
            kept_bytes += f->bytes;
        // Oldest-first eviction until the cache fits the budget.
        std::stable_sort(kept.begin(), kept.end(),
                         [](const GcFile *a, const GcFile *b) {
                             return a->ageSec > b->ageSec;
                         });
        std::size_t i = 0;
        while (kept_bytes > options.maxBytes && i < kept.size()) {
            const GcFile *f = kept[i++];
            if (protectedByGrace(*f))
                break; // the rest are younger still
            kept_bytes -= f->bytes;
            doomed.push_back(f);
        }
        kept.erase(kept.begin(),
                   kept.begin() + static_cast<std::ptrdiff_t>(i));
    }

    // Phase 2: remove, one bounded-wait shard lock at a time. A shard
    // whose lock never frees is skipped — gc yields to writers rather
    // than spinning against them.
    std::stable_sort(doomed.begin(), doomed.end(),
                     [](const GcFile *a, const GcFile *b) {
                         return a->shard.string() < b->shard.string();
                     });
    std::size_t i = 0;
    while (i < doomed.size()) {
        const fs::path shard = doomed[i]->shard;
        std::size_t end = i;
        while (end < doomed.size() && doomed[end]->shard == shard)
            ++end;
        CacheCounters counters;
        ShardLock lock(shard.empty() ? dir : shard,
                       options.lockTimeoutMs, &counters);
        if (counters.lockTimeouts) {
            ++result.skippedShards;
            i = end;
            continue;
        }
        for (; i < end; ++i) {
            const GcFile &f = *doomed[i];
            if (!options.dryRun && !fs::remove(f.path, ec))
                continue;
            ++(f.isTemp ? result.removedTemps : result.removedEntries);
            result.removedBytes += f.bytes;
        }
    }
    result.keptEntries = kept.size();
    return result;
}

} // namespace regless::sim
