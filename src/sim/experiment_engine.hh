/**
 * @file
 * ExperimentEngine: the evaluation layer's job scheduler. A SimJob is
 * one simulation point — (kernel, canonical GpuConfig fingerprint,
 * SM count). Submitted jobs are deduplicated, executed in parallel on
 * the common thread pool (results are bit-identical for every worker
 * count), and memoized in a persistent on-disk JSON cache keyed by
 * the config fingerprint, so a warm rerun of the full paper report
 * performs zero simulations. See DESIGN.md §7.
 *
 * Jobs are fault-isolated (DESIGN.md §9): an exception or watchdog
 * trip inside one job is captured as that job's JobResult without
 * disturbing its siblings, failures are negative-cached, and a flush
 * always completes. Consumers that need hard results use stats()
 * (throws on a failed job); report code uses tryStats()/result() and
 * annotates the gap.
 *
 * The on-disk cache is the JobCache subsystem (DESIGN.md §15):
 * sharded, crash-tolerant, safe under concurrent writer processes,
 * and degrading structurally (read-only / disabled, surfaced in the
 * report footer) instead of ever failing a run. Options::shardIndex/
 * shardCount partition one report's simulation work across a fleet
 * of processes that share a cache directory.
 */

#ifndef REGLESS_SIM_EXPERIMENT_ENGINE_HH
#define REGLESS_SIM_EXPERIMENT_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/kernel.hh"
#include "sim/gpu_config.hh"
#include "sim/job_cache.hh"
#include "sim/run_stats.hh"
#include "sim/stats_io.hh"

namespace regless::sim
{

/** One deduplicatable simulation point. */
struct SimJob
{
    /**
     * Kernel name: a Rodinia benchmark name unless @a builder is set,
     * in which case it is the builder's display/cache name and must
     * uniquely identify the built kernel.
     */
    std::string kernel;

    GpuConfig config;

    /**
     * 0 (the default) simulates one standalone SM with GpuSimulator;
     * >= 1 uses the multi-SM executor with that many SMs. These are
     * distinct simulations even at one SM — the multi-SM executor
     * models the shared DRAM differently — so they never share a
     * cache entry.
     */
    unsigned sms = 0;

    /** Optional kernel factory for non-Rodinia kernels. */
    std::function<ir::Kernel()> builder;
};

/**
 * Outcome of one executed (or cache-served) job: its status, the
 * stats when it succeeded, and the failure diagnosis when it did not.
 */
struct JobResult
{
    JobStatus status = JobStatus::Ok;
    RunStats stats;
    /** what() of the escaped exception (Failed / Deadlocked). */
    std::string error;
    /** Rendered DeadlockReport (Deadlocked only). */
    std::string deadlock;
    /** Execution attempts (> 1 when a transient fault was retried). */
    unsigned attempts = 1;
};

/** Deduplicating, parallel, disk-cached simulation executor. */
class ExperimentEngine
{
  public:
    struct Options
    {
        /** Worker threads for a flush; 0 = min(jobs, cores). */
        unsigned jobs = 0;

        /** Cache directory; empty disables the on-disk cache. */
        std::string cacheDir;

        /**
         * Run the static staging-state verifier on every kernel
         * before simulating (or serving cached results for) it, and
         * fatal() on any error-severity finding. Lint verdicts are
         * memoized per (kernel, compiler config), so a grid sweeping
         * runtime parameters lints each kernel exactly once.
         */
        bool lint = false;

        /**
         * Hard cycle budget forced onto every submitted job's
         * SmConfig (0 keeps each job's own). Applied at submit() so
         * the cache fingerprint reflects it.
         */
        Cycle maxCycles = 0;

        /** Per-job wall-clock budget in seconds (0 = unlimited). */
        double jobTimeoutSec = 0.0;

        /** Re-executions allowed after a (non-deadlock) failure. */
        unsigned retries = 1;

        /** Base delay before a retry, in milliseconds (doubles per
         * attempt). */
        unsigned retryBackoffMs = 10;

        /** Never write cache entries (reads still hit). */
        bool cacheReadOnly = false;

        /** Chaos injection into the cache layer (tests only). */
        CacheFaultPlan cacheFaults;

        /**
         * Deterministic job partitioner for fleet runs: with
         * shardCount n > 1, only jobs whose fingerprint lands on
         * shard shardIndex (1-based, 1 <= shardIndex <= n) are
         * simulated; the rest are served from the cache when present
         * and otherwise finish as JobStatus::Skipped. The union of
         * the n shard runs over one shared cache directory is
         * byte-identical to an unsharded run (the shard-parity
         * oracle). shardCount == 0 or 1 disables partitioning.
         */
        unsigned shardIndex = 0;
        unsigned shardCount = 0;
    };

    /** Handle to a submitted job, valid for this engine's lifetime. */
    using JobId = std::size_t;

    ExperimentEngine();
    explicit ExperimentEngine(Options options);

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /**
     * Register a job. Jobs with the same (kernel, fingerprint, sms)
     * key collapse onto one JobId; nothing executes until flush() or
     * the first stats() call, so submit the whole grid first for
     * maximal parallelism.
     */
    JobId submit(const SimJob &job);

    /** Convenience: Rodinia kernel @a name under @a config. */
    JobId submit(const std::string &name, const GpuConfig &config);

    /** Convenience: canonical configuration for @a kind. */
    JobId submit(const std::string &name, ProviderKind kind);

    /**
     * Results for @a id. Flushes all pending jobs on first use, so
     * point queries after a batched submit phase stay parallel.
     * Throws SimError (naming the job) when the job failed or
     * deadlocked — use result()/tryStats() to handle failures.
     */
    const RunStats &stats(JobId id);

    /** Full outcome for @a id (flushes like stats()). */
    const JobResult &result(JobId id);

    /** stats(), or nullptr when the job failed or deadlocked. */
    const RunStats *tryStats(JobId id);

    /** Execute every submitted-but-pending job now. Captures per-job
     * failures instead of propagating them: always completes. */
    void flush();

    /** Unique successful runs, in first-submission order (failed and
     * deadlocked jobs are excluded). */
    std::vector<RunStats> allStats();

    /** @name Engine accounting (the report footer). */
    /// @{
    /** submit() calls, before deduplication. */
    std::uint64_t pointsRequested() const { return _requested; }
    /** Distinct simulation points. */
    std::uint64_t pointsUnique() const { return _entries.size(); }
    /** Points actually simulated by this engine. */
    std::uint64_t simulated() const { return _simulated; }
    /** Points served from the on-disk cache. */
    std::uint64_t cacheHits() const { return _cacheHits; }
    /** Distinct (kernel, compiler config) pairs linted (Options::lint). */
    std::uint64_t kernelsLinted() const { return _linted.size(); }
    /** Jobs that failed with an exception (fresh or cache-served). */
    std::uint64_t failed() const { return countStatus(JobStatus::Failed); }
    /** Jobs terminated by the forward-progress watchdog. */
    std::uint64_t deadlocked() const
    {
        return countStatus(JobStatus::Deadlocked);
    }
    /** Jobs left to other shards of a partitioned run. */
    std::uint64_t skipped() const
    {
        return countStatus(JobStatus::Skipped);
    }
    /** Re-executions performed after transient failures. */
    std::uint64_t retried() const;
    /// @}

    /** The on-disk cache behind this engine (Disabled when no
     * cacheDir was configured): mode, degradation reason, and the
     * counters the report footer prints. */
    const JobCache &cache() const { return _cache; }

    /** Ids of flushed jobs that failed or deadlocked, in submission
     * order (for the report's failure footer). */
    std::vector<JobId> failedJobs() const;

    /** The deduplicated job behind @a id (for failure reporting). */
    const SimJob &job(JobId id) const;

    const Options &options() const { return _options; }

    /**
     * Cache-entry leaf filename for a job, exposed for tests that
     * corrupt or inspect entries. The entry itself lives under a
     * shard subdirectory — see cacheEntryPath().
     */
    static std::string cacheFileName(const SimJob &job);

    /** Cache-entry path relative to the cache directory, shard
     * subdirectory included ("ab/kernel-provider-0sm-….json"). */
    static std::filesystem::path cacheEntryPath(const SimJob &job);

    /** The sharding fingerprint of @a job (config + kernel + sms +
     * schema), as used for the cache key and `--shard` partition. */
    static std::uint64_t jobFingerprint(const SimJob &job);

  private:
    struct Entry
    {
        SimJob job;
        std::uint64_t fingerprint = 0;
        JobResult result;
        bool done = false;
    };

    bool loadFromCache(Entry &entry);
    void storeToCache(const Entry &entry);
    static RunStats execute(const SimJob &job, double timeout_sec);
    static JobResult runIsolated(SimJob job, const Options &options);

    std::uint64_t countStatus(JobStatus status) const;

    /** Lint every pending entry's kernel (Options::lint). */
    void lintPending();

    Options _options;
    JobCache _cache;
    std::deque<Entry> _entries;
    std::unordered_map<std::string, JobId> _index;
    std::uint64_t _requested = 0;
    std::uint64_t _simulated = 0;
    std::uint64_t _cacheHits = 0;

    /** Kernels already linted, keyed by name + compiler config. */
    std::set<std::string> _linted;
};

} // namespace regless::sim

#endif // REGLESS_SIM_EXPERIMENT_ENGINE_HH
