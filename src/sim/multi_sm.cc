#include "sim/multi_sm.hh"

#include <algorithm>
#include <exception>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace regless::sim
{

struct MultiSmSimulator::Instance
{
    explicit Instance(std::unique_ptr<GpuSimulator> s)
        : simulator(std::move(s))
    {
    }
    std::unique_ptr<GpuSimulator> simulator;
    /** Slot counters as of the GPU's last progress event, so a
     *  deadlock report can attribute the stalled window. */
    arch::StallSnapshot atProgress;
};

MultiSmSimulator::MultiSmSimulator(const ir::Kernel &kernel,
                                   GpuConfig config, unsigned num_sms,
                                   unsigned threads)
    : MultiSmSimulator(std::vector<ir::Kernel>{kernel},
                       std::move(config), num_sms, threads)
{
}

MultiSmSimulator::MultiSmSimulator(const std::vector<ir::Kernel> &kernels,
                                   GpuConfig config, unsigned num_sms,
                                   unsigned threads)
    : _config(std::move(config))
{
    if (num_sms == 0)
        fatal("multi-SM simulation needs at least one SM");

    // Contention is simulated, not scaled: each SM sees the full DRAM
    // and an L2 slice.
    _config.mem.dram.bandwidthShare = 1.0;
    _config.mem.l2.sizeBytes =
        std::max(64u * 1024u, _config.mem.l2.sizeBytes / num_sms);
    _dram = std::make_shared<mem::DramModel>(_config.mem.dram);

    for (unsigned i = 0; i < num_sms; ++i) {
        _sms.push_back(std::make_unique<Instance>(
            std::make_unique<GpuSimulator>(kernels, _config, _dram)));
    }

    // Deterministic sharing: each SM submits DRAM traffic through its
    // own port; cross-SM arbitration happens at the epoch barrier in
    // SM-id order, regardless of thread schedule.
    _dram->enableEpochMode(num_sms);
    for (unsigned i = 0; i < num_sms; ++i) {
        _sms[i]->simulator->memory().setDramPort(i);
        _sms[i]->simulator->setTraceInstance(i);
    }

    _threads = threads == 0 ? ThreadPool::defaultThreads(num_sms)
                            : std::min(threads, num_sms);
}

MultiSmSimulator::~MultiSmSimulator() = default;

RunStats
MultiSmSimulator::run(double wall_timeout_sec)
{
    ThreadPool pool(_threads);
    ProgressMonitor monitor(_config.sm.watchdogWindow,
                            _config.sm.maxCycles, wall_timeout_sec);
    // Per-SM exception slots: an exception escaping a worker thread
    // would terminate the process, so each epoch lambda captures its
    // own and the barrier rethrows the lowest SM id's (deterministic
    // for every thread count).
    std::vector<std::exception_ptr> errors(_sms.size());
    Cycle last_progress = monitor.lastProgressCycle();
    bool all_done = false;
    while (!all_done) {
        // Parallel phase: each SM advances one epoch against its own
        // state and its snapshot view of the DRAM channels.
        pool.parallelFor(_sms.size(), [this, &errors](std::size_t i) {
            try {
                GpuSimulator &gpu = *_sms[i]->simulator;
                // The epoch body (with its QoS polling and skip-jump
                // clamping to the boundary) is SM-local, so it is safe
                // on the worker threads. Skip jumps never pass the
                // epoch boundary, so the DRAM drain and watchdog
                // checks happen at the exact same barrier cycles as
                // plain stepping.
                gpu.advanceEpoch(gpu.sm().now() + epochCycles);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
        // Barrier phase: arbitrate the epoch's DRAM traffic in SM-id
        // order and resnapshot.
        _dram->drainEpoch();

        for (auto &err : errors) {
            if (err)
                std::rethrow_exception(err);
        }

        all_done = true;
        Cycle now = 0;
        std::uint64_t progress = 0;
        for (auto &instance : _sms) {
            GpuSimulator &gpu = *instance->simulator;
            if (!gpu.sm().done())
                all_done = false;
            now = std::max(now, gpu.sm().now());
            progress += gpu.sm().totalInsns() +
                        gpu.providerProgressEvents();
        }
        if (all_done)
            break;

        auto verdict = monitor.check(now, progress);
        if (verdict != ProgressMonitor::Verdict::Ok) {
            for (auto &instance : _sms)
                instance->simulator->writeTrace();
            for (auto &instance : _sms) {
                GpuSimulator &gpu = *instance->simulator;
                if (gpu.sm().done())
                    continue;
                throw DeadlockError(gpu.deadlockSnapshot(
                    monitor, verdict, now, &instance->atProgress));
            }
        }
        if (monitor.lastProgressCycle() != last_progress) {
            last_progress = monitor.lastProgressCycle();
            for (auto &instance : _sms)
                instance->atProgress =
                    instance->simulator->sm().slotSnapshot();
        }
    }

    _perSm.clear();
    for (auto &instance : _sms)
        _perSm.push_back(instance->simulator->collect());

    // Aggregate: wall clock is the slowest SM; everything else sums.
    RunStats total = _perSm.front();
    for (std::size_t i = 1; i < _perSm.size(); ++i) {
        const RunStats &s = _perSm[i];
        total.cycles = std::max(total.cycles, s.cycles);
        total.insns += s.insns;
        total.metadataInsns += s.metadataInsns;
        total.l1Accesses += s.l1Accesses;
        total.l2Accesses += s.l2Accesses;
        total.rfReads += s.rfReads;
        total.rfWrites += s.rfWrites;
        total.renameLookups += s.renameLookups;
        total.lrfAccesses += s.lrfAccesses;
        total.orfAccesses += s.orfAccesses;
        total.mrfAccesses += s.mrfAccesses;
        total.rfCacheHits += s.rfCacheHits;
        total.rfCacheMisses += s.rfCacheMisses;
        total.spillStores += s.spillStores;
        total.fillLoads += s.fillLoads;
        total.osuAccesses += s.osuAccesses;
        total.osuTagLookups += s.osuTagLookups;
        total.osuBankConflicts += s.osuBankConflicts;
        total.compressorAccesses += s.compressorAccesses;
        total.compressorMatches += s.compressorMatches;
        total.compressorIncompressible += s.compressorIncompressible;
        total.compressorStaticHits += s.compressorStaticHits;
        total.compressorStaticUnsound += s.compressorStaticUnsound;
        total.osuGatedBankCycles += s.osuGatedBankCycles;
        total.preloadSrcOsu += s.preloadSrcOsu;
        total.preloadSrcCompressor += s.preloadSrcCompressor;
        total.preloadSrcL1 += s.preloadSrcL1;
        total.preloadSrcL2Dram += s.preloadSrcL2Dram;
        total.l1PreloadReqs += s.l1PreloadReqs;
        total.l1StoreReqs += s.l1StoreReqs;
        total.l1InvalidateReqs += s.l1InvalidateReqs;
        total.issuedSlots += s.issuedSlots;
        for (std::size_t c = 0; c < arch::kNumStallCauses; ++c)
            total.stallSlots[c] += s.stallSlots[c];
        total.skippedCycles += s.skippedCycles;
        total.skipEvents += s.skipEvents;
        // Per-tenant lanes: counters sum across SMs; a tenant's finish
        // cycle is its slowest SM's.
        for (std::size_t t = 0;
             t < std::min(total.tenants.size(), s.tenants.size());
             ++t) {
            TenantLane &lane = total.tenants[t];
            const TenantLane &other = s.tenants[t];
            lane.insns += other.insns;
            lane.issuedSlots += other.issuedSlots;
            for (std::size_t c = 0; c < arch::kNumStallCauses; ++c)
                lane.stallSlots[c] += other.stallSlots[c];
            lane.finishCycle =
                std::max(lane.finishCycle, other.finishCycle);
            lane.suspendedCycles += other.suspendedCycles;
            lane.preemptions += other.preemptions;
        }
        total.energy.regDynamic += s.energy.regDynamic;
        total.energy.regStatic += s.energy.regStatic;
        total.energy.compressor += s.energy.compressor;
        total.energy.memory += s.energy.memory;
        total.energy.rest += s.energy.rest;
    }
    // The shared DRAM's accesses were counted once per instance
    // harvest; take them from the shared model directly.
    total.dramAccesses = _dram->stats().counter("accesses").value();
    return total;
}

} // namespace regless::sim
