#include "sim/trace_writer.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>

namespace regless::sim
{

void
TraceWriter::addComplete(unsigned pid, unsigned tid,
                         const std::string &name, Cycle ts, Cycle dur)
{
    _events.push_back({'X', pid, tid, name, ts, dur});
}

void
TraceWriter::addInstant(unsigned pid, unsigned tid,
                        const std::string &name, Cycle ts)
{
    _events.push_back({'i', pid, tid, name, ts, 0});
}

void
TraceWriter::write(std::ostream &os) const
{
    std::vector<const Event *> order;
    order.reserve(_events.size());
    for (const Event &e : _events)
        order.push_back(&e);
    std::stable_sort(order.begin(), order.end(),
                     [](const Event *a, const Event *b) {
                         return a->ts < b->ts;
                     });

    os << "{\"traceEvents\":[";
    bool first = true;
    for (const Event *e : order) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"";
        for (char c : e->name) {
            if (c == '"' || c == '\\')
                os << '\\';
            os << c;
        }
        os << "\",\"ph\":\"" << e->phase << "\",\"pid\":" << e->pid
           << ",\"tid\":" << e->tid << ",\"ts\":" << e->ts;
        if (e->phase == 'X')
            os << ",\"dur\":" << e->dur;
        else
            os << ",\"s\":\"t\"";
        os << "}";
    }
    os << "]}";
}

namespace
{

/**
 * Minimal recursive parser for the subset TraceWriter emits: objects
 * of string / unsigned-number values, one nested array of such
 * objects. Kept separate from stats_io's reader, which is private to
 * that translation unit and tied to the flat RunStats schema.
 */
class TraceParser
{
  public:
    explicit TraceParser(const std::string &text) : _text(text) {}

    struct EventFields
    {
        std::map<std::string, std::string> strings;
        std::map<std::string, double> numbers;
    };

    /** Parse the whole document into per-event field maps. */
    bool
    parse(std::vector<EventFields> &events, std::string *error)
    {
        _error = error;
        if (!expect('{') || !parseTopObject(events))
            return false;
        skipSpace();
        if (_pos != _text.size())
            return fail("trailing characters after trace object");
        return true;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (_error && _error->empty())
            *_error = "trace: " + message + " (offset " +
                      std::to_string(_pos) + ")";
        return false;
    }

    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    expect(char c)
    {
        skipSpace();
        if (_pos >= _text.size() || _text[_pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++_pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (_pos < _text.size() && _text[_pos] != '"') {
            char c = _text[_pos++];
            if (c == '\\') {
                if (_pos >= _text.size())
                    return fail("dangling escape");
                c = _text[_pos++];
            }
            out.push_back(c);
        }
        if (_pos >= _text.size())
            return fail("unterminated string");
        ++_pos;
        return true;
    }

    bool
    parseNumber(double &out)
    {
        skipSpace();
        const char *begin = _text.c_str() + _pos;
        char *end = nullptr;
        out = std::strtod(begin, &end);
        if (end == begin)
            return fail("expected a number");
        _pos += static_cast<std::size_t>(end - begin);
        return true;
    }

    bool
    parseEvent(EventFields &out)
    {
        if (!expect('{'))
            return false;
        for (;;) {
            std::string key;
            if (!parseString(key) || !expect(':'))
                return false;
            skipSpace();
            if (_pos >= _text.size())
                return fail("unexpected end in event");
            if (_text[_pos] == '"') {
                std::string value;
                if (!parseString(value))
                    return false;
                out.strings[key] = value;
            } else {
                double value;
                if (!parseNumber(value))
                    return false;
                out.numbers[key] = value;
            }
            skipSpace();
            if (_pos >= _text.size())
                return fail("unexpected end in event");
            char c = _text[_pos++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}' in event");
        }
    }

    bool
    parseTopObject(std::vector<EventFields> &events)
    {
        std::string key;
        if (!parseString(key))
            return false;
        if (key != "traceEvents")
            return fail("first key must be \"traceEvents\"");
        if (!expect(':') || !expect('['))
            return false;
        skipSpace();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return expect('}');
        }
        for (;;) {
            events.emplace_back();
            if (!parseEvent(events.back()))
                return false;
            skipSpace();
            if (_pos >= _text.size())
                return fail("unexpected end in traceEvents");
            char c = _text[_pos++];
            if (c == ']')
                return expect('}');
            if (c != ',')
                return fail("expected ',' or ']' in traceEvents");
        }
    }

    const std::string &_text;
    std::size_t _pos = 0;
    std::string *_error = nullptr;
};

} // namespace

bool
validateChromeTrace(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    std::vector<TraceParser::EventFields> events;
    TraceParser parser(text);
    if (!parser.parse(events, error))
        return false;

    auto fail = [&](std::size_t i, const std::string &message) {
        if (error)
            *error = "trace event " + std::to_string(i) + ": " + message;
        return false;
    };
    double last_ts = 0.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &e = events[i];
        if (!e.strings.count("name") || e.strings.at("name").empty())
            return fail(i, "missing name");
        if (!e.strings.count("ph"))
            return fail(i, "missing ph");
        const std::string &ph = e.strings.at("ph");
        if (ph != "X" && ph != "i")
            return fail(i, "unexpected phase '" + ph + "'");
        for (const char *field : {"pid", "tid", "ts"}) {
            if (!e.numbers.count(field))
                return fail(i, std::string("missing ") + field);
            if (e.numbers.at(field) < 0)
                return fail(i, std::string("negative ") + field);
        }
        if (ph == "X" && (!e.numbers.count("dur") ||
                          e.numbers.at("dur") < 0)) {
            return fail(i, "complete event without a valid dur");
        }
        const double ts = e.numbers.at("ts");
        if (i > 0 && ts < last_ts)
            return fail(i, "timestamps not monotonic");
        last_ts = ts;
    }
    return true;
}

} // namespace regless::sim
