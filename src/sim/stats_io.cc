#include "sim/stats_io.hh"

#include <sstream>

namespace regless::sim
{

namespace
{

/** Minimal JSON object writer: key ordering is emission order. */
class JsonObject
{
  public:
    explicit JsonObject(std::ostream &os) : _os(os) { _os << "{"; }

    ~JsonObject() { _os << "}"; }

    void
    field(const char *key, const std::string &value)
    {
        sep();
        _os << "\"" << key << "\":\"";
        for (char c : value) {
            if (c == '"' || c == '\\')
                _os << '\\';
            _os << c;
        }
        _os << "\"";
    }

    void
    field(const char *key, std::uint64_t value)
    {
        sep();
        _os << "\"" << key << "\":" << value;
    }

    void
    field(const char *key, double value)
    {
        sep();
        _os << "\"" << key << "\":" << value;
    }

    void
    fieldArray(const char *key, const std::vector<double> &values)
    {
        sep();
        _os << "\"" << key << "\":[";
        for (std::size_t i = 0; i < values.size(); ++i)
            _os << (i ? "," : "") << values[i];
        _os << "]";
    }

  private:
    void
    sep()
    {
        if (_first)
            _first = false;
        else
            _os << ",";
    }

    std::ostream &_os;
    bool _first = true;
};

} // namespace

void
writeJson(std::ostream &os, const RunStats &stats)
{
    JsonObject obj(os);
    obj.field("kernel", stats.kernel);
    obj.field("provider", std::string(providerName(stats.provider)));
    obj.field("cycles", static_cast<std::uint64_t>(stats.cycles));
    obj.field("insns", stats.insns);
    obj.field("metadata_insns", stats.metadataInsns);
    obj.field("l1_accesses", stats.l1Accesses);
    obj.field("l2_accesses", stats.l2Accesses);
    obj.field("dram_accesses", stats.dramAccesses);
    obj.field("rf_reads", stats.rfReads);
    obj.field("rf_writes", stats.rfWrites);
    obj.field("osu_accesses", stats.osuAccesses);
    obj.field("osu_tag_lookups", stats.osuTagLookups);
    obj.field("compressor_accesses", stats.compressorAccesses);
    obj.field("preload_src_osu", stats.preloadSrcOsu);
    obj.field("preload_src_compressor", stats.preloadSrcCompressor);
    obj.field("preload_src_l1", stats.preloadSrcL1);
    obj.field("preload_src_l2dram", stats.preloadSrcL2Dram);
    obj.field("l1_preload_reqs", stats.l1PreloadReqs);
    obj.field("l1_store_reqs", stats.l1StoreReqs);
    obj.field("l1_invalidate_reqs", stats.l1InvalidateReqs);
    obj.field("working_set_bytes", stats.meanWorkingSetBytes);
    obj.field("region_preloads_mean", stats.regionPreloadsMean);
    obj.field("region_live_mean", stats.regionLiveMean);
    obj.field("region_live_stddev", stats.regionLiveStddev);
    obj.field("region_cycles_mean", stats.regionCyclesMean);
    obj.field("static_insns_per_region", stats.staticInsnsPerRegion);
    obj.field("num_regions",
              static_cast<std::uint64_t>(stats.numRegions));
    obj.field("energy_reg_dynamic", stats.energy.regDynamic);
    obj.field("energy_reg_static", stats.energy.regStatic);
    obj.field("energy_compressor", stats.energy.compressor);
    obj.field("energy_memory", stats.energy.memory);
    obj.field("energy_rest", stats.energy.rest);
    obj.field("energy_total", stats.energy.total());
    obj.fieldArray("backing_series", stats.backingSeries);
}

void
writeJson(std::ostream &os, const std::vector<RunStats> &runs)
{
    os << "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i)
            os << ",";
        writeJson(os, runs[i]);
    }
    os << "]";
}

std::string
toJson(const RunStats &stats)
{
    std::ostringstream oss;
    writeJson(oss, stats);
    return oss.str();
}

} // namespace regless::sim
