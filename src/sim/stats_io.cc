#include "sim/stats_io.hh"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace regless::sim
{

namespace
{

/**
 * Internal parse failure. Thrown by the reader so callers choose the
 * policy: fromJson() converts it to fatal(), tryFromJson() to false.
 */
struct JsonParseError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

template <typename... Args>
[[noreturn]] void
parseFail(Args &&...args)
{
    throw JsonParseError(
        detail::formatMessage(std::forward<Args>(args)...));
}

/** Minimal JSON object writer: key ordering is emission order. */
class JsonObject
{
  public:
    explicit JsonObject(std::ostream &os) : _os(os) { _os << "{"; }

    ~JsonObject() { _os << "}"; }

    void
    field(const char *key, const std::string &value)
    {
        sep();
        _os << "\"" << key << "\":\"";
        for (char c : value) {
            if (c == '"' || c == '\\')
                _os << '\\';
            _os << c;
        }
        _os << "\"";
    }

    void
    field(const char *key, std::uint64_t value)
    {
        sep();
        _os << "\"" << key << "\":" << value;
    }

    void
    field(const char *key, double value)
    {
        sep();
        _os << "\"" << key << "\":" << value;
    }

    void
    fieldArray(const char *key, const std::vector<double> &values)
    {
        sep();
        _os << "\"" << key << "\":[";
        for (std::size_t i = 0; i < values.size(); ++i)
            _os << (i ? "," : "") << values[i];
        _os << "]";
    }

  private:
    void
    sep()
    {
        if (_first)
            _first = false;
        else
            _os << ",";
    }

    std::ostream &_os;
    bool _first = true;
};

/**
 * Single-pass parser for the flat writeJson() schema: one object of
 * string / number / array-of-number values. Dispatches each key-value
 * pair to a callback as it is read.
 */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : _text(text) {}

    /** Current parse position (after an object: just past its '}'). */
    std::size_t pos() const { return _pos; }

    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    char
    peek()
    {
        skipSpace();
        if (_pos >= _text.size())
            parseFail("stats JSON: unexpected end of input");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            parseFail("stats JSON: expected '", c, "' at offset ", _pos,
                  ", found '", _text[_pos], "'");
        ++_pos;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (_pos < _text.size() && _text[_pos] != '"') {
            char c = _text[_pos++];
            if (c == '\\') {
                if (_pos >= _text.size())
                    parseFail("stats JSON: dangling escape");
                c = _text[_pos++];
            }
            out.push_back(c);
        }
        if (_pos >= _text.size())
            parseFail("stats JSON: unterminated string");
        ++_pos; // closing quote
        return out;
    }

    double
    parseNumber()
    {
        skipSpace();
        const char *begin = _text.c_str() + _pos;
        char *end = nullptr;
        double value = std::strtod(begin, &end);
        if (end == begin)
            parseFail("stats JSON: expected a number at offset ", _pos);
        _pos += static_cast<std::size_t>(end - begin);
        return value;
    }

    std::vector<double>
    parseNumberArray()
    {
        expect('[');
        std::vector<double> out;
        if (peek() == ']') {
            ++_pos;
            return out;
        }
        for (;;) {
            out.push_back(parseNumber());
            char c = peek();
            ++_pos;
            if (c == ']')
                return out;
            if (c != ',')
                parseFail("stats JSON: expected ',' or ']' in array");
        }
    }

    /** One JSON value handed to the object callback. */
    struct Value
    {
        enum class Kind
        {
            String,
            Number,
            Array,
        } kind;
        std::string str;
        double num = 0.0;
        std::vector<double> array;
    };

    template <typename Fn>
    void
    parseObject(Fn &&on_field)
    {
        expect('{');
        if (peek() == '}') {
            ++_pos;
            return;
        }
        for (;;) {
            std::string key = parseString();
            expect(':');
            Value v;
            char c = peek();
            if (c == '"') {
                v.kind = Value::Kind::String;
                v.str = parseString();
            } else if (c == '[') {
                v.kind = Value::Kind::Array;
                v.array = parseNumberArray();
            } else {
                v.kind = Value::Kind::Number;
                v.num = parseNumber();
            }
            on_field(key, v);
            c = peek();
            ++_pos;
            if (c == '}')
                return;
            if (c != ',')
                parseFail("stats JSON: expected ',' or '}' in object");
        }
    }

  private:
    const std::string &_text;
    std::size_t _pos = 0;
};

std::uint64_t
asCount(const JsonReader::Value &v)
{
    return static_cast<std::uint64_t>(v.num);
}

/** Apply one parsed key-value pair to @a stats (shared by the plain
 * RunStats reader and the JobRecord reader). Unknown keys are
 * ignored. */
void
applyRunField(RunStats &stats, const std::string &key,
              const JsonReader::Value &v)
{
        if (key == "kernel")
            stats.kernel = v.str;
        else if (key == "provider") {
            if (!tryProviderFromName(v.str, stats.provider))
                parseFail("stats JSON: unknown provider '", v.str,
                          "'");
        }
        else if (key == "cycles")
            stats.cycles = static_cast<Cycle>(v.num);
        else if (key == "insns")
            stats.insns = asCount(v);
        else if (key == "metadata_insns")
            stats.metadataInsns = asCount(v);
        else if (key == "l1_accesses")
            stats.l1Accesses = asCount(v);
        else if (key == "l2_accesses")
            stats.l2Accesses = asCount(v);
        else if (key == "dram_accesses")
            stats.dramAccesses = asCount(v);
        else if (key == "rf_reads")
            stats.rfReads = asCount(v);
        else if (key == "rf_writes")
            stats.rfWrites = asCount(v);
        else if (key == "rename_lookups")
            stats.renameLookups = asCount(v);
        else if (key == "lrf_accesses")
            stats.lrfAccesses = asCount(v);
        else if (key == "orf_accesses")
            stats.orfAccesses = asCount(v);
        else if (key == "mrf_accesses")
            stats.mrfAccesses = asCount(v);
        else if (key == "osu_accesses")
            stats.osuAccesses = asCount(v);
        else if (key == "osu_tag_lookups")
            stats.osuTagLookups = asCount(v);
        else if (key == "osu_bank_conflicts")
            stats.osuBankConflicts = asCount(v);
        else if (key == "compressor_accesses")
            stats.compressorAccesses = asCount(v);
        else if (key == "compressor_matches")
            stats.compressorMatches = asCount(v);
        else if (key == "compressor_incompressible")
            stats.compressorIncompressible = asCount(v);
        else if (key == "compressor_static_hits")
            stats.compressorStaticHits = asCount(v);
        else if (key == "compressor_static_unsound")
            stats.compressorStaticUnsound = asCount(v);
        else if (key == "osu_gated_bank_cycles")
            stats.osuGatedBankCycles = asCount(v);
        else if (key == "rf_cache_hits")
            stats.rfCacheHits = asCount(v);
        else if (key == "rf_cache_misses")
            stats.rfCacheMisses = asCount(v);
        else if (key == "spill_stores")
            stats.spillStores = asCount(v);
        else if (key == "fill_loads")
            stats.fillLoads = asCount(v);
        else if (key == "preload_src_osu")
            stats.preloadSrcOsu = asCount(v);
        else if (key == "preload_src_compressor")
            stats.preloadSrcCompressor = asCount(v);
        else if (key == "preload_src_l1")
            stats.preloadSrcL1 = asCount(v);
        else if (key == "preload_src_l2dram")
            stats.preloadSrcL2Dram = asCount(v);
        else if (key == "l1_preload_reqs")
            stats.l1PreloadReqs = asCount(v);
        else if (key == "l1_store_reqs")
            stats.l1StoreReqs = asCount(v);
        else if (key == "l1_invalidate_reqs")
            stats.l1InvalidateReqs = asCount(v);
        else if (key == "issued_slots")
            stats.issuedSlots = asCount(v);
        else if (key.rfind("stall_", 0) == 0) {
            for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
                const auto cause = static_cast<arch::StallCause>(c);
                if (key.compare(6, std::string::npos,
                                arch::stallCauseName(cause)) == 0) {
                    stats.stallSlots[c] = asCount(v);
                    break;
                }
            }
        }
        else if (key == "skipped_cycles")
            stats.skippedCycles = asCount(v);
        else if (key == "skip_events")
            stats.skipEvents = asCount(v);
        else if (key == "working_set_bytes")
            stats.meanWorkingSetBytes = v.num;
        else if (key == "region_preloads_mean")
            stats.regionPreloadsMean = v.num;
        else if (key == "region_live_mean")
            stats.regionLiveMean = v.num;
        else if (key == "region_live_stddev")
            stats.regionLiveStddev = v.num;
        else if (key == "region_cycles_mean")
            stats.regionCyclesMean = v.num;
        else if (key == "region_insns_mean")
            stats.regionInsnsMean = v.num;
        else if (key == "static_insns_per_region")
            stats.staticInsnsPerRegion = v.num;
        else if (key == "num_regions")
            stats.numRegions = static_cast<unsigned>(v.num);
        else if (key == "energy_reg_dynamic")
            stats.energy.regDynamic = v.num;
        else if (key == "energy_reg_static")
            stats.energy.regStatic = v.num;
        else if (key == "energy_compressor")
            stats.energy.compressor = v.num;
        else if (key == "energy_memory")
            stats.energy.memory = v.num;
        else if (key == "energy_rest")
            stats.energy.rest = v.num;
        else if (key == "backing_series")
            stats.backingSeries = v.array;
        else if (key == "tenant_count")
            stats.tenants.resize(static_cast<std::size_t>(v.num));
        else if (key.rfind("tenant", 0) == 0) {
            // "tenant<t>_<field>"; tenant_count precedes the lanes in
            // writeRunFields' emission order, so the vector is sized.
            const std::size_t sep = key.find('_');
            if (sep == std::string::npos || sep <= 6)
                return;
            char *end = nullptr;
            const unsigned long t =
                std::strtoul(key.c_str() + 6, &end, 10);
            if (end != key.c_str() + sep || t >= stats.tenants.size())
                return;
            TenantLane &lane = stats.tenants[t];
            const std::string field = key.substr(sep + 1);
            if (field == "kernel")
                lane.kernel = v.str;
            else if (field == "insns")
                lane.insns = asCount(v);
            else if (field == "issued_slots")
                lane.issuedSlots = asCount(v);
            else if (field == "finish_cycle")
                lane.finishCycle = static_cast<Cycle>(v.num);
            else if (field == "suspended_cycles")
                lane.suspendedCycles = asCount(v);
            else if (field == "preemptions")
                lane.preemptions = asCount(v);
            else if (field.rfind("stall_", 0) == 0) {
                for (std::size_t c = 0; c < arch::kNumStallCauses;
                     ++c) {
                    const auto cause =
                        static_cast<arch::StallCause>(c);
                    if (field.compare(6, std::string::npos,
                                      arch::stallCauseName(cause)) ==
                        0) {
                        lane.stallSlots[c] = asCount(v);
                        break;
                    }
                }
            }
        }
        // Unknown keys (e.g. derived "energy_total") are ignored.
}

RunStats
parseRun(JsonReader &reader)
{
    RunStats stats;
    reader.parseObject([&](const std::string &key,
                           const JsonReader::Value &v) {
        applyRunField(stats, key, v);
    });
    return stats;
}

/** Emit the RunStats fields into an open object (shared by the plain
 * writer and the JobRecord writer). */
void
writeRunFields(JsonObject &obj, const RunStats &stats)
{
    obj.field("kernel", stats.kernel);
    obj.field("provider", std::string(providerName(stats.provider)));
    obj.field("cycles", static_cast<std::uint64_t>(stats.cycles));
    obj.field("insns", stats.insns);
    obj.field("metadata_insns", stats.metadataInsns);
    obj.field("l1_accesses", stats.l1Accesses);
    obj.field("l2_accesses", stats.l2Accesses);
    obj.field("dram_accesses", stats.dramAccesses);
    obj.field("rf_reads", stats.rfReads);
    obj.field("rf_writes", stats.rfWrites);
    obj.field("rename_lookups", stats.renameLookups);
    obj.field("lrf_accesses", stats.lrfAccesses);
    obj.field("orf_accesses", stats.orfAccesses);
    obj.field("mrf_accesses", stats.mrfAccesses);
    obj.field("osu_accesses", stats.osuAccesses);
    obj.field("osu_tag_lookups", stats.osuTagLookups);
    obj.field("osu_bank_conflicts", stats.osuBankConflicts);
    obj.field("compressor_accesses", stats.compressorAccesses);
    obj.field("compressor_matches", stats.compressorMatches);
    obj.field("compressor_incompressible",
              stats.compressorIncompressible);
    obj.field("compressor_static_hits", stats.compressorStaticHits);
    obj.field("compressor_static_unsound",
              stats.compressorStaticUnsound);
    obj.field("osu_gated_bank_cycles", stats.osuGatedBankCycles);
    obj.field("rf_cache_hits", stats.rfCacheHits);
    obj.field("rf_cache_misses", stats.rfCacheMisses);
    obj.field("spill_stores", stats.spillStores);
    obj.field("fill_loads", stats.fillLoads);
    obj.field("preload_src_osu", stats.preloadSrcOsu);
    obj.field("preload_src_compressor", stats.preloadSrcCompressor);
    obj.field("preload_src_l1", stats.preloadSrcL1);
    obj.field("preload_src_l2dram", stats.preloadSrcL2Dram);
    obj.field("l1_preload_reqs", stats.l1PreloadReqs);
    obj.field("l1_store_reqs", stats.l1StoreReqs);
    obj.field("l1_invalidate_reqs", stats.l1InvalidateReqs);
    obj.field("issued_slots", stats.issuedSlots);
    for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
        const std::string key =
            std::string("stall_") +
            arch::stallCauseName(static_cast<arch::StallCause>(c));
        obj.field(key.c_str(), stats.stallSlots[c]);
    }
    obj.field("skipped_cycles", stats.skippedCycles);
    obj.field("skip_events", stats.skipEvents);
    obj.field("working_set_bytes", stats.meanWorkingSetBytes);
    obj.field("region_preloads_mean", stats.regionPreloadsMean);
    obj.field("region_live_mean", stats.regionLiveMean);
    obj.field("region_live_stddev", stats.regionLiveStddev);
    obj.field("region_cycles_mean", stats.regionCyclesMean);
    obj.field("region_insns_mean", stats.regionInsnsMean);
    obj.field("static_insns_per_region", stats.staticInsnsPerRegion);
    obj.field("num_regions",
              static_cast<std::uint64_t>(stats.numRegions));
    obj.field("energy_reg_dynamic", stats.energy.regDynamic);
    obj.field("energy_reg_static", stats.energy.regStatic);
    obj.field("energy_compressor", stats.energy.compressor);
    obj.field("energy_memory", stats.energy.memory);
    obj.field("energy_rest", stats.energy.rest);
    obj.field("energy_total", stats.energy.total());
    obj.fieldArray("backing_series", stats.backingSeries);
    // Tenant lanes are emitted only when present, so single-tenant
    // JSON stays byte-identical to pre-tenant builds.
    if (!stats.tenants.empty()) {
        obj.field("tenant_count",
                  static_cast<std::uint64_t>(stats.tenants.size()));
        for (std::size_t t = 0; t < stats.tenants.size(); ++t) {
            const TenantLane &lane = stats.tenants[t];
            const std::string p = "tenant" + std::to_string(t) + "_";
            obj.field((p + "kernel").c_str(), lane.kernel);
            obj.field((p + "insns").c_str(), lane.insns);
            obj.field((p + "issued_slots").c_str(), lane.issuedSlots);
            for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
                const std::string key =
                    p + "stall_" +
                    arch::stallCauseName(
                        static_cast<arch::StallCause>(c));
                obj.field(key.c_str(), lane.stallSlots[c]);
            }
            obj.field((p + "finish_cycle").c_str(),
                      static_cast<std::uint64_t>(lane.finishCycle));
            obj.field((p + "suspended_cycles").c_str(),
                      lane.suspendedCycles);
            obj.field((p + "preemptions").c_str(), lane.preemptions);
        }
    }
}

} // namespace

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Failed:
        return "failed";
      case JobStatus::Deadlocked:
        return "deadlocked";
      case JobStatus::Skipped:
        return "skipped";
    }
    return "?";
}

bool
tryJobStatusFromName(const std::string &name, JobStatus &out)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Failed,
                        JobStatus::Deadlocked, JobStatus::Skipped}) {
        if (name == jobStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

void
writeJson(std::ostream &os, const RunStats &stats)
{
    // Full precision so doubles survive a write -> read round-trip.
    const auto saved = os.precision(
        std::numeric_limits<double>::max_digits10);

    {
        JsonObject obj(os);
        writeRunFields(obj, stats);
    }

    os.precision(saved);
}

void
writeJson(std::ostream &os, const std::vector<RunStats> &runs)
{
    os << "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i)
            os << ",";
        writeJson(os, runs[i]);
    }
    os << "]";
}

std::string
toJson(const RunStats &stats)
{
    std::ostringstream oss;
    writeJson(oss, stats);
    return oss.str();
}

RunStats
fromJson(const std::string &json)
{
    RunStats stats;
    std::string error;
    if (!tryFromJson(json, stats, &error))
        fatal(error);
    return stats;
}

bool
tryFromJson(const std::string &json, RunStats &out, std::string *error)
{
    try {
        JsonReader reader(json);
        out = parseRun(reader);
        return true;
    } catch (const JsonParseError &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

void
writeJson(std::ostream &os, const JobRecord &record)
{
    const auto saved = os.precision(
        std::numeric_limits<double>::max_digits10);
    {
        // record_* first so a human (or grep) sees the outcome before
        // the stats body. The error/deadlock strings may span lines;
        // our reader accepts raw newlines inside strings (this is a
        // private round-trip format, not interchange JSON).
        JsonObject obj(os);
        obj.field("record_schema",
                  static_cast<std::uint64_t>(record.schema));
        obj.field("record_status",
                  std::string(jobStatusName(record.status)));
        obj.field("record_error", record.error);
        obj.field("record_deadlock", record.deadlock);
        obj.field("record_attempts",
                  static_cast<std::uint64_t>(record.attempts));
        writeRunFields(obj, record.stats);
    }
    os.precision(saved);
}

bool
tryRecordFromJson(const std::string &json, JobRecord &out,
                  std::string *error)
{
    try {
        JobRecord record;
        bool saw_schema = false, saw_status = false;
        JsonReader reader(json);
        reader.parseObject([&](const std::string &key,
                               const JsonReader::Value &v) {
            if (key == "record_schema") {
                record.schema = static_cast<unsigned>(v.num);
                saw_schema = true;
            } else if (key == "record_status") {
                if (!tryJobStatusFromName(v.str, record.status))
                    parseFail("stats JSON: unknown record status '",
                              v.str, "'");
                saw_status = true;
            } else if (key == "record_error") {
                record.error = v.str;
            } else if (key == "record_deadlock") {
                record.deadlock = v.str;
            } else if (key == "record_attempts") {
                record.attempts = static_cast<unsigned>(v.num);
            } else {
                applyRunField(record.stats, key, v);
            }
        });
        if (!saw_schema || !saw_status) {
            parseFail("stats JSON: not a job record (pre-watchdog "
                      "cache entry?)");
        }
        out = std::move(record);
        return true;
    } catch (const JsonParseError &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

std::vector<RunStats>
runsFromJson(const std::string &json)
{
    try {
        JsonReader reader(json);
        std::vector<RunStats> runs;
        reader.expect('[');
        if (reader.peek() == ']')
            return runs;
        for (;;) {
            runs.push_back(parseRun(reader));
            char c = reader.peek();
            if (c == ']')
                return runs;
            if (c != ',')
                parseFail(
                    "stats JSON: expected ',' or ']' between runs");
            // consume the comma
            reader.expect(',');
        }
    } catch (const JsonParseError &e) {
        fatal(e.what());
    }
}

} // namespace regless::sim
