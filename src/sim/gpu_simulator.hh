/**
 * @file
 * GpuSimulator: the library's top-level entry point. Compiles a
 * kernel, builds the configured operand-storage provider, runs it on
 * one SM, and returns RunStats. This is the API the examples and
 * every benchmark harness use.
 */

#ifndef REGLESS_SIM_GPU_SIMULATOR_HH
#define REGLESS_SIM_GPU_SIMULATOR_HH

#include <memory>
#include <ostream>

#include "arch/sm.hh"
#include "compiler/compiler.hh"
#include "compiler/finding.hh"
#include "ir/kernel.hh"
#include "mem/memory_system.hh"
#include "common/fault_injector.hh"
#include "common/sim_error.hh"
#include "regfile/baseline_rf.hh"
#include "regfile/register_provider.hh"
#include "regfile/tenant_arbiter.hh"
#include "sim/gpu_config.hh"
#include "sim/progress_monitor.hh"
#include "sim/run_stats.hh"
#include "sim/trace_writer.hh"

namespace regless::sim
{

/** One-SM GPU simulation of one kernel launch. */
class GpuSimulator
{
  public:
    /**
     * Compile @a kernel under @a config and assemble the machine.
     * Nothing executes until run().
     */
    GpuSimulator(const ir::Kernel &kernel, GpuConfig config);

    /** Variant with an externally shared DRAM (multi-SM simulation). */
    GpuSimulator(const ir::Kernel &kernel, GpuConfig config,
                 std::shared_ptr<mem::DramModel> shared_dram);

    /**
     * Multi-tenant launch (DESIGN.md §16): each kernel becomes one
     * SM tenant with its own warp partition, scheduler groups,
     * provider instance, and address segments. config.tenants supplies
     * priorities and the capacity policy; one kernel is exactly the
     * classic single-kernel simulation.
     */
    GpuSimulator(const std::vector<ir::Kernel> &kernels,
                 GpuConfig config);

    /** Multi-tenant variant with an externally shared DRAM. */
    GpuSimulator(const std::vector<ir::Kernel> &kernels,
                 GpuConfig config,
                 std::shared_ptr<mem::DramModel> shared_dram);

    /**
     * Run a pre-compiled kernel as-is, bypassing the compiler. The
     * mutation tests use this to execute deliberately corrupted
     * region annotations under the runtime shadow checker.
     */
    GpuSimulator(compiler::CompiledKernel ck, GpuConfig config);

    ~GpuSimulator();

    GpuSimulator(const GpuSimulator &) = delete;
    GpuSimulator &operator=(const GpuSimulator &) = delete;

    /**
     * Execute the kernel to completion and harvest statistics.
     *
     * Runs under a forward-progress watchdog: when no warp retires and
     * no CM activation happens for SmConfig::watchdogWindow cycles,
     * when SmConfig::maxCycles is exceeded, or when the optional
     * wall-clock budget expires, throws DeadlockError carrying a
     * populated DeadlockReport.
     *
     * @param wall_timeout_sec Wall-clock budget (0 = unlimited).
     */
    RunStats run(double wall_timeout_sec = 0.0);

    /** Harvest statistics without running (the SM must be done). */
    RunStats collect();

    /** @name Introspection (valid after construction). */
    /// @{
    const compiler::CompiledKernel &compiled() const
    {
        return *_cks.front();
    }
    mem::MemorySystem &memory() { return *_mem; }
    arch::Sm &sm() { return *_sm; }
    regfile::RegisterProvider &provider()
    {
        return *_providers.front();
    }
    const GpuConfig &config() const { return _config; }

    /** Co-resident tenants (1 for classic runs). */
    unsigned tenantCount() const
    {
        return static_cast<unsigned>(_cks.size());
    }
    const compiler::CompiledKernel &compiled(unsigned t) const
    {
        return *_cks[t];
    }
    regfile::RegisterProvider &provider(unsigned t)
    {
        return *_providers[t];
    }

    /** Sum of every tenant's provider progress events (the watchdog
     *  metric's provider half; exposed for the multi-SM runner). */
    std::uint64_t providerProgressEvents() const;
    /// @}

    /**
     * @name QoS controller (DESIGN.md §16). Active only when
     * config.tenants.qosPreemption is set, at least two tenants are
     * resident, and both a priority and a best-effort tenant exist.
     */
    /// @{
    /**
     * Act on the schedule at @a now: suspend best-effort tenants at
     * their interval boundary while a priority tenant is unfinished,
     * resume them for their share window (and permanently once every
     * priority tenant retires). Called by the run loops every
     * iteration; skip jumps are clamped to qosNextDecision() so both
     * stepping modes see every boundary cycle.
     */
    void qosPoll(Cycle now);

    /** Next cycle at which qosPoll() could change tenant state. */
    Cycle qosNextDecision(Cycle now) const;

    /**
     * Advance to min(@a epoch_end, completion) under the configured
     * stepping mode with QoS polling (the multi-SM epoch body).
     */
    void advanceEpoch(Cycle epoch_end);
    /// @}

    /**
     * Dynamic staging violations recorded by the shadow checker
     * (DESIGN.md §8). Only non-empty for a RegLess provider with
     * ReglessConfig::runtimeCheck set.
     */
    std::vector<compiler::Finding> runtimeViolations() const;

    /** Dump every component's raw statistics as text. */
    void dumpStats(std::ostream &os);

    /**
     * Build the synthetic memory-value generator for @a profile
     * (exposed so tests can validate the value mix).
     */
    static std::function<std::uint32_t(Addr)>
    valueGenerator(const ir::ValueProfile &profile);

    /**
     * Snapshot scheduler, staging, and memory state into a structured
     * report (used by the watchdog; exposed for the multi-SM runner).
     * @param since When non-null, the report's stall breakdown covers
     *        only the slots charged after this snapshot (the no-
     *        progress window); otherwise it covers the whole run.
     */
    DeadlockReport
    deadlockSnapshot(const ProgressMonitor &monitor,
                     ProgressMonitor::Verdict verdict, Cycle now,
                     const arch::StallSnapshot *since = nullptr,
                     int starved_tenant = -1) const;

    /**
     * Multi-SM instance identity for tracing: pid @a pid in the trace
     * and a ".sm<pid>" suffix on the output path. No-op when tracing
     * is disabled.
     */
    void setTraceInstance(unsigned pid);

    /**
     * Flush and write the trace file if tracing is enabled (called by
     * collect(); exposed so deadlocked runs still get their trace).
     * Idempotent per run.
     */
    void writeTrace();

  private:
    /** Shared tail of every ctor: memory, provider, SM. */
    void assemble(std::shared_ptr<mem::DramModel> shared_dram);

    void harvest(RunStats &stats);

    GpuConfig _config;
    std::vector<std::unique_ptr<compiler::CompiledKernel>> _cks;
    std::unique_ptr<mem::MemorySystem> _mem;
    std::vector<std::unique_ptr<regfile::RegisterProvider>> _providers;
    std::unique_ptr<regfile::TenantArbiter> _arbiter;
    std::unique_ptr<arch::Sm> _sm;

    /** @name QoS controller state (inert unless _qosActive). */
    /// @{
    bool _qosActive = false;
    bool _qosHogsParked = false;
    std::vector<unsigned> _qosHogs;      ///< best-effort tenant ids
    std::vector<unsigned> _qosSensitive; ///< priority tenant ids
    Cycle _qosRunWindow = 0; ///< hog run share of each interval
    /// @}
    std::unique_ptr<FaultInjector> _injector;
    std::unique_ptr<TraceWriter> _trace;
    unsigned _tracePid = 0;
    std::string _tracePath;
    bool _traceWritten = false;
};

} // namespace regless::sim

#endif // REGLESS_SIM_GPU_SIMULATOR_HH
