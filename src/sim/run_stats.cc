#include "sim/run_stats.hh"

#include "common/logging.hh"
#include "sim/provider_registry.hh"

namespace regless::sim
{

bool
operator==(const TenantLane &a, const TenantLane &b)
{
    return a.kernel == b.kernel && a.insns == b.insns &&
           a.issuedSlots == b.issuedSlots &&
           a.stallSlots == b.stallSlots &&
           a.finishCycle == b.finishCycle &&
           a.suspendedCycles == b.suspendedCycles &&
           a.preemptions == b.preemptions;
}

bool
operator==(const RunStats &a, const RunStats &b)
{
    return a.kernel == b.kernel && a.provider == b.provider &&
           a.cycles == b.cycles && a.insns == b.insns &&
           a.metadataInsns == b.metadataInsns &&
           a.l1Accesses == b.l1Accesses &&
           a.l2Accesses == b.l2Accesses &&
           a.dramAccesses == b.dramAccesses && a.rfReads == b.rfReads &&
           a.rfWrites == b.rfWrites &&
           a.renameLookups == b.renameLookups &&
           a.lrfAccesses == b.lrfAccesses &&
           a.orfAccesses == b.orfAccesses &&
           a.mrfAccesses == b.mrfAccesses &&
           a.osuAccesses == b.osuAccesses &&
           a.osuTagLookups == b.osuTagLookups &&
           a.osuBankConflicts == b.osuBankConflicts &&
           a.compressorAccesses == b.compressorAccesses &&
           a.compressorMatches == b.compressorMatches &&
           a.compressorIncompressible == b.compressorIncompressible &&
           a.compressorStaticHits == b.compressorStaticHits &&
           a.compressorStaticUnsound == b.compressorStaticUnsound &&
           a.osuGatedBankCycles == b.osuGatedBankCycles &&
           a.rfCacheHits == b.rfCacheHits &&
           a.rfCacheMisses == b.rfCacheMisses &&
           a.spillStores == b.spillStores &&
           a.fillLoads == b.fillLoads &&
           a.preloadSrcOsu == b.preloadSrcOsu &&
           a.preloadSrcCompressor == b.preloadSrcCompressor &&
           a.preloadSrcL1 == b.preloadSrcL1 &&
           a.preloadSrcL2Dram == b.preloadSrcL2Dram &&
           a.l1PreloadReqs == b.l1PreloadReqs &&
           a.l1StoreReqs == b.l1StoreReqs &&
           a.l1InvalidateReqs == b.l1InvalidateReqs &&
           a.issuedSlots == b.issuedSlots &&
           a.stallSlots == b.stallSlots &&
           a.skippedCycles == b.skippedCycles &&
           a.skipEvents == b.skipEvents &&
           a.meanWorkingSetBytes == b.meanWorkingSetBytes &&
           a.backingSeries == b.backingSeries &&
           a.regionPreloadsMean == b.regionPreloadsMean &&
           a.regionLiveMean == b.regionLiveMean &&
           a.regionLiveStddev == b.regionLiveStddev &&
           a.regionCyclesMean == b.regionCyclesMean &&
           a.regionInsnsMean == b.regionInsnsMean &&
           a.staticInsnsPerRegion == b.staticInsnsPerRegion &&
           a.numRegions == b.numRegions && a.tenants == b.tenants &&
           a.energy.regDynamic == b.energy.regDynamic &&
           a.energy.regStatic == b.energy.regStatic &&
           a.energy.compressor == b.energy.compressor &&
           a.energy.memory == b.energy.memory &&
           a.energy.rest == b.energy.rest;
}

void
computeEnergy(RunStats &stats, const GpuConfig &config)
{
    const energy::EnergyConfig &e = config.energy;
    energy::EnergyBreakdown out;

    const double cycles = static_cast<double>(stats.cycles);
    // Register-structure terms are per-design: the provider's registry
    // descriptor fills regDynamic/regStatic/compressor.
    providerDescriptor(stats.provider)
        .registerEnergy(stats, config, out);

    out.memory = static_cast<double>(stats.l1Accesses) * e.l1Access +
                 static_cast<double>(stats.l2Accesses) * e.l2Access +
                 static_cast<double>(stats.dramAccesses) * e.dramAccess;
    out.rest = static_cast<double>(stats.insns) * e.restPerInsn +
               static_cast<double>(stats.metadataInsns) *
                   e.metadataInsnEnergy +
               e.restStaticPerCycle * cycles;

    stats.energy = out;
}

energy::EnergyBreakdown
noRfBound(const RunStats &baseline)
{
    if (baseline.provider != ProviderKind::Baseline)
        fatal("the No-RF bound is defined relative to a baseline run");
    energy::EnergyBreakdown bound = baseline.energy;
    bound.regDynamic = 0.0;
    bound.regStatic = 0.0;
    bound.compressor = 0.0;
    return bound;
}

} // namespace regless::sim
