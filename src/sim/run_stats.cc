#include "sim/run_stats.hh"

#include "common/logging.hh"

namespace regless::sim
{

void
computeEnergy(RunStats &stats, const GpuConfig &config)
{
    const energy::EnergyConfig &e = config.energy;
    energy::EnergyBreakdown out;

    const double cycles = static_cast<double>(stats.cycles);
    switch (stats.provider) {
      case ProviderKind::Baseline:
        out.regDynamic = static_cast<double>(stats.rfReads +
                                             stats.rfWrites) *
                         e.accessEnergy(config.baselineRfEntries);
        out.regStatic = e.staticPower(config.baselineRfEntries) * cycles;
        break;
      case ProviderKind::Rfv:
        out.regDynamic =
            static_cast<double>(stats.rfReads + stats.rfWrites) *
                e.accessEnergy(config.rfvPhysEntries) +
            static_cast<double>(stats.renameLookups) * e.renameAccess;
        out.regStatic = e.staticPower(config.rfvPhysEntries) * cycles;
        break;
      case ProviderKind::Rfh:
        // The MRF stays full size; short-lived values hit the small
        // levels instead.
        out.regDynamic =
            static_cast<double>(stats.lrfAccesses) * e.lrfAccess +
            static_cast<double>(stats.orfAccesses) * e.orfAccess +
            static_cast<double>(stats.mrfAccesses) *
                e.accessEnergy(config.baselineRfEntries);
        out.regStatic = e.staticPower(config.baselineRfEntries) * cycles;
        break;
      case ProviderKind::Regless:
      case ProviderKind::ReglessNoCompressor:
        out.regDynamic =
            (static_cast<double>(stats.osuAccesses) *
                 e.accessEnergy(config.regless.osuEntriesPerSm) +
             static_cast<double>(stats.osuTagLookups) * e.tagAccess) *
            e.osuOverheadFactor;
        out.regStatic = e.staticPower(config.regless.osuEntriesPerSm) *
                        e.osuOverheadFactor * cycles;
        if (stats.provider == ProviderKind::Regless) {
            out.compressor =
                static_cast<double>(stats.compressorAccesses) *
                    e.compressorAccess +
                e.compressorStaticPerCycle * cycles;
        }
        break;
    }

    out.memory = static_cast<double>(stats.l1Accesses) * e.l1Access +
                 static_cast<double>(stats.l2Accesses) * e.l2Access +
                 static_cast<double>(stats.dramAccesses) * e.dramAccess;
    out.rest = static_cast<double>(stats.insns) * e.restPerInsn +
               static_cast<double>(stats.metadataInsns) *
                   e.metadataInsnEnergy +
               e.restStaticPerCycle * cycles;

    stats.energy = out;
}

energy::EnergyBreakdown
noRfBound(const RunStats &baseline)
{
    if (baseline.provider != ProviderKind::Baseline)
        fatal("the No-RF bound is defined relative to a baseline run");
    energy::EnergyBreakdown bound = baseline.energy;
    bound.regDynamic = 0.0;
    bound.regStatic = 0.0;
    bound.compressor = 0.0;
    return bound;
}

} // namespace regless::sim
