/**
 * @file
 * Forward-progress watchdog for the cycle loops (DESIGN.md §9).
 *
 * RegLess's capacity manager is supposed to guarantee forward
 * progress (§4.4); the ProgressMonitor is the defence for when that
 * invariant — or any other part of the machine — breaks. The run loop
 * feeds it a monotonic progress metric (retired instructions plus CM
 * activations) every cycle; the monitor trips when the metric is
 * flat for a configurable window, when a hard cycle budget is
 * exceeded, or when an optional wall-clock deadline passes. The
 * caller then assembles a DeadlockReport and throws DeadlockError.
 */

#ifndef REGLESS_SIM_PROGRESS_MONITOR_HH
#define REGLESS_SIM_PROGRESS_MONITOR_HH

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace regless::sim
{

/** Watchdog over one simulation's cycle loop. */
class ProgressMonitor
{
  public:
    enum class Verdict
    {
        Ok,
        Stalled,     ///< no progress for a full watchdog window
        CycleBudget, ///< hard maxCycles budget exceeded
        WallTimeout, ///< wall-clock deadline passed
    };

    /**
     * @param window Cycles without progress before Stalled
     *        (0 disables the stall check).
     * @param max_cycles Hard cycle budget (0 disables).
     * @param wall_timeout_sec Wall-clock budget for the whole run
     *        (0 disables). Checked coarsely, every few thousand
     *        cycles, so healthy runs never pay for a syscall per
     *        cycle.
     */
    ProgressMonitor(Cycle window, Cycle max_cycles,
                    double wall_timeout_sec = 0.0);

    /**
     * Record the progress metric at @a now and judge the run.
     * @param progress Any monotonically non-decreasing activity count
     *        (retired instructions + provider progress events).
     */
    Verdict check(Cycle now, std::uint64_t progress);

    /** Cycle of the last observed progress-metric increase. */
    Cycle lastProgressCycle() const { return _lastProgressCycle; }

    /**
     * @name Per-tenant starvation tracking (DESIGN.md §16).
     *
     * The global metric sums all tenants, so one starved tenant is
     * invisible behind a co-runner's progress. trackTenants() arms a
     * per-tenant window; the run loop then feeds each tenant's own
     * metric through checkTenant() every time it checks the whole SM.
     */
    /// @{
    /** Arm per-tenant tracking for @a count tenants. */
    void trackTenants(unsigned count);

    /**
     * Record tenant @a t's progress metric at @a now; true when the
     * tenant is starved (no progress for a full window). @a exempt
     * (suspended or finished tenants) restarts the window instead of
     * judging — a tenant parked by the QoS controller is not starved.
     */
    bool checkTenant(unsigned t, Cycle now, std::uint64_t progress,
                     bool exempt);

    /** Last cycle tenant @a t progressed (or was exempt). */
    Cycle tenantLastProgressCycle(unsigned t) const
    {
        return _tenants[t].lastProgressCycle;
    }
    /// @}

    Cycle window() const { return _window; }
    Cycle maxCycles() const { return _maxCycles; }

    /**
     * Skip ceiling for the cycle-skip engine: the earliest future
     * cycle at which this monitor could return a non-Ok verdict or
     * poll the wall clock. Clamping skip jumps to this bound makes
     * watchdog trips land on exactly the same cycle as cycle-by-cycle
     * stepping (the deadlock-report determinism the oracle tests
     * check), and keeps the coarse wall-clock poll alive.
     * @param now The cycle loop's current cycle.
     */
    Cycle skipLimit(Cycle now) const;

    /** Human-readable reason for a non-Ok verdict. */
    static const char *reason(Verdict verdict);

  private:
    struct TenantTrack
    {
        std::uint64_t lastProgress = 0;
        Cycle lastProgressCycle = 0;
        bool exempt = false;
    };

    Cycle _window;
    Cycle _maxCycles;
    double _wallTimeoutSec;
    std::chrono::steady_clock::time_point _start;
    std::uint64_t _lastProgress = 0;
    Cycle _lastProgressCycle = 0;
    std::vector<TenantTrack> _tenants;
};

} // namespace regless::sim

#endif // REGLESS_SIM_PROGRESS_MONITOR_HH
