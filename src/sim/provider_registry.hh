/**
 * @file
 * The self-describing provider registry (DESIGN.md §13.1).
 *
 * Every operand-storage design contributes exactly one descriptor:
 * its canonical name, how to construct it, its default scheduler and
 * occupancy behaviour, how to harvest its counters into RunStats, and
 * its energy and area models. Every consumer — simulator assembly,
 * name parsing, config canonicalisation, stat collection, the energy
 * and area models, and the per-provider figure loops — iterates this
 * table instead of switching on ProviderKind, so a half-registered
 * provider is a compile error rather than a silent "?" at runtime.
 */

#ifndef REGLESS_SIM_PROVIDER_REGISTRY_HH
#define REGLESS_SIM_PROVIDER_REGISTRY_HH

#include <array>
#include <memory>

#include "sim/gpu_config.hh"
#include "sim/run_stats.hh"

namespace regless::compiler
{
class CompiledKernel;
}

namespace regless::sim
{

/** Everything the framework needs to know about one provider. */
struct ProviderDescriptor
{
    ProviderKind kind;

    /** Canonical name: --provider argument, fingerprint key, cache
     *  file component. */
    const char *name;

    /** Human-readable title for figure headers and reports. */
    const char *title;

    /** Scheduler the published technique assumes
     *  (GpuConfig::forProvider default). */
    arch::SchedulerPolicy scheduler;

    /**
     * True when the design keeps a fixed architectural register file
     * whose capacity bounds warp occupancy (see
     * GpuConfig::limitOccupancyByRf). Virtualising designs
     * oversubscribe and keep full occupancy.
     */
    bool fixedArchitecturalRf;

    /**
     * Construct the provider for an assembled simulator, serving the
     * SM warp slots [warp_base, warp_base + warp_count). Whole-SM
     * launches pass (0, config.sm.numWarps); under multi-tenant
     * operation each tenant's instance gets its warp partition.
     * Designs whose structures are indexed by global warp id simply
     * size for the whole SM and ignore the range.
     */
    std::unique_ptr<regfile::RegisterProvider> (*make)(
        const compiler::CompiledKernel &ck, mem::MemorySystem &mem,
        const GpuConfig &config, WarpId warp_base,
        unsigned warp_count);

    /** Per-provider canonical-config tuning (may be null). */
    void (*tuneConfig)(GpuConfig &config);

    /** Harvest the provider's counters into RunStats. The provider
     *  was built by make(), so the hook may downcast statically. */
    void (*collect)(regfile::RegisterProvider &provider,
                    RunStats &stats);

    /** Fill the register-structure terms (regDynamic, regStatic,
     *  compressor) of the energy breakdown. */
    void (*registerEnergy)(const RunStats &stats,
                           const GpuConfig &config,
                           energy::EnergyBreakdown &out);

    /** Area of the design's operand-storage structures. */
    energy::AreaBreakdown (*area)(const GpuConfig &config);
};

/** The registry, in canonical (enum) order. */
const std::array<ProviderDescriptor, kNumProviderKinds> &
providerRegistry();

/** Descriptor lookup; the table is indexed by enum value. */
const ProviderDescriptor &providerDescriptor(ProviderKind kind);

} // namespace regless::sim

#endif // REGLESS_SIM_PROVIDER_REGISTRY_HH
