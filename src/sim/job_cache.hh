/**
 * @file
 * JobCache: the experiment engine's on-disk memoization store, built
 * to be shared by a fleet of report processes (CI shards, sweep
 * workers on several machines) hammering one directory. Entries are
 * JobRecords (stats_io) keyed by the job's config fingerprint and
 * partitioned into 256 shard subdirectories (the fingerprint's low
 * byte) so no directory grows unbounded. See DESIGN.md §15.
 *
 * Safety model:
 *  - Writers publish with write-temp-then-atomic-rename; temp names
 *    carry the PID and a per-process nonce so concurrent writers and
 *    a crashed writer's leftovers never collide.
 *  - A janitor sweeps stale temp files (older than a threshold) the
 *    first time a shard is written, so `kill -9` mid-write only costs
 *    a few bytes until the next writer passes by.
 *  - Writes to one shard coalesce through an advisory flock with
 *    bounded exponential backoff; on timeout (or where flock is
 *    unavailable) the writer falls back to lock-free operation —
 *    atomic rename keeps that correct, the lock only avoids
 *    redundant work. After the lock, an entry published by the race
 *    winner is detected and the duplicate write is skipped.
 *  - Every environmental failure (unwritable directory, full disk,
 *    failed rename) degrades the cache to a structured read-only or
 *    disabled mode with a reason string for the report footer; the
 *    cache never throws and never crashes the run.
 *  - A CacheFaultPlan injects the failure modes deterministically
 *    (torn write, rename failure, ENOSPC, concurrent clobber, crash
 *    after temp) so the chaos tests can prove all of the above.
 */

#ifndef REGLESS_SIM_JOB_CACHE_HH
#define REGLESS_SIM_JOB_CACHE_HH

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "sim/stats_io.hh"

namespace regless::sim
{

/**
 * Content schema of one cache entry, stamped into both the record
 * body (record_schema) and the fingerprint text, so entries written
 * under a different schema miss instead of half-parsing.
 */
// v3: divergence-aware invalidating preloads changed compiled regions.
// v4: entries became JobRecords (outcome + stats).
// v5: RunStats gained issue-slot attribution.
// v6: RunStats gained the cycle-skip meta-counters.
// v7: the provider registry added the rfcache/regdem designs.
// v8: static value-range compression fields; entries moved from a
//     flat directory into per-fingerprint shard subdirectories.
// v9: multi-tenant SMs — RunStats gained per-tenant lanes and the
//     config fingerprint gained the tenants.* block.
constexpr unsigned kJobCacheSchemaVersion = 9;

/**
 * Deterministic failure injection for the cache layer, mirroring the
 * simulator's FaultPlan (DESIGN.md §9): one environmental fault,
 * fired at a chosen store() call, optionally on every store after it.
 */
struct CacheFaultPlan
{
    enum class Kind : std::uint8_t
    {
        None,       ///< no fault (the default)
        TornWrite,  ///< publish a half-written entry (disk corruption)
        RenameFail, ///< the atomic publish rename fails
        Enospc,     ///< the temp-file write fails (disk full)
        Clobber,    ///< a rival writer publishes the entry first
        CrashAfterTmp, ///< writer dies after the temp, before rename
    };

    Kind kind = Kind::None;

    /** Index of the first store() call the fault fires on (0-based). */
    unsigned triggerStore = 0;

    /** Fire on every store at/after the trigger, not just once (for
     * driving the repeated-failure degradation ladder). */
    bool repeat = false;
};

/** Canonical fault-kind name for diagnostics and tests. */
const char *cacheFaultKindName(CacheFaultPlan::Kind kind);

/** Rung of the cache degradation ladder. */
enum class CacheMode
{
    ReadWrite, ///< healthy
    ReadOnly,  ///< serving hits, but writes are disabled
    Disabled,  ///< no directory, or the directory is unusable
};

/** Name for a CacheMode ("read-write", "read-only", "disabled"). */
const char *cacheModeName(CacheMode mode);

/** Observability counters for the report footer and the tests. */
struct CacheCounters
{
    std::uint64_t hits = 0;          ///< load() served a valid record
    std::uint64_t misses = 0;        ///< load() found nothing usable
    std::uint64_t stores = 0;        ///< entries published
    std::uint64_t storeFailures = 0; ///< writes that failed and were
                                     ///< cleaned up
    std::uint64_t corrupt = 0;       ///< unparseable entries (counted
                                     ///< as misses)
    std::uint64_t schemaRejects = 0; ///< parseable entries under a
                                     ///< different schema
    std::uint64_t coalesced = 0;     ///< duplicate writes skipped
                                     ///< (race winner already
                                     ///< published)
    std::uint64_t lockWaits = 0;     ///< stores that found the shard
                                     ///< lock held and backed off
    std::uint64_t lockTimeouts = 0;  ///< backoffs that hit the bound
                                     ///< and fell back to lock-free
    std::uint64_t janitorRemoved = 0; ///< stale temp files swept
};

/** Crash- and concurrency-tolerant sharded record store. */
class JobCache
{
  public:
    /** One entry's identity: its leaf file name plus the fingerprint
     * that names it (the shard is the fingerprint's low byte). */
    struct Key
    {
        std::string file;
        std::uint64_t fingerprint = 0;
    };

    struct Options
    {
        /** Cache root; empty = CacheMode::Disabled. */
        std::string dir;

        /** Start at CacheMode::ReadOnly (never write). */
        bool readOnly = false;

        /** Schema entries must carry to be served. */
        unsigned expectedSchema = kJobCacheSchemaVersion;

        /** Total bounded-backoff budget before a store proceeds
         * without the shard lock, in milliseconds. */
        unsigned lockTimeoutMs = 200;

        /** Temp files older than this are janitor fodder. */
        double staleTmpAgeSec = 3600.0;

        /** Consecutive store failures before writes are disabled. */
        unsigned maxStoreFailures = 3;

        /** Chaos injection (tests only). */
        CacheFaultPlan faults;
    };

    JobCache() = default;
    explicit JobCache(Options options);

    /**
     * Current rung of the degradation ladder. Opening is lazy, so the
     * mode can move (ReadWrite -> ReadOnly) as failures accumulate;
     * it never recovers within one process.
     */
    CacheMode mode() const { return _mode; }

    /** Why the cache is not read-write ("" while healthy). */
    const std::string &modeReason() const { return _modeReason; }

    bool enabled() const { return _mode != CacheMode::Disabled; }

    /**
     * Fetch the record for @a key. Corrupt, truncated, torn,
     * tampered, or wrong-schema entries are misses, never errors; a
     * wrong-schema entry additionally warns once per process with a
     * diagnosis naming both schemas (a *newer* schema means a newer
     * build shares this directory — its entries must not be
     * half-parsed into this build's narrower RunStats).
     */
    bool load(const Key &key, JobRecord &out);

    /**
     * Publish the record for @a key with temp-write + atomic rename
     * under the shard's advisory lock. Returns false (and counts,
     * and warns once per process) when the write failed; the temp
     * file is always cleaned up on failure. Repeated failures
     * degrade the cache to read-only instead of warning forever.
     */
    bool store(const Key &key, const JobRecord &record);

    const CacheCounters &counters() const { return _counters; }
    const Options &options() const { return _options; }

    /** Absolute path of @a key's entry (shard dir included). */
    std::filesystem::path entryPath(const Key &key) const;

    /** Shard subdirectory name for a fingerprint ("00".."ff"). */
    static std::string shardName(std::uint64_t fingerprint);

    /** Relative entry path (shard/leaf) for a key. */
    static std::filesystem::path relativePath(const Key &key);

    /**
     * Recover the fingerprint from an entry's leaf name
     * ("<kernel>-<provider>-<N>sm-<hex>.json"); false when the name
     * is not a cache entry. Used by verify/gc to spot entries filed
     * under the wrong shard.
     */
    static bool parseEntryName(const std::string &file,
                               std::uint64_t &fingerprint);

    /** True when @a file is a writer's temp file (".tmp." infix). */
    static bool isTempName(const std::string &file);

  private:
    /** Lazily probe/create the directory; sets _mode on failure. */
    bool ensureOpen();

    /** Move to @a mode with @a reason (never moves "up"). */
    void degrade(CacheMode mode, std::string reason);

    /** Sweep stale temps in @a shard (first store only). */
    void janitor(const std::filesystem::path &shard);

    /** True when the fault plan fires for this store index. */
    bool faultFires(CacheFaultPlan::Kind kind, unsigned index) const;

    /** Count, warn once, and maybe degrade after a failed store. */
    void storeFailed(const std::filesystem::path &path,
                     const std::string &why);

    Options _options;
    CacheMode _mode = CacheMode::Disabled;
    std::string _modeReason = "no cache directory configured";
    bool _opened = false;
    CacheCounters _counters;
    unsigned _consecutiveStoreFailures = 0;
    unsigned _storeIndex = 0;
    bool _warnedStoreFailure = false;
    bool _warnedSchema = false;
    std::set<std::string> _sweptShards;
};

/** @name Cache maintenance (the regless_cache tool and its tests). */
/// @{

/** What one survey pass found in a cache directory. */
struct CacheSurvey
{
    std::uint64_t entries = 0;       ///< parseable records
    std::uint64_t okRecords = 0;     ///< status == Ok
    std::uint64_t failedRecords = 0; ///< status == Failed
    std::uint64_t deadlockedRecords = 0;
    std::uint64_t corrupt = 0;     ///< unparseable .json files
    std::uint64_t wrongSchema = 0; ///< schema != expectedSchema
    std::uint64_t newerSchema = 0; ///< subset of wrongSchema: newer
    std::uint64_t misplaced = 0;   ///< entry not in its fingerprint's
                                   ///< shard (or at the flat root)
    std::uint64_t tempFiles = 0;   ///< writer temp files present
    std::uint64_t otherFiles = 0;  ///< unrecognized names (locks
                                   ///< excluded)
    std::uint64_t totalBytes = 0;  ///< bytes in entries + temps
    std::uint64_t shardsUsed = 0;  ///< shard subdirectories present
    /** Paths (relative to the root) of corrupt/misplaced files, for
     * the verify report. */
    std::vector<std::string> suspects;
};

/** Walk @a dir and classify everything in it. Missing directory =
 * empty survey (a cache that was never written is healthy). */
CacheSurvey cacheSurveyDir(const std::filesystem::path &dir,
                           unsigned expectedSchema =
                               kJobCacheSchemaVersion);

struct CacheGcOptions
{
    /** Remove entries older than this (0 = no age limit). */
    double maxAgeSec = 0.0;

    /** Evict oldest entries until the cache fits (0 = no bound). */
    std::uint64_t maxBytes = 0;

    /** Never remove files younger than this, whatever the policy
     * says: an entry this fresh may be mid-publish by a live writer
     * (the live-lock safety margin). */
    double graceSec = 300.0;

    /** Also remove corrupt entries and files in the wrong shard. */
    bool removeCorrupt = false;

    /** Report what would be removed without removing it. */
    bool dryRun = false;

    /** Per-shard lock wait budget; a shard whose lock stays held is
     * skipped, not spun on. */
    unsigned lockTimeoutMs = 200;
};

struct CacheGcResult
{
    std::uint64_t removedEntries = 0;
    std::uint64_t removedTemps = 0;
    std::uint64_t removedBytes = 0;
    std::uint64_t keptEntries = 0;
    std::uint64_t skippedShards = 0; ///< lock never came free
};

/**
 * Garbage-collect @a dir: stale temps always, then age policy, then
 * size policy (oldest first). Each shard is cleaned under its
 * advisory lock with a bounded wait so gc can never live-lock
 * against writers — a busy shard is skipped and left for next time.
 */
CacheGcResult cacheGcDir(const std::filesystem::path &dir,
                         const CacheGcOptions &options);

/// @}

} // namespace regless::sim

#endif // REGLESS_SIM_JOB_CACHE_HH
