/**
 * @file
 * Chrome-trace-format (chrome://tracing / Perfetto) event collector
 * for the stall-attribution layer (DESIGN.md section 10).
 *
 * Events are buffered and written as one {"traceEvents":[...]} object
 * sorted by timestamp. pid = SM instance, tid = warp, ts/dur are in
 * cycles (the viewer displays them as microseconds; the scale is
 * relative so the shapes are what matter).
 */

#ifndef REGLESS_SIM_TRACE_WRITER_HH
#define REGLESS_SIM_TRACE_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace regless::sim
{

/** Buffers Chrome-trace events and writes the JSON file. */
class TraceWriter
{
  public:
    /** A "ph":"X" complete event: [ts, ts+dur) on (pid, tid). */
    void addComplete(unsigned pid, unsigned tid,
                     const std::string &name, Cycle ts, Cycle dur);

    /** A thread-scoped "ph":"i" instant event at @a ts. */
    void addInstant(unsigned pid, unsigned tid, const std::string &name,
                    Cycle ts);

    /** Buffered event count. */
    std::size_t events() const { return _events.size(); }

    /**
     * Write the {"traceEvents": [...]} object, events sorted by
     * timestamp (stable: insertion order breaks ties).
     */
    void write(std::ostream &os) const;

  private:
    struct Event
    {
        char phase; ///< 'X' or 'i'
        unsigned pid;
        unsigned tid;
        std::string name;
        Cycle ts;
        Cycle dur; ///< complete events only
    };

    std::vector<Event> _events;
};

/**
 * Validate @a text as a well-formed Chrome trace from this writer:
 * parseable JSON of the flat shape TraceWriter emits, a traceEvents
 * array whose entries all carry name/ph/pid/tid/ts (plus dur for "X"
 * events), and non-decreasing ts across the array.
 * @return true when valid; otherwise false with *error set.
 */
bool validateChromeTrace(const std::string &text, std::string *error);

} // namespace regless::sim

#endif // REGLESS_SIM_TRACE_WRITER_HH
