#include "sim/gpu_config.hh"

#include <algorithm>

#include "common/logging.hh"

namespace regless::sim
{

const char *
providerName(ProviderKind kind)
{
    switch (kind) {
      case ProviderKind::Baseline: return "baseline";
      case ProviderKind::Rfh: return "rfh";
      case ProviderKind::Rfv: return "rfv";
      case ProviderKind::Regless: return "regless";
      case ProviderKind::ReglessNoCompressor: return "regless_nocomp";
    }
    return "?";
}

ProviderKind
providerFromName(const std::string &name)
{
    for (ProviderKind kind :
         {ProviderKind::Baseline, ProviderKind::Rfh, ProviderKind::Rfv,
          ProviderKind::Regless, ProviderKind::ReglessNoCompressor}) {
        if (name == providerName(kind))
            return kind;
    }
    fatal("unknown provider name '", name, "'");
}

GpuConfig
GpuConfig::forProvider(ProviderKind kind)
{
    GpuConfig config;
    config.provider = kind;
    // Both prior techniques are built around the two-level scheduler
    // ([11] integrally; [19] as evaluated in the paper, Fig. 16);
    // baseline and RegLess use GTO (Table 1).
    if (kind == ProviderKind::Rfh || kind == ProviderKind::Rfv)
        config.sm.scheduler = arch::SchedulerPolicy::TwoLevel;
    if (kind == ProviderKind::ReglessNoCompressor)
        config.regless.compressorEnabled = false;
    return config;
}

void
GpuConfig::setOsuCapacity(unsigned entries)
{
    regless.osuEntriesPerSm = entries;
    const unsigned shards = regless.numShards;
    if (entries % (shards * 8) != 0)
        fatal("OSU capacity ", entries, " must divide into ", shards,
              " shards of 8 banks");
    const unsigned lines_per_bank = entries / shards / 8;
    // Regions must leave headroom so several warps stay concurrent.
    compiler.maxRegsPerBank =
        std::max(1u, std::min(12u, lines_per_bank * 3 / 4));
    compiler.maxRegsPerRegion =
        std::max(4u, std::min(32u, entries / shards / 2));
}

} // namespace regless::sim
