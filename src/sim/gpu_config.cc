#include "sim/gpu_config.hh"

#include <algorithm>
#include <limits>
#include <sstream>
#include <type_traits>

#include "common/logging.hh"

namespace regless::sim
{

/*
 * providerName / tryProviderFromName / providerFromName / forProvider
 * live in sim/provider_registry.cc: they are single-table lookups over
 * the provider registry, so a provider missing from the registry
 * cannot have a name or a canonical config.
 */

void
GpuConfig::setOsuCapacity(unsigned entries)
{
    regless.osuEntriesPerSm = entries;
    const unsigned shards = regless.numShards;
    if (entries % (shards * 8) != 0)
        fatal("OSU capacity ", entries, " must divide into ", shards,
              " shards of 8 banks");
    const unsigned lines_per_bank = entries / shards / 8;
    // Regions must leave headroom so several warps stay concurrent.
    compiler.maxRegsPerBank =
        std::max(1u, std::min(12u, lines_per_bank * 3 / 4));
    compiler.maxRegsPerRegion =
        std::max(4u, std::min(32u, entries / shards / 2));
}

namespace
{

/**
 * Collects "prefix.field=value" pairs. Numbers are rendered at full
 * precision so any representable change to a field changes the dump.
 */
class KeyValueSink
{
  public:
    explicit KeyValueSink(
        std::vector<std::pair<std::string, std::string>> &out)
        : _out(out)
    {
    }

    template <typename T>
    void
    add(const std::string &key, T value)
    {
        std::ostringstream oss;
        if constexpr (std::is_same_v<T, bool>) {
            oss << (value ? 1 : 0);
        } else if constexpr (std::is_enum_v<T>) {
            oss << static_cast<long long>(value);
        } else if constexpr (std::is_floating_point_v<T>) {
            oss.precision(std::numeric_limits<T>::max_digits10);
            oss << value;
        } else {
            oss << value;
        }
        _out.emplace_back(key, oss.str());
    }

  private:
    std::vector<std::pair<std::string, std::string>> &_out;
};

/*
 * Field-count tripwires: each dump function destructures its struct
 * with a structured binding naming every field. Adding (or removing)
 * a field in any of these structs makes the binding ill-formed, so
 * the build breaks until the dump — and therefore the fingerprint —
 * covers the new field.
 */

void
dump(KeyValueSink &kv, const std::string &p,
     const arch::ExecLatencies &c)
{
    const auto &[alu, sfu, shared_mem, control] = c;
    kv.add(p + "alu", alu);
    kv.add(p + "sfu", sfu);
    kv.add(p + "shared_mem", shared_mem);
    kv.add(p + "control", control);
}

void
dump(KeyValueSink &kv, const std::string &p, const arch::SmConfig &c)
{
    const auto &[num_warps, num_schedulers, issue_width, scheduler,
                 latencies, max_cycles, watchdog_window, data_base,
                 shared_base, long_stall_threshold, max_resident_warps,
                 cycle_skip] = c;
    kv.add(p + "num_warps", num_warps);
    kv.add(p + "num_schedulers", num_schedulers);
    kv.add(p + "issue_width", issue_width);
    kv.add(p + "scheduler", scheduler);
    dump(kv, p + "latencies.", latencies);
    kv.add(p + "max_cycles", max_cycles);
    kv.add(p + "watchdog_window", watchdog_window);
    kv.add(p + "data_base", data_base);
    kv.add(p + "shared_base", shared_base);
    kv.add(p + "long_stall_threshold", long_stall_threshold);
    kv.add(p + "max_resident_warps", max_resident_warps);
    kv.add(p + "cycle_skip", cycle_skip);
}

void
dump(KeyValueSink &kv, const std::string &p, const mem::CacheConfig &c)
{
    const auto &[size_bytes, ways, mshrs, write_back, write_allocate] =
        c;
    kv.add(p + "size_bytes", size_bytes);
    kv.add(p + "ways", ways);
    kv.add(p + "mshrs", mshrs);
    kv.add(p + "write_back", write_back);
    kv.add(p + "write_allocate", write_allocate);
}

void
dump(KeyValueSink &kv, const std::string &p, const mem::DramConfig &c)
{
    const auto &[channels, cycles_per_line, access_latency,
                 bandwidth_share] = c;
    kv.add(p + "channels", channels);
    kv.add(p + "cycles_per_line", cycles_per_line);
    kv.add(p + "access_latency", access_latency);
    kv.add(p + "bandwidth_share", bandwidth_share);
}

void
dump(KeyValueSink &kv, const std::string &p, const mem::MemConfig &c)
{
    const auto &[l1, l2, dram, l1_latency, l2_latency,
                 l2_cycles_per_line, bypass_l1_data] = c;
    dump(kv, p + "l1.", l1);
    dump(kv, p + "l2.", l2);
    dump(kv, p + "dram.", dram);
    kv.add(p + "l1_latency", l1_latency);
    kv.add(p + "l2_latency", l2_latency);
    kv.add(p + "l2_cycles_per_line", l2_cycles_per_line);
    kv.add(p + "bypass_l1_data", bypass_l1_data);
}

void
dump(KeyValueSink &kv, const std::string &p,
     const compiler::CompilerConfig &c)
{
    const auto &[max_regs_per_region, max_regs_per_bank,
                 min_region_insns, split_load_use, reassign_banks] = c;
    kv.add(p + "max_regs_per_region", max_regs_per_region);
    kv.add(p + "max_regs_per_bank", max_regs_per_bank);
    kv.add(p + "min_region_insns", min_region_insns);
    kv.add(p + "split_load_use", split_load_use);
    kv.add(p + "reassign_banks", reassign_banks);
}

void
dump(KeyValueSink &kv, const std::string &p,
     const staging::CompressorConfig &c)
{
    const auto &[cache_lines, regs_per_line, hit_latency,
                 check_latency, pattern_mask] = c;
    kv.add(p + "cache_lines", cache_lines);
    kv.add(p + "regs_per_line", regs_per_line);
    kv.add(p + "hit_latency", hit_latency);
    kv.add(p + "check_latency", check_latency);
    kv.add(p + "pattern_mask", pattern_mask);
}

void
dump(KeyValueSink &kv, const std::string &p,
     const staging::ReglessConfig &c)
{
    const auto &[osu_entries, num_shards, preload_slots,
                 compressor_enabled, compressor, compression_mode,
                 bank_gating, fifo_activation, victim_order, reg_base,
                 compressed_base, runtime_check] = c;
    kv.add(p + "osu_entries_per_sm", osu_entries);
    kv.add(p + "num_shards", num_shards);
    kv.add(p + "preload_slots_per_shard", preload_slots);
    kv.add(p + "compressor_enabled", compressor_enabled);
    dump(kv, p + "compressor.", compressor);
    kv.add(p + "compression_mode", compression_mode);
    kv.add(p + "bank_gating", bank_gating);
    kv.add(p + "fifo_activation", fifo_activation);
    kv.add(p + "victim_order", victim_order);
    kv.add(p + "reg_base", reg_base);
    kv.add(p + "compressed_base", compressed_base);
    kv.add(p + "runtime_check", runtime_check);
}

void
dump(KeyValueSink &kv, const std::string &p,
     const energy::EnergyConfig &c)
{
    const auto &[rf_access_2048, capacity_exponent, tag_access,
                 rename_access, lrf_access, orf_access,
                 compressor_access, osu_overhead_factor, l1_access,
                 l2_access, dram_access, rf_static_2048,
                 compressor_static, rest_per_insn,
                 metadata_insn_energy, rest_static] = c;
    kv.add(p + "rf_access_2048", rf_access_2048);
    kv.add(p + "capacity_exponent", capacity_exponent);
    kv.add(p + "tag_access", tag_access);
    kv.add(p + "rename_access", rename_access);
    kv.add(p + "lrf_access", lrf_access);
    kv.add(p + "orf_access", orf_access);
    kv.add(p + "compressor_access", compressor_access);
    kv.add(p + "osu_overhead_factor", osu_overhead_factor);
    kv.add(p + "l1_access", l1_access);
    kv.add(p + "l2_access", l2_access);
    kv.add(p + "dram_access", dram_access);
    kv.add(p + "rf_static_2048_per_cycle", rf_static_2048);
    kv.add(p + "compressor_static_per_cycle", compressor_static);
    kv.add(p + "rest_per_insn", rest_per_insn);
    kv.add(p + "metadata_insn_energy", metadata_insn_energy);
    kv.add(p + "rest_static_per_cycle", rest_static);
}

void
dump(KeyValueSink &kv, const std::string &p,
     const energy::AreaConfig &c)
{
    const auto &[storage_fraction, logic_fraction, logic_exponent,
                 compressor_area, regless_storage_overhead] = c;
    kv.add(p + "storage_fraction", storage_fraction);
    kv.add(p + "logic_fraction", logic_fraction);
    kv.add(p + "logic_exponent", logic_exponent);
    kv.add(p + "compressor_area", compressor_area);
    kv.add(p + "regless_storage_overhead", regless_storage_overhead);
}

void
dump(KeyValueSink &kv, const std::string &p, const FaultPlan &c)
{
    const auto &[kind, trigger_cycle, transient] = c;
    kv.add(p + "kind", std::string(faultKindName(kind)));
    kv.add(p + "trigger_cycle", trigger_cycle);
    kv.add(p + "transient", transient);
}

void
dump(KeyValueSink &kv, const std::string &p, const TraceConfig &c)
{
    const auto &[enabled, path] = c;
    kv.add(p + "enabled", enabled);
    kv.add(p + "path", path);
}

void
dump(KeyValueSink &kv, const std::string &p, const TenantConfig &c)
{
    const auto &[workloads, policy, quota_lines, reserve_frac,
                 qos_preemption, qos_interval, qos_share, data_stride,
                 shared_stride] = c;
    kv.add(p + "count", workloads.size());
    for (std::size_t t = 0; t < workloads.size(); ++t) {
        const auto &[kernel, priority] = workloads[t];
        const std::string tp = p + std::to_string(t) + ".";
        kv.add(tp + "kernel", kernel);
        kv.add(tp + "priority", priority);
    }
    kv.add(p + "policy",
           std::string(regfile::capacityPolicyName(policy)));
    kv.add(p + "quota_lines", quota_lines);
    kv.add(p + "reserve_frac", reserve_frac);
    kv.add(p + "qos_preemption", qos_preemption);
    kv.add(p + "qos_interval", qos_interval);
    kv.add(p + "qos_share", qos_share);
    kv.add(p + "data_stride", data_stride);
    kv.add(p + "shared_stride", shared_stride);
}

void
dump(KeyValueSink &kv, const std::string &p,
     const regfile::RfHierarchy::Params &c)
{
    const auto &[lrf_max_distance, orf_max_distance,
                 orf_entries_per_warp] = c;
    kv.add(p + "lrf_max_distance", lrf_max_distance);
    kv.add(p + "orf_max_distance", orf_max_distance);
    kv.add(p + "orf_entries_per_warp", orf_entries_per_warp);
}

void
dump(KeyValueSink &kv, const std::string &p,
     const regfile::CompilerRfCache::Params &c)
{
    const auto &[cache_entries_per_warp, miss_penalty,
                 max_def_use_distance] = c;
    kv.add(p + "cache_entries_per_warp", cache_entries_per_warp);
    kv.add(p + "miss_penalty", miss_penalty);
    kv.add(p + "max_def_use_distance", max_def_use_distance);
}

void
dump(KeyValueSink &kv, const std::string &p,
     const regfile::RegDemProvider::Params &c)
{
    const auto &[hot_regs_per_warp, spill_base] = c;
    kv.add(p + "hot_regs_per_warp", hot_regs_per_warp);
    kv.add(p + "spill_base", spill_base);
}

} // namespace

std::vector<std::pair<std::string, std::string>>
configKeyValues(const GpuConfig &config)
{
    const auto &[provider, sm, mem, compiler_cfg, regless, energy,
                 area, baseline_rf_entries, limit_occupancy_by_rf,
                 rfv_phys_entries, rfh, rf_cache, regdem, faults,
                 trace, tenants] = config;

    std::vector<std::pair<std::string, std::string>> out;
    KeyValueSink kv(out);
    kv.add("provider", std::string(providerName(provider)));
    dump(kv, "sm.", sm);
    dump(kv, "mem.", mem);
    dump(kv, "compiler.", compiler_cfg);
    dump(kv, "regless.", regless);
    dump(kv, "energy.", energy);
    dump(kv, "area.", area);
    kv.add("baseline_rf_entries", baseline_rf_entries);
    kv.add("limit_occupancy_by_rf", limit_occupancy_by_rf);
    kv.add("rfv_phys_entries", rfv_phys_entries);
    dump(kv, "rfh.", rfh);
    dump(kv, "rf_cache.", rf_cache);
    dump(kv, "regdem.", regdem);
    dump(kv, "faults.", faults);
    dump(kv, "trace.", trace);
    dump(kv, "tenants.", tenants);
    return out;
}

std::string
configCanonicalText(const GpuConfig &config)
{
    std::string text;
    for (const auto &[key, value] : configKeyValues(config)) {
        text += key;
        text += '=';
        text += value;
        text += '\n';
    }
    return text;
}

std::string
compilerConfigText(const compiler::CompilerConfig &config)
{
    std::vector<std::pair<std::string, std::string>> pairs;
    KeyValueSink kv(pairs);
    dump(kv, "compiler.", config);
    std::string text;
    for (const auto &[key, value] : pairs) {
        text += key;
        text += '=';
        text += value;
        text += '\n';
    }
    return text;
}

std::uint64_t
configFingerprint(const GpuConfig &config)
{
    const std::string text = configCanonicalText(config);
    std::uint64_t hash = 1469598103934665603ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

} // namespace regless::sim
