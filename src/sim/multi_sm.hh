/**
 * @file
 * Multi-SM simulation: N SMs advanced in lockstep, each with its own
 * warps, operand provider, L1 and L2 slice, all contending for one
 * shared DRAM. The GPU of Table 1 has 16 SMs; the single-SM default
 * approximates their shared-resource pressure analytically (a
 * bandwidth share), while this runs the contention for real.
 *
 * Modelling notes: every SM executes the same kernel over its own
 * 64-warp grid slice (functional state is per-SM, so there is no
 * cross-SM data sharing — matching how Rodinia kernels partition
 * work). The shared L2 is approximated as per-SM slices of the 2 MB
 * total, which is how physically banked GPU L2s behave for
 * interleaved, non-shared working sets.
 *
 * Execution model: SMs advance in barrier-synchronized epochs of
 * epochCycles cycles. Within an epoch each SM touches only its own
 * state plus its private DRAM port, so the epochs run on a thread
 * pool; at each barrier the shared DRAM drains the epoch's requests in
 * fixed SM-id order (see DramModel). Results are therefore
 * bit-identical for every thread count — threads == 1 runs the same
 * protocol inline and is the serial reference.
 */

#ifndef REGLESS_SIM_MULTI_SM_HH
#define REGLESS_SIM_MULTI_SM_HH

#include <memory>
#include <vector>

#include "ir/kernel.hh"
#include "sim/gpu_config.hh"
#include "sim/gpu_simulator.hh"
#include "sim/run_stats.hh"

namespace regless::sim
{

/** N SMs sharing DRAM. */
class MultiSmSimulator
{
  public:
    /**
     * Cycles per epoch (barrier interval). Small against the 220-cycle
     * DRAM latency, so the one-epoch staleness of cross-SM queueing is
     * negligible; large enough to amortize the barrier. Fixed — the
     * epoch length is part of the arbitration semantics, and changing
     * it changes results (thread count never does).
     */
    static constexpr Cycle epochCycles = 32;

    /**
     * @param kernel Kernel every SM executes.
     * @param config Per-SM configuration; the DRAM bandwidth share is
     *        forced to 1.0 (contention is simulated, not scaled) and
     *        the L2 is sliced num_sms ways.
     * @param num_sms Number of SMs to instantiate.
     * @param threads Worker threads for run(): 0 picks
     *        min(num_sms, hardware_concurrency); 1 is the serial
     *        reference path. Any value yields bit-identical results.
     */
    MultiSmSimulator(const ir::Kernel &kernel, GpuConfig config,
                     unsigned num_sms, unsigned threads = 0);

    /**
     * Multi-tenant variant: every SM co-hosts all of @a kernels under
     * config.tenants (DESIGN.md §16). One kernel is exactly the
     * classic constructor.
     */
    MultiSmSimulator(const std::vector<ir::Kernel> &kernels,
                     GpuConfig config, unsigned num_sms,
                     unsigned threads = 0);

    ~MultiSmSimulator();

    MultiSmSimulator(const MultiSmSimulator &) = delete;
    MultiSmSimulator &operator=(const MultiSmSimulator &) = delete;

    /**
     * Run all SMs to completion in lockstep epochs.
     *
     * The whole GPU runs under one forward-progress watchdog (summed
     * progress across SMs, checked at epoch barriers); a trip throws
     * DeadlockError with the first stuck SM's snapshot. An exception
     * raised inside any SM's epoch is captured on its worker thread
     * and rethrown after the barrier — lowest SM id first, so the
     * surfaced error is independent of the thread count.
     *
     * @param wall_timeout_sec Wall-clock budget (0 = unlimited).
     * @return aggregate stats: cycles = slowest SM, traffic and energy
     * summed across SMs.
     */
    RunStats run(double wall_timeout_sec = 0.0);

    /** Per-SM results (valid after run()). */
    const std::vector<RunStats> &perSm() const { return _perSm; }

    unsigned numSms() const
    {
        return static_cast<unsigned>(_sms.size());
    }

    /** Worker threads run() will use. */
    unsigned threads() const { return _threads; }

    /** The shared DRAM model (for queueing statistics). */
    mem::DramModel &dram() { return *_dram; }

  private:
    /**
     * One SM's machinery. Mirrors GpuSimulator's wiring but with the
     * externally shared DRAM.
     */
    struct Instance;

    GpuConfig _config;
    std::shared_ptr<mem::DramModel> _dram;
    std::vector<std::unique_ptr<Instance>> _sms;
    std::vector<RunStats> _perSm;
    unsigned _threads = 1;
};

} // namespace regless::sim

#endif // REGLESS_SIM_MULTI_SM_HH
