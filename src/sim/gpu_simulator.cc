#include "sim/gpu_simulator.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sim/provider_registry.hh"

namespace regless::sim
{

namespace
{

const char *
warpStatusName(arch::WarpStatus s)
{
    switch (s) {
      case arch::WarpStatus::Running:
        return "running";
      case arch::WarpStatus::AtBarrier:
        return "at_barrier";
      case arch::WarpStatus::Finished:
        return "finished";
    }
    return "?";
}

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

std::function<std::uint32_t(Addr)>
GpuSimulator::valueGenerator(const ir::ValueProfile &profile)
{
    return [profile](Addr addr) -> std::uint32_t {
        const std::uint64_t line = addr / 128;
        const unsigned off = static_cast<unsigned>((addr % 128) / 4);
        const std::uint64_t h = mix64(line + 0x1234'5678);
        double sel =
            static_cast<double>(h >> 40) / static_cast<double>(1 << 24);
        const std::uint32_t base =
            static_cast<std::uint32_t>(mix64(line * 2654435761ull + 1));
        if ((sel -= profile.constantFrac) < 0.0)
            return base;
        if ((sel -= profile.stride1Frac) < 0.0)
            return base + off;
        if ((sel -= profile.stride4Frac) < 0.0)
            return base + 4 * off;
        if ((sel -= profile.halfWarpFrac) < 0.0) {
            if (off < 16)
                return base + off;
            return static_cast<std::uint32_t>(mix64(line * 31 + 7)) +
                   (off - 16);
        }
        return static_cast<std::uint32_t>(mix64(addr));
    };
}

GpuSimulator::GpuSimulator(const ir::Kernel &kernel, GpuConfig config)
    : GpuSimulator(kernel, std::move(config), nullptr)
{
}

GpuSimulator::GpuSimulator(const ir::Kernel &kernel, GpuConfig config,
                           std::shared_ptr<mem::DramModel> shared_dram)
    : _config(std::move(config))
{
    _ck = std::make_unique<compiler::CompiledKernel>(
        compiler::compile(kernel, _config.compiler));
    assemble(std::move(shared_dram));
}

GpuSimulator::GpuSimulator(compiler::CompiledKernel ck, GpuConfig config)
    : _config(std::move(config))
{
    _ck = std::make_unique<compiler::CompiledKernel>(std::move(ck));
    assemble(nullptr);
}

void
GpuSimulator::assemble(std::shared_ptr<mem::DramModel> shared_dram)
{
    _mem = shared_dram
               ? std::make_unique<mem::MemorySystem>(
                     _config.mem, std::move(shared_dram))
               : std::make_unique<mem::MemorySystem>(_config.mem);
    _mem->setValueGenerator(
        valueGenerator(_ck->kernel().valueProfile()));

    const ProviderDescriptor &desc =
        providerDescriptor(_config.provider);

    // Occupancy limit: a fixed architectural register file can only
    // host rfEntries / kernelRegs warps. Virtualising designs
    // oversubscribe the name space and keep full occupancy.
    if (_config.limitOccupancyByRf && desc.fixedArchitecturalRf) {
        unsigned regs = std::max(1u, _ck->kernel().numRegs());
        unsigned wpb = _ck->kernel().warpsPerBlock();
        unsigned fit = _config.baselineRfEntries / regs;
        fit = std::max(wpb, fit - fit % wpb); // block granularity
        if (fit < _config.sm.numWarps) {
            inform("occupancy limited to ", fit, " of ",
                   _config.sm.numWarps, " resident warps (", regs,
                   " registers per warp)");
            _config.sm.maxResidentWarps = fit;
        }
    }

    _provider = desc.make(*_ck, *_mem, _config);

    _sm = std::make_unique<arch::Sm>(*_ck, *_mem, *_provider,
                                     _config.sm);

    _provider->bindWarpSource(
        [this](WarpId w) -> const arch::Warp & {
            return _sm->warp(w);
        });

    if (_config.trace.enabled) {
        _trace = std::make_unique<TraceWriter>();
        _tracePath = _config.trace.path + ".sm0";
        _sm->setStallTraceHook([this](WarpId warp, const char *label,
                                      Cycle from, Cycle to) {
            _trace->addComplete(_tracePid, warp, label, from,
                                to - from);
        });
        _provider->setActivationObserver(
            [this](WarpId warp, compiler::RegionId region, Cycle now) {
                _trace->addInstant(_tracePid, warp,
                                   "cm_activate r" +
                                       std::to_string(region),
                                   now);
            });
    }

    if (_config.faults.kind != FaultPlan::Kind::None) {
        _injector = std::make_unique<FaultInjector>(_config.faults);
        _mem->setFaultInjector(_injector.get());
        _provider->setFaultInjector(_injector.get());
    }
}

GpuSimulator::~GpuSimulator() = default;

std::vector<compiler::Finding>
GpuSimulator::runtimeViolations() const
{
    return _provider->runtimeViolations();
}

void
GpuSimulator::harvest(RunStats &stats)
{
    stats.insns = _sm->totalInsns();

    // Issue-slot attribution (provider-independent): issued + stalled
    // slots sum to numSchedulers * cycles exactly.
    stats.issuedSlots = _sm->issuedSlots();
    for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
        stats.stallSlots[c] =
            _sm->stallSlots(static_cast<arch::StallCause>(c));
    }

    // Cycle-skip meta-counters: how much of the run was collapsed.
    // Definitionally zero in skip-off reference runs; the differential
    // oracle zeroes them on both sides before comparing.
    stats.skippedCycles = _sm->skippedCycles();
    stats.skipEvents = _sm->skipEvents();

    // Memory hierarchy counts.
    auto cache_accesses = [](mem::Cache &cache) {
        return cache.stats().counter("hits").value() +
               cache.stats().counter("misses").value();
    };
    stats.l1Accesses = cache_accesses(_mem->l1());
    stats.l2Accesses = cache_accesses(_mem->l2());
    stats.dramAccesses = _mem->dram().stats().counter("accesses").value();

    // Provider-specific counters: each registry descriptor knows how
    // to harvest its own design.
    providerDescriptor(_config.provider).collect(*_provider, stats);

    stats.staticInsnsPerRegion = _ck->meanInsnsPerRegion();
    stats.numRegions = static_cast<unsigned>(_ck->regions().size());

    computeEnergy(stats, _config);
}

void
GpuSimulator::dumpStats(std::ostream &os)
{
    _sm->stats().dump(os);
    _provider->dumpStats(os);
    _mem->stats().dump(os);
    _mem->l1().stats().dump(os);
    _mem->l2().stats().dump(os);
    _mem->dram().stats().dump(os);
}

DeadlockReport
GpuSimulator::deadlockSnapshot(const ProgressMonitor &monitor,
                               ProgressMonitor::Verdict verdict,
                               Cycle now,
                               const arch::StallSnapshot *since) const
{
    DeadlockReport report;
    report.kernel = _ck->kernel().name();
    report.reason = ProgressMonitor::reason(verdict);
    report.cycle = now;
    report.lastProgressCycle = monitor.lastProgressCycle();
    report.watchdogWindow = monitor.window();
    report.maxCycles = monitor.maxCycles();
    report.insnsIssued = _sm->totalInsns();
    report.progressEvents =
        _sm->totalInsns() + _provider->progressEvents();

    for (const arch::Warp &w : _sm->warps()) {
        if (w.finished())
            continue;
        std::ostringstream os;
        os << "w" << w.id() << ": " << warpStatusName(w.status())
           << " pc=" << w.pc() << " insns=" << w.insnsExecuted();
        // The warp's dominant stall cause over the whole run.
        const auto &ws = _sm->warpStalls(w.id());
        std::size_t top = 0;
        for (std::size_t c = 1; c < arch::kNumStallCauses; ++c) {
            if (ws[c] > ws[top])
                top = c;
        }
        if (ws[top] > 0) {
            os << " stall="
               << arch::stallCauseName(
                      static_cast<arch::StallCause>(top));
        }
        _provider->describeWarp(w.id(), os);
        report.warps.push_back(os.str());
    }

    _provider->describeStorage(report.banks);

    std::ostringstream mem;
    mem << "L1 MSHRs in use: " << _mem->l1().mshrsInUse()
        << ", L2 MSHRs in use: " << _mem->l2().mshrsInUse();
    report.memState = mem.str();

    // Slot attribution over the no-progress window (or the whole run
    // when no baseline snapshot is supplied).
    const arch::StallSnapshot cur = _sm->slotSnapshot();
    const arch::StallSnapshot base =
        since ? *since : arch::StallSnapshot{};
    {
        std::ostringstream os;
        os << "issued: " << cur.issuedSlots - base.issuedSlots
           << " slots";
        report.stallBreakdown.push_back(os.str());
    }
    std::size_t top = 0;
    std::uint64_t top_delta = 0;
    std::uint64_t no_warp_delta = 0;
    for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
        const std::uint64_t delta =
            cur.stallSlots[c] - base.stallSlots[c];
        if (delta == 0)
            continue;
        const auto cause = static_cast<arch::StallCause>(c);
        std::ostringstream os;
        os << arch::stallCauseName(cause) << ": " << delta << " slots";
        report.stallBreakdown.push_back(os.str());
        // NoWarp marks schedulers with nothing runnable (e.g. groups
        // whose warps all finished); it never outranks a cause that
        // actually pins a live warp.
        if (cause == arch::StallCause::NoWarp) {
            no_warp_delta = delta;
            continue;
        }
        if (delta > top_delta) {
            top_delta = delta;
            top = c;
        }
    }
    if (top_delta > 0) {
        report.dominantStall =
            arch::stallCauseName(static_cast<arch::StallCause>(top));
    } else {
        report.dominantStall = no_warp_delta > 0 ? "no_warp" : "none";
    }
    return report;
}

void
GpuSimulator::setTraceInstance(unsigned pid)
{
    if (!_trace)
        return;
    _tracePid = pid;
    _tracePath = _config.trace.path + ".sm" + std::to_string(pid);
}

void
GpuSimulator::writeTrace()
{
    if (!_trace || _traceWritten)
        return;
    _sm->flushStallTrace();
    std::ofstream out(_tracePath, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot write trace file '", _tracePath, "'");
    _trace->write(out);
    out << "\n";
    if (!out)
        fatal("error writing trace file '", _tracePath, "'");
    _traceWritten = true;
}

RunStats
GpuSimulator::run(double wall_timeout_sec)
{
    ProgressMonitor monitor(_config.sm.watchdogWindow,
                            _config.sm.maxCycles, wall_timeout_sec);
    // Slot counters as of the last progress event, so a deadlock
    // report can attribute the stalled window specifically.
    arch::StallSnapshot at_progress = _sm->slotSnapshot();
    Cycle last_progress = monitor.lastProgressCycle();
    const bool skip = _config.sm.cycleSkip;
    while (!_sm->done()) {
        if (skip)
            _sm->stepSkipping(monitor.skipLimit(_sm->now()));
        else
            _sm->step();
        auto verdict = monitor.check(
            _sm->now(), _sm->totalInsns() + _provider->progressEvents());
        if (verdict != ProgressMonitor::Verdict::Ok) {
            writeTrace(); // a deadlocked run still gets its timeline
            throw DeadlockError(deadlockSnapshot(monitor, verdict,
                                                 _sm->now(),
                                                 &at_progress));
        }
        if (monitor.lastProgressCycle() != last_progress) {
            last_progress = monitor.lastProgressCycle();
            at_progress = _sm->slotSnapshot();
        }
    }
    return collect();
}

RunStats
GpuSimulator::collect()
{
    if (!_sm->done())
        fatal("collect() before the kernel finished");
    writeTrace();
    RunStats stats;
    stats.kernel = _ck->kernel().name();
    stats.provider = _config.provider;
    stats.cycles = _sm->now();
    harvest(stats);
    return stats;
}

} // namespace regless::sim
