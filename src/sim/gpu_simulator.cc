#include "sim/gpu_simulator.hh"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "sim/provider_registry.hh"

namespace regless::sim
{

namespace
{

const char *
warpStatusName(arch::WarpStatus s)
{
    switch (s) {
      case arch::WarpStatus::Running:
        return "running";
      case arch::WarpStatus::AtBarrier:
        return "at_barrier";
      case arch::WarpStatus::Finished:
        return "finished";
    }
    return "?";
}

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/**
 * Add @a from's provider-activity counters into @a into (multi-tenant
 * harvest: each tenant's provider is collected separately and the
 * footprints sum). Means and series have no meaningful cross-kernel
 * sum; they are taken from tenant 0.
 */
void
mergeProviderCounters(RunStats &into, const RunStats &from, bool first)
{
    into.metadataInsns += from.metadataInsns;
    into.rfReads += from.rfReads;
    into.rfWrites += from.rfWrites;
    into.renameLookups += from.renameLookups;
    into.lrfAccesses += from.lrfAccesses;
    into.orfAccesses += from.orfAccesses;
    into.mrfAccesses += from.mrfAccesses;
    into.osuAccesses += from.osuAccesses;
    into.osuTagLookups += from.osuTagLookups;
    into.osuBankConflicts += from.osuBankConflicts;
    into.compressorAccesses += from.compressorAccesses;
    into.compressorMatches += from.compressorMatches;
    into.compressorIncompressible += from.compressorIncompressible;
    into.compressorStaticHits += from.compressorStaticHits;
    into.compressorStaticUnsound += from.compressorStaticUnsound;
    into.osuGatedBankCycles += from.osuGatedBankCycles;
    into.rfCacheHits += from.rfCacheHits;
    into.rfCacheMisses += from.rfCacheMisses;
    into.spillStores += from.spillStores;
    into.fillLoads += from.fillLoads;
    into.preloadSrcOsu += from.preloadSrcOsu;
    into.preloadSrcCompressor += from.preloadSrcCompressor;
    into.preloadSrcL1 += from.preloadSrcL1;
    into.preloadSrcL2Dram += from.preloadSrcL2Dram;
    into.l1PreloadReqs += from.l1PreloadReqs;
    into.l1StoreReqs += from.l1StoreReqs;
    into.l1InvalidateReqs += from.l1InvalidateReqs;
    if (first) {
        into.meanWorkingSetBytes = from.meanWorkingSetBytes;
        into.backingSeries = from.backingSeries;
        into.regionPreloadsMean = from.regionPreloadsMean;
        into.regionLiveMean = from.regionLiveMean;
        into.regionLiveStddev = from.regionLiveStddev;
        into.regionCyclesMean = from.regionCyclesMean;
        into.regionInsnsMean = from.regionInsnsMean;
    }
}

} // namespace

std::function<std::uint32_t(Addr)>
GpuSimulator::valueGenerator(const ir::ValueProfile &profile)
{
    return [profile](Addr addr) -> std::uint32_t {
        const std::uint64_t line = addr / 128;
        const unsigned off = static_cast<unsigned>((addr % 128) / 4);
        const std::uint64_t h = mix64(line + 0x1234'5678);
        double sel =
            static_cast<double>(h >> 40) / static_cast<double>(1 << 24);
        const std::uint32_t base =
            static_cast<std::uint32_t>(mix64(line * 2654435761ull + 1));
        if ((sel -= profile.constantFrac) < 0.0)
            return base;
        if ((sel -= profile.stride1Frac) < 0.0)
            return base + off;
        if ((sel -= profile.stride4Frac) < 0.0)
            return base + 4 * off;
        if ((sel -= profile.halfWarpFrac) < 0.0) {
            if (off < 16)
                return base + off;
            return static_cast<std::uint32_t>(mix64(line * 31 + 7)) +
                   (off - 16);
        }
        return static_cast<std::uint32_t>(mix64(addr));
    };
}

GpuSimulator::GpuSimulator(const ir::Kernel &kernel, GpuConfig config)
    : GpuSimulator(kernel, std::move(config), nullptr)
{
}

GpuSimulator::GpuSimulator(const ir::Kernel &kernel, GpuConfig config,
                           std::shared_ptr<mem::DramModel> shared_dram)
    : _config(std::move(config))
{
    _cks.push_back(std::make_unique<compiler::CompiledKernel>(
        compiler::compile(kernel, _config.compiler)));
    assemble(std::move(shared_dram));
}

GpuSimulator::GpuSimulator(const std::vector<ir::Kernel> &kernels,
                           GpuConfig config)
    : GpuSimulator(kernels, std::move(config), nullptr)
{
}

GpuSimulator::GpuSimulator(const std::vector<ir::Kernel> &kernels,
                           GpuConfig config,
                           std::shared_ptr<mem::DramModel> shared_dram)
    : _config(std::move(config))
{
    if (kernels.empty())
        fatal("multi-tenant launch needs at least one kernel");
    for (const ir::Kernel &kernel : kernels) {
        _cks.push_back(std::make_unique<compiler::CompiledKernel>(
            compiler::compile(kernel, _config.compiler)));
    }
    assemble(std::move(shared_dram));
}

GpuSimulator::GpuSimulator(compiler::CompiledKernel ck, GpuConfig config)
    : _config(std::move(config))
{
    _cks.push_back(
        std::make_unique<compiler::CompiledKernel>(std::move(ck)));
    assemble(nullptr);
}

void
GpuSimulator::assemble(std::shared_ptr<mem::DramModel> shared_dram)
{
    const auto num_tenants = static_cast<unsigned>(_cks.size());

    _mem = shared_dram
               ? std::make_unique<mem::MemorySystem>(
                     _config.mem, std::move(shared_dram))
               : std::make_unique<mem::MemorySystem>(_config.mem);

    if (num_tenants == 1) {
        _mem->setValueGenerator(
            valueGenerator(_cks[0]->kernel().valueProfile()));
    } else {
        // Composed generator: tenant t's data and shared segments are
        // translated back to the solo-run address space, so every
        // tenant reads the same values at the same kernel-relative
        // addresses it would read running alone (the memory-image
        // parity the preemption tests assert).
        std::vector<std::function<std::uint32_t(Addr)>> gens;
        gens.reserve(num_tenants);
        for (const auto &ck : _cks)
            gens.push_back(valueGenerator(ck->kernel().valueProfile()));
        const Addr data_base = _config.sm.dataBase;
        const Addr data_stride = _config.tenants.dataStride;
        const Addr shared_base = _config.sm.sharedBase;
        const Addr shared_stride = _config.tenants.sharedStride;
        if (data_stride == 0 || shared_stride == 0)
            fatal("tenant address strides must be non-zero");
        if (data_base + num_tenants * data_stride > shared_base &&
            data_base < shared_base) {
            fatal("tenant data segments would overrun the shared "
                  "segment base");
        }
        _mem->setValueGenerator(
            [gens, data_base, data_stride, shared_base,
             shared_stride](Addr addr) -> std::uint32_t {
                if (addr >= shared_base) {
                    const Addr t = (addr - shared_base) / shared_stride;
                    if (t < gens.size())
                        return gens[t](addr - t * shared_stride);
                    return gens[0](addr);
                }
                if (addr >= data_base) {
                    const Addr t = (addr - data_base) / data_stride;
                    if (t < gens.size())
                        return gens[t](addr - t * data_stride);
                }
                return gens[0](addr);
            });
    }

    const ProviderDescriptor &desc =
        providerDescriptor(_config.provider);

    // Occupancy limit: a fixed architectural register file can only
    // host rfEntries / kernelRegs warps. Virtualising designs
    // oversubscribe the name space and keep full occupancy.
    // Single-tenant only: under co-residency each tenant already runs
    // a fixed warp partition.
    if (num_tenants == 1 && _config.limitOccupancyByRf &&
        desc.fixedArchitecturalRf) {
        unsigned regs = std::max(1u, _cks[0]->kernel().numRegs());
        unsigned wpb = _cks[0]->kernel().warpsPerBlock();
        unsigned fit = _config.baselineRfEntries / regs;
        fit = std::max(wpb, fit - fit % wpb); // block granularity
        if (fit < _config.sm.numWarps) {
            inform("occupancy limited to ", fit, " of ",
                   _config.sm.numWarps, " resident warps (", regs,
                   " registers per warp)");
            _config.sm.maxResidentWarps = fit;
        }
    }

    if (_config.sm.numWarps % num_tenants != 0) {
        fatal(num_tenants, " tenants must divide ",
              _config.sm.numWarps, " warps evenly");
    }
    const unsigned warp_count = _config.sm.numWarps / num_tenants;

    auto priority_of = [this](unsigned t) -> unsigned {
        return t < _config.tenants.workloads.size()
                   ? _config.tenants.workloads[t].priority
                   : 0;
    };

    std::vector<arch::SmTenantSpec> specs;
    for (unsigned t = 0; t < num_tenants; ++t) {
        _providers.push_back(desc.make(*_cks[t], *_mem, _config,
                                       t * warp_count, warp_count));
        arch::SmTenantSpec spec;
        spec.ck = _cks[t].get();
        spec.provider = _providers[t].get();
        spec.dataBase =
            _config.sm.dataBase + t * _config.tenants.dataStride;
        spec.sharedBase =
            _config.sm.sharedBase + t * _config.tenants.sharedStride;
        specs.push_back(spec);
    }

    // The capacity arbiter caps the tenants' summed staged footprint
    // at the one physical OSU's size; each provider registers its
    // live-usage callback and installs the admission gate in its CMs.
    if (num_tenants >= 2) {
        _arbiter = std::make_unique<regfile::TenantArbiter>(
            _config.tenants.policy, _config.regless.osuEntriesPerSm);
        if (_config.tenants.quotaLines)
            _arbiter->setQuotaLines(_config.tenants.quotaLines);
        _arbiter->setReserveFraction(_config.tenants.reserveFrac);
        for (unsigned t = 0; t < num_tenants; ++t)
            _providers[t]->joinTenantArbiter(*_arbiter, t,
                                             priority_of(t));
    }

    _sm = std::make_unique<arch::Sm>(std::move(specs), *_mem,
                                     _config.sm);

    for (auto &provider : _providers) {
        provider->bindWarpSource(
            [this](WarpId w) -> const arch::Warp & {
                return _sm->warp(w);
            });
    }

    if (_config.trace.enabled) {
        _trace = std::make_unique<TraceWriter>();
        _tracePath = _config.trace.path + ".sm0";
        _sm->setStallTraceHook([this](WarpId warp, const char *label,
                                      Cycle from, Cycle to) {
            _trace->addComplete(_tracePid, warp, label, from,
                                to - from);
        });
        for (unsigned t = 0; t < num_tenants; ++t) {
            // Tenant lane prefix only under co-residency, so single-
            // tenant traces stay byte-identical.
            const std::string prefix =
                num_tenants >= 2 ? "t" + std::to_string(t) + " " : "";
            _providers[t]->setActivationObserver(
                [this, prefix](WarpId warp, compiler::RegionId region,
                               Cycle now) {
                    _trace->addInstant(_tracePid, warp,
                                       prefix + "cm_activate r" +
                                           std::to_string(region),
                                       now);
                });
        }
    }

    if (_config.faults.kind != FaultPlan::Kind::None) {
        _injector = std::make_unique<FaultInjector>(_config.faults);
        _mem->setFaultInjector(_injector.get());
        for (auto &provider : _providers)
            provider->setFaultInjector(_injector.get());
    }

    // QoS controller: arm only when both classes are present.
    if (num_tenants >= 2 && _config.tenants.qosPreemption) {
        for (unsigned t = 0; t < num_tenants; ++t) {
            (priority_of(t) > 0 ? _qosSensitive : _qosHogs)
                .push_back(t);
        }
        if (!_qosHogs.empty() && !_qosSensitive.empty()) {
            _qosActive = true;
            const Cycle interval =
                std::max<Cycle>(1, _config.tenants.qosInterval);
            _qosRunWindow = std::min<Cycle>(
                interval,
                static_cast<Cycle>(static_cast<double>(interval) *
                                   _config.tenants.qosShare));
        }
    }
}

GpuSimulator::~GpuSimulator() = default;

std::vector<compiler::Finding>
GpuSimulator::runtimeViolations() const
{
    std::vector<compiler::Finding> all;
    for (const auto &provider : _providers) {
        auto v = provider->runtimeViolations();
        all.insert(all.end(), v.begin(), v.end());
    }
    return all;
}

std::uint64_t
GpuSimulator::providerProgressEvents() const
{
    std::uint64_t events = 0;
    for (const auto &provider : _providers)
        events += provider->progressEvents();
    return events;
}

void
GpuSimulator::qosPoll(Cycle now)
{
    if (!_qosActive)
        return;
    bool sensitive_done = true;
    for (unsigned t : _qosSensitive)
        sensitive_done &= _sm->tenantDone(t);
    if (sensitive_done) {
        // Every latency-sensitive tenant retired: hand the machine
        // back to the throughput tenants for good.
        for (unsigned t : _qosHogs)
            _sm->resumeTenant(t, now);
        _qosHogsParked = false;
        _qosActive = false;
        return;
    }
    const Cycle interval =
        std::max<Cycle>(1, _config.tenants.qosInterval);
    const bool run_phase = now % interval < _qosRunWindow;
    if (!run_phase && !_qosHogsParked) {
        for (unsigned t : _qosHogs)
            _sm->requestSuspend(t, now);
        _qosHogsParked = true;
    } else if (run_phase && _qosHogsParked) {
        for (unsigned t : _qosHogs)
            _sm->resumeTenant(t, now);
        _qosHogsParked = false;
    }
}

Cycle
GpuSimulator::qosNextDecision(Cycle now) const
{
    if (!_qosActive)
        return std::numeric_limits<Cycle>::max() / 2;
    const Cycle interval =
        std::max<Cycle>(1, _config.tenants.qosInterval);
    const Cycle in = now % interval;
    return in < _qosRunWindow ? now + (_qosRunWindow - in)
                              : now + (interval - in);
}

void
GpuSimulator::advanceEpoch(Cycle epoch_end)
{
    const bool skip = _config.sm.cycleSkip;
    while (!_sm->done() && _sm->now() < epoch_end) {
        qosPoll(_sm->now());
        if (skip) {
            Cycle limit = epoch_end;
            if (_qosActive)
                limit = std::min(limit, qosNextDecision(_sm->now()));
            _sm->stepSkipping(limit);
        } else {
            _sm->step();
        }
    }
}

void
GpuSimulator::harvest(RunStats &stats)
{
    stats.insns = _sm->totalInsns();

    // Issue-slot attribution (provider-independent): issued + stalled
    // slots sum to numSchedulers * cycles exactly.
    stats.issuedSlots = _sm->issuedSlots();
    for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
        stats.stallSlots[c] =
            _sm->stallSlots(static_cast<arch::StallCause>(c));
    }

    // Cycle-skip meta-counters: how much of the run was collapsed.
    // Definitionally zero in skip-off reference runs; the differential
    // oracle zeroes them on both sides before comparing.
    stats.skippedCycles = _sm->skippedCycles();
    stats.skipEvents = _sm->skipEvents();

    // Memory hierarchy counts.
    auto cache_accesses = [](mem::Cache &cache) {
        return cache.stats().counter("hits").value() +
               cache.stats().counter("misses").value();
    };
    stats.l1Accesses = cache_accesses(_mem->l1());
    stats.l2Accesses = cache_accesses(_mem->l2());
    stats.dramAccesses = _mem->dram().stats().counter("accesses").value();

    // Provider-specific counters: each registry descriptor knows how
    // to harvest its own design. Multi-tenant runs collect each
    // tenant's provider and sum the activity.
    const ProviderDescriptor &desc =
        providerDescriptor(_config.provider);
    if (_cks.size() == 1) {
        desc.collect(*_providers[0], stats);
    } else {
        for (std::size_t t = 0; t < _providers.size(); ++t) {
            RunStats lane;
            desc.collect(*_providers[t], lane);
            mergeProviderCounters(stats, lane, t == 0);
        }
        stats.tenants.resize(_cks.size());
        for (unsigned t = 0; t < static_cast<unsigned>(_cks.size());
             ++t) {
            TenantLane &lane = stats.tenants[t];
            lane.kernel = _cks[t]->kernel().name();
            lane.insns = _sm->tenantInsns(t);
            lane.issuedSlots = _sm->tenantIssuedSlots(t);
            for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
                lane.stallSlots[c] = _sm->tenantStallSlots(
                    t, static_cast<arch::StallCause>(c));
            }
            lane.finishCycle = _sm->tenantFinishCycle(t);
            lane.suspendedCycles = _sm->tenantSuspendedCycles(t);
            lane.preemptions = _sm->tenantPreemptions(t);
        }
    }

    stats.staticInsnsPerRegion = _cks[0]->meanInsnsPerRegion();
    stats.numRegions =
        static_cast<unsigned>(_cks[0]->regions().size());

    computeEnergy(stats, _config);
}

void
GpuSimulator::dumpStats(std::ostream &os)
{
    _sm->stats().dump(os);
    for (auto &provider : _providers)
        provider->dumpStats(os);
    _mem->stats().dump(os);
    _mem->l1().stats().dump(os);
    _mem->l2().stats().dump(os);
    _mem->dram().stats().dump(os);
}

DeadlockReport
GpuSimulator::deadlockSnapshot(const ProgressMonitor &monitor,
                               ProgressMonitor::Verdict verdict,
                               Cycle now,
                               const arch::StallSnapshot *since,
                               int starved_tenant) const
{
    DeadlockReport report;
    report.kernel = _cks[0]->kernel().name();
    report.reason = ProgressMonitor::reason(verdict);
    report.cycle = now;
    report.lastProgressCycle = monitor.lastProgressCycle();
    report.watchdogWindow = monitor.window();
    report.maxCycles = monitor.maxCycles();
    report.insnsIssued = _sm->totalInsns();
    report.progressEvents =
        _sm->totalInsns() + providerProgressEvents();

    if (starved_tenant >= 0) {
        const auto t = static_cast<unsigned>(starved_tenant);
        report.starvedTenant = starved_tenant;
        report.starvedTenantKernel = _cks[t]->kernel().name();
        // The tenant's dominant stall cause over the whole run,
        // preferring causes that pin a live warp over no_warp.
        std::size_t top = 0;
        std::uint64_t top_slots = 0;
        std::uint64_t no_warp_slots = 0;
        for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
            const auto cause = static_cast<arch::StallCause>(c);
            const std::uint64_t slots =
                _sm->tenantStallSlots(t, cause);
            if (cause == arch::StallCause::NoWarp) {
                no_warp_slots = slots;
                continue;
            }
            if (slots > top_slots) {
                top_slots = slots;
                top = c;
            }
        }
        if (top_slots > 0) {
            report.starvedTenantStall = arch::stallCauseName(
                static_cast<arch::StallCause>(top));
        } else {
            report.starvedTenantStall =
                no_warp_slots > 0 ? "no_warp" : "none";
        }
    }

    for (const arch::Warp &w : _sm->warps()) {
        if (w.finished())
            continue;
        std::ostringstream os;
        os << "w" << w.id() << ": " << warpStatusName(w.status())
           << " pc=" << w.pc() << " insns=" << w.insnsExecuted();
        // The warp's dominant stall cause over the whole run.
        const auto &ws = _sm->warpStalls(w.id());
        std::size_t top = 0;
        for (std::size_t c = 1; c < arch::kNumStallCauses; ++c) {
            if (ws[c] > ws[top])
                top = c;
        }
        if (ws[top] > 0) {
            os << " stall="
               << arch::stallCauseName(
                      static_cast<arch::StallCause>(top));
        }
        _providers[_sm->tenantOfWarp(w.id())]->describeWarp(w.id(),
                                                           os);
        report.warps.push_back(os.str());
    }

    for (const auto &provider : _providers)
        provider->describeStorage(report.banks);

    std::ostringstream mem;
    mem << "L1 MSHRs in use: " << _mem->l1().mshrsInUse()
        << ", L2 MSHRs in use: " << _mem->l2().mshrsInUse();
    report.memState = mem.str();

    // Slot attribution over the no-progress window (or the whole run
    // when no baseline snapshot is supplied).
    const arch::StallSnapshot cur = _sm->slotSnapshot();
    const arch::StallSnapshot base =
        since ? *since : arch::StallSnapshot{};
    {
        std::ostringstream os;
        os << "issued: " << cur.issuedSlots - base.issuedSlots
           << " slots";
        report.stallBreakdown.push_back(os.str());
    }
    std::size_t top = 0;
    std::uint64_t top_delta = 0;
    std::uint64_t no_warp_delta = 0;
    for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
        const std::uint64_t delta =
            cur.stallSlots[c] - base.stallSlots[c];
        if (delta == 0)
            continue;
        const auto cause = static_cast<arch::StallCause>(c);
        std::ostringstream os;
        os << arch::stallCauseName(cause) << ": " << delta << " slots";
        report.stallBreakdown.push_back(os.str());
        // NoWarp marks schedulers with nothing runnable (e.g. groups
        // whose warps all finished); it never outranks a cause that
        // actually pins a live warp.
        if (cause == arch::StallCause::NoWarp) {
            no_warp_delta = delta;
            continue;
        }
        if (delta > top_delta) {
            top_delta = delta;
            top = c;
        }
    }
    if (top_delta > 0) {
        report.dominantStall =
            arch::stallCauseName(static_cast<arch::StallCause>(top));
    } else {
        report.dominantStall = no_warp_delta > 0 ? "no_warp" : "none";
    }
    return report;
}

void
GpuSimulator::setTraceInstance(unsigned pid)
{
    if (!_trace)
        return;
    _tracePid = pid;
    _tracePath = _config.trace.path + ".sm" + std::to_string(pid);
}

void
GpuSimulator::writeTrace()
{
    if (!_trace || _traceWritten)
        return;
    _sm->flushStallTrace();
    std::ofstream out(_tracePath, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot write trace file '", _tracePath, "'");
    _trace->write(out);
    out << "\n";
    if (!out)
        fatal("error writing trace file '", _tracePath, "'");
    _traceWritten = true;
}

RunStats
GpuSimulator::run(double wall_timeout_sec)
{
    ProgressMonitor monitor(_config.sm.watchdogWindow,
                            _config.sm.maxCycles, wall_timeout_sec);
    const auto num_tenants =
        static_cast<unsigned>(_sm->tenantCount());
    if (num_tenants >= 2)
        monitor.trackTenants(num_tenants);
    // Slot counters as of the last progress event, so a deadlock
    // report can attribute the stalled window specifically.
    arch::StallSnapshot at_progress = _sm->slotSnapshot();
    Cycle last_progress = monitor.lastProgressCycle();
    const bool skip = _config.sm.cycleSkip;
    while (!_sm->done()) {
        qosPoll(_sm->now());
        if (skip) {
            Cycle limit = monitor.skipLimit(_sm->now());
            if (_qosActive)
                limit = std::min(limit, qosNextDecision(_sm->now()));
            _sm->stepSkipping(limit);
        } else {
            _sm->step();
        }
        auto verdict = monitor.check(
            _sm->now(), _sm->totalInsns() + providerProgressEvents());
        int starved = -1;
        if (verdict == ProgressMonitor::Verdict::Ok &&
            num_tenants >= 2) {
            // Per-tenant starvation: the summed metric above cannot
            // see one tenant pinned while its co-runner progresses.
            // Suspended and finished tenants are exempt (their window
            // restarts); a suspend still draining is not — a stuck
            // handoff is exactly what this must catch.
            for (unsigned t = 0; t < num_tenants; ++t) {
                const bool exempt =
                    _sm->tenantSuspended(t) || _sm->tenantDone(t);
                const std::uint64_t progress =
                    _sm->tenantInsns(t) +
                    _providers[t]->progressEvents();
                if (monitor.checkTenant(t, _sm->now(), progress,
                                        exempt) &&
                    starved < 0) {
                    starved = static_cast<int>(t);
                }
            }
            if (starved >= 0)
                verdict = ProgressMonitor::Verdict::Stalled;
        }
        if (verdict != ProgressMonitor::Verdict::Ok) {
            writeTrace(); // a deadlocked run still gets its timeline
            throw DeadlockError(deadlockSnapshot(monitor, verdict,
                                                 _sm->now(),
                                                 &at_progress,
                                                 starved));
        }
        if (monitor.lastProgressCycle() != last_progress) {
            last_progress = monitor.lastProgressCycle();
            at_progress = _sm->slotSnapshot();
        }
    }
    return collect();
}

RunStats
GpuSimulator::collect()
{
    if (!_sm->done())
        fatal("collect() before the kernel finished");
    writeTrace();
    RunStats stats;
    stats.kernel = _cks[0]->kernel().name();
    for (std::size_t t = 1; t < _cks.size(); ++t)
        stats.kernel += "+" + _cks[t]->kernel().name();
    stats.provider = _config.provider;
    stats.cycles = _sm->now();
    harvest(stats);
    return stats;
}

} // namespace regless::sim
