/**
 * @file
 * The SM's view of the memory hierarchy: L1 -> L2 -> DRAM.
 *
 * Follows the paper's Table 1 model: the L1 accepts one request per
 * cycle (the critical bandwidth RegLess must conserve), program data
 * accesses bypass the L1 cache, and register lines are cached in L1
 * with a write-back policy and no fetch-on-write (the RegLess L1
 * modification, §5.2.3). Functional word storage is kept separate from
 * the timing model; untouched addresses yield synthetic values from a
 * pluggable generator so register compressibility is workload-driven.
 */

#ifndef REGLESS_MEM_MEMORY_SYSTEM_HH
#define REGLESS_MEM_MEMORY_SYSTEM_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/fault_injector.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace regless::mem
{

/** Address-space classes with distinct cache policy. */
enum class MemSpace
{
    Data,     ///< program global memory (bypasses L1 by default)
    Register, ///< RegLess spilled registers (L1 write-back lines)
};

/** Where a request was ultimately serviced. */
enum class MemSource
{
    L1,
    L2,
    Dram,
};

/** Result of one memory-system transaction. */
struct MemAccessResult
{
    /** False when the request could not be accepted (retry later). */
    bool accepted = true;
    /** Cycle at which the data is available / the write retired. */
    Cycle readyCycle = 0;
    MemSource source = MemSource::L1;
};

/** Hierarchy-wide configuration. */
struct MemConfig
{
    CacheConfig l1{48 * 1024, 6, 32, /*writeBack=*/false,
                   /*writeAllocate=*/false};
    CacheConfig l2{2 * 1024 * 1024, 16, 128, /*writeBack=*/true,
                   /*writeAllocate=*/true};
    DramConfig dram;
    Cycle l1Latency = 24;
    Cycle l2Latency = 120;
    /** Core cycles per L2 line for this SM's bandwidth share. */
    double l2CyclesPerLine = 4.0;
    /** Program data accesses skip the L1 cache (Table 1). */
    bool bypassL1Data = true;
};

/** One SM's memory hierarchy plus functional storage. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemConfig &config = MemConfig());

    /**
     * Share a DRAM model across several SMs (multi-SM simulation):
     * each SM keeps private L1/L2 slices but contends for the same
     * channels.
     */
    MemorySystem(const MemConfig &config,
                 std::shared_ptr<DramModel> shared_dram);

    /** @return true when the single L1 port can accept a request. */
    bool l1PortFree(Cycle now) const { return _l1NextFree <= now; }

    /** First cycle at which the L1 port is free. */
    Cycle l1PortNextFree() const { return _l1NextFree; }

    /**
     * Next-event bound for cycle skipping: the earliest cycle >=
     * @a from at which this hierarchy's state changes on its own. All
     * latencies are resolved at access time (ready cycles are computed
     * when a request enters the port), so the only autonomous event is
     * the L1 port freeing up.
     */
    Cycle nextEventCycle(Cycle from) const
    {
        return std::max(from, _l1NextFree);
    }

    /**
     * Issue one transaction through the L1 port.
     *
     * @param addr Byte address.
     * @param is_write True for stores/evictions.
     * @param space Policy class of the address.
     * @param now Issue cycle; the port must be free.
     */
    MemAccessResult access(Addr addr, bool is_write, MemSpace space,
                           Cycle now);

    /**
     * RegLess cache-invalidate annotation: drop a register line from
     * L1 (and L2) without any data movement. Occupies the L1 port.
     * @return false when the port is busy.
     */
    bool invalidateRegisterLine(Addr addr, Cycle now);

    /** @name Functional storage. */
    /// @{
    std::uint32_t readWord(Addr addr) const;
    void writeWord(Addr addr, std::uint32_t value);
    void setValueGenerator(std::function<std::uint32_t(Addr)> gen);
    /// @}

    /**
     * Route this SM's DRAM traffic through epoch port @a port of a
     * shared, epoch-mode DRAM (see DramModel::enableEpochMode). Unset
     * by default: traffic uses the direct DRAM interface.
     */
    void setDramPort(unsigned port) { _dramPort = port; }

    /** Attach a fault injector (null = no faults, the default). */
    void setFaultInjector(FaultInjector *injector)
    {
        _faults = injector;
    }

    Cache &l1() { return _l1; }
    Cache &l2() { return _l2; }
    DramModel &dram() { return *_dram; }
    StatGroup &stats() { return _stats; }

    const MemConfig &config() const { return _cfg; }

    /** Ready cycle of an injected lost response ("never"). */
    static constexpr Cycle neverReady =
        std::numeric_limits<Cycle>::max() / 2;

  private:
    /** The real transaction path behind access(). */
    MemAccessResult accessImpl(Addr addr, bool is_write, MemSpace space,
                               Cycle now);

    /** L2 lookup with bandwidth serialisation at time @a t. */
    MemAccessResult accessL2(Addr addr, bool is_write, Cycle t);

    /** DRAM line transfer, direct or via this SM's epoch port. */
    Cycle dramAccess(Addr addr, Cycle t);

    /** Sentinel: no epoch port configured. */
    static constexpr unsigned noDramPort = ~0u;

    MemConfig _cfg;
    Cache _l1;
    Cache _l2;
    FaultInjector *_faults = nullptr;
    std::shared_ptr<DramModel> _dram;
    unsigned _dramPort = noDramPort;
    Cycle _l1NextFree = 0;
    double _l2NextFree = 0.0;
    std::unordered_map<Addr, std::uint32_t> _words;
    std::function<std::uint32_t(Addr)> _valueGen;
    StatGroup _stats;
    Counter &_l1PortUses;
    Counter &_dataAccesses;
    Counter &_registerAccesses;
    Counter &_invalidations;
};

} // namespace regless::mem

#endif // REGLESS_MEM_MEMORY_SYSTEM_HH
