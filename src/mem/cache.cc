#include "mem/cache.hh"

#include "common/logging.hh"

namespace regless::mem
{

Cache::Cache(std::string name, const CacheConfig &config)
    : _ways(config.ways),
      _numMshrs(config.mshrs),
      _writeAllocate(config.writeAllocate),
      _stats(std::move(name)),
      _hits(_stats.counter("hits")),
      _misses(_stats.counter("misses")),
      _evictions(_stats.counter("evictions")),
      _writebacks(_stats.counter("writebacks")),
      _mshrMerges(_stats.counter("mshr_merges")),
      _mshrRejects(_stats.counter("mshr_rejects"))
{
    if (config.sizeBytes % (lineBytes * _ways) != 0)
        fatal("cache size ", config.sizeBytes,
              " not divisible by way size");
    _numSets = config.sizeBytes / (lineBytes * _ways);
    _sets.assign(_numSets, std::vector<Line>(_ways));
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / lineBytes) % _numSets);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    Addr tag = lineAddr(addr);
    for (Line &line : _sets[setIndex(addr)]) {
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    Addr tag = lineAddr(addr);
    for (const Line &line : _sets[setIndex(addr)]) {
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

void
Cache::expireMshrs(Cycle now)
{
    for (auto it = _mshrMap.begin(); it != _mshrMap.end();) {
        if (it->second <= now)
            it = _mshrMap.erase(it);
        else
            ++it;
    }
}

CacheResult
Cache::access(Addr addr, bool is_write, bool write_back_line, Cycle now)
{
    expireMshrs(now);
    CacheResult result;
    Addr line_addr = lineAddr(addr);

    if (Line *line = findLine(addr)) {
        result.hit = true;
        ++_hits;
        line->lruStamp = ++_lruCounter;
        if (is_write) {
            if (write_back_line) {
                line->dirty = true;
            }
            // Write-through lines propagate downstream; the caller
            // charges that traffic.
        }
        // If the line is still being filled, report the merge so the
        // caller can charge the fill latency instead of a hit.
        auto it = _mshrMap.find(line_addr);
        if (it != _mshrMap.end() && it->second > now)
            result.mshrMerged = true;
        return result;
    }

    ++_misses;
    // Write-back register lines are written whole (the preload rule
    // guarantees it), so a write miss allocates without a fill and
    // needs no MSHR.
    const bool needs_fill = !(is_write && write_back_line);
    if (needs_fill && _mshrMap.size() >= _numMshrs) {
        ++_mshrRejects;
        result.rejected = true;
        return result;
    }

    const bool allocate = !is_write || _writeAllocate || write_back_line;
    if (!allocate) {
        // Write-no-allocate miss: pass straight downstream.
        return result;
    }

    // Choose a victim: invalid first, else LRU.
    std::vector<Line> &set = _sets[setIndex(addr)];
    Line *victim = nullptr;
    for (Line &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim == nullptr || line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->valid) {
        ++_evictions;
        if (victim->dirty) {
            ++_writebacks;
            result.writeback = true;
            result.writebackAddr = victim->tag;
        }
    }
    victim->valid = true;
    victim->dirty = is_write && write_back_line;
    victim->tag = line_addr;
    victim->lruStamp = ++_lruCounter;
    return result;
}

void
Cache::fillComplete(Addr addr, Cycle ready)
{
    _mshrMap[lineAddr(addr)] = ready;
}

bool
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->valid = false;
        line->dirty = false;
        return true;
    }
    return false;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::missOutstanding(Addr addr, Cycle now) const
{
    auto it = _mshrMap.find(lineAddr(addr));
    return it != _mshrMap.end() && it->second > now;
}

Cycle
Cache::outstandingReady(Addr addr) const
{
    auto it = _mshrMap.find(lineAddr(addr));
    return it == _mshrMap.end() ? 0 : it->second;
}

} // namespace regless::mem
