#include "mem/memory_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace regless::mem
{

namespace
{

/** Default synthetic value: a cheap address hash (incompressible). */
std::uint32_t
hashWord(Addr addr)
{
    std::uint64_t x = addr * 0x9e3779b97f4a7c15ull;
    x ^= x >> 29;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 32;
    return static_cast<std::uint32_t>(x);
}

} // namespace

MemorySystem::MemorySystem(const MemConfig &config)
    : MemorySystem(config, std::make_shared<DramModel>(config.dram))
{
}

MemorySystem::MemorySystem(const MemConfig &config,
                           std::shared_ptr<DramModel> shared_dram)
    : _cfg(config),
      _l1("l1", config.l1),
      _l2("l2", config.l2),
      _dram(std::move(shared_dram)),
      _valueGen(hashWord),
      _stats("mem"),
      _l1PortUses(_stats.counter("l1_port_uses")),
      _dataAccesses(_stats.counter("data_accesses")),
      _registerAccesses(_stats.counter("register_accesses")),
      _invalidations(_stats.counter("register_invalidations"))
{
}

Cycle
MemorySystem::dramAccess(Addr addr, Cycle t)
{
    if (_dramPort == noDramPort)
        return _dram->access(addr, t);
    return _dram->portAccess(_dramPort, addr, t);
}

MemAccessResult
MemorySystem::accessL2(Addr addr, bool is_write, Cycle t)
{
    double start = std::max(static_cast<double>(t), _l2NextFree);
    _l2NextFree = start + _cfg.l2CyclesPerLine;
    Cycle start_cycle = static_cast<Cycle>(start);

    MemAccessResult result;
    CacheResult cr =
        _l2.access(addr, is_write, /*write_back_line=*/true, start_cycle);
    if (cr.rejected) {
        // Treat a full L2 MSHR file as extra DRAM latency rather than
        // propagating back-pressure two levels up.
        result.readyCycle = dramAccess(addr, start_cycle) +
                            _cfg.l2Latency;
        result.source = MemSource::Dram;
        return result;
    }
    if (cr.writeback)
        dramAccess(cr.writebackAddr, start_cycle);
    if (cr.hit) {
        Cycle ready = start_cycle + _cfg.l2Latency;
        if (cr.mshrMerged)
            ready = std::max(ready, _l2.outstandingReady(addr));
        result.readyCycle = ready;
        result.source = MemSource::L2;
        return result;
    }
    // Miss: fetch the line from DRAM.
    Cycle dram_ready = dramAccess(addr, start_cycle + _cfg.l2Latency);
    _l2.fillComplete(addr, dram_ready);
    result.readyCycle = dram_ready;
    result.source = MemSource::Dram;
    return result;
}

MemAccessResult
MemorySystem::access(Addr addr, bool is_write, MemSpace space, Cycle now)
{
    MemAccessResult result = accessImpl(addr, is_write, space, now);
    // Injected lost response: the request was accepted and charged,
    // but its data never arrives, wedging the dependent warp behind a
    // scoreboard entry that never clears. The watchdog must catch it.
    if (_faults && result.accepted &&
        result.source == MemSource::Dram &&
        _faults->fire(FaultPlan::Kind::DropDramResponse, now)) {
        result.readyCycle = neverReady;
    }
    return result;
}

MemAccessResult
MemorySystem::accessImpl(Addr addr, bool is_write, MemSpace space,
                         Cycle now)
{
    MemAccessResult result;
    if (!l1PortFree(now)) {
        result.accepted = false;
        return result;
    }
    _l1NextFree = now + 1;
    ++_l1PortUses;

    if (space == MemSpace::Data) {
        ++_dataAccesses;
        if (_cfg.bypassL1Data)
            return accessL2(addr, is_write, now + _cfg.l1Latency);
        // Non-bypass mode: write-through, write-no-allocate L1.
        CacheResult cr = _l1.access(addr, is_write,
                                    /*write_back_line=*/false, now);
        if (cr.rejected) {
            result.accepted = false;
            return result;
        }
        if (is_write || !cr.hit) {
            MemAccessResult down =
                accessL2(addr, is_write, now + _cfg.l1Latency);
            if (!cr.hit)
                _l1.fillComplete(addr, down.readyCycle);
            return down;
        }
        Cycle ready = now + _cfg.l1Latency;
        if (cr.mshrMerged)
            ready = std::max(ready, _l1.outstandingReady(addr));
        result.readyCycle = ready;
        result.source = MemSource::L1;
        return result;
    }

    // Register space: cached in L1 with write-back lines and no
    // fetch-on-write (the preload guarantees full-line writes).
    ++_registerAccesses;
    CacheResult cr =
        _l1.access(addr, is_write, /*write_back_line=*/true, now);
    if (cr.rejected) {
        result.accepted = false;
        return result;
    }
    if (cr.writeback) {
        // Dirty register victim drains to L2.
        accessL2(cr.writebackAddr, /*is_write=*/true,
                 now + _cfg.l1Latency);
    }
    if (cr.hit) {
        Cycle ready = now + _cfg.l1Latency;
        if (cr.mshrMerged)
            ready = std::max(ready, _l1.outstandingReady(addr));
        result.readyCycle = ready;
        result.source = MemSource::L1;
        return result;
    }
    if (is_write) {
        // Allocate-on-write without fetching the stale line.
        result.readyCycle = now + _cfg.l1Latency;
        result.source = MemSource::L1;
        return result;
    }
    MemAccessResult down = accessL2(addr, /*is_write=*/false,
                                    now + _cfg.l1Latency);
    _l1.fillComplete(addr, down.readyCycle);
    result.readyCycle = down.readyCycle;
    result.source = down.source;
    return result;
}

bool
MemorySystem::invalidateRegisterLine(Addr addr, Cycle now)
{
    if (!l1PortFree(now))
        return false;
    _l1NextFree = now + 1;
    ++_l1PortUses;
    ++_invalidations;
    _l1.invalidate(addr);
    _l2.invalidate(addr);
    return true;
}

std::uint32_t
MemorySystem::readWord(Addr addr) const
{
    auto it = _words.find(addr);
    if (it != _words.end())
        return it->second;
    return _valueGen(addr);
}

void
MemorySystem::writeWord(Addr addr, std::uint32_t value)
{
    _words[addr] = value;
}

void
MemorySystem::setValueGenerator(std::function<std::uint32_t(Addr)> gen)
{
    if (!gen)
        fatal("null memory value generator");
    _valueGen = std::move(gen);
}

} // namespace regless::mem
