/**
 * @file
 * Set-associative cache timing model.
 *
 * The model tracks presence (tags, LRU, dirty bits) and MSHRs, but not
 * data contents — functional values live in the simulator's backing
 * store. Timing uses ready-cycle bookkeeping rather than discrete
 * events: each access computes when it completes given fixed hit/miss
 * latencies, and the owning MemorySystem serialises port bandwidth.
 */

#ifndef REGLESS_MEM_CACHE_HH
#define REGLESS_MEM_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace regless::mem
{

/** Line size across the hierarchy: one register (32 lanes x 4B). */
constexpr unsigned lineBytes = 128;

/** Align @a addr down to its line. */
inline Addr
lineAddr(Addr addr)
{
    return addr & ~static_cast<Addr>(lineBytes - 1);
}

/** Outcome of a single cache lookup-and-fill. */
struct CacheResult
{
    bool hit = false;
    /** A dirty victim was evicted; its address for write-back. */
    bool writeback = false;
    Addr writebackAddr = 0;
    /** Miss merged into an existing MSHR (no new downstream request). */
    bool mshrMerged = false;
    /** Request rejected: all MSHRs busy. Caller must retry. */
    bool rejected = false;
};

/** Configuration for one cache level. */
struct CacheConfig
{
    unsigned sizeBytes = 48 * 1024;
    unsigned ways = 6;
    unsigned mshrs = 32;
    /** When false, writes propagate downstream (write-through). */
    bool writeBack = false;
    /** Allocate lines on write misses (RegLess register lines). */
    bool writeAllocate = false;
};

/**
 * One cache level. The cache itself is policy-light: the MemorySystem
 * decides which spaces are cacheable, write-back behaviour per space,
 * and charges latencies.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheConfig &config);

    /**
     * Look up @a addr, allocating on miss per policy.
     *
     * @param addr Byte address (will be line-aligned).
     * @param is_write True for stores.
     * @param write_back_line Treat this line as write-back regardless
     *        of the global policy (RegLess register lines in L1).
     * @param now Current cycle, for MSHR accounting.
     */
    CacheResult access(Addr addr, bool is_write, bool write_back_line,
                       Cycle now);

    /**
     * A miss issued at @a now has returned; free its MSHR.
     * MemorySystem calls this with the computed fill cycle.
     */
    void fillComplete(Addr addr, Cycle ready);

    /** Drop @a addr if present; @return true when the line existed. */
    bool invalidate(Addr addr);

    /** @return true when @a addr is resident. */
    bool contains(Addr addr) const;

    /** @return true when a miss to @a addr would be MSHR-merged. */
    bool missOutstanding(Addr addr, Cycle now) const;

    /** Ready cycle of the outstanding miss covering @a addr. */
    Cycle outstandingReady(Addr addr) const;

    /** Retire MSHRs whose fills completed at or before @a now. */
    void expireMshrs(Cycle now);

    /** Outstanding-miss registers currently allocated. */
    std::size_t mshrsInUse() const { return _mshrMap.size(); }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    unsigned numSets() const { return _numSets; }
    unsigned numWays() const { return _ways; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    unsigned setIndex(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    unsigned _numSets;
    unsigned _ways;
    unsigned _numMshrs;
    bool _writeAllocate;
    std::vector<std::vector<Line>> _sets;
    /** Outstanding miss lines -> fill-ready cycle. */
    std::unordered_map<Addr, Cycle> _mshrMap;
    std::uint64_t _lruCounter = 0;
    StatGroup _stats;
    Counter &_hits;
    Counter &_misses;
    Counter &_evictions;
    Counter &_writebacks;
    Counter &_mshrMerges;
    Counter &_mshrRejects;
};

} // namespace regless::mem

#endif // REGLESS_MEM_CACHE_HH
