/**
 * @file
 * DRAM channel bandwidth/latency model.
 *
 * Four memory partitions (Table 1), each accepting one 128-byte line
 * transfer every @a cyclesPerLine cycles, with a fixed access latency.
 * The per-channel next-free counters capture bandwidth saturation; the
 * shared-GPU scaling factor models the traffic of the SMs we do not
 * simulate in detail.
 *
 * Two operating modes:
 *
 * - Direct (single SM): access() consults and updates the channel
 *   state immediately.
 * - Epoch-port (multi-SM): each SM owns a port. Within an epoch a
 *   port's accesses are timed against its private view of the channel
 *   state (the shared state snapshotted at the last epoch boundary,
 *   advanced by the port's own traffic) and queued. drainEpoch() then
 *   replays all queued requests against the shared state in port-id
 *   order, so cross-SM arbitration is deterministic — independent of
 *   the order (or thread) in which SMs actually executed — at the cost
 *   of same-epoch cross-SM queueing being deferred one epoch. Port
 *   accesses touch only per-port state, so distinct ports may be
 *   driven from distinct threads without synchronization.
 */

#ifndef REGLESS_MEM_DRAM_HH
#define REGLESS_MEM_DRAM_HH

#include <cstddef>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace regless::mem
{

/** DRAM configuration. */
struct DramConfig
{
    unsigned channels = 4;
    /** Core cycles per 128B line per channel (224 GB/s at 1 GHz / 4). */
    double cyclesPerLine = 2.3;
    Cycle accessLatency = 220;
    /**
     * Fraction of channel bandwidth available to the simulated SM;
     * the remainder stands in for the other SMs' traffic.
     */
    double bandwidthShare = 1.0 / 16.0;
};

/** Channel-interleaved DRAM timing. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /**
     * Issue one line transfer for @a addr at @a now (direct mode).
     * @return the cycle the data is available.
     */
    Cycle access(Addr addr, Cycle now);

    /** @name Epoch-port mode (deterministic multi-SM sharing). */
    /// @{

    /**
     * Switch to epoch-port mode with @a num_ports ports. Must be
     * called before any traffic; direct access() becomes invalid.
     */
    void enableEpochMode(unsigned num_ports);

    bool epochMode() const { return !_ports.empty(); }

    /**
     * Issue one line transfer through @a port at @a now. Thread-safe
     * across distinct ports. Timing reflects the shared channel state
     * as of the last drainEpoch() plus this port's own traffic since.
     * @return the cycle the data is available.
     */
    Cycle portAccess(unsigned port, Addr addr, Cycle now);

    /**
     * Epoch barrier: replay every queued request against the shared
     * channel state in (port id, issue order), update the access and
     * queueing statistics, and resnapshot each port. Single-threaded.
     */
    void drainEpoch();

    /// @}

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    unsigned channelOf(Addr addr) const;

    /** One SM's private view plus its queued epoch traffic. */
    struct Port
    {
        /** Snapshot of channel next-free, advanced by own accesses. */
        std::vector<double> nextFree;
        /** (addr, issue cycle) queued since the last drain. */
        std::vector<std::pair<Addr, Cycle>> pending;
    };

    DramConfig _cfg;
    double _effectiveCyclesPerLine;
    std::vector<double> _channelNextFree;
    std::vector<Port> _ports;
    StatGroup _stats;
    Counter &_accesses;
    Distribution &_queueing;
};

} // namespace regless::mem

#endif // REGLESS_MEM_DRAM_HH
