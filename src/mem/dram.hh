/**
 * @file
 * DRAM channel bandwidth/latency model.
 *
 * Four memory partitions (Table 1), each accepting one 128-byte line
 * transfer every @a cyclesPerLine cycles, with a fixed access latency.
 * The per-channel next-free counters capture bandwidth saturation; the
 * shared-GPU scaling factor models the traffic of the SMs we do not
 * simulate in detail.
 */

#ifndef REGLESS_MEM_DRAM_HH
#define REGLESS_MEM_DRAM_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace regless::mem
{

/** DRAM configuration. */
struct DramConfig
{
    unsigned channels = 4;
    /** Core cycles per 128B line per channel (224 GB/s at 1 GHz / 4). */
    double cyclesPerLine = 2.3;
    Cycle accessLatency = 220;
    /**
     * Fraction of channel bandwidth available to the simulated SM;
     * the remainder stands in for the other SMs' traffic.
     */
    double bandwidthShare = 1.0 / 16.0;
};

/** Channel-interleaved DRAM timing. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /**
     * Issue one line transfer for @a addr at @a now.
     * @return the cycle the data is available.
     */
    Cycle access(Addr addr, Cycle now);

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    DramConfig _cfg;
    double _effectiveCyclesPerLine;
    std::vector<double> _channelNextFree;
    StatGroup _stats;
    Counter &_accesses;
    Distribution &_queueing;
};

} // namespace regless::mem

#endif // REGLESS_MEM_DRAM_HH
