#include "mem/dram.hh"

#include <algorithm>

#include "common/logging.hh"
#include "mem/cache.hh"

namespace regless::mem
{

DramModel::DramModel(const DramConfig &config)
    : _cfg(config),
      _channelNextFree(config.channels, 0.0),
      _stats("dram"),
      _accesses(_stats.counter("accesses")),
      _queueing(_stats.distribution("queueing_cycles"))
{
    if (_cfg.channels == 0)
        fatal("DRAM needs at least one channel");
    if (_cfg.bandwidthShare <= 0.0 || _cfg.bandwidthShare > 1.0)
        fatal("DRAM bandwidth share must be in (0, 1]");
    _effectiveCyclesPerLine = _cfg.cyclesPerLine / _cfg.bandwidthShare;
}

unsigned
DramModel::channelOf(Addr addr) const
{
    return static_cast<unsigned>((addr / lineBytes) % _cfg.channels);
}

Cycle
DramModel::access(Addr addr, Cycle now)
{
    if (epochMode())
        panic("direct DRAM access on an epoch-mode model; "
              "route through portAccess()");
    ++_accesses;
    unsigned channel = channelOf(addr);
    double start = std::max(static_cast<double>(now),
                            _channelNextFree[channel]);
    _queueing.sample(start - static_cast<double>(now));
    _channelNextFree[channel] = start + _effectiveCyclesPerLine;
    return static_cast<Cycle>(start) + _cfg.accessLatency;
}

void
DramModel::enableEpochMode(unsigned num_ports)
{
    if (num_ports == 0)
        fatal("epoch-mode DRAM needs at least one port");
    if (_accesses.value() != 0)
        fatal("enableEpochMode() after traffic was issued");
    _ports.assign(num_ports, Port{_channelNextFree, {}});
}

Cycle
DramModel::portAccess(unsigned port, Addr addr, Cycle now)
{
    // Only this port's state is touched: safe concurrently with other
    // ports, and the result is independent of cross-port timing.
    Port &p = _ports.at(port);
    unsigned channel = channelOf(addr);
    double start =
        std::max(static_cast<double>(now), p.nextFree[channel]);
    p.nextFree[channel] = start + _effectiveCyclesPerLine;
    p.pending.emplace_back(addr, now);
    return static_cast<Cycle>(start) + _cfg.accessLatency;
}

void
DramModel::drainEpoch()
{
    for (Port &p : _ports) {
        for (const auto &[addr, now] : p.pending) {
            ++_accesses;
            unsigned channel = channelOf(addr);
            double start = std::max(static_cast<double>(now),
                                    _channelNextFree[channel]);
            _queueing.sample(start - static_cast<double>(now));
            _channelNextFree[channel] = start + _effectiveCyclesPerLine;
        }
        p.pending.clear();
    }
    for (Port &p : _ports)
        p.nextFree = _channelNextFree;
}

} // namespace regless::mem
