#include "mem/dram.hh"

#include <algorithm>

#include "common/logging.hh"
#include "mem/cache.hh"

namespace regless::mem
{

DramModel::DramModel(const DramConfig &config)
    : _cfg(config),
      _channelNextFree(config.channels, 0.0),
      _stats("dram"),
      _accesses(_stats.counter("accesses")),
      _queueing(_stats.distribution("queueing_cycles"))
{
    if (_cfg.channels == 0)
        fatal("DRAM needs at least one channel");
    if (_cfg.bandwidthShare <= 0.0 || _cfg.bandwidthShare > 1.0)
        fatal("DRAM bandwidth share must be in (0, 1]");
    _effectiveCyclesPerLine = _cfg.cyclesPerLine / _cfg.bandwidthShare;
}

Cycle
DramModel::access(Addr addr, Cycle now)
{
    ++_accesses;
    unsigned channel =
        static_cast<unsigned>((addr / lineBytes) % _cfg.channels);
    double start = std::max(static_cast<double>(now),
                            _channelNextFree[channel]);
    _queueing.sample(start - static_cast<double>(now));
    _channelNextFree[channel] = start + _effectiveCyclesPerLine;
    return static_cast<Cycle>(start) + _cfg.accessLatency;
}

} // namespace regless::mem
