/**
 * @file
 * Compiler support for the compiler-assisted register-file cache
 * (Shoushtary et al., arXiv 2310.17501; DESIGN.md §13.2): a static
 * pass that marks which instruction results are worth caching in the
 * small RF cache. The hardware then only allocates cache entries for
 * marked registers, so the cache is never polluted by long-lived
 * values that would be evicted before reuse.
 *
 * The pass reuses the divergence-corrected liveness analysis the
 * lifetime annotator is built on: a register is cacheable when every
 * definition's value is consumed soon (short def-to-last-use
 * distance), entirely within the defining basic block, and never
 * written by a soft definition (partial lane masks force a merge with
 * the backing file's copy).
 */

#ifndef REGLESS_COMPILER_RF_CACHE_HINTS_HH
#define REGLESS_COMPILER_RF_CACHE_HINTS_HH

#include <vector>

#include "ir/kernel.hh"

namespace regless::compiler
{

/** Knobs of the cacheability pass. */
struct RfCacheHintParams
{
    /** Max def-to-last-use distance (instructions) to cache a value. */
    unsigned maxDefUseDistance = 12;
};

/**
 * Per-register cacheability verdicts for @a kernel, indexed by RegId.
 * Pure function of the kernel and @a params.
 */
std::vector<bool> rfCacheableRegs(const ir::Kernel &kernel,
                                  const RfCacheHintParams &params);

} // namespace regless::compiler

#endif // REGLESS_COMPILER_RF_CACHE_HINTS_HH
