/**
 * @file
 * Tunables for the RegLess compiler passes.
 */

#ifndef REGLESS_COMPILER_CONFIG_HH
#define REGLESS_COMPILER_CONFIG_HH

namespace regless::compiler
{

/**
 * Compile-time knobs. Defaults follow the paper's constraints: regions
 * may not fill too much of one OSU (so several warps stay concurrent),
 * may not overflow a bank, may not contain a global load together with
 * its first use, and should contain at least six instructions.
 */
struct CompilerConfig
{
    /** Cap on concurrently live registers one region may reserve. */
    unsigned maxRegsPerRegion = 32;

    /** Cap on lines one region may reserve in a single OSU bank. */
    unsigned maxRegsPerBank = 12;

    /** Minimum instructions per region (Algorithm 1 line 31). */
    unsigned minRegionInsns = 6;

    /** Split a global load apart from its first use (§4.1). */
    bool splitLoadUse = true;

    /** Renumber registers to spread OSU bank pressure (§5.2). */
    bool reassignBanks = true;
};

} // namespace regless::compiler

#endif // REGLESS_COMPILER_CONFIG_HH
