#include "compiler/bank_assigner.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "compiler/region.hh"

namespace regless::compiler
{

BankAssigner::BankAssigner(const ir::Kernel &kernel,
                           const ir::Liveness &liveness)
    : _kernel(kernel), _live(liveness)
{
}

std::vector<RegId>
BankAssigner::computeMapping() const
{
    const unsigned num_regs = _kernel.numRegs();
    std::vector<RegId> mapping(num_regs);
    for (RegId r = 0; r < num_regs; ++r)
        mapping[r] = r;
    if (num_regs <= 1)
        return mapping;

    // Co-liveness weights: how many PCs have both registers live.
    std::vector<std::vector<unsigned>> colive(
        num_regs, std::vector<unsigned>(num_regs, 0));
    std::vector<unsigned> live_freq(num_regs, 0);
    for (Pc pc = 0; pc < _kernel.numInsns(); ++pc) {
        std::vector<RegId> live = _live.liveRegsBefore(pc);
        for (std::size_t i = 0; i < live.size(); ++i) {
            ++live_freq[live[i]];
            for (std::size_t j = i + 1; j < live.size(); ++j) {
                ++colive[live[i]][live[j]];
                ++colive[live[j]][live[i]];
            }
        }
    }

    // Greedy: most-live registers choose banks first, each picking the
    // bank with the least co-liveness weight against already-placed
    // registers, then taking the lowest free id in that bank.
    std::vector<RegId> order(num_regs);
    for (RegId r = 0; r < num_regs; ++r)
        order[r] = r;
    std::stable_sort(order.begin(), order.end(),
                     [&](RegId a, RegId b) {
                         return live_freq[a] > live_freq[b];
                     });

    std::vector<bool> id_used(num_regs, false);
    std::vector<RegId> assigned_bank(num_regs, invalidReg);
    for (RegId old_id : order) {
        // Weight of placing old_id in each bank.
        std::array<unsigned, numOsuBanks> weight{};
        for (RegId other = 0; other < num_regs; ++other) {
            if (assigned_bank[other] != invalidReg)
                weight[assigned_bank[other]] += colive[old_id][other];
        }
        // Try banks in increasing-weight order until one has a free id.
        std::array<unsigned, numOsuBanks> banks_by_weight;
        for (unsigned b = 0; b < numOsuBanks; ++b)
            banks_by_weight[b] = b;
        std::stable_sort(banks_by_weight.begin(), banks_by_weight.end(),
                         [&](unsigned a, unsigned b) {
                             return weight[a] < weight[b];
                         });
        RegId chosen = invalidReg;
        for (unsigned bank : banks_by_weight) {
            for (RegId id = bank; id < num_regs; id += numOsuBanks) {
                if (!id_used[id]) {
                    chosen = id;
                    break;
                }
            }
            if (chosen != invalidReg)
                break;
        }
        if (chosen == invalidReg)
            panic("bank assigner ran out of register ids");
        id_used[chosen] = true;
        mapping[old_id] = chosen;
        assigned_bank[old_id] = chosen % numOsuBanks;
    }
    return mapping;
}

ir::Kernel
BankAssigner::apply(const ir::Kernel &kernel,
                    const std::vector<RegId> &mapping)
{
    auto remap = [&](RegId r) -> RegId {
        return r == invalidReg ? invalidReg : mapping.at(r);
    };
    std::vector<ir::Instruction> insns;
    insns.reserve(kernel.numInsns());
    for (const ir::Instruction &insn : kernel.instructions()) {
        std::vector<RegId> srcs;
        srcs.reserve(insn.srcs().size());
        for (RegId s : insn.srcs())
            srcs.push_back(remap(s));
        insns.emplace_back(insn.op(), remap(insn.dst()), std::move(srcs),
                           insn.imm(), insn.target());
    }
    ir::Kernel out(kernel.name(), std::move(insns));
    out.setWarpsPerBlock(kernel.warpsPerBlock());
    out.setWorkScale(kernel.workScale());
    out.setValueProfile(kernel.valueProfile());
    return out;
}

} // namespace regless::compiler
