/**
 * @file
 * Path-sensitive staging-state checker (abstract interpreter).
 *
 * The structural verifier proves each region is well-formed in
 * isolation; this checker proves the annotations compose across
 * control flow. For every register it propagates a StageSet — the set
 * of abstract locations {undef, staged, backing, invalidated, dead}
 * the register's value may occupy — over the inter-region graph
 * (regions in program order within a block, CFG edges between blocks,
 * loop back-edges) to a fixpoint, then replays each reachable region
 * once to report, as structured Findings:
 *
 *  - reads of a register that is not staged (a preload missing on
 *    some path, or a read past the register's erase/evict point),
 *  - preloads of a value some path has erased or invalidated (the
 *    paper's §4.3 invalidating-read and §4.4 placement bugs),
 *  - erases of a register that is still live — including values a
 *    loop back-edge re-reads or a later soft definition must merge
 *    with (Algorithm 2),
 *  - invalidating annotations on live values,
 *  - regions that end with a staged line neither erased nor evicted
 *    (a staging-unit leak), and
 *  - per-region capacity claims below the worst-case concurrent
 *    interior+input set.
 *
 * See DESIGN.md §8 for the abstract domain and transfer functions.
 */

#ifndef REGLESS_COMPILER_STAGING_CHECKER_HH
#define REGLESS_COMPILER_STAGING_CHECKER_HH

#include <vector>

#include "compiler/compiler.hh"
#include "compiler/finding.hh"
#include "ir/staging_lattice.hh"

namespace regless::compiler
{

/**
 * Run the staging-state abstract interpretation over @a ck.
 *
 * @return one Finding per violated staging invariant; empty when the
 *         annotations are path-sensitively sound.
 */
std::vector<Finding> checkStagingStates(const CompiledKernel &ck);

/**
 * Re-derive the value-range analysis (compiler/value_range.hh) and
 * cross-check every recorded StaticEncoding annotation against it:
 * an encoding the recomputed facts do not imply, or recorded for a
 * register the region never evicts, is an encoding-unsound Error (a
 * compressor trusting it would mis-decode without the runtime guard).
 * With @a advisory set, also emit Warnings for provable waste:
 * bank-overclaim (a staged register with a proven narrow encoding
 * still claims a full 128-byte line) and dead-staged-line (a preload
 * of a provably compile-time-constant value).
 */
std::vector<Finding> checkValueRanges(const CompiledKernel &ck,
                                      bool advisory = false);

/** Knobs for the combined lint entry point. */
struct LintOptions
{
    /**
     * Enforce the load/use split (disable when the kernel was
     * compiled with splitLoadUse off).
     */
    bool checkLoadUse = true;

    /**
     * Emit the advisory value-range Warnings (bank-overclaim,
     * dead-staged-line) in addition to the always-on soundness check.
     */
    bool advisory = false;
};

/**
 * Full lint: structural verification (compiler/verifier.hh) followed
 * by the staging-state abstract interpretation, as one finding list.
 */
std::vector<Finding> lintCompiledKernel(const CompiledKernel &ck,
                                        const LintOptions &options = {});

} // namespace regless::compiler

#endif // REGLESS_COMPILER_STAGING_CHECKER_HH
