#include "compiler/compiler.hh"

#include <sstream>

#include "common/logging.hh"
#include "compiler/bank_assigner.hh"
#include "compiler/metadata_encoder.hh"
#include "compiler/region_builder.hh"
#include "compiler/value_range.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

CompiledKernel::CompiledKernel(ir::Kernel kernel,
                               std::vector<Region> regions,
                               LifetimeAnnotator::Stats lifetime_stats,
                               unsigned metadata_insns)
    : _kernel(std::move(kernel)),
      _regions(std::move(regions)),
      _lifetimeStats(lifetime_stats),
      _metadataInsns(metadata_insns)
{
    _pcToRegion.assign(_kernel.numInsns(), invalidRegion);
    for (const Region &region : _regions) {
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc)
            _pcToRegion[pc] = region.id;
    }
    for (Pc pc = 0; pc < _kernel.numInsns(); ++pc) {
        if (_pcToRegion[pc] == invalidRegion)
            panic("pc ", pc, " not covered by any region");
    }

    // Kernel-wide encoding table for the compressor, which has no
    // region context at reclaim time: a reclaim can evict a register
    // mid-region, holding any def's value, so the per-region encodings
    // (proven only at their evict points) are not usable here. Joining
    // the post-def facts over every definition site covers every value
    // the register can ever hold, making the table sound for arbitrary
    // eviction times.
    _staticEncodings.assign(_kernel.numRegs(), StaticEncoding::None);
    if (!_regions.empty()) {
        ir::CfgAnalysis cfg(_kernel);
        ir::Liveness live(_kernel, cfg);
        ValueRangeAnalysis vra(_kernel, cfg, live);
        std::vector<ValueFacts> all_defs(_kernel.numRegs(),
                                         ValueFacts{});
        for (Pc pc = 0; pc < _kernel.numInsns(); ++pc) {
            const ir::Instruction &insn = _kernel.insn(pc);
            if (!insn.writesReg() ||
                !cfg.reachable(_kernel.blockOf(pc))) {
                continue;
            }
            all_defs[insn.dst()] =
                join(all_defs[insn.dst()], vra.after(pc, insn.dst()));
        }
        for (RegId r = 0; r < _kernel.numRegs(); ++r)
            _staticEncodings[r] = classifyEncoding(all_defs[r]);
    }
}

RegionId
CompiledKernel::regionStartingAt(Pc pc) const
{
    RegionId id = _pcToRegion.at(pc);
    return _regions[id].startPc == pc ? id : invalidRegion;
}

double
CompiledKernel::meanPreloadsPerRegion() const
{
    if (_regions.empty())
        return 0.0;
    double total = 0.0;
    for (const Region &region : _regions)
        total += static_cast<double>(region.preloads.size());
    return total / static_cast<double>(_regions.size());
}

double
CompiledKernel::meanMaxLivePerRegion() const
{
    if (_regions.empty())
        return 0.0;
    double total = 0.0;
    for (const Region &region : _regions)
        total += static_cast<double>(region.maxLive);
    return total / static_cast<double>(_regions.size());
}

double
CompiledKernel::meanInsnsPerRegion() const
{
    if (_regions.empty())
        return 0.0;
    double total = 0.0;
    for (const Region &region : _regions)
        total += static_cast<double>(region.numInsns());
    return total / static_cast<double>(_regions.size());
}

std::string
CompiledKernel::describeRegions() const
{
    std::ostringstream oss;
    for (const Region &region : _regions)
        oss << region.toString() << "\n";
    return oss.str();
}

CompiledKernel
compile(const ir::Kernel &input, const CompilerConfig &config)
{
    // Analyses on the incoming register numbering.
    ir::CfgAnalysis cfg_in(input);
    ir::Liveness live_in(input, cfg_in);

    // Optional bank-aware renumbering, then re-analyse.
    ir::Kernel kernel = [&]() {
        if (!config.reassignBanks)
            return input;
        BankAssigner assigner(input, live_in);
        return BankAssigner::apply(input, assigner.computeMapping());
    }();

    ir::CfgAnalysis cfg(kernel);
    ir::Liveness live(kernel, cfg);

    RegionBuilder builder(kernel, live, config);
    std::vector<Region> regions = builder.build();

    LifetimeAnnotator annotator(kernel, cfg, live);
    annotator.annotate(regions);

    unsigned metadata = MetadataEncoder::encode(regions);

    return CompiledKernel(std::move(kernel), std::move(regions),
                          annotator.stats(), metadata);
}

} // namespace regless::compiler
