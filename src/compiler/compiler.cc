#include "compiler/compiler.hh"

#include <sstream>

#include "common/logging.hh"
#include "compiler/bank_assigner.hh"
#include "compiler/metadata_encoder.hh"
#include "compiler/region_builder.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

CompiledKernel::CompiledKernel(ir::Kernel kernel,
                               std::vector<Region> regions,
                               LifetimeAnnotator::Stats lifetime_stats,
                               unsigned metadata_insns)
    : _kernel(std::move(kernel)),
      _regions(std::move(regions)),
      _lifetimeStats(lifetime_stats),
      _metadataInsns(metadata_insns)
{
    _pcToRegion.assign(_kernel.numInsns(), invalidRegion);
    for (const Region &region : _regions) {
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc)
            _pcToRegion[pc] = region.id;
    }
    for (Pc pc = 0; pc < _kernel.numInsns(); ++pc) {
        if (_pcToRegion[pc] == invalidRegion)
            panic("pc ", pc, " not covered by any region");
    }
}

RegionId
CompiledKernel::regionStartingAt(Pc pc) const
{
    RegionId id = _pcToRegion.at(pc);
    return _regions[id].startPc == pc ? id : invalidRegion;
}

double
CompiledKernel::meanPreloadsPerRegion() const
{
    if (_regions.empty())
        return 0.0;
    double total = 0.0;
    for (const Region &region : _regions)
        total += static_cast<double>(region.preloads.size());
    return total / static_cast<double>(_regions.size());
}

double
CompiledKernel::meanMaxLivePerRegion() const
{
    if (_regions.empty())
        return 0.0;
    double total = 0.0;
    for (const Region &region : _regions)
        total += static_cast<double>(region.maxLive);
    return total / static_cast<double>(_regions.size());
}

double
CompiledKernel::meanInsnsPerRegion() const
{
    if (_regions.empty())
        return 0.0;
    double total = 0.0;
    for (const Region &region : _regions)
        total += static_cast<double>(region.numInsns());
    return total / static_cast<double>(_regions.size());
}

std::string
CompiledKernel::describeRegions() const
{
    std::ostringstream oss;
    for (const Region &region : _regions)
        oss << region.toString() << "\n";
    return oss.str();
}

CompiledKernel
compile(const ir::Kernel &input, const CompilerConfig &config)
{
    // Analyses on the incoming register numbering.
    ir::CfgAnalysis cfg_in(input);
    ir::Liveness live_in(input, cfg_in);

    // Optional bank-aware renumbering, then re-analyse.
    ir::Kernel kernel = [&]() {
        if (!config.reassignBanks)
            return input;
        BankAssigner assigner(input, live_in);
        return BankAssigner::apply(input, assigner.computeMapping());
    }();

    ir::CfgAnalysis cfg(kernel);
    ir::Liveness live(kernel, cfg);

    RegionBuilder builder(kernel, live, config);
    std::vector<Region> regions = builder.build();

    LifetimeAnnotator annotator(kernel, cfg, live);
    annotator.annotate(regions);

    unsigned metadata = MetadataEncoder::encode(regions);

    return CompiledKernel(std::move(kernel), std::move(regions),
                          annotator.stats(), metadata);
}

} // namespace regless::compiler
