#include "compiler/finding.hh"

#include <cstdio>
#include <sstream>

namespace regless::compiler
{

namespace
{

void
appendJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

const char *
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

std::string
Finding::toString() const
{
    std::ostringstream oss;
    oss << severityName(severity) << '[' << code << ']';
    if (region != invalidRegion)
        oss << " region " << region;
    if (pc != invalidPc)
        oss << " pc " << pc;
    if (reg != invalidReg)
        oss << " r" << reg;
    oss << ": " << message;
    return oss.str();
}

std::string
Finding::toJson() const
{
    std::ostringstream oss;
    oss << "{\"code\":";
    appendJsonString(oss, code);
    oss << ",\"severity\":\"" << severityName(severity) << "\"";
    oss << ",\"region\":";
    if (region != invalidRegion)
        oss << region;
    else
        oss << "null";
    oss << ",\"pc\":";
    if (pc != invalidPc)
        oss << pc;
    else
        oss << "null";
    oss << ",\"reg\":";
    if (reg != invalidReg)
        oss << reg;
    else
        oss << "null";
    oss << ",\"message\":";
    appendJsonString(oss, message);
    oss << '}';
    return oss.str();
}

bool
hasErrors(const std::vector<Finding> &findings)
{
    for (const Finding &f : findings) {
        if (f.severity == Severity::Error)
            return true;
    }
    return false;
}

std::size_t
countErrors(const std::vector<Finding> &findings)
{
    std::size_t n = 0;
    for (const Finding &f : findings)
        n += f.severity == Severity::Error;
    return n;
}

std::string
formatFindings(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings) {
        out += f.toString();
        out += '\n';
    }
    return out;
}

} // namespace regless::compiler
