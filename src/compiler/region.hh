/**
 * @file
 * Regions: the compiler-created atomic scheduling units of RegLess.
 *
 * A region is a contiguous PC range inside one basic block. The hardware
 * guarantees a region all the staging-unit space it needs before any of
 * its instructions issue, so registers whose lifetime is contained in
 * one region (*interior* registers) never touch memory. *Input*
 * registers must be preloaded before activation; *output* registers are
 * eligible for eviction after their last use in the region.
 */

#ifndef REGLESS_COMPILER_REGION_HH
#define REGLESS_COMPILER_REGION_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "ir/basic_block.hh"

namespace regless::compiler
{

/** Index of a region within its compiled kernel. */
using RegionId = std::uint32_t;

constexpr RegionId invalidRegion = 0xffffffffu;

/** Number of OSU banks; fixed at 8 by the hardware design (§5.2). */
constexpr unsigned numOsuBanks = 8;

/**
 * Compression encoding proven at compile time for a staged register
 * (DESIGN.md §14). Recorded by the lifetime annotator from the static
 * value-range analysis at the register's evict point; the eviction
 * compressor consults it (ReglessConfig::compressionMode) before — or
 * instead of — the runtime pattern matcher.
 */
enum class StaticEncoding : std::uint8_t
{
    None = 0,       ///< nothing provable; dynamic matcher only
    UniformScalar,  ///< all lanes provably equal: one 4-byte scalar
    NarrowWidth,    ///< every lane provably fits 16 unsigned bits
    SignCompressed, ///< every lane provably a 16-bit signed int32
};

/** "none" / "uniform-scalar" / "narrow-width" / "sign-compressed". */
const char *staticEncodingName(StaticEncoding enc);

/** A register to stage before a region activates. */
struct Preload
{
    RegId reg = invalidReg;
    /**
     * When true this preload is the register's last read anywhere: the
     * backing-store copy is invalidated as it is read (§4.3).
     */
    bool invalidate = false;
};

/** One compiler-created region with all of its annotations. */
struct Region
{
    RegionId id = invalidRegion;
    ir::BlockId block = ir::invalidBlock;
    Pc startPc = invalidPc;
    Pc endPc = invalidPc; ///< inclusive

    /** Registers live into the region that the region reads (staged). */
    std::vector<RegId> inputs;

    /** Registers written in the region and live after it. */
    std::vector<RegId> outputs;

    /** Registers whose entire lifetime lies inside the region. */
    std::vector<RegId> interiors;

    /** Preload list (inputs, with invalidate flags). */
    std::vector<Preload> preloads;

    /**
     * Registers known dead on entry due to control flow; their backing-
     * store copies are invalidated when the region activates (§4.4).
     */
    std::vector<RegId> cacheInvalidations;

    /**
     * Last use of an interior register: the OSU line is freed
     * immediately (erase annotation).
     */
    std::map<Pc, std::vector<RegId>> erases;

    /**
     * Last use in this region of an input/output register: the line
     * becomes eligible for eviction (evict annotation).
     */
    std::map<Pc, std::vector<RegId>> evicts;

    /**
     * Proven compression encoding per boundary (input/output)
     * register, valid at — and after — the register's evict point in
     * this region. Registers not listed have no proven encoding.
     */
    std::map<RegId, StaticEncoding> encodings;

    /** Max concurrently live region-referenced registers, per OSU bank. */
    std::array<std::uint8_t, numOsuBanks> bankUsage{};

    /** Max concurrently live region-referenced registers overall. */
    unsigned maxLive = 0;

    /** Metadata instructions the encoder prepends/injects (§5.4). */
    unsigned metadataInsns = 0;

    unsigned numInsns() const { return endPc - startPc + 1; }

    bool contains(Pc pc) const { return pc >= startPc && pc <= endPc; }

    /** Total lines the CM must reserve across banks on activation. */
    unsigned reservedLines() const;

    /** Human-readable summary for debugging and the examples. */
    std::string toString() const;
};

} // namespace regless::compiler

#endif // REGLESS_COMPILER_REGION_HH
