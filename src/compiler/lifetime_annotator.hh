/**
 * @file
 * Register-lifetime annotation (paper §4.3, §4.4).
 *
 * Classifies each region's registers as inputs / outputs / interiors,
 * then places the four annotation kinds the hardware consumes:
 *   - preload (with invalidating-read flag) on region entry,
 *   - erase at an interior register's last use,
 *   - evict at an input/output register's last use in the region,
 *   - cache invalidation where control flow kills a register, placed at
 *     a postdominator of all definitions and death points.
 */

#ifndef REGLESS_COMPILER_LIFETIME_ANNOTATOR_HH
#define REGLESS_COMPILER_LIFETIME_ANNOTATOR_HH

#include <vector>

#include "compiler/region.hh"
#include "compiler/value_range.hh"
#include "ir/cfg_analysis.hh"
#include "ir/kernel.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

/** Fills every annotation field of a region partition. */
class LifetimeAnnotator
{
  public:
    /** Aggregate facts about lifetime placement, for the evaluation. */
    struct Stats
    {
        /** Registers live across at least one region boundary. */
        unsigned crossRegionRegs = 0;

        /** Registers that die on a control-flow edge somewhere. */
        unsigned edgeDeathRegs = 0;

        /**
         * Cross-region registers whose invalidation could not be placed
         * (no reachable postdominator where the value is dead). These
         * linger in the memory system — the paper's "conservative
         * liveness" cost visible in hybridsort and heartwall.
         */
        unsigned unplacedInvalidations = 0;

        /** Registers with at least one soft definition. */
        unsigned softDefRegs = 0;
    };

    LifetimeAnnotator(const ir::Kernel &kernel,
                      const ir::CfgAnalysis &cfg,
                      const ir::Liveness &liveness);

    /**
     * Fill inputs/outputs/interiors, preloads, erases, evicts,
     * cache invalidations, maxLive, and bankUsage of every region.
     * Regions must be sorted by startPc and cover the kernel.
     */
    void annotate(std::vector<Region> &regions);

    const Stats &stats() const { return _stats; }

  private:
    void classifyRegisters(Region &region) const;
    void placeEraseEvict(Region &region) const;
    void placePreloads(Region &region) const;

    /**
     * Record the compression encoding the value-range analysis proves
     * for each boundary register at its evict point (DESIGN.md §14).
     */
    void recordEncodings(Region &region,
                         const ValueRangeAnalysis &vra) const;
    void placeCacheInvalidations(std::vector<Region> &regions);
    void computeCapacity(Region &region) const;

    /** Last PC in [start, end] that reads or writes @a reg. */
    Pc lastTouch(Pc start, Pc end, RegId reg) const;

    const ir::Kernel &_kernel;
    const ir::CfgAnalysis &_cfg;
    const ir::Liveness &_live;
    Stats _stats;
};

} // namespace regless::compiler

#endif // REGLESS_COMPILER_LIFETIME_ANNOTATOR_HH
