#include "compiler/metadata_encoder.hh"

namespace regless::compiler
{

unsigned
MetadataEncoder::metadataForRegion(const Region &region)
{
    const unsigned slots = static_cast<unsigned>(
        region.preloads.size() + region.cacheInvalidations.size());
    const unsigned insns = region.numInsns();

    if (insns <= compactMaxInsns && slots <= compactMaxSlots)
        return 1;

    unsigned total = 1; // flag instruction with bank usage + 3 slots
    if (slots > flagSlots)
        total += (slots - flagSlots + flagSlots - 1) / flagSlots;
    total += (insns + insnsPerMarker - 1) / insnsPerMarker;
    return total;
}

unsigned
MetadataEncoder::encode(std::vector<Region> &regions)
{
    unsigned total = 0;
    for (Region &region : regions) {
        region.metadataInsns = metadataForRegion(region);
        total += region.metadataInsns;
    }
    return total;
}

} // namespace regless::compiler
