/**
 * @file
 * Bank-conflict-aware register renumbering (paper §5.2).
 *
 * The OSU maps a register to bank (warpId + regId) mod 8. The compiler
 * "selects register numbers in a manner that reduces bank conflicts":
 * registers that are frequently live at the same time should occupy
 * different banks. We renumber with a greedy permutation that balances
 * co-live registers across banks.
 */

#ifndef REGLESS_COMPILER_BANK_ASSIGNER_HH
#define REGLESS_COMPILER_BANK_ASSIGNER_HH

#include <vector>

#include "ir/kernel.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

/** Computes and applies a bank-spreading register permutation. */
class BankAssigner
{
  public:
    BankAssigner(const ir::Kernel &kernel, const ir::Liveness &liveness);

    /**
     * @return the permutation newId[oldId]; identity when the kernel
     * uses no registers.
     */
    std::vector<RegId> computeMapping() const;

    /** Rewrite @a kernel's operands through @a mapping. */
    static ir::Kernel apply(const ir::Kernel &kernel,
                            const std::vector<RegId> &mapping);

  private:
    const ir::Kernel &_kernel;
    const ir::Liveness &_live;
};

} // namespace regless::compiler

#endif // REGLESS_COMPILER_BANK_ASSIGNER_HH
