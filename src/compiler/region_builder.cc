#include "compiler/region_builder.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.hh"

namespace regless::compiler
{

Occupancy
computeOccupancy(const ir::Kernel &kernel, const ir::Liveness &liveness,
                 Pc start, Pc end)
{
    const unsigned num_regs = kernel.numRegs();
    std::vector<Pc> first_touch(num_regs, invalidPc);
    std::vector<Pc> last_touch(num_regs, invalidPc);
    std::vector<bool> exposed(num_regs, false);
    std::vector<bool> hard_defined(num_regs, false);
    std::vector<bool> referenced(num_regs, false);
    std::vector<bool> last_touch_is_def(num_regs, false);

    for (Pc pc = start; pc <= end; ++pc) {
        const ir::Instruction &insn = kernel.insn(pc);
        auto touch = [&](RegId r, bool is_def) {
            referenced[r] = true;
            if (first_touch[r] == invalidPc)
                first_touch[r] = pc;
            last_touch[r] = pc;
            last_touch_is_def[r] = is_def;
        };
        for (RegId src : insn.srcs()) {
            touch(src, false);
            if (!hard_defined[src])
                exposed[src] = true;
        }
        if (insn.writesReg()) {
            RegId dst = insn.dst();
            touch(dst, true);
            if (liveness.isSoftDef(pc)) {
                if (!hard_defined[dst])
                    exposed[dst] = true;
            }
            hard_defined[dst] = true;
        }
    }

    // Interval sweep: +1 at interval start, -1 after interval end.
    const unsigned span = end - start + 2;
    std::vector<int> delta(span + 1, 0);
    std::array<std::vector<int>, numOsuBanks> bank_delta;
    for (auto &d : bank_delta)
        d.assign(span + 1, 0);

    for (RegId r = 0; r < num_regs; ++r) {
        if (!referenced[r])
            continue;
        Pc s = exposed[r] ? start : first_touch[r];
        // A line whose last touch is a write stays owned until the
        // value lands (the hardware defers the erase/evict to the
        // write-back), so its occupancy extends to the region end.
        Pc e = (liveness.liveAfter(end, r) || last_touch_is_def[r])
                   ? end
                   : last_touch[r];
        unsigned lo = s - start;
        unsigned hi = e - start + 1;
        ++delta[lo];
        --delta[hi];
        ++bank_delta[r % numOsuBanks][lo];
        --bank_delta[r % numOsuBanks][hi];
    }

    Occupancy occ;
    int running = 0;
    std::array<int, numOsuBanks> bank_running{};
    for (unsigned i = 0; i < span; ++i) {
        running += delta[i];
        occ.maxLive = std::max<unsigned>(occ.maxLive, running);
        for (unsigned b = 0; b < numOsuBanks; ++b) {
            bank_running[b] += bank_delta[b][i];
            occ.bankUsage[b] = std::max<std::uint8_t>(
                occ.bankUsage[b],
                static_cast<std::uint8_t>(
                    std::min(bank_running[b], 255)));
        }
    }
    return occ;
}

RegionBuilder::RegionBuilder(const ir::Kernel &kernel,
                             const ir::Liveness &liveness,
                             const CompilerConfig &config)
    : _kernel(kernel), _live(liveness), _cfg(config)
{
}

std::vector<Region>
RegionBuilder::build() const
{
    // Algorithm 1: worklist seeded with basic blocks.
    std::deque<std::pair<Pc, Pc>> worklist;
    for (const ir::BasicBlock &bb : _kernel.blocks())
        worklist.emplace_back(bb.firstPc(), bb.lastPc());

    std::vector<Region> regions;
    while (!worklist.empty()) {
        auto [start, end] = worklist.front();
        worklist.pop_front();
        if (!isValid(start, end) && end > start) {
            Pc split_pc = findSplitPoint(start, end);
            // First half is guaranteed valid; second is re-examined.
            worklist.emplace_front(split_pc, end);
            end = split_pc - 1;
        }
        Region region;
        region.startPc = start;
        region.endPc = end;
        region.block = _kernel.blockOf(start);
        regions.push_back(region);
    }

    std::sort(regions.begin(), regions.end(),
              [](const Region &a, const Region &b) {
                  return a.startPc < b.startPc;
              });
    for (RegionId id = 0; id < regions.size(); ++id)
        regions[id].id = id;
    return regions;
}

ir::RegSet
RegionBuilder::refsInRange(Pc start, Pc end) const
{
    ir::RegSet refs(_kernel.numRegs());
    for (Pc pc = start; pc <= end; ++pc) {
        const ir::Instruction &insn = _kernel.insn(pc);
        if (insn.writesReg())
            refs.set(insn.dst());
        for (RegId src : insn.srcs())
            refs.set(src);
    }
    return refs;
}

unsigned
RegionBuilder::maxLiveInRange(Pc start, Pc end) const
{
    return computeOccupancy(_kernel, _live, start, end).maxLive;
}

std::array<std::uint8_t, numOsuBanks>
RegionBuilder::bankUsageInRange(Pc start, Pc end) const
{
    // The hardware maps (warp + reg) & 7 to a bank; per-warp rotation
    // does not change the per-bank peak, so model bank = reg & 7.
    return computeOccupancy(_kernel, _live, start, end).bankUsage;
}

bool
RegionBuilder::containsLoadAndUse(Pc start, Pc end) const
{
    for (Pc pc = start; pc <= end; ++pc) {
        const ir::Instruction &insn = _kernel.insn(pc);
        if (!insn.isGlobalLoad())
            continue;
        const RegId dst = insn.dst();
        for (Pc use_pc = pc + 1; use_pc <= end; ++use_pc) {
            const ir::Instruction &later = _kernel.insn(use_pc);
            const auto &srcs = later.srcs();
            if (std::find(srcs.begin(), srcs.end(), dst) != srcs.end())
                return true;
            // A hard redefinition ends the load's pending value.
            if (later.writesReg() && later.dst() == dst &&
                !_live.isSoftDef(use_pc)) {
                break;
            }
        }
    }
    return false;
}

bool
RegionBuilder::isValid(Pc start, Pc end) const
{
    if (maxLiveInRange(start, end) > _cfg.maxRegsPerRegion)
        return false;
    auto banks = bankUsageInRange(start, end);
    for (unsigned b = 0; b < numOsuBanks; ++b) {
        if (banks[b] > _cfg.maxRegsPerBank)
            return false;
    }
    if (_cfg.splitLoadUse && containsLoadAndUse(start, end))
        return false;
    return true;
}

unsigned
RegionBuilder::inputCount(Pc start, Pc end) const
{
    // Upward-exposed uses: read before any hard definition in the
    // range. Soft definitions also force a preload (the merge needs
    // the old lanes), so they expose the register too.
    ir::RegSet seen_def(_kernel.numRegs());
    ir::RegSet inputs(_kernel.numRegs());
    for (Pc pc = start; pc <= end; ++pc) {
        const ir::Instruction &insn = _kernel.insn(pc);
        for (RegId src : insn.srcs()) {
            if (!seen_def.test(src))
                inputs.set(src);
        }
        if (insn.writesReg()) {
            if (_live.isSoftDef(pc)) {
                if (!seen_def.test(insn.dst()))
                    inputs.set(insn.dst());
            } else {
                seen_def.set(insn.dst());
            }
        }
    }
    return inputs.count();
}

unsigned
RegionBuilder::outputCount(Pc start, Pc end) const
{
    ir::RegSet outputs(_kernel.numRegs());
    for (Pc pc = start; pc <= end; ++pc) {
        const ir::Instruction &insn = _kernel.insn(pc);
        if (insn.writesReg() && _live.liveAfter(end, insn.dst()))
            outputs.set(insn.dst());
    }
    return outputs.count();
}

unsigned
RegionBuilder::inputOutputCount(Pc start, Pc end) const
{
    return inputCount(start, end) + outputCount(start, end);
}

unsigned
RegionBuilder::loadUsePairsWithin(Pc start, Pc end, Pc split) const
{
    // Count (global load, first use) pairs that end up wholly inside
    // either half when the second half starts at @a split.
    unsigned pairs = 0;
    for (Pc pc = start; pc <= end; ++pc) {
        const ir::Instruction &insn = _kernel.insn(pc);
        if (!insn.isGlobalLoad())
            continue;
        const RegId dst = insn.dst();
        for (Pc use_pc = pc + 1; use_pc <= end; ++use_pc) {
            const ir::Instruction &later = _kernel.insn(use_pc);
            const auto &srcs = later.srcs();
            if (std::find(srcs.begin(), srcs.end(), dst) != srcs.end()) {
                bool same_half = (pc < split) == (use_pc < split);
                pairs += same_half;
                break;
            }
            if (later.writesReg() && later.dst() == dst &&
                !_live.isSoftDef(use_pc)) {
                break;
            }
        }
    }
    return pairs;
}

Pc
RegionBuilder::findSplitPoint(Pc start, Pc end) const
{
    // upperBound: the first PC at which the prefix region [start, pc]
    // becomes invalid; splitting at or before it keeps the first half
    // valid. Prefix invalidity is monotone in pc.
    Pc upper_bound = end; // split position: second half starts here
    for (Pc pc = start + 1; pc <= end; ++pc) {
        if (!isValid(start, pc)) {
            upper_bound = pc;
            break;
        }
    }

    // lowerBound: the split that places the boundary between the most
    // global loads and their first uses.
    Pc lower_bound = start + 1;
    unsigned best_pairs = std::numeric_limits<unsigned>::max();
    for (Pc sp = start + 1; sp <= upper_bound; ++sp) {
        unsigned pairs = loadUsePairsWithin(start, end, sp);
        if (pairs < best_pairs) {
            best_pairs = pairs;
            lower_bound = sp;
        }
    }

    // Avoid degenerately small first regions (>= minRegionInsns insns
    // when possible).
    lower_bound = std::min(
        std::max<Pc>(start + _cfg.minRegionInsns, lower_bound),
        upper_bound);

    // Final choice: fewest inputs + outputs across both halves.
    Pc best_pc = lower_bound;
    unsigned best_io = std::numeric_limits<unsigned>::max();
    for (Pc sp = lower_bound; sp <= upper_bound; ++sp) {
        unsigned io = inputOutputCount(start, sp - 1) +
                      inputOutputCount(sp, end);
        if (io < best_io) {
            best_io = io;
            best_pc = sp;
        }
    }
    return best_pc;
}

} // namespace regless::compiler
