/**
 * @file
 * Region creation: paper Algorithm 1.
 *
 * Starting from basic blocks, repeatedly split any region that violates
 * a constraint. Splits are placed in the window between the point that
 * best separates global loads from their first uses (lower bound) and
 * the last point at which the region prefix is still valid (upper
 * bound), choosing the PC that minimises input + output registers of
 * the two halves — the paper's "fewest live registers" seams (Fig. 5).
 */

#ifndef REGLESS_COMPILER_REGION_BUILDER_HH
#define REGLESS_COMPILER_REGION_BUILDER_HH

#include <vector>

#include "compiler/config.hh"
#include "compiler/region.hh"
#include "ir/kernel.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

/** Peak OSU line demand of a PC range. */
struct Occupancy
{
    unsigned maxLive = 0;
    std::array<std::uint8_t, numOsuBanks> bankUsage{};
};

/**
 * Compute the staging-unit line demand of range [start, end].
 *
 * A register's line is occupied from the region start (inputs and
 * soft-defined registers, which are preloaded) or its first definition
 * until its last touch (erase/evict point) or the region end (outputs
 * and live-through values). This interval model — not plain liveness —
 * is what the hardware reserves: a register redefined after a dead gap
 * still holds its line across the gap.
 */
Occupancy computeOccupancy(const ir::Kernel &kernel,
                           const ir::Liveness &liveness, Pc start,
                           Pc end);

/** Builds the region partition of one kernel. */
class RegionBuilder
{
  public:
    RegionBuilder(const ir::Kernel &kernel, const ir::Liveness &liveness,
                  const CompilerConfig &config);

    /**
     * Run Algorithm 1.
     * @return regions sorted by start PC, covering every instruction
     * exactly once, each contained in a single basic block.
     */
    std::vector<Region> build() const;

    /** @name Constraint checks (public for unit testing). */
    /// @{
    bool isValid(Pc start, Pc end) const;
    Pc findSplitPoint(Pc start, Pc end) const;
    unsigned maxLiveInRange(Pc start, Pc end) const;
    bool containsLoadAndUse(Pc start, Pc end) const;
    unsigned inputOutputCount(Pc start, Pc end) const;
    /// @}

  private:
    /** Registers read or written anywhere in [start, end]. */
    ir::RegSet refsInRange(Pc start, Pc end) const;

    /** Per-bank peak of concurrently live region-referenced registers. */
    std::array<std::uint8_t, numOsuBanks>
    bankUsageInRange(Pc start, Pc end) const;

    /** Count of (global load, first use) pairs wholly inside a half. */
    unsigned loadUsePairsWithin(Pc start, Pc end, Pc split) const;

    /** Upward-exposed (preload-requiring) registers of [start, end]. */
    unsigned inputCount(Pc start, Pc end) const;

    /** Registers defined in [start, end] and live past @a end. */
    unsigned outputCount(Pc start, Pc end) const;

    const ir::Kernel &_kernel;
    const ir::Liveness &_live;
    const CompilerConfig &_cfg;
};

} // namespace regless::compiler

#endif // REGLESS_COMPILER_REGION_BUILDER_HH
