#include "compiler/lifetime_annotator.hh"

#include "compiler/region_builder.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace regless::compiler
{

LifetimeAnnotator::LifetimeAnnotator(const ir::Kernel &kernel,
                                     const ir::CfgAnalysis &cfg,
                                     const ir::Liveness &liveness)
    : _kernel(kernel), _cfg(cfg), _live(liveness)
{
}

void
LifetimeAnnotator::annotate(std::vector<Region> &regions)
{
    const ValueRangeAnalysis vra(_kernel, _cfg, _live);
    for (Region &region : regions) {
        classifyRegisters(region);
        placePreloads(region);
        placeEraseEvict(region);
        recordEncodings(region, vra);
        computeCapacity(region);
    }
    placeCacheInvalidations(regions);
}

void
LifetimeAnnotator::recordEncodings(Region &region,
                                   const ValueRangeAnalysis &vra) const
{
    region.encodings.clear();
    // A line marked evictable at pc keeps the value it holds there
    // until a later region reclaims or redefines it, so the facts
    // after the evict point are exactly what an eviction would see.
    for (const auto &[pc, regs] : region.evicts) {
        for (RegId reg : regs) {
            StaticEncoding enc = classifyEncoding(vra.after(pc, reg));
            if (enc != StaticEncoding::None)
                region.encodings[reg] = enc;
        }
    }
}

void
LifetimeAnnotator::classifyRegisters(Region &region) const
{
    ir::RegSet inputs(_kernel.numRegs());
    ir::RegSet defined(_kernel.numRegs());
    ir::RegSet refs(_kernel.numRegs());

    for (Pc pc = region.startPc; pc <= region.endPc; ++pc) {
        const ir::Instruction &insn = _kernel.insn(pc);
        for (RegId src : insn.srcs()) {
            refs.set(src);
            if (!defined.test(src))
                inputs.set(src);
        }
        if (insn.writesReg()) {
            refs.set(insn.dst());
            if (_live.isSoftDef(pc)) {
                // Soft definitions merge into the old value, so the old
                // lanes must be staged: the register is an input.
                if (!defined.test(insn.dst()))
                    inputs.set(insn.dst());
            } else {
                defined.set(insn.dst());
            }
            // Both hard and soft definitions make the register locally
            // available for later reads in the region.
            defined.set(insn.dst());
        }
    }

    ir::RegSet outputs(_kernel.numRegs());
    for (Pc pc = region.startPc; pc <= region.endPc; ++pc) {
        const ir::Instruction &insn = _kernel.insn(pc);
        if (insn.writesReg() && _live.liveAfter(region.endPc, insn.dst()))
            outputs.set(insn.dst());
    }

    region.inputs = inputs.toVector();
    region.outputs = outputs.toVector();
    region.interiors.clear();
    for (RegId r : refs.toVector()) {
        if (!inputs.test(r) && !outputs.test(r))
            region.interiors.push_back(r);
    }
}

void
LifetimeAnnotator::placePreloads(Region &region) const
{
    region.preloads.clear();
    for (RegId r : region.inputs) {
        Preload preload;
        preload.reg = r;
        // Invalidating read (§4.3): only when the value is dead on
        // every CFG path AND no divergent sibling path can still read
        // it — a diverged warp executes the sibling side after this
        // region, with no CFG edge to carry the liveness fact.
        preload.invalidate =
            !_live.liveAfter(region.endPc, r) &&
            !ir::divergentSiblingMayRead(_kernel, _cfg, _live,
                                         region.block, r);
        region.preloads.push_back(preload);
    }
}

Pc
LifetimeAnnotator::lastTouch(Pc start, Pc end, RegId reg) const
{
    for (Pc pc = end + 1; pc-- > start;) {
        const ir::Instruction &insn = _kernel.insn(pc);
        const auto &srcs = insn.srcs();
        if (std::find(srcs.begin(), srcs.end(), reg) != srcs.end())
            return pc;
        if (insn.writesReg() && insn.dst() == reg)
            return pc;
    }
    return invalidPc;
}

void
LifetimeAnnotator::placeEraseEvict(Region &region) const
{
    region.erases.clear();
    region.evicts.clear();
    for (RegId r : region.interiors) {
        Pc pc = lastTouch(region.startPc, region.endPc, r);
        if (pc == invalidPc)
            panic("interior register r", r, " never touched in region ",
                  region.id);
        region.erases[pc].push_back(r);
    }
    auto mark_evict = [&](RegId r) {
        Pc pc = lastTouch(region.startPc, region.endPc, r);
        if (pc == invalidPc)
            panic("boundary register r", r, " never touched in region ",
                  region.id);
        auto &list = region.evicts[pc];
        if (std::find(list.begin(), list.end(), r) == list.end())
            list.push_back(r);
    };
    for (RegId r : region.inputs)
        mark_evict(r);
    for (RegId r : region.outputs)
        mark_evict(r);
}

void
LifetimeAnnotator::computeCapacity(Region &region) const
{
    Occupancy occ =
        computeOccupancy(_kernel, _live, region.startPc, region.endPc);
    region.maxLive = occ.maxLive;
    region.bankUsage = occ.bankUsage;
}

void
LifetimeAnnotator::placeCacheInvalidations(std::vector<Region> &regions)
{
    // First region of each block, for attaching invalidations.
    std::vector<RegionId> block_first_region(_kernel.blocks().size(),
                                             invalidRegion);
    for (const Region &region : regions) {
        if (block_first_region[region.block] == invalidRegion)
            block_first_region[region.block] = region.id;
    }

    // Cross-region registers: anything on a region boundary.
    ir::RegSet cross(_kernel.numRegs());
    for (const Region &region : regions) {
        for (RegId r : region.inputs)
            cross.set(r);
        for (RegId r : region.outputs)
            cross.set(r);
    }

    for (RegId r : cross.toVector()) {
        ++_stats.crossRegionRegs;
        if (_live.hasSoftDef(r))
            ++_stats.softDefRegs;

        // Death points: control-flow edges (u, v) where the value is
        // live out of u but not into v.
        std::vector<ir::BlockId> death_blocks;
        for (const ir::BasicBlock &bb : _kernel.blocks()) {
            if (!_cfg.reachable(bb.id()))
                continue;
            for (ir::BlockId succ : bb.successors()) {
                if (_live.blockLiveOut(bb.id(), r) &&
                    !_live.blockLiveIn(succ, r)) {
                    death_blocks.push_back(succ);
                }
            }
        }
        if (death_blocks.empty())
            continue; // fully handled by invalidating preloads
        ++_stats.edgeDeathRegs;

        // Definition blocks and last-use blocks join the constraint set:
        // the invalidation must postdominate all of them.
        std::vector<ir::BlockId> constraint = death_blocks;
        for (Pc def_pc : _live.defsOf(r))
            constraint.push_back(_kernel.blockOf(def_pc));
        for (Pc use_pc : _live.usesOf(r)) {
            if (_live.isLastUse(use_pc, r))
                constraint.push_back(_kernel.blockOf(use_pc));
        }

        // Earliest reachable block that postdominates every constraint
        // block and where the register is already dead.
        ir::BlockId placement = ir::invalidBlock;
        for (const ir::BasicBlock &bb : _kernel.blocks()) {
            if (!_cfg.reachable(bb.id()))
                continue;
            if (_live.blockLiveIn(bb.id(), r))
                continue;
            bool pdoms_all = true;
            for (ir::BlockId c : constraint) {
                if (!_cfg.postdominates(bb.id(), c)) {
                    pdoms_all = false;
                    break;
                }
            }
            if (pdoms_all) {
                placement = bb.id();
                break;
            }
        }

        if (placement == ir::invalidBlock) {
            // Divergent paths reach exit without reconverging at a
            // point where the register is dead: the value lingers.
            ++_stats.unplacedInvalidations;
            continue;
        }
        RegionId region_id = block_first_region[placement];
        if (region_id == invalidRegion)
            panic("block ", placement, " has no region");
        regions[region_id].cacheInvalidations.push_back(r);
    }
}

} // namespace regless::compiler
