/**
 * @file
 * Static verifier for compiled kernels.
 *
 * Checks every structural invariant the RegLess hardware relies on —
 * region coverage, block containment, the load/use split, annotation
 * placement, capacity consistency — and returns structured Findings
 * instead of asserting. Useful both as a test oracle and as a safety
 * net for anyone modifying the compiler passes. The path-sensitive
 * staging-state checks live in compiler/staging_checker.hh; the
 * combined entry point is lintCompiledKernel() there.
 */

#ifndef REGLESS_COMPILER_VERIFIER_HH
#define REGLESS_COMPILER_VERIFIER_HH

#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "compiler/finding.hh"

namespace regless::compiler
{

/**
 * Verify @a ck against the hardware's structural assumptions.
 *
 * @param check_load_use Also require that no global load shares a
 *        region with its first use (disable when the kernel was
 *        compiled with splitLoadUse off).
 * @return one Finding per violated invariant; empty when sound.
 */
std::vector<Finding> verifyStructure(const CompiledKernel &ck,
                                     bool check_load_use = true);

/**
 * String shim over verifyStructure() for callers predating the
 * structured Finding type.
 *
 * @return one message per violated invariant; empty when sound.
 */
std::vector<std::string> verifyCompiledKernel(const CompiledKernel &ck,
                                              bool check_load_use = true);

} // namespace regless::compiler

#endif // REGLESS_COMPILER_VERIFIER_HH
