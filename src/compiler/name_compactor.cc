#include "compiler/name_compactor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ir/cfg_analysis.hh"

namespace regless::compiler
{

CompactionResult
compactNames(const ir::Kernel &kernel)
{
    const unsigned num_regs = kernel.numRegs();
    CompactionResult result{kernel, num_regs, num_regs, {}};
    if (num_regs <= 1) {
        result.mapping.assign(num_regs, 0);
        return result;
    }

    ir::CfgAnalysis cfg(kernel);
    ir::Liveness live(kernel, cfg);

    // Interference: registers co-live at any PC (including a write's
    // destination against the operands still held at that PC).
    std::vector<std::vector<bool>> conflicts(
        num_regs, std::vector<bool>(num_regs, false));
    auto mark = [&](const std::vector<RegId> &group) {
        for (std::size_t i = 0; i < group.size(); ++i) {
            for (std::size_t j = i + 1; j < group.size(); ++j) {
                conflicts[group[i]][group[j]] = true;
                conflicts[group[j]][group[i]] = true;
            }
        }
    };
    for (Pc pc = 0; pc < kernel.numInsns(); ++pc) {
        std::vector<RegId> group = live.liveRegsBefore(pc);
        const ir::Instruction &insn = kernel.insn(pc);
        if (insn.writesReg() &&
            std::find(group.begin(), group.end(), insn.dst()) ==
                group.end()) {
            group.push_back(insn.dst());
        }
        mark(group);
    }

    // Greedy colouring in order of first touch (program order), so
    // early names stay small and loop-carried values keep one home.
    std::vector<Pc> first_touch(num_regs, invalidPc);
    for (Pc pc = 0; pc < kernel.numInsns(); ++pc) {
        const ir::Instruction &insn = kernel.insn(pc);
        auto touch = [&](RegId r) {
            if (first_touch[r] == invalidPc)
                first_touch[r] = pc;
        };
        for (RegId src : insn.srcs())
            touch(src);
        if (insn.writesReg())
            touch(insn.dst());
    }
    std::vector<RegId> order;
    for (RegId r = 0; r < num_regs; ++r) {
        if (first_touch[r] != invalidPc)
            order.push_back(r);
    }
    std::stable_sort(order.begin(), order.end(), [&](RegId a, RegId b) {
        return first_touch[a] < first_touch[b];
    });

    std::vector<RegId> mapping(num_regs, invalidReg);
    unsigned colors = 0;
    for (RegId reg : order) {
        std::vector<bool> used(num_regs, false);
        for (RegId other = 0; other < num_regs; ++other) {
            if (conflicts[reg][other] && mapping[other] != invalidReg)
                used[mapping[other]] = true;
        }
        RegId color = 0;
        while (used[color])
            ++color;
        mapping[reg] = color;
        colors = std::max<unsigned>(colors, color + 1);
    }
    // Unreferenced names map to themselves (harmless).
    for (RegId r = 0; r < num_regs; ++r) {
        if (mapping[r] == invalidReg)
            mapping[r] = r;
    }

    std::vector<ir::Instruction> insns;
    insns.reserve(kernel.numInsns());
    for (const ir::Instruction &insn : kernel.instructions()) {
        std::vector<RegId> srcs;
        srcs.reserve(insn.srcs().size());
        for (RegId s : insn.srcs())
            srcs.push_back(mapping[s]);
        RegId dst =
            insn.writesReg() ? mapping[insn.dst()] : invalidReg;
        insns.emplace_back(insn.op(), dst, std::move(srcs), insn.imm(),
                           insn.target());
    }
    ir::Kernel out(kernel.name(), std::move(insns));
    out.setWarpsPerBlock(kernel.warpsPerBlock());
    out.setWorkScale(kernel.workScale());
    out.setValueProfile(kernel.valueProfile());

    result.kernel = std::move(out);
    result.compactedRegs = result.kernel.numRegs();
    result.mapping = std::move(mapping);
    if (result.compactedRegs > result.originalRegs)
        panic("name compaction grew the register count");
    (void)colors;
    return result;
}

} // namespace regless::compiler
