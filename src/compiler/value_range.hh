/**
 * @file
 * Static value-range analysis (DESIGN.md §14).
 *
 * A forward abstract interpretation over the kernel CFG computing, for
 * every (pc, register), a ValueFacts element: an unsigned interval
 * [lo, hi] every lane's value lies in, crossed with a lane-shape fact
 * (affine: lane i holds base + stride * i mod 2^32; uniform is the
 * stride-0 case). The fixpoint joins at merge points and widens on
 * loop back-edges, reusing the cfg_analysis block machinery.
 *
 * Soundness under SIMT divergence: register writes merge under the
 * active lane mask (arch::Warp::writeReg), so a definition inside a
 * branch's influence region leaves stale values in the inactive lanes.
 * The analysis therefore joins the old facts into any definition whose
 * block may execute under a partial mask (the divergence analogue of
 * the liveness pass's soft definitions), keeping every fact true of
 * all 32 lanes — which is what the eviction compressor sees.
 *
 * Consumers: the lifetime annotator derives per-region StaticEncoding
 * annotations (compiler/region.hh), the staging checker lints them,
 * and the energy model gates OSU banks via proven footprint bounds.
 */

#ifndef REGLESS_COMPILER_VALUE_RANGE_HH
#define REGLESS_COMPILER_VALUE_RANGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "compiler/region.hh"
#include "ir/cfg_analysis.hh"
#include "ir/instruction.hh"
#include "ir/kernel.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

/**
 * One lattice element: interval x lane shape. Bottom ("no value
 * reaches here") is the join identity; Top is the full interval with
 * no shape fact. Affine facts hold modulo 2^32, matching both the
 * hardware's wrap-around arithmetic and the compressor's stride check,
 * so the shape component stays exact even when the interval overflows
 * to Top.
 */
struct ValueFacts
{
    bool bottom = true;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0xffffffffu;
    /** lane i = lanes[0] + stride * i (mod 2^32). */
    bool affine = false;
    std::uint32_t stride = 0;

    /** Any value at all: full interval, no shape. */
    static ValueFacts top();

    /** All lanes equal @a v. */
    static ValueFacts constant(std::uint32_t v);

    /** Every lane in [@a lo, @a hi], no shape fact. */
    static ValueFacts range(std::uint32_t lo, std::uint32_t hi);

    /** Unknown base, lanes striding by @a stride (full interval). */
    static ValueFacts lanesAffine(std::uint32_t stride);

    bool isBottom() const { return bottom; }
    bool isTop() const
    {
        return !bottom && lo == 0 && hi == 0xffffffffu && !affine;
    }

    /** All lanes provably equal (affine with stride 0). */
    bool uniform() const { return !bottom && affine && stride == 0; }

    /** Single known value (degenerate interval, hence uniform). */
    bool isConstant() const { return !bottom && lo == hi; }

    /** @return true when @a lanes satisfies every claimed fact. */
    bool contains(const ir::LaneValues &lanes) const;

    bool operator==(const ValueFacts &other) const;
    bool operator!=(const ValueFacts &other) const
    {
        return !(*this == other);
    }

    /** "[0x10,0x1f] stride 1"-style rendering for diagnostics. */
    std::string toString() const;
};

/** Lattice partial order: a is at least as precise as b. */
bool leq(const ValueFacts &a, const ValueFacts &b);

/** Least upper bound: interval hull plus shape merge. */
ValueFacts join(const ValueFacts &a, const ValueFacts &b);

/**
 * Widening operator: like join, but a bound that grew past @a a blows
 * straight to its extreme, bounding every ascending chain.
 */
ValueFacts widen(const ValueFacts &a, const ValueFacts &b);

/**
 * Full-mask transfer function for one register-writing instruction:
 * facts of the destination given facts of each source operand (in
 * insn.srcs() order). Pure; exposed for the per-opcode unit tests.
 * Loads yield Top (runtime values), Tid is affine stride 1, CtaId is
 * uniform; both have unconstrained intervals because the SM adds the
 * warp thread base / broadcasts the block id at execution time.
 */
ValueFacts transferInsn(const ir::Instruction &insn,
                        const std::vector<ValueFacts> &srcs);

/** Strongest encoding the facts prove (None when nothing does). */
StaticEncoding classifyEncoding(const ValueFacts &facts);

/** Runtime guard: does @a lanes actually satisfy @a enc? */
bool encodingHolds(StaticEncoding enc, const ir::LaneValues &lanes);

/** Lint check: do @a facts justify recording @a enc? */
bool encodingImplied(StaticEncoding enc, const ValueFacts &facts);

/**
 * Bytes a register provably needs in a backing line under @a enc
 * (4 for a uniform scalar, 64 for the 16-bit encodings, 128 plain).
 */
unsigned encodingBytes(StaticEncoding enc);

/**
 * The kernel-wide fixpoint. Facts are per (pc, register): before() is
 * the state in which the instruction at @a pc executes, after() the
 * state it leaves. Unreachable code reports Bottom.
 */
class ValueRangeAnalysis
{
  public:
    ValueRangeAnalysis(const ir::Kernel &kernel,
                       const ir::CfgAnalysis &cfg,
                       const ir::Liveness &live);

    /** Facts immediately before the instruction at @a pc executes. */
    const ValueFacts &before(Pc pc, RegId reg) const;

    /** Facts immediately after the instruction at @a pc executes. */
    ValueFacts after(Pc pc, RegId reg) const;

    /**
     * @return true when every dynamic execution of @a b runs with the
     * full lane mask: @a b is outside every branch's influence region
     * and no reachable Exit diverges lanes away earlier.
     */
    bool fullMaskBlock(ir::BlockId b) const
    {
        return !_partialMask.test(b);
    }

  private:
    using State = std::vector<ValueFacts>;

    void computePartialMaskBlocks();
    void solve();
    void applyInsn(Pc pc, State &state) const;

    const ir::Kernel &_kernel;
    const ir::CfgAnalysis &_cfg;
    const ir::Liveness &_live;
    ir::BlockSet _partialMask;
    std::vector<State> _blockIn;
    std::vector<State> _beforePc;
};

} // namespace regless::compiler

#endif // REGLESS_COMPILER_VALUE_RANGE_HH
