/**
 * @file
 * Metadata-instruction cost model (paper §5.4).
 *
 * Annotations ride in the instruction stream: each region starts with a
 * flag instruction carrying the bank usage plus up to 3 preloads /
 * cache invalidations; overflow preloads take extra metadata
 * instructions (3 per instruction); one lifetime-marker instruction is
 * emitted per 9 region instructions; small regions (<= 4 instructions,
 * <= 2 preloads+invalidations) use a compact single-instruction form.
 * The counts feed fetch/decode energy and bandwidth accounting.
 */

#ifndef REGLESS_COMPILER_METADATA_ENCODER_HH
#define REGLESS_COMPILER_METADATA_ENCODER_HH

#include <vector>

#include "compiler/region.hh"

namespace regless::compiler
{

/** Computes per-region and total metadata instruction counts. */
class MetadataEncoder
{
  public:
    /** Per-flag-instruction preload/invalidation capacity. */
    static constexpr unsigned flagSlots = 3;

    /** Region instructions covered by one lifetime-marker insn. */
    static constexpr unsigned insnsPerMarker = 9;

    /** Compact-encoding limits. */
    static constexpr unsigned compactMaxInsns = 4;
    static constexpr unsigned compactMaxSlots = 2;

    /** Metadata instructions required by one region. */
    static unsigned metadataForRegion(const Region &region);

    /**
     * Fill Region::metadataInsns for every region.
     * @return the total across regions.
     */
    static unsigned encode(std::vector<Region> &regions);
};

} // namespace regless::compiler

#endif // REGLESS_COMPILER_METADATA_ENCODER_HH
