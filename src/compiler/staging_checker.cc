#include "compiler/staging_checker.hh"

#include <algorithm>
#include <deque>
#include <iterator>
#include <set>
#include <sstream>
#include <tuple>

#include "compiler/region_builder.hh"
#include "compiler/value_range.hh"
#include "compiler/verifier.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

namespace
{

using ir::StageLoc;
using ir::StageSet;

/** Abstract per-register state per region entry. */
using State = std::vector<StageSet>;

/** Within-region tracking of one register's concrete staging status. */
struct LocalReg
{
    bool touched = false; ///< preloaded, written, erased, or evicted
    bool staged = false;  ///< currently holds an owned OSU line
    bool dirty = false;   ///< staged copy newer than the backing copy
    bool backingValid = false; ///< backing store holds the value
    bool erased = false;
    bool evicted = false;
    bool survives = false; ///< value recoverable after its eviction
};

/**
 * The interpreter. One instance per check() call: builds the
 * inter-region graph, iterates the transfer function to a fixpoint
 * (findings suppressed), then replays each reachable region once with
 * its final entry state to collect deduplicated findings.
 */
class StagingChecker
{
  public:
    explicit StagingChecker(const CompiledKernel &ck)
        : _ck(ck),
          _kernel(ck.kernel()),
          _cfg(_kernel),
          _live(_kernel, _cfg)
    {
    }

    std::vector<Finding>
    run()
    {
        if (_kernel.numInsns() == 0 || _kernel.numRegs() == 0 ||
            _ck.regions().empty()) {
            return {};
        }
        buildGraph();
        solve();
        report();
        return std::move(_findings);
    }

  private:
    /** @return true when @a region has usable bounds for the walk. */
    bool
    wellFormed(const Region &region) const
    {
        return region.startPc <= region.endPc &&
               region.endPc < _kernel.numInsns();
    }

    void
    buildGraph()
    {
        const std::size_t n = _ck.regions().size();
        _succs.assign(n, {});
        _entry.assign(n, State(_kernel.numRegs()));
        for (std::size_t i = 0; i < n; ++i) {
            const Region &region = _ck.regions()[i];
            if (!wellFormed(region))
                continue;
            const ir::BasicBlock &block =
                _kernel.block(_kernel.blockOf(region.endPc));
            if (region.endPc == block.lastPc()) {
                for (ir::BlockId succ : block.successors()) {
                    _succs[i].push_back(
                        _ck.regionAt(_kernel.block(succ).firstPc()));
                }
            } else {
                _succs[i].push_back(_ck.regionAt(region.endPc + 1));
            }
        }
        _entryRegion = _ck.regionAt(0);
        for (StageSet &s : _entry[_entryRegion])
            s = StageSet::of(StageLoc::Undef);
    }

    void
    solve()
    {
        std::deque<RegionId> worklist{_entryRegion};
        std::vector<bool> queued(_ck.regions().size(), false);
        queued[_entryRegion] = true;
        while (!worklist.empty()) {
            RegionId rid = worklist.front();
            worklist.pop_front();
            queued[rid] = false;
            State exit = transfer(rid, _entry[rid], /*report=*/false);
            for (RegionId succ : _succs[rid]) {
                bool changed = false;
                State &dst = _entry[succ];
                for (std::size_t r = 0; r < dst.size(); ++r)
                    changed |= dst[r].join(exit[r]);
                if (changed && !queued[succ]) {
                    queued[succ] = true;
                    worklist.push_back(succ);
                }
            }
        }
    }

    void
    report()
    {
        for (std::size_t i = 0; i < _ck.regions().size(); ++i) {
            const Region &region = _ck.regions()[i];
            if (!wellFormed(region))
                continue;
            // Capacity claims are checked even off the fixpoint: an
            // under-claim starves the region regardless of path.
            checkCapacity(region);
            if (!reached(_entry[i]))
                continue; // unreachable from the kernel entry
            transfer(static_cast<RegionId>(i), _entry[i],
                     /*report=*/true);
        }
    }

    static bool
    reached(const State &entry)
    {
        for (const StageSet &s : entry) {
            if (!s.empty())
                return true;
        }
        return false;
    }

    /**
     * Interpret one region from @a entry. Returns the exit state; when
     * @a report is set, also records findings (deduplicated, so the
     * reporting replay emits each problem once).
     */
    State
    transfer(RegionId rid, const State &entry, bool report)
    {
        const Region &region = _ck.regions()[rid];
        State state = entry;
        std::vector<LocalReg> local(_kernel.numRegs());

        // Activation step 1: §4.4 cache invalidations clear the
        // backing copy of values control flow killed.
        for (RegId r : region.cacheInvalidations) {
            if (r >= state.size())
                continue;
            if (report && _live.liveBefore(region.startPc, r)) {
                add(codes::invalidateLive, rid, region.startPc, r,
                    "cache invalidation of r", r,
                    " which is live entering the region");
            }
            state[r] = StageSet::of(StageLoc::Invalidated);
        }

        // Activation step 2: preloads stage every input. A preload is
        // only sound when no path delivers an erased, invalidated, or
        // never-defined value here.
        for (const Preload &p : region.preloads) {
            if (p.reg >= state.size())
                continue;
            const StageSet in = state[p.reg];
            if (report && !in.empty()) {
                if (in.contains(StageLoc::Invalidated)) {
                    add(codes::preloadInvalidated, rid, region.startPc,
                        p.reg, "preload of r", p.reg,
                        " whose value was invalidated on some path "
                        "(entry state ",
                        in.toString(), ")");
                }
                if (in.contains(StageLoc::Dead)) {
                    add(codes::preloadErased, rid, region.startPc,
                        p.reg, "preload of r", p.reg,
                        " whose value was erased on some path "
                        "(entry state ",
                        in.toString(), ")");
                }
                if (in.contains(StageLoc::Undef)) {
                    add(codes::preloadUndef, rid, region.startPc,
                        p.reg, "preload of r", p.reg,
                        " which is not defined on some path to this "
                        "region");
                }
            }
            if (report && p.invalidate &&
                _live.liveAfter(region.endPc, p.reg)) {
                add(codes::invalidateLive, rid, region.startPc, p.reg,
                    "invalidating preload of r", p.reg,
                    " but the value is still live after the region");
            }
            if (report && p.invalidate &&
                ir::divergentSiblingMayRead(_kernel, _cfg, _live,
                                            region.block, p.reg)) {
                add(codes::invalidateLive, rid, region.startPc, p.reg,
                    "invalidating preload of r", p.reg,
                    " but a divergent sibling path still reads the "
                    "value");
            }
            LocalReg &lr = local[p.reg];
            lr.touched = true;
            lr.staged = true;
            lr.dirty = false;
            // An invalidating read (§4.3) consumes the backing copy
            // as it stages the value: the OSU line becomes the only
            // copy, and it is clean.
            lr.backingValid = !p.invalidate;
        }

        // Sequential walk: regions contain no control flow, so the
        // program order within [startPc, endPc] is the only path.
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc) {
            const ir::Instruction &insn = _kernel.insn(pc);

            std::vector<RegId> reads = ir::Liveness::usedRegs(insn);
            // A soft definition merges lanes into the old value, so
            // the destination must be staged like any other operand
            // (Algorithm 2).
            if (insn.writesReg() && _live.isSoftDef(pc))
                reads.push_back(insn.dst());
            std::sort(reads.begin(), reads.end());
            reads.erase(std::unique(reads.begin(), reads.end()),
                        reads.end());
            for (RegId r : reads) {
                if (r >= local.size())
                    continue;
                LocalReg &lr = local[r];
                if (lr.staged)
                    continue;
                if (report)
                    reportBadRead(rid, pc, r, lr, state[r]);
                // Recover so one missing preload reports once, not at
                // every use.
                lr.touched = true;
                lr.staged = true;
            }

            if (insn.writesReg()) {
                LocalReg &lr = local[insn.dst()];
                lr.touched = true;
                lr.staged = true;
                lr.dirty = true;
                lr.erased = false;
                lr.evicted = false;
            }

            // Annotations fire after the instruction's own accesses,
            // mirroring CapacityManager::onIssue.
            auto erase_it = region.erases.find(pc);
            if (erase_it != region.erases.end()) {
                for (RegId r : erase_it->second)
                    applyErase(rid, pc, r, local, report);
            }
            auto evict_it = region.evicts.find(pc);
            if (evict_it != region.evicts.end()) {
                for (RegId r : evict_it->second)
                    applyEvict(rid, pc, r, local, report);
            }
        }

        // Exit state.
        for (std::size_t r = 0; r < state.size(); ++r) {
            const LocalReg &lr = local[r];
            if (!lr.touched)
                continue; // pass the (post-invalidation) entry state
            if (lr.erased) {
                state[r] = StageSet::of(StageLoc::Dead);
            } else if (lr.evicted) {
                StageSet out = StageSet::of(StageLoc::Staged);
                out.add(lr.survives ? StageLoc::Backing
                                    : StageLoc::Invalidated);
                state[r] = out;
            } else {
                // Still owned at the region boundary: the line can
                // never be reclaimed and leaks for the warp's
                // lifetime.
                if (report) {
                    add(codes::leakedLine, rid, region.endPc,
                        static_cast<RegId>(r), "r", r,
                        " is still staged at the region end (no erase "
                        "or evict annotation reached)");
                }
                state[r] = StageSet::of(StageLoc::Staged);
            }
        }
        return state;
    }

    void
    reportBadRead(RegionId rid, Pc pc, RegId r, const LocalReg &lr,
                  const StageSet &entry)
    {
        if (lr.erased) {
            add(codes::readAfterErase, rid, pc, r, "read of r", r,
                " after its erase annotation in the same region");
            return;
        }
        if (lr.evicted) {
            add(codes::readUnstaged, rid, pc, r, "read of r", r,
                " after its evict annotation in the same region");
            return;
        }
        if (entry.contains(StageLoc::Dead)) {
            add(codes::readAfterErase, rid, pc, r, "read of r", r,
                " whose value was erased on some path (entry state ",
                entry.toString(), ")");
            return;
        }
        if (entry.contains(StageLoc::Invalidated)) {
            add(codes::readAfterInvalidate, rid, pc, r, "read of r", r,
                " whose value was invalidated on some path (entry "
                "state ",
                entry.toString(), ")");
            return;
        }
        add(codes::readUnstaged, rid, pc, r, "read of r", r,
            " which is not staged at this point (entry state ",
            entry.toString(), "; preload missing?)");
    }

    void
    applyErase(RegionId rid, Pc pc, RegId r,
               std::vector<LocalReg> &local, bool report)
    {
        if (r >= local.size())
            return;
        LocalReg &lr = local[r];
        if (report) {
            if (!lr.staged) {
                add(codes::eraseUnstaged, rid, pc, r, "erase of r", r,
                    " which is not staged at this point");
            }
            if (_live.liveAfter(pc, r)) {
                if (_live.hasSoftDef(r)) {
                    add(codes::eraseSoftDef, rid, pc, r, "erase of r",
                        r,
                        " which a later soft definition must merge "
                        "with (Algorithm 2): the value is live after "
                        "pc ",
                        pc);
                } else {
                    add(codes::eraseLive, rid, pc, r, "erase of r", r,
                        " which is still live after pc ", pc,
                        " (re-read on a later path or loop "
                        "iteration)");
                }
            }
        }
        lr.touched = true;
        lr.staged = false;
        lr.erased = true;
        lr.evicted = false;
    }

    void
    applyEvict(RegionId rid, Pc pc, RegId r,
               std::vector<LocalReg> &local, bool report)
    {
        if (r >= local.size())
            return;
        LocalReg &lr = local[r];
        if (report && !lr.staged) {
            add(codes::evictUnstaged, rid, pc, r, "evict of r", r,
                " which is not staged at this point");
        }
        lr.survives = lr.dirty || lr.backingValid;
        lr.touched = true;
        lr.staged = false;
        lr.evicted = true;
        lr.erased = false;
    }

    void
    checkCapacity(const Region &region)
    {
        Occupancy occ = computeOccupancy(_kernel, _live,
                                         region.startPc, region.endPc);
        if (region.maxLive < occ.maxLive) {
            add(codes::capacityUnderclaim, region.id, invalidPc,
                invalidReg, "region claims maxLive ", region.maxLive,
                " but the worst-case concurrent set is ", occ.maxLive);
        }
        for (unsigned b = 0; b < numOsuBanks; ++b) {
            if (region.bankUsage[b] <
                static_cast<unsigned>(occ.bankUsage[b])) {
                add(codes::capacityUnderclaim, region.id, invalidPc,
                    invalidReg, "region claims ",
                    static_cast<unsigned>(region.bankUsage[b]),
                    " lines in bank ", b,
                    " but the worst case needs ",
                    static_cast<unsigned>(occ.bankUsage[b]));
            }
        }
    }

    template <typename... Args>
    void
    add(const char *code, RegionId region, Pc pc, RegId reg,
        Args &&...args)
    {
        if (!_reported
                 .emplace(std::string(code), region, pc, reg)
                 .second) {
            return;
        }
        std::ostringstream oss;
        (oss << ... << args);
        _findings.push_back(Finding{code, Severity::Error, region, pc,
                                    reg, oss.str()});
    }

    const CompiledKernel &_ck;
    const ir::Kernel &_kernel;
    ir::CfgAnalysis _cfg;
    ir::Liveness _live;

    std::vector<std::vector<RegionId>> _succs;
    std::vector<State> _entry;
    RegionId _entryRegion = invalidRegion;

    std::set<std::tuple<std::string, RegionId, Pc, RegId>> _reported;
    std::vector<Finding> _findings;
};

} // namespace

std::vector<Finding>
checkStagingStates(const CompiledKernel &ck)
{
    return StagingChecker(ck).run();
}

std::vector<Finding>
checkValueRanges(const CompiledKernel &ck, bool advisory)
{
    const ir::Kernel &kernel = ck.kernel();
    if (kernel.numInsns() == 0 || kernel.numRegs() == 0 ||
        ck.regions().empty()) {
        return {};
    }
    ir::CfgAnalysis cfg(kernel);
    ir::Liveness live(kernel, cfg);
    ValueRangeAnalysis vra(kernel, cfg, live);

    std::vector<Finding> findings;
    auto add = [&](const char *code, Severity severity, RegionId rid,
                   Pc pc, RegId reg, std::string message) {
        findings.push_back(Finding{code, severity, rid, pc, reg,
                                   std::move(message)});
    };

    for (const Region &region : ck.regions()) {
        if (region.startPc > region.endPc ||
            region.endPc >= kernel.numInsns()) {
            continue; // structural verifier's problem
        }

        // Each boundary register's unique evict point in this region.
        std::map<RegId, Pc> evict_pc;
        for (const auto &[pc, regs] : region.evicts) {
            for (RegId r : regs)
                evict_pc.emplace(r, pc);
        }

        for (const auto &[reg, enc] : region.encodings) {
            auto it = evict_pc.find(reg);
            if (it == evict_pc.end()) {
                std::ostringstream oss;
                oss << "region records encoding "
                    << staticEncodingName(enc) << " for r" << reg
                    << " which it never evicts";
                add(codes::encodingUnsound, Severity::Error, region.id,
                    invalidPc, reg, oss.str());
                continue;
            }
            const ValueFacts facts = vra.after(it->second, reg);
            if (!encodingImplied(enc, facts)) {
                std::ostringstream oss;
                oss << "recorded encoding " << staticEncodingName(enc)
                    << " for r" << reg
                    << " is not implied by the value facts "
                    << facts.toString() << " at its evict point";
                add(codes::encodingUnsound, Severity::Error, region.id,
                    it->second, reg, oss.str());
            }
        }

        if (!advisory)
            continue;

        // Advisory: a staged register with a proven narrow encoding
        // still occupies (and writes back) a full 128-byte line.
        for (const auto &[reg, enc] : region.encodings) {
            const unsigned bytes = encodingBytes(enc);
            if (bytes >= regBytes)
                continue;
            std::ostringstream oss;
            oss << "r" << reg << " claims a full " << regBytes
                << "-byte line but provably needs " << bytes
                << " bytes (" << staticEncodingName(enc) << ")";
            add(codes::bankOverclaim, Severity::Warning, region.id,
                evict_pc.count(reg) ? evict_pc[reg] : invalidPc, reg,
                oss.str());
        }

        // Advisory: a preload of a provably constant value stages a
        // line the hardware could rematerialize from the immediate.
        for (const Preload &p : region.preloads) {
            const ValueFacts facts = vra.before(region.startPc, p.reg);
            if (!facts.isConstant())
                continue;
            std::ostringstream oss;
            oss << "preload of r" << p.reg
                << " whose value is provably the constant " << facts.lo
                << "; the staged line is statically dead weight";
            add(codes::deadStagedLine, Severity::Warning, region.id,
                region.startPc, p.reg, oss.str());
        }
    }
    return findings;
}

std::vector<Finding>
lintCompiledKernel(const CompiledKernel &ck, const LintOptions &options)
{
    std::vector<Finding> findings =
        verifyStructure(ck, options.checkLoadUse);
    std::vector<Finding> staging = checkStagingStates(ck);
    findings.insert(findings.end(),
                    std::make_move_iterator(staging.begin()),
                    std::make_move_iterator(staging.end()));
    std::vector<Finding> ranges =
        checkValueRanges(ck, options.advisory);
    findings.insert(findings.end(),
                    std::make_move_iterator(ranges.begin()),
                    std::make_move_iterator(ranges.end()));
    return findings;
}

} // namespace regless::compiler
