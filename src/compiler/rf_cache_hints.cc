#include "compiler/rf_cache_hints.hh"

#include <algorithm>

#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

std::vector<bool>
rfCacheableRegs(const ir::Kernel &kernel,
                const RfCacheHintParams &params)
{
    const ir::CfgAnalysis cfg(kernel);
    const ir::Liveness live(kernel, cfg);
    const unsigned num_regs = kernel.numRegs();
    std::vector<bool> cacheable(num_regs, false);

    for (RegId r = 0; r < num_regs; ++r) {
        const std::vector<Pc> &defs = live.defsOf(r);
        if (defs.empty() || live.hasSoftDef(r))
            continue;
        bool ok = true;
        for (Pc def : defs) {
            const ir::BlockId def_bb = kernel.blockOf(def);
            // A value live out of its defining block can be consumed
            // on a path the cache's replacement never sees coming;
            // leave it to the backing file.
            if (live.blockLiveOut(def_bb, r)) {
                ok = false;
                break;
            }
            // Every use reached by this def (up to the next
            // redefinition) must be close and in the same block.
            Pc next_def = invalidPc;
            for (Pc other : defs) {
                if (other > def)
                    next_def = std::min(next_def, other);
            }
            for (Pc use : live.usesOf(r)) {
                if (use <= def || use >= next_def)
                    continue;
                if (kernel.blockOf(use) != def_bb ||
                    use - def > params.maxDefUseDistance) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                break;
        }
        cacheable[r] = ok;
    }
    return cacheable;
}

} // namespace regless::compiler
