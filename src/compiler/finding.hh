/**
 * @file
 * Structured verification findings.
 *
 * The structural verifier, the staging-state abstract interpreter, and
 * the runtime shadow checker all report problems as Findings: a stable
 * machine-readable code, a severity, the location (region / pc /
 * register, each optional), and a human-readable message. Tools render
 * them as text or JSON; tests match on the code.
 */

#ifndef REGLESS_COMPILER_FINDING_HH
#define REGLESS_COMPILER_FINDING_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "compiler/region.hh"

namespace regless::compiler
{

/** How bad a finding is. Errors make a kernel unsound to simulate. */
enum class Severity : std::uint8_t
{
    Warning,
    Error,
};

/** "warning" / "error". */
const char *severityName(Severity severity);

/**
 * Stable finding codes. Structural codes come from the verifier;
 * staging codes from the abstract interpreter; runtime codes from the
 * dynamic shadow checker. Tests and tools key on these strings, so
 * they are part of the lint output format.
 */
namespace codes
{

// Structural (compiler/verifier.cc).
inline constexpr const char *regionBounds = "region-bounds";
inline constexpr const char *regionSpansBlock = "region-spans-block";
inline constexpr const char *regionIdMap = "region-id-map";
inline constexpr const char *coverage = "coverage";
inline constexpr const char *classification = "classification";
inline constexpr const char *preloadSet = "preload-set";
inline constexpr const char *erasePlacement = "erase-placement";
inline constexpr const char *evictPlacement = "evict-placement";
inline constexpr const char *capacityMismatch = "capacity-mismatch";
inline constexpr const char *loadUseSplit = "load-use-split";
inline constexpr const char *metadataMissing = "metadata-missing";

// Staging-state (compiler/staging_checker.cc).
inline constexpr const char *readUnstaged = "read-unstaged";
inline constexpr const char *readAfterErase = "read-after-erase";
inline constexpr const char *readAfterInvalidate = "read-after-invalidate";
inline constexpr const char *preloadInvalidated = "preload-invalidated";
inline constexpr const char *preloadErased = "preload-erased";
inline constexpr const char *preloadUndef = "preload-undef";
inline constexpr const char *eraseLive = "erase-live";
inline constexpr const char *eraseSoftDef = "erase-soft-def";
inline constexpr const char *eraseUnstaged = "erase-unstaged";
inline constexpr const char *evictUnstaged = "evict-unstaged";
inline constexpr const char *invalidateLive = "invalidate-live";
inline constexpr const char *leakedLine = "leaked-line";
inline constexpr const char *capacityUnderclaim = "capacity-underclaim";

// Value-range (compiler/staging_checker.cc, DESIGN.md §14).
inline constexpr const char *encodingUnsound = "encoding-unsound";
inline constexpr const char *bankOverclaim = "bank-overclaim";
inline constexpr const char *deadStagedLine = "dead-staged-line";

// Runtime (regless/shadow_checker.cc).
inline constexpr const char *rtReadUnstaged = "rt-read-unstaged";
inline constexpr const char *rtReadAfterErase = "rt-read-after-erase";
inline constexpr const char *rtReadAfterInvalidate =
    "rt-read-after-invalidate";
inline constexpr const char *rtPreloadLost = "rt-preload-lost";
inline constexpr const char *rtLeakedLine = "rt-leaked-line";
inline constexpr const char *rtEncodingUnsound = "rt-encoding-unsound";

} // namespace codes

/** One verification problem, locatable and machine-matchable. */
struct Finding
{
    /** Stable code from compiler::codes. */
    std::string code;

    Severity severity = Severity::Error;

    /** Region the finding is about; invalidRegion when kernel-wide. */
    RegionId region = invalidRegion;

    /** Instruction the finding anchors to; invalidPc when region-wide. */
    Pc pc = invalidPc;

    /** Register involved; invalidReg when not register-specific. */
    RegId reg = invalidReg;

    std::string message;

    /** "error[read-unstaged] region 3 pc 17 r5: ..." */
    std::string toString() const;

    /** One JSON object (all fields; absent locations become null). */
    std::string toJson() const;
};

/** @return true when any finding has Severity::Error. */
bool hasErrors(const std::vector<Finding> &findings);

/** Number of findings with Severity::Error. */
std::size_t countErrors(const std::vector<Finding> &findings);

/** Render findings one per line (toString), for CLI output and logs. */
std::string formatFindings(const std::vector<Finding> &findings);

} // namespace regless::compiler

#endif // REGLESS_COMPILER_FINDING_HH
