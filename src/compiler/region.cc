#include "compiler/region.hh"

#include <numeric>
#include <sstream>

namespace regless::compiler
{

const char *
staticEncodingName(StaticEncoding enc)
{
    switch (enc) {
      case StaticEncoding::None: return "none";
      case StaticEncoding::UniformScalar: return "uniform-scalar";
      case StaticEncoding::NarrowWidth: return "narrow-width";
      case StaticEncoding::SignCompressed: return "sign-compressed";
    }
    return "?";
}

unsigned
Region::reservedLines() const
{
    return std::accumulate(bankUsage.begin(), bankUsage.end(), 0u);
}

std::string
Region::toString() const
{
    std::ostringstream oss;
    oss << "region " << id << " bb" << block << " [" << startPc << ", "
        << endPc << "]";
    oss << " in={";
    for (std::size_t i = 0; i < inputs.size(); ++i)
        oss << (i ? "," : "") << "r" << inputs[i];
    oss << "} out={";
    for (std::size_t i = 0; i < outputs.size(); ++i)
        oss << (i ? "," : "") << "r" << outputs[i];
    oss << "} interior={";
    for (std::size_t i = 0; i < interiors.size(); ++i)
        oss << (i ? "," : "") << "r" << interiors[i];
    oss << "} maxLive=" << maxLive << " banks=[";
    for (unsigned b = 0; b < numOsuBanks; ++b)
        oss << (b ? "," : "") << unsigned(bankUsage[b]);
    oss << "]";
    return oss.str();
}

} // namespace regless::compiler
