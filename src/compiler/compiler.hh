/**
 * @file
 * The RegLess compiler driver: the public entry point that turns a
 * kernel into regions plus annotations (paper §4).
 */

#ifndef REGLESS_COMPILER_COMPILER_HH
#define REGLESS_COMPILER_COMPILER_HH

#include <string>
#include <vector>

#include "compiler/config.hh"
#include "compiler/lifetime_annotator.hh"
#include "compiler/region.hh"
#include "ir/kernel.hh"

namespace regless::compiler
{

/**
 * A kernel compiled for RegLess: the (possibly renumbered) instruction
 * stream plus the region partition and all hardware annotations.
 */
class CompiledKernel
{
  public:
    CompiledKernel(ir::Kernel kernel, std::vector<Region> regions,
                   LifetimeAnnotator::Stats lifetime_stats,
                   unsigned metadata_insns);

    const ir::Kernel &kernel() const { return _kernel; }
    const std::vector<Region> &regions() const { return _regions; }
    const Region &region(RegionId id) const { return _regions.at(id); }

    /** Region containing @a pc. */
    RegionId regionAt(Pc pc) const { return _pcToRegion.at(pc); }

    /** Region starting exactly at @a pc, or invalidRegion. */
    RegionId regionStartingAt(Pc pc) const;

    const LifetimeAnnotator::Stats &
    lifetimeStats() const
    {
        return _lifetimeStats;
    }

    /** Total metadata instructions inserted in the stream. */
    unsigned metadataInsns() const { return _metadataInsns; }

    /**
     * Kernel-wide static compression encoding per register, indexed
     * by RegId: the per-region encodings merged across all regions
     * (regions that disagree demote the register to None). This is
     * the table the eviction compressor consults in static/hybrid
     * mode — it has no region context at reclaim time.
     */
    const std::vector<StaticEncoding> &staticEncodings() const
    {
        return _staticEncodings;
    }

    /** Static mean of per-region preload counts. */
    double meanPreloadsPerRegion() const;

    /** Static mean of per-region max concurrent live registers. */
    double meanMaxLivePerRegion() const;

    /** Static mean of per-region instruction counts. */
    double meanInsnsPerRegion() const;

    /** Multi-line region dump for the examples and debugging. */
    std::string describeRegions() const;

  private:
    ir::Kernel _kernel;
    std::vector<Region> _regions;
    std::vector<RegionId> _pcToRegion;
    std::vector<StaticEncoding> _staticEncodings;
    LifetimeAnnotator::Stats _lifetimeStats;
    unsigned _metadataInsns;
};

/**
 * Run the full pass pipeline: (optional) bank-aware renumbering,
 * region creation, lifetime annotation, metadata encoding.
 */
CompiledKernel compile(const ir::Kernel &kernel,
                       const CompilerConfig &config = CompilerConfig());

} // namespace regless::compiler

#endif // REGLESS_COMPILER_COMPILER_HH
