/**
 * @file
 * Register-name compaction.
 *
 * The kernel-builder DSL allocates a fresh register id per value, the
 * way SSA-ish frontends do; real machine code reuses names once values
 * die, the way `ptxas` allocates. This pass renames registers with a
 * linear-scan style allocator over divergence-corrected live ranges so
 * the kernel's architectural register count reflects its true peak
 * pressure. Off by default in CompilerConfig (the evaluation is
 * calibrated on the uncompacted suite); the occupancy and RFV studies
 * use it to explore realistic name counts.
 */

#ifndef REGLESS_COMPILER_NAME_COMPACTOR_HH
#define REGLESS_COMPILER_NAME_COMPACTOR_HH

#include <vector>

#include "ir/kernel.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

/** Result of a compaction run. */
struct CompactionResult
{
    ir::Kernel kernel;
    unsigned originalRegs = 0;
    unsigned compactedRegs = 0;
    /** newName[oldName]; identity entries for unreferenced names. */
    std::vector<RegId> mapping;
};

/**
 * Rename @a kernel's registers onto the smallest name set such that
 * no two simultaneously-live values share a name.
 *
 * Correctness notes: two values may share a name only if their
 * divergence-corrected live ranges are disjoint at every PC *and*
 * neither has a soft definition (partially-written registers must keep
 * a stable home for the inactive lanes).
 */
CompactionResult compactNames(const ir::Kernel &kernel);

} // namespace regless::compiler

#endif // REGLESS_COMPILER_NAME_COMPACTOR_HH
