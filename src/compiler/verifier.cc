#include "compiler/verifier.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "compiler/region_builder.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

namespace
{

/** Small helper collecting findings with stream formatting. */
class Findings
{
  public:
    /** Start a finding; location setters chain before message(). */
    Findings &
    at(const char *code, RegionId region = invalidRegion,
       Pc pc = invalidPc, RegId reg = invalidReg)
    {
        _current = Finding{};
        _current.code = code;
        _current.severity = Severity::Error;
        _current.region = region;
        _current.pc = pc;
        _current.reg = reg;
        return *this;
    }

    template <typename... Args>
    void
    message(Args &&...args)
    {
        std::ostringstream oss;
        (oss << ... << args);
        _current.message = oss.str();
        _findings.push_back(std::move(_current));
    }

    std::vector<Finding> take() { return std::move(_findings); }

  private:
    Finding _current;
    std::vector<Finding> _findings;
};

} // namespace

std::vector<Finding>
verifyStructure(const CompiledKernel &ck, bool check_load_use)
{
    Findings findings;
    const ir::Kernel &kernel = ck.kernel();
    ir::CfgAnalysis cfg(kernel);
    ir::Liveness live(kernel, cfg);

    // 1. Coverage: every PC in exactly one region, regions inside one
    //    basic block, ids consistent.
    std::vector<unsigned> covered(kernel.numInsns(), 0);
    for (const Region &region : ck.regions()) {
        if (region.startPc > region.endPc ||
            region.endPc >= kernel.numInsns()) {
            findings.at(codes::regionBounds, region.id)
                .message("region ", region.id, " has bad bounds [",
                         region.startPc, ", ", region.endPc, "]");
            continue;
        }
        if (kernel.blockOf(region.startPc) !=
            kernel.blockOf(region.endPc)) {
            findings.at(codes::regionSpansBlock, region.id)
                .message("region ", region.id,
                         " spans a basic-block boundary");
        }
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc)
            ++covered[pc];
        if (ck.regionAt(region.startPc) != region.id) {
            findings.at(codes::regionIdMap, region.id)
                .message("region ", region.id, " id/map mismatch");
        }
    }
    for (Pc pc = 0; pc < kernel.numInsns(); ++pc) {
        if (covered[pc] != 1) {
            findings.at(codes::coverage, invalidRegion, pc)
                .message("pc ", pc, " covered by ", covered[pc],
                         " regions");
        }
    }

    for (const Region &region : ck.regions()) {
        // Bad bounds were flagged above; the per-pc checks below (and
        // computeOccupancy's interval sweep in particular) assume
        // startPc <= endPc < numInsns.
        if (region.startPc > region.endPc ||
            region.endPc >= kernel.numInsns()) {
            continue;
        }
        // 2. Register classification is a partition of the region's
        //    referenced registers.
        std::set<RegId> refs;
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc) {
            const ir::Instruction &insn = kernel.insn(pc);
            if (insn.writesReg())
                refs.insert(insn.dst());
            for (RegId src : insn.srcs())
                refs.insert(src);
        }
        std::set<RegId> classified;
        auto classify = [&](const std::vector<RegId> &group,
                            const char *kind) {
            for (RegId r : group) {
                if (!refs.count(r)) {
                    findings
                        .at(codes::classification, region.id, invalidPc,
                            r)
                        .message("region ", region.id, " ", kind, " r",
                                 r, " is not referenced in the region");
                }
                classified.insert(r);
            }
        };
        classify(region.inputs, "input");
        classify(region.outputs, "output");
        classify(region.interiors, "interior");
        for (RegId r : refs) {
            if (!classified.count(r)) {
                findings
                    .at(codes::classification, region.id, invalidPc, r)
                    .message("region ", region.id, " r", r,
                             " referenced but unclassified");
            }
        }
        for (RegId r : region.interiors) {
            if (std::count(region.inputs.begin(), region.inputs.end(),
                           r) ||
                std::count(region.outputs.begin(), region.outputs.end(),
                           r)) {
                findings
                    .at(codes::classification, region.id, invalidPc, r)
                    .message("region ", region.id, " interior r", r,
                             " also classified as boundary");
            }
        }

        // 3. Preloads match inputs exactly.
        std::set<RegId> preloaded;
        for (const Preload &p : region.preloads)
            preloaded.insert(p.reg);
        std::set<RegId> inputs(region.inputs.begin(),
                               region.inputs.end());
        if (preloaded != inputs) {
            findings.at(codes::preloadSet, region.id)
                .message("region ", region.id,
                         " preload set differs from input set");
        }

        // 4. Erase/evict placement: inside the region, exactly one
        //    point per register, and at that register's last touch.
        std::set<RegId> erased;
        for (const auto &[pc, regs] : region.erases) {
            if (!region.contains(pc)) {
                findings.at(codes::erasePlacement, region.id, pc)
                    .message("region ", region.id,
                             " erase annotation at pc ", pc,
                             " outside the region");
            }
            for (RegId r : regs) {
                if (!erased.insert(r).second) {
                    findings.at(codes::erasePlacement, region.id, pc, r)
                        .message("region ", region.id, " r", r,
                                 " erased twice");
                }
                if (std::count(region.interiors.begin(),
                               region.interiors.end(), r) == 0) {
                    findings.at(codes::erasePlacement, region.id, pc, r)
                        .message("region ", region.id,
                                 " erase of non-interior r", r);
                }
            }
        }
        if (erased.size() != region.interiors.size()) {
            findings.at(codes::erasePlacement, region.id)
                .message("region ", region.id, " erased ",
                         erased.size(), " of ",
                         region.interiors.size(), " interiors");
        }
        std::set<RegId> evicted;
        for (const auto &[pc, regs] : region.evicts) {
            if (!region.contains(pc)) {
                findings.at(codes::evictPlacement, region.id, pc)
                    .message("region ", region.id,
                             " evict annotation at pc ", pc,
                             " outside the region");
            }
            for (RegId r : regs) {
                if (!evicted.insert(r).second) {
                    findings.at(codes::evictPlacement, region.id, pc, r)
                        .message("region ", region.id, " r", r,
                                 " evicted twice");
                }
            }
        }
        std::set<RegId> boundary = inputs;
        boundary.insert(region.outputs.begin(), region.outputs.end());
        if (evicted != boundary) {
            findings.at(codes::evictPlacement, region.id)
                .message("region ", region.id,
                         " evict set differs from input+output set");
        }

        // 5. Capacity annotations match a fresh occupancy analysis.
        Occupancy occ = computeOccupancy(kernel, live, region.startPc,
                                         region.endPc);
        if (occ.maxLive != region.maxLive) {
            findings.at(codes::capacityMismatch, region.id)
                .message("region ", region.id, " maxLive ",
                         region.maxLive, " != recomputed ",
                         occ.maxLive);
        }
        if (occ.bankUsage != region.bankUsage) {
            findings.at(codes::capacityMismatch, region.id)
                .message("region ", region.id,
                         " bankUsage differs from recomputed value");
        }
        if (region.reservedLines() < region.maxLive) {
            findings.at(codes::capacityMismatch, region.id)
                .message("region ", region.id,
                         " bank usage sums below maxLive");
        }

        // 6. Load/use split.
        if (check_load_use) {
            for (Pc pc = region.startPc; pc <= region.endPc; ++pc) {
                const ir::Instruction &insn = kernel.insn(pc);
                if (!insn.isGlobalLoad())
                    continue;
                for (Pc use = pc + 1; use <= region.endPc; ++use) {
                    const auto &srcs = kernel.insn(use).srcs();
                    if (std::find(srcs.begin(), srcs.end(),
                                  insn.dst()) != srcs.end()) {
                        findings
                            .at(codes::loadUseSplit, region.id, pc,
                                insn.dst())
                            .message("region ", region.id,
                                     " contains global load at pc ", pc,
                                     " and its use at pc ", use);
                        break;
                    }
                    if (kernel.insn(use).writesReg() &&
                        kernel.insn(use).dst() == insn.dst() &&
                        !live.isSoftDef(use)) {
                        break;
                    }
                }
            }
        }

        // 7. Metadata encoding is present.
        if (region.metadataInsns == 0) {
            findings.at(codes::metadataMissing, region.id)
                .message("region ", region.id, " has no metadata");
        }
    }

    return findings.take();
}

std::vector<std::string>
verifyCompiledKernel(const CompiledKernel &ck, bool check_load_use)
{
    std::vector<std::string> messages;
    for (const Finding &f : verifyStructure(ck, check_load_use))
        messages.push_back(f.message);
    return messages;
}

} // namespace regless::compiler
