#include "compiler/verifier.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "compiler/region_builder.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"

namespace regless::compiler
{

namespace
{

/** Small helper collecting findings with stream formatting. */
class Findings
{
  public:
    template <typename... Args>
    void
    add(Args &&...args)
    {
        std::ostringstream oss;
        (oss << ... << args);
        _messages.push_back(oss.str());
    }

    std::vector<std::string> take() { return std::move(_messages); }

  private:
    std::vector<std::string> _messages;
};

} // namespace

std::vector<std::string>
verifyCompiledKernel(const CompiledKernel &ck, bool check_load_use)
{
    Findings findings;
    const ir::Kernel &kernel = ck.kernel();
    ir::CfgAnalysis cfg(kernel);
    ir::Liveness live(kernel, cfg);

    // 1. Coverage: every PC in exactly one region, regions inside one
    //    basic block, ids consistent.
    std::vector<unsigned> covered(kernel.numInsns(), 0);
    for (const Region &region : ck.regions()) {
        if (region.startPc > region.endPc ||
            region.endPc >= kernel.numInsns()) {
            findings.add("region ", region.id, " has bad bounds [",
                         region.startPc, ", ", region.endPc, "]");
            continue;
        }
        if (kernel.blockOf(region.startPc) !=
            kernel.blockOf(region.endPc)) {
            findings.add("region ", region.id,
                         " spans a basic-block boundary");
        }
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc)
            ++covered[pc];
        if (ck.regionAt(region.startPc) != region.id)
            findings.add("region ", region.id, " id/map mismatch");
    }
    for (Pc pc = 0; pc < kernel.numInsns(); ++pc) {
        if (covered[pc] != 1) {
            findings.add("pc ", pc, " covered by ", covered[pc],
                         " regions");
        }
    }

    for (const Region &region : ck.regions()) {
        // 2. Register classification is a partition of the region's
        //    referenced registers.
        std::set<RegId> refs;
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc) {
            const ir::Instruction &insn = kernel.insn(pc);
            if (insn.writesReg())
                refs.insert(insn.dst());
            for (RegId src : insn.srcs())
                refs.insert(src);
        }
        std::set<RegId> classified;
        auto classify = [&](const std::vector<RegId> &group,
                            const char *kind) {
            for (RegId r : group) {
                if (!refs.count(r)) {
                    findings.add("region ", region.id, " ", kind, " r",
                                 r, " is not referenced in the region");
                }
                classified.insert(r);
            }
        };
        classify(region.inputs, "input");
        classify(region.outputs, "output");
        classify(region.interiors, "interior");
        for (RegId r : refs) {
            if (!classified.count(r)) {
                findings.add("region ", region.id, " r", r,
                             " referenced but unclassified");
            }
        }
        for (RegId r : region.interiors) {
            if (std::count(region.inputs.begin(), region.inputs.end(),
                           r) ||
                std::count(region.outputs.begin(), region.outputs.end(),
                           r)) {
                findings.add("region ", region.id, " interior r", r,
                             " also classified as boundary");
            }
        }

        // 3. Preloads match inputs exactly.
        std::set<RegId> preloaded;
        for (const Preload &p : region.preloads)
            preloaded.insert(p.reg);
        std::set<RegId> inputs(region.inputs.begin(),
                               region.inputs.end());
        if (preloaded != inputs) {
            findings.add("region ", region.id,
                         " preload set differs from input set");
        }

        // 4. Erase/evict placement: inside the region, exactly one
        //    point per register, and at that register's last touch.
        std::set<RegId> erased;
        for (const auto &[pc, regs] : region.erases) {
            if (!region.contains(pc)) {
                findings.add("region ", region.id,
                             " erase annotation at pc ", pc,
                             " outside the region");
            }
            for (RegId r : regs) {
                if (!erased.insert(r).second) {
                    findings.add("region ", region.id, " r", r,
                                 " erased twice");
                }
                if (std::count(region.interiors.begin(),
                               region.interiors.end(), r) == 0) {
                    findings.add("region ", region.id,
                                 " erase of non-interior r", r);
                }
            }
        }
        if (erased.size() != region.interiors.size()) {
            findings.add("region ", region.id, " erased ",
                         erased.size(), " of ",
                         region.interiors.size(), " interiors");
        }
        std::set<RegId> evicted;
        for (const auto &[pc, regs] : region.evicts) {
            if (!region.contains(pc)) {
                findings.add("region ", region.id,
                             " evict annotation at pc ", pc,
                             " outside the region");
            }
            for (RegId r : regs) {
                if (!evicted.insert(r).second) {
                    findings.add("region ", region.id, " r", r,
                                 " evicted twice");
                }
            }
        }
        std::set<RegId> boundary = inputs;
        boundary.insert(region.outputs.begin(), region.outputs.end());
        if (evicted != boundary) {
            findings.add("region ", region.id,
                         " evict set differs from input+output set");
        }

        // 5. Capacity annotations match a fresh occupancy analysis.
        Occupancy occ = computeOccupancy(kernel, live, region.startPc,
                                         region.endPc);
        if (occ.maxLive != region.maxLive) {
            findings.add("region ", region.id, " maxLive ",
                         region.maxLive, " != recomputed ",
                         occ.maxLive);
        }
        if (occ.bankUsage != region.bankUsage) {
            findings.add("region ", region.id,
                         " bankUsage differs from recomputed value");
        }
        if (region.reservedLines() < region.maxLive) {
            findings.add("region ", region.id,
                         " bank usage sums below maxLive");
        }

        // 6. Load/use split.
        if (check_load_use) {
            for (Pc pc = region.startPc; pc <= region.endPc; ++pc) {
                const ir::Instruction &insn = kernel.insn(pc);
                if (!insn.isGlobalLoad())
                    continue;
                for (Pc use = pc + 1; use <= region.endPc; ++use) {
                    const auto &srcs = kernel.insn(use).srcs();
                    if (std::find(srcs.begin(), srcs.end(),
                                  insn.dst()) != srcs.end()) {
                        findings.add("region ", region.id,
                                     " contains global load at pc ", pc,
                                     " and its use at pc ", use);
                        break;
                    }
                    if (kernel.insn(use).writesReg() &&
                        kernel.insn(use).dst() == insn.dst() &&
                        !live.isSoftDef(use)) {
                        break;
                    }
                }
            }
        }

        // 7. Metadata encoding is present.
        if (region.metadataInsns == 0)
            findings.add("region ", region.id, " has no metadata");
    }

    return findings.take();
}

} // namespace regless::compiler
