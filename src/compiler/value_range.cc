#include "compiler/value_range.hh"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/logging.hh"

namespace regless::compiler
{

namespace
{

constexpr std::uint32_t u32Max = 0xffffffffu;

/** Canonical form: a degenerate interval is a uniform constant. */
ValueFacts
normalize(ValueFacts f)
{
    if (f.bottom)
        return ValueFacts{};
    if (f.lo == f.hi) {
        f.affine = true;
        f.stride = 0;
    }
    if (!f.affine)
        f.stride = 0;
    return f;
}

ValueFacts
makeFacts(std::uint32_t lo, std::uint32_t hi, bool affine,
          std::uint32_t stride)
{
    ValueFacts f;
    f.bottom = false;
    f.lo = lo;
    f.hi = hi;
    f.affine = affine;
    f.stride = stride;
    return normalize(f);
}

/** Shape of a sum: strides add lane-wise, exactly, mod 2^32. */
void
shapeAdd(const ValueFacts &a, const ValueFacts &b, ValueFacts &out)
{
    if (a.affine && b.affine) {
        out.affine = true;
        out.stride = a.stride + b.stride;
    } else {
        out.affine = false;
        out.stride = 0;
    }
}

/** Interval of a + c (mod 2^32): precise when no value straddles the
 * wrap point — all shift up, or all wrap around together. */
void
intervalAddConst(const ValueFacts &a, std::uint32_t c, ValueFacts &out)
{
    const std::uint64_t l = static_cast<std::uint64_t>(a.lo) + c;
    const std::uint64_t h = static_cast<std::uint64_t>(a.hi) + c;
    if (h <= u32Max) {
        out.lo = static_cast<std::uint32_t>(l);
        out.hi = static_cast<std::uint32_t>(h);
    } else if (l > u32Max) {
        out.lo = static_cast<std::uint32_t>(l);
        out.hi = static_cast<std::uint32_t>(h);
    } else {
        out.lo = 0;
        out.hi = u32Max;
    }
}

ValueFacts
transferAdd(const ValueFacts &a, const ValueFacts &b)
{
    ValueFacts f;
    f.bottom = false;
    if (b.isConstant()) {
        intervalAddConst(a, b.lo, f);
    } else if (a.isConstant()) {
        intervalAddConst(b, a.lo, f);
    } else {
        const std::uint64_t h =
            static_cast<std::uint64_t>(a.hi) + b.hi;
        if (h <= u32Max) {
            f.lo = a.lo + b.lo;
            f.hi = static_cast<std::uint32_t>(h);
        } else {
            f.lo = 0;
            f.hi = u32Max;
        }
    }
    shapeAdd(a, b, f);
    return normalize(f);
}

ValueFacts
transferSub(const ValueFacts &a, const ValueFacts &b)
{
    ValueFacts f;
    f.bottom = false;
    if (a.lo >= b.hi) {
        f.lo = a.lo - b.hi;
        f.hi = a.hi - b.lo;
    } else {
        f.lo = 0;
        f.hi = u32Max;
    }
    if (a.affine && b.affine) {
        f.affine = true;
        f.stride = a.stride - b.stride;
    }
    return normalize(f);
}

/** a * c for a known constant c; shape is exact mod 2^32. */
ValueFacts
transferMulConst(const ValueFacts &a, std::uint32_t c)
{
    ValueFacts f;
    f.bottom = false;
    if (c == 0) {
        f.lo = 0;
        f.hi = 0;
    } else if (static_cast<std::uint64_t>(a.hi) * c <= u32Max) {
        f.lo = a.lo * c;
        f.hi = a.hi * c;
    } else {
        f.lo = 0;
        f.hi = u32Max;
    }
    if (a.affine) {
        f.affine = true;
        f.stride = a.stride * c;
    }
    return normalize(f);
}

ValueFacts
transferMul(const ValueFacts &a, const ValueFacts &b)
{
    if (a.isConstant())
        return transferMulConst(b, a.lo);
    if (b.isConstant())
        return transferMulConst(a, b.lo);
    ValueFacts f = ValueFacts::top();
    if (static_cast<std::uint64_t>(a.hi) * b.hi <= u32Max) {
        f.lo = a.lo * b.lo;
        f.hi = a.hi * b.hi;
    }
    return normalize(f);
}

/** Smallest all-ones mask covering @a x (bound for Or/Xor results). */
std::uint32_t
bitMaskAbove(std::uint32_t x)
{
    x |= x >> 1;
    x |= x >> 2;
    x |= x >> 4;
    x |= x >> 8;
    x |= x >> 16;
    return x;
}

} // namespace

ValueFacts
ValueFacts::top()
{
    return makeFacts(0, u32Max, false, 0);
}

ValueFacts
ValueFacts::constant(std::uint32_t v)
{
    return makeFacts(v, v, true, 0);
}

ValueFacts
ValueFacts::range(std::uint32_t lo, std::uint32_t hi)
{
    if (lo > hi)
        panic("ValueFacts::range with lo ", lo, " > hi ", hi);
    return makeFacts(lo, hi, false, 0);
}

ValueFacts
ValueFacts::lanesAffine(std::uint32_t stride)
{
    return makeFacts(0, u32Max, true, stride);
}

bool
ValueFacts::contains(const ir::LaneValues &lanes) const
{
    if (bottom)
        return false;
    for (unsigned i = 0; i < warpSize; ++i) {
        if (lanes[i] < lo || lanes[i] > hi)
            return false;
        if (affine && lanes[i] != lanes[0] + stride * i)
            return false;
    }
    return true;
}

bool
ValueFacts::operator==(const ValueFacts &other) const
{
    if (bottom || other.bottom)
        return bottom == other.bottom;
    if (lo != other.lo || hi != other.hi || affine != other.affine)
        return false;
    return !affine || stride == other.stride;
}

std::string
ValueFacts::toString() const
{
    if (bottom)
        return "bottom";
    std::ostringstream oss;
    oss << "[0x" << std::hex << lo << ",0x" << hi << "]" << std::dec;
    if (affine)
        oss << (stride == 0 ? " uniform"
                            : " stride " + std::to_string(stride));
    return oss.str();
}

bool
leq(const ValueFacts &a, const ValueFacts &b)
{
    if (a.bottom)
        return true;
    if (b.bottom)
        return false;
    if (a.lo < b.lo || a.hi > b.hi)
        return false;
    // Shape lattice: bottom < affine(s) (flat over strides) < no-shape.
    if (!b.affine)
        return true;
    return a.affine && a.stride == b.stride;
}

ValueFacts
join(const ValueFacts &a, const ValueFacts &b)
{
    if (a.bottom)
        return normalize(b);
    if (b.bottom)
        return normalize(a);
    ValueFacts f;
    f.bottom = false;
    f.lo = std::min(a.lo, b.lo);
    f.hi = std::max(a.hi, b.hi);
    if (a.affine && b.affine && a.stride == b.stride) {
        f.affine = true;
        f.stride = a.stride;
    }
    return normalize(f);
}

ValueFacts
widen(const ValueFacts &a, const ValueFacts &b)
{
    ValueFacts f = join(a, b);
    if (a.bottom || f.bottom)
        return f;
    // A bound that moved will keep moving: jump it to its extreme.
    if (f.lo < a.lo)
        f.lo = 0;
    if (f.hi > a.hi)
        f.hi = u32Max;
    return normalize(f);
}

ValueFacts
transferInsn(const ir::Instruction &insn,
             const std::vector<ValueFacts> &srcs)
{
    for (const ValueFacts &s : srcs) {
        if (s.bottom)
            return ValueFacts{};
    }
    auto src = [&](unsigned i) -> const ValueFacts & {
        return srcs.at(i);
    };

    ValueFacts f;
    switch (insn.op()) {
      case ir::Opcode::Mov:
        f = src(0);
        break;
      case ir::Opcode::MovImm:
        f = ValueFacts::constant(
            static_cast<std::uint32_t>(insn.imm()));
        break;
      case ir::Opcode::Tid:
        // The SM computes threadBase + lane: lane-affine with stride
        // 1, but the warp-dependent base leaves the interval open.
        f = ValueFacts::lanesAffine(1);
        break;
      case ir::Opcode::CtaId:
        // The SM broadcasts the block id (not the immediate).
        f = ValueFacts::lanesAffine(0);
        break;
      case ir::Opcode::IAdd:
        f = transferAdd(src(0), src(1));
        break;
      case ir::Opcode::IAddImm:
        f = transferAdd(src(0), ValueFacts::constant(
                                    static_cast<std::uint32_t>(
                                        insn.imm())));
        break;
      case ir::Opcode::ISub:
        f = transferSub(src(0), src(1));
        break;
      case ir::Opcode::IMul:
        f = transferMul(src(0), src(1));
        break;
      case ir::Opcode::IMulImm:
        f = transferMulConst(src(0), static_cast<std::uint32_t>(
                                         insn.imm()));
        break;
      case ir::Opcode::IMad:
        f = transferAdd(transferMul(src(0), src(1)), src(2));
        break;
      case ir::Opcode::Shl: {
        const ValueFacts &a = src(0);
        f = ValueFacts::top();
        if (src(1).isConstant()) {
            const unsigned sh = src(1).lo & 31;
            if (a.hi <= (u32Max >> sh)) {
                f.lo = a.lo << sh;
                f.hi = a.hi << sh;
            }
            if (a.affine) {
                f.affine = true;
                f.stride = a.stride << sh;
            }
        }
        f = normalize(f);
        break;
      }
      case ir::Opcode::Shr:
        f = ValueFacts::top();
        if (src(1).isConstant()) {
            const unsigned sh = src(1).lo & 31;
            f.lo = src(0).lo >> sh;
            f.hi = src(0).hi >> sh;
        }
        f = normalize(f);
        break;
      case ir::Opcode::And:
        f = ValueFacts::range(0, std::min(src(0).hi, src(1).hi));
        break;
      case ir::Opcode::Or:
        f = ValueFacts::range(
            std::max(src(0).lo, src(1).lo),
            bitMaskAbove(std::max(src(0).hi, src(1).hi)));
        break;
      case ir::Opcode::Xor:
        f = ValueFacts::range(
            0, bitMaskAbove(std::max(src(0).hi, src(1).hi)));
        break;
      case ir::Opcode::IMin:
      case ir::Opcode::IMax:
        // Signed semantics agree with the unsigned interval only when
        // both operands are provably non-negative.
        f = ValueFacts::top();
        if (src(0).hi <= 0x7fffffffu && src(1).hi <= 0x7fffffffu) {
            if (insn.op() == ir::Opcode::IMin) {
                f.lo = std::min(src(0).lo, src(1).lo);
                f.hi = std::min(src(0).hi, src(1).hi);
            } else {
                f.lo = std::max(src(0).lo, src(1).lo);
                f.hi = std::max(src(0).hi, src(1).hi);
            }
        }
        f = normalize(f);
        break;
      case ir::Opcode::SetLt:
      case ir::Opcode::SetGe:
      case ir::Opcode::SetEq:
      case ir::Opcode::SetNe:
        f = ValueFacts::range(0, 1);
        break;
      case ir::Opcode::Selp:
        f = join(src(0), src(1));
        if (!src(2).uniform()) {
            // Lanes may mix both arms: the hull holds, the shape not.
            f.affine = false;
            f.stride = 0;
            f = normalize(f);
        }
        break;
      case ir::Opcode::FAdd:
      case ir::Opcode::FMul:
      case ir::Opcode::FFma:
      case ir::Opcode::Rcp:
      case ir::Opcode::Sqrt:
        f = ValueFacts::top();
        break;
      case ir::Opcode::LdGlobal:
      case ir::Opcode::LdShared:
        // Loaded data comes from the workload value generator; nothing
        // is provable, not even for uniform addresses.
        return ValueFacts::top();
      default:
        panic("transferInsn on non-writing opcode ",
              ir::opcodeName(insn.op()));
    }

    // Any lane-wise pure operation on all-uniform inputs broadcasts.
    if (!f.bottom && !f.affine && !srcs.empty()) {
        bool all_uniform = true;
        for (const ValueFacts &s : srcs)
            all_uniform = all_uniform && s.uniform();
        if (all_uniform) {
            f.affine = true;
            f.stride = 0;
        }
    }
    return f;
}

StaticEncoding
classifyEncoding(const ValueFacts &facts)
{
    if (facts.bottom)
        return StaticEncoding::None;
    if (facts.uniform())
        return StaticEncoding::UniformScalar;
    if (facts.hi <= 0xffffu)
        return StaticEncoding::NarrowWidth;
    if (facts.lo >= 0xffff8000u)
        return StaticEncoding::SignCompressed;
    return StaticEncoding::None;
}

bool
encodingHolds(StaticEncoding enc, const ir::LaneValues &lanes)
{
    switch (enc) {
      case StaticEncoding::None:
        return true;
      case StaticEncoding::UniformScalar:
        for (unsigned i = 1; i < warpSize; ++i) {
            if (lanes[i] != lanes[0])
                return false;
        }
        return true;
      case StaticEncoding::NarrowWidth:
        for (std::uint32_t v : lanes) {
            if (v > 0xffffu)
                return false;
        }
        return true;
      case StaticEncoding::SignCompressed:
        for (std::uint32_t v : lanes) {
            if (v > 0x7fffu && v < 0xffff8000u)
                return false;
        }
        return true;
    }
    return false;
}

bool
encodingImplied(StaticEncoding enc, const ValueFacts &facts)
{
    switch (enc) {
      case StaticEncoding::None:
        return true;
      case StaticEncoding::UniformScalar:
        return facts.uniform();
      case StaticEncoding::NarrowWidth:
        return !facts.bottom && facts.hi <= 0xffffu;
      case StaticEncoding::SignCompressed:
        return !facts.bottom &&
               (facts.hi <= 0x7fffu || facts.lo >= 0xffff8000u);
    }
    return false;
}

unsigned
encodingBytes(StaticEncoding enc)
{
    switch (enc) {
      case StaticEncoding::UniformScalar:
        return 4;
      case StaticEncoding::NarrowWidth:
      case StaticEncoding::SignCompressed:
        return warpSize * 2;
      case StaticEncoding::None:
        break;
    }
    return regBytes;
}

ValueRangeAnalysis::ValueRangeAnalysis(const ir::Kernel &kernel,
                                       const ir::CfgAnalysis &cfg,
                                       const ir::Liveness &live)
    : _kernel(kernel),
      _cfg(cfg),
      _live(live),
      _partialMask(kernel.blocks().size(), false)
{
    computePartialMaskBlocks();
    solve();
}

void
ValueRangeAnalysis::computePartialMaskBlocks()
{
    const auto &blocks = _kernel.blocks();
    // A block between a branch's successors and its reconvergence
    // point (immediate postdominator) may execute under a partial
    // mask. Mark every such influence region.
    for (const ir::BasicBlock &bb : blocks) {
        if (!_cfg.reachable(bb.id()))
            continue;
        if (!_kernel.insn(bb.lastPc()).isBranch())
            continue;
        const ir::BlockId ipdom =
            _cfg.immediatePostdominator(bb.id());
        for (ir::BlockId succ : bb.successors()) {
            std::deque<ir::BlockId> work{succ};
            while (!work.empty()) {
                ir::BlockId b = work.front();
                work.pop_front();
                if (b == ipdom || _partialMask.test(b))
                    continue;
                _partialMask.set(b);
                for (ir::BlockId s : blocks[b].successors())
                    work.push_back(s);
            }
        }
    }
    // Lanes exiting inside a divergence region never reconverge: any
    // later block may then run partial too. Poison everything.
    bool divergent_exit = false;
    for (const ir::BasicBlock &bb : blocks) {
        if (_cfg.reachable(bb.id()) && _partialMask.test(bb.id()) &&
            _kernel.insn(bb.lastPc()).isExit()) {
            divergent_exit = true;
        }
    }
    if (divergent_exit) {
        for (const ir::BasicBlock &bb : blocks)
            _partialMask.set(bb.id());
    }
}

void
ValueRangeAnalysis::applyInsn(Pc pc, State &state) const
{
    const ir::Instruction &insn = _kernel.insn(pc);
    if (!insn.writesReg())
        return;
    std::vector<ValueFacts> srcs;
    srcs.reserve(insn.srcs().size());
    for (RegId s : insn.srcs())
        srcs.push_back(state[s]);
    ValueFacts f = transferInsn(insn, srcs);

    // Masked writes merge into the old lanes (Warp::writeReg): inside
    // a divergence region — and at soft definitions in particular —
    // the result mixes old and new values, so hull the intervals and
    // drop the shape (different bases break lane affinity).
    if (_partialMask.test(_kernel.blockOf(pc)) || _live.isSoftDef(pc)) {
        const ValueFacts &old = state[insn.dst()];
        if (!old.bottom) {
            f = join(f, old);
            if (!f.bottom && f.lo != f.hi) {
                f.affine = false;
                f.stride = 0;
            }
        }
    }
    state[insn.dst()] = f;
}

void
ValueRangeAnalysis::solve()
{
    const std::size_t num_blocks = _kernel.blocks().size();
    const unsigned num_regs = _kernel.numRegs();
    _blockIn.assign(num_blocks, State(num_regs));

    const ir::BlockId entry = _kernel.blockOf(0);
    // Kernel entry: registers may hold anything (the launcher zeroes
    // them, but staging correctness must not depend on that).
    _blockIn[entry] = State(num_regs, ValueFacts::top());

    // Widen a loop header once a back edge has fed it a few times; the
    // update-count failsafe bounds irreducible cycles, which have no
    // dominating header for isBackEdge to recognise.
    constexpr unsigned kWidenDelay = 2;
    constexpr unsigned kForceWidenAfter = 64;
    std::vector<unsigned> back_joins(num_blocks, 0);
    std::vector<unsigned> updates(num_blocks, 0);

    std::deque<ir::BlockId> worklist{entry};
    std::vector<std::uint8_t> queued(num_blocks, 0);
    queued[entry] = 1;

    while (!worklist.empty()) {
        const ir::BlockId b = worklist.front();
        worklist.pop_front();
        queued[b] = 0;

        State out = _blockIn[b];
        const ir::BasicBlock &bb = _kernel.block(b);
        for (Pc pc = bb.firstPc(); pc <= bb.lastPc(); ++pc)
            applyInsn(pc, out);

        for (ir::BlockId succ : bb.successors()) {
            bool do_widen = updates[succ] > kForceWidenAfter;
            if (_cfg.isBackEdge(b, succ) &&
                ++back_joins[succ] > kWidenDelay) {
                do_widen = true;
            }
            State &in = _blockIn[succ];
            bool changed = false;
            for (unsigned r = 0; r < num_regs; ++r) {
                ValueFacts nf = do_widen ? widen(in[r], out[r])
                                         : join(in[r], out[r]);
                if (nf != in[r]) {
                    in[r] = nf;
                    changed = true;
                }
            }
            if (changed) {
                ++updates[succ];
                if (!queued[succ]) {
                    queued[succ] = 1;
                    worklist.push_back(succ);
                }
            }
        }
    }

    // Record per-PC states by replaying each reachable block once.
    _beforePc.assign(_kernel.numInsns(), State(num_regs));
    for (const ir::BasicBlock &bb : _kernel.blocks()) {
        if (!_cfg.reachable(bb.id()))
            continue;
        State state = _blockIn[bb.id()];
        for (Pc pc = bb.firstPc(); pc <= bb.lastPc(); ++pc) {
            _beforePc[pc] = state;
            applyInsn(pc, state);
        }
    }
}

const ValueFacts &
ValueRangeAnalysis::before(Pc pc, RegId reg) const
{
    return _beforePc.at(pc).at(reg);
}

ValueFacts
ValueRangeAnalysis::after(Pc pc, RegId reg) const
{
    const ir::Instruction &insn = _kernel.insn(pc);
    if (!insn.writesReg() || insn.dst() != reg)
        return before(pc, reg);
    State state = _beforePc.at(pc);
    applyInsn(pc, state);
    return state.at(reg);
}

} // namespace regless::compiler
