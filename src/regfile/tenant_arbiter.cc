#include "regfile/tenant_arbiter.hh"

#include <algorithm>

#include "common/logging.hh"

namespace regless::regfile
{

const char *
capacityPolicyName(CapacityPolicy policy)
{
    switch (policy) {
      case CapacityPolicy::FreeForAll:
        return "free_for_all";
      case CapacityPolicy::StaticQuota:
        return "static_quota";
      case CapacityPolicy::PriorityReserve:
        return "priority_reserve";
    }
    return "?";
}

bool
tryCapacityPolicyFromName(const std::string &name, CapacityPolicy &out)
{
    for (CapacityPolicy p :
         {CapacityPolicy::FreeForAll, CapacityPolicy::StaticQuota,
          CapacityPolicy::PriorityReserve}) {
        if (name == capacityPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

TenantArbiter::TenantArbiter(CapacityPolicy policy, unsigned total_lines)
    : _policy(policy), _totalLines(total_lines)
{
    if (total_lines == 0)
        panic("tenant arbiter: zero-line pool");
}

void
TenantArbiter::registerTenant(unsigned tenant, unsigned priority,
                              std::function<std::uint64_t()> lines_in_use)
{
    if (!lines_in_use)
        panic("tenant arbiter: tenant ", tenant,
              " registered without a usage callback");
    if (tenant >= _tenants.size())
        _tenants.resize(tenant + 1);
    _tenants[tenant] = Tenant{priority, std::move(lines_in_use)};
}

const TenantArbiter::Tenant &
TenantArbiter::tenant(unsigned id) const
{
    if (id >= _tenants.size() || !_tenants[id].linesInUse)
        panic("tenant arbiter: unregistered tenant ", id);
    return _tenants[id];
}

std::uint64_t
TenantArbiter::linesInUse(unsigned id) const
{
    return tenant(id).linesInUse();
}

std::uint64_t
TenantArbiter::totalInUse() const
{
    std::uint64_t total = 0;
    for (const Tenant &t : _tenants) {
        if (t.linesInUse)
            total += t.linesInUse();
    }
    return total;
}

bool
TenantArbiter::mayReserve(unsigned id, unsigned lines) const
{
    const Tenant &t = tenant(id);
    const std::uint64_t mine = t.linesInUse();
    const std::uint64_t everyone = totalInUse();
    // The SM-wide pool is a hard physical budget under every policy.
    if (everyone + lines > _totalLines)
        return false;
    switch (_policy) {
      case CapacityPolicy::FreeForAll:
        return true;
      case CapacityPolicy::StaticQuota: {
        const unsigned quota =
            _quotaLines
                ? _quotaLines
                : _totalLines /
                      std::max<std::size_t>(1, _tenants.size());
        return mine + lines <= quota;
      }
      case CapacityPolicy::PriorityReserve: {
        if (t.priority > 0)
            return true;
        const auto reserved = static_cast<std::uint64_t>(
            _reserveFrac * static_cast<double>(_totalLines));
        // Best-effort tenants share only the unreserved remainder;
        // priority tenants (handled above) draw from the whole pool.
        std::uint64_t best_effort_use = 0;
        for (const Tenant &other : _tenants) {
            if (other.linesInUse && other.priority == 0)
                best_effort_use += other.linesInUse();
        }
        return best_effort_use + lines + reserved <= _totalLines;
      }
    }
    return true;
}

} // namespace regless::regfile
