/**
 * @file
 * TenantArbiter: shared staging-capacity arbitration between the
 * kernels co-resident on one multi-tenant SM (DESIGN.md §16).
 *
 * Each tenant's operand-storage provider owns its own tag structures,
 * but the physical line budget (ReglessConfig::osuEntriesPerSm) is one
 * SM-wide pool. The arbiter is the admission gate over that pool: a
 * capacity manager asks mayReserve() before committing a region
 * activation, and the answer depends on the configured policy:
 *
 *  - FreeForAll: first come, first served — the only constraint is the
 *    SM-wide total. A throughput hog can squeeze everyone else out.
 *  - StaticQuota: each tenant owns a fixed slice of the pool (an
 *    explicit per-tenant line quota, or total / tenants by default).
 *    Isolation is perfect; utilization can be poor.
 *  - PriorityReserve: a fraction of the pool is reserved for tenants
 *    with priority > 0 (latency-sensitive); best-effort tenants
 *    allocate only from the remainder, priority tenants from the whole
 *    pool.
 *
 * The arbiter is a pure policy oracle over live usage callbacks — it
 * holds no per-line state, so it can never disagree with the
 * structures it arbitrates.
 */

#ifndef REGLESS_REGFILE_TENANT_ARBITER_HH
#define REGLESS_REGFILE_TENANT_ARBITER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace regless::regfile
{

/** Shared-capacity partitioning policy between co-resident tenants. */
enum class CapacityPolicy : std::uint8_t
{
    FreeForAll = 0, ///< one pool, no per-tenant constraint
    StaticQuota,    ///< fixed per-tenant line quota
    PriorityReserve, ///< a slice is reserved for priority tenants
};

/** Name for a CapacityPolicy ("free_for_all", ...). */
const char *capacityPolicyName(CapacityPolicy policy);

/** Parse a capacityPolicyName() string; false on unknown. */
bool tryCapacityPolicyFromName(const std::string &name,
                               CapacityPolicy &out);

/** Admission gate over the SM-wide staging-line pool. */
class TenantArbiter
{
  public:
    /**
     * @param policy Partitioning policy.
     * @param total_lines SM-wide physical line budget.
     */
    TenantArbiter(CapacityPolicy policy, unsigned total_lines);

    /** StaticQuota: per-tenant cap (0 = total / tenants at query). */
    void setQuotaLines(unsigned lines) { _quotaLines = lines; }

    /** PriorityReserve: pool fraction held for priority tenants. */
    void setReserveFraction(double frac) { _reserveFrac = frac; }

    /**
     * Register a tenant. @a lines_in_use reports the tenant's live
     * line footprint (occupied + reserved-future) on demand; it must
     * stay valid for the arbiter's lifetime.
     */
    void registerTenant(unsigned tenant, unsigned priority,
                        std::function<std::uint64_t()> lines_in_use);

    /**
     * May @a tenant take @a lines more lines right now? Policy-pure:
     * asking never changes state, so a refused activation simply
     * retries on a later cycle.
     */
    bool mayReserve(unsigned tenant, unsigned lines) const;

    CapacityPolicy policy() const { return _policy; }
    unsigned totalLines() const { return _totalLines; }
    std::size_t numTenants() const { return _tenants.size(); }

    /** Live footprint of one tenant (for figures and reports). */
    std::uint64_t linesInUse(unsigned tenant) const;

    /** Live footprint summed over every tenant. */
    std::uint64_t totalInUse() const;

  private:
    struct Tenant
    {
        unsigned priority = 0;
        std::function<std::uint64_t()> linesInUse;
    };

    const Tenant &tenant(unsigned id) const;

    CapacityPolicy _policy;
    unsigned _totalLines;
    unsigned _quotaLines = 0;
    double _reserveFrac = 0.25;
    std::vector<Tenant> _tenants;
};

} // namespace regless::regfile

#endif // REGLESS_REGFILE_TENANT_ARBITER_HH
