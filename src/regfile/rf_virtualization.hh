/**
 * @file
 * RFV: register file virtualization, Jeon et al. [19] (Figure 1c).
 *
 * A physical register file of half the baseline size, with a rename
 * table. Physical registers are allocated at the defining write and
 * released at the (divergence-corrected) last read, letting dead
 * values' storage be reused. When demand exceeds the physical file,
 * least-recently-used values spill to memory and reads of spilled
 * values pay a refill penalty — the register-pressure pathology the
 * paper reports for dwt2d and hotspot.
 */

#ifndef REGLESS_REGFILE_RF_VIRTUALIZATION_HH
#define REGLESS_REGFILE_RF_VIRTUALIZATION_HH

#include <unordered_map>
#include <unordered_set>

#include "compiler/compiler.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "regfile/register_provider.hh"

namespace regless::regfile
{

/** Half-size renamed register file with LRU overflow spilling. */
class RfVirtualization : public RegisterProvider
{
  public:
    /**
     * @param ck Compiled kernel (instruction stream + analyses input).
     * @param physical_entries Physical registers (baseline / 2).
     * @param spill_penalty Extra issue latency per spilled source.
     */
    RfVirtualization(const compiler::CompiledKernel &ck,
                     unsigned physical_entries,
                     Cycle spill_penalty = 30);

    bool canIssue(const arch::Warp &warp, Cycle now) override;

    void onIssue(const arch::Warp &warp, Pc pc,
                 const ir::Instruction &insn, Cycle now,
                 Cycle writeback) override;

    void onWarpFinished(const arch::Warp &warp, Cycle now) override;

    Cycle operandDelay(const arch::Warp &warp,
                       const ir::Instruction &insn, Cycle now) override;

    /** Physical registers currently allocated. */
    unsigned allocated() const
    {
        return static_cast<unsigned>(_mapped.size());
    }

    unsigned physicalEntries() const { return _physEntries; }

  private:
    static std::uint32_t
    key(WarpId warp, RegId reg)
    {
        return (static_cast<std::uint32_t>(warp) << 16) | reg;
    }

    /** Map (warp, reg), spilling the LRU value when full. */
    void mapRegister(std::uint32_t k);

    const compiler::CompiledKernel &_ck;
    ir::CfgAnalysis _cfg;
    ir::Liveness _live;
    unsigned _physEntries;
    Cycle _spillPenalty;
    std::unordered_map<std::uint32_t, std::uint64_t> _mapped;
    std::unordered_set<std::uint32_t> _spilled;
    std::uint64_t _lruCounter = 0;
    Counter &_reads;
    Counter &_writes;
    Counter &_renameLookups;
    Counter &_spillStores;
    Counter &_spillLoads;
    Counter &_releases;
    Distribution &_occupancy;
};

} // namespace regless::regfile

#endif // REGLESS_REGFILE_RF_VIRTUALIZATION_HH
