/**
 * @file
 * RegisterProvider: the seam between the SM pipeline and the five
 * operand-storage designs the paper compares (Figure 1).
 *
 * The SM asks the provider whether a warp's registers are available
 * before issuing, notifies it of every issued instruction (so it can
 * count accesses and manage its structures), and gives it a tick each
 * cycle for background work (RegLess preloading, evictions). Providers
 * expose their activity through named counters that the energy model
 * consumes.
 */

#ifndef REGLESS_REGFILE_REGISTER_PROVIDER_HH
#define REGLESS_REGFILE_REGISTER_PROVIDER_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "arch/stall.hh"
#include "arch/warp.hh"
#include "common/fault_injector.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "compiler/finding.hh"
#include "compiler/region.hh"
#include "ir/instruction.hh"

namespace regless::regfile
{

class TenantArbiter;

/**
 * Sentinel for "no pending provider event": far enough out to act as
 * infinity in min() reductions without overflowing when offsets are
 * added.
 */
inline constexpr Cycle kNoProviderEvent =
    static_cast<Cycle>(-1) / 2;

/** Abstract operand-storage model. */
class RegisterProvider
{
  public:
    explicit RegisterProvider(std::string name) : _stats(std::move(name))
    {
    }

    virtual ~RegisterProvider() = default;

    RegisterProvider(const RegisterProvider &) = delete;
    RegisterProvider &operator=(const RegisterProvider &) = delete;

    /** Background work at the start of every cycle. */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * May @a warp issue the instruction at its current PC?
     * Called only for warps that already pass scoreboard and
     * structural checks.
     */
    virtual bool canIssue(const arch::Warp &warp, Cycle now) = 0;

    /**
     * Why canIssue refused @a warp (stall attribution; DESIGN.md
     * section 10). Called only after canIssue returned false, so
     * providers that never refuse keep the default.
     */
    virtual arch::StallCause blockCause(const arch::Warp &warp,
                                        Cycle now) const
    {
        (void)warp;
        (void)now;
        return arch::StallCause::CmNotStaged;
    }

    /**
     * An instruction was issued. Called after functional execution,
     * so @a warp reflects post-instruction state (PC, values).
     *
     * @param warp The issuing warp.
     * @param pc PC of the issued instruction.
     * @param insn The instruction.
     * @param now Issue cycle.
     * @param writeback Cycle its destination value is produced.
     */
    virtual void onIssue(const arch::Warp &warp, Pc pc,
                         const ir::Instruction &insn, Cycle now,
                         Cycle writeback) = 0;

    /** @a warp has exited the kernel. */
    virtual void onWarpFinished(const arch::Warp &warp, Cycle now)
    {
        (void)warp;
        (void)now;
    }

    /**
     * Extra issue latency imposed by the operand path this cycle
     * (e.g. OSU bank conflicts). Sampled at issue.
     */
    virtual Cycle operandDelay(const arch::Warp &warp,
                               const ir::Instruction &insn, Cycle now)
    {
        (void)warp;
        (void)insn;
        (void)now;
        return 0;
    }

    /**
     * Earliest cycle >= @a from at which this provider's tick() could
     * do anything observable (state transition, counter increment,
     * fault firing). The cycle-skip engine only collapses a stalled
     * window when every cycle in it is provably dead; returning
     * @a from means "I have per-cycle work right now, do not skip".
     * Providers whose tick() is a no-op (all the non-RegLess designs)
     * keep the default: no events, ever.
     */
    virtual Cycle nextEventCycle(Cycle from) const
    {
        (void)from;
        return kNoProviderEvent;
    }

    /**
     * The SM skipped cycles [@a from, @a from + @a n): the provider
     * must apply whatever its tick() would have done in that window.
     * By the nextEventCycle() contract those ticks were observable
     * no-ops except for bookkeeping that advances unconditionally
     * (e.g. rotation counters, per-cycle blocked-activation charges),
     * which is compensated here.
     */
    virtual void onCyclesSkipped(Cycle from, Cycle n)
    {
        (void)from;
        (void)n;
    }

    /**
     * Monotonic count of provider-internal progress (e.g. RegLess CM
     * activations). The forward-progress watchdog adds this to the
     * SM's retired-instruction count so long-but-live activation
     * phases are not misdiagnosed as stalls. 0 for providers with no
     * multi-cycle background machinery.
     */
    virtual std::uint64_t progressEvents() const { return 0; }

    /**
     * Attach a fault injector (DESIGN.md §9). Providers without
     * injectable faults ignore it.
     */
    virtual void setFaultInjector(FaultInjector *injector)
    {
        (void)injector;
    }

    /** @name Simulator-integration hooks (DESIGN.md §13).
     *
     * These replace the dynamic_cast probes the simulator used to aim
     * at the RegLess provider: every provider answers them, almost
     * always with these trivial defaults, so GpuSimulator never needs
     * to know which concrete design it holds. */
    /// @{

    /** Accessor for another warp's architectural state by id. */
    using WarpSource = std::function<const arch::Warp &(WarpId)>;

    /**
     * Bind the warp-state accessor; called once, after the SM exists
     * and before the first tick. Providers whose background machinery
     * inspects warps (the RegLess capacity managers) store it; the
     * rest ignore it.
     */
    virtual void bindWarpSource(WarpSource source) { (void)source; }

    /** Observer for provider-internal activation events (tracing). */
    using ActivationObserver =
        std::function<void(WarpId, compiler::RegionId, Cycle)>;

    /**
     * Attach a trace observer for activation-style events. Providers
     * without multi-cycle staging machinery have nothing to report
     * and ignore it.
     */
    virtual void setActivationObserver(ActivationObserver observer)
    {
        (void)observer;
    }

    /**
     * Dynamic invariant violations this provider's shadow checking
     * recorded (empty for providers without a runtime checker).
     */
    virtual std::vector<compiler::Finding> runtimeViolations() const
    {
        return {};
    }

    /**
     * Append this provider's view of @a warp to its deadlock-report
     * line (staging state, pending work, ...). One line, no newline.
     */
    virtual void describeWarp(WarpId warp, std::ostream &os) const
    {
        (void)warp;
        (void)os;
    }

    /**
     * Append one line per internal storage structure (bank occupancy,
     * reservations, ...) to a deadlock report's bank section.
     */
    virtual void describeStorage(std::vector<std::string> &out) const
    {
        (void)out;
    }
    /// @}

    /** @name Multi-tenant hooks (DESIGN.md §16).
     *
     * Under multi-tenant operation each co-resident kernel gets its
     * own provider instance over its warp partition. Providers with a
     * shared physical line pool (RegLess) join the SM's TenantArbiter
     * and implement the region-boundary suspend protocol; the default
     * implementations make every other design trivially preemptible at
     * instruction boundaries (their architected state lives in the
     * warps, so there is nothing to drain). */
    /// @{

    /**
     * Register this provider's capacity usage with the SM-wide
     * arbiter, as @a tenant with QoS @a priority, and install the
     * arbiter as the provider's allocation admission gate.
     */
    virtual void joinTenantArbiter(TenantArbiter &arbiter,
                                   unsigned tenant, unsigned priority)
    {
        (void)arbiter;
        (void)tenant;
        (void)priority;
    }

    /**
     * Begin suspending: stop starting new work (region activations);
     * in-flight work runs to its natural boundary. Idempotent.
     */
    virtual void requestSuspend(Cycle now) { (void)now; }

    /**
     * Has in-flight work reached a preemption boundary? Polled by the
     * SM after requestSuspend(); the default ("immediately") is right
     * for providers with no multi-cycle staging machinery.
     */
    virtual bool suspendComplete() const { return true; }

    /**
     * In-flight work is done: hand off the architected state. RegLess
     * writes back and erases every staged line (the region-boundary
     * handoff the paper's design makes cheap); afterwards
     * stagedLinesInUse() must be zero.
     */
    virtual void finalizeSuspend(Cycle now) { (void)now; }

    /** Resume after a suspension. Idempotent. */
    virtual void resume(Cycle now) { (void)now; }

    /**
     * Physical staging lines currently held (occupied + reserved).
     * 0 for designs without a staging pool; the preemption chaos test
     * asserts this is 0 after every completed suspend.
     */
    virtual std::uint64_t stagedLinesInUse() const { return 0; }
    /// @}

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /** Write every stat this provider owns as "group.name value". */
    virtual void
    dumpStats(std::ostream &os) const
    {
        _stats.dump(os);
    }

  protected:
    StatGroup _stats;
};

} // namespace regless::regfile

#endif // REGLESS_REGFILE_REGISTER_PROVIDER_HH
