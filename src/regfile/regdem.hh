/**
 * @file
 * RegDem-style register demotion (Sakdhnagool et al., arXiv
 * 1907.02894; DESIGN.md §13.3). The architectural register file is
 * shrunk: only the statically hottest registers of each warp stay in
 * flip-flop storage, the cold rest are demoted to a spill space that
 * lives behind the L1 (modelling RegDem's software spills to shared
 * memory). Every access to a demoted register becomes a real
 * MemorySystem transaction, so spill traffic contends with program
 * loads and RegLess staging for the single L1 port.
 */

#ifndef REGLESS_REGFILE_REGDEM_HH
#define REGLESS_REGFILE_REGDEM_HH

#include <vector>

#include "compiler/compiler.hh"
#include "mem/memory_system.hh"
#include "regfile/register_provider.hh"

namespace regless::regfile
{

/** Shrunken register file with demotion of cold registers. */
class RegDemProvider : public RegisterProvider
{
  public:
    /** Hardware parameters (part of the config fingerprint). */
    struct Params
    {
        /** Registers per warp retained in the shrunken RF. */
        unsigned hotRegsPerWarp = 16;
        /** Base address of the per-warp spill space. */
        Addr spillBase = 0x5000'0000;
    };

    RegDemProvider(const compiler::CompiledKernel &ck,
                   mem::MemorySystem &mem, const Params &params);

    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle from) const override;
    bool canIssue(const arch::Warp &warp, Cycle now) override;
    arch::StallCause blockCause(const arch::Warp &warp,
                                Cycle now) const override;
    void onIssue(const arch::Warp &warp, Pc pc,
                 const ir::Instruction &insn, Cycle now,
                 Cycle writeback) override;
    Cycle operandDelay(const arch::Warp &warp,
                       const ir::Instruction &insn, Cycle now) override;
    void setFaultInjector(FaultInjector *injector) override
    {
        _faults = injector;
    }

    /** Was @a reg demoted to the spill space? (exposed for tests) */
    bool demoted(RegId reg) const { return _demoted.at(reg); }

    /** Retained (hot) registers per warp after demotion. */
    unsigned hotRegs() const { return _hotRegs; }

  private:
    /** Spill-space line of one warp's copy of one register. */
    Addr spillAddr(WarpId warp, RegId reg) const;

    /** Does the instruction at @a warp's PC touch a demoted reg? */
    bool touchesDemoted(const ir::Instruction &insn) const;

    const ir::Kernel &_kernel;
    mem::MemorySystem &_mem;
    Params _params;
    std::vector<bool> _demoted;
    unsigned _hotRegs = 0;
    FaultInjector *_faults = nullptr;
    Counter &_rfReads;
    Counter &_rfWrites;
    Counter &_fillLoads;
    Counter &_spillStores;
    Counter &_portStalls;
};

} // namespace regless::regfile

#endif // REGLESS_REGFILE_REGDEM_HH
