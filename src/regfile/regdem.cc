#include "regfile/regdem.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace regless::regfile
{

RegDemProvider::RegDemProvider(const compiler::CompiledKernel &ck,
                               mem::MemorySystem &mem,
                               const Params &params)
    : RegisterProvider("regdem"),
      _kernel(ck.kernel()),
      _mem(mem),
      _params(params),
      _demoted(ck.kernel().numRegs(), false),
      _rfReads(_stats.counter("rf_reads")),
      _rfWrites(_stats.counter("rf_writes")),
      _fillLoads(_stats.counter("fill_loads")),
      _spillStores(_stats.counter("spill_stores")),
      _portStalls(_stats.counter("port_stalls"))
{
    // Static demotion (the RegDem compiler pass, simplified): rank
    // registers by static access count and keep the hottest N per
    // warp in the shrunken RF.
    const unsigned num_regs = _kernel.numRegs();
    std::vector<std::uint64_t> uses(num_regs, 0);
    for (Pc pc = 0; pc < _kernel.numInsns(); ++pc) {
        const ir::Instruction &insn = _kernel.insn(pc);
        if (insn.writesReg())
            ++uses[insn.dst()];
        for (RegId src : insn.srcs())
            ++uses[src];
    }
    std::vector<RegId> order(num_regs);
    std::iota(order.begin(), order.end(), RegId(0));
    std::stable_sort(order.begin(), order.end(),
                     [&uses](RegId a, RegId b)
                     { return uses[a] > uses[b]; });
    for (unsigned i = _params.hotRegsPerWarp; i < num_regs; ++i)
        _demoted[order[i]] = true;
    _hotRegs = std::min<unsigned>(num_regs, _params.hotRegsPerWarp);
}

Addr
RegDemProvider::spillAddr(WarpId warp, RegId reg) const
{
    return _params.spillBase +
           (static_cast<Addr>(warp) * _kernel.numRegs() + reg) *
               regBytes;
}

bool
RegDemProvider::touchesDemoted(const ir::Instruction &insn) const
{
    if (insn.writesReg() && _demoted[insn.dst()])
        return true;
    for (RegId src : insn.srcs()) {
        if (_demoted[src])
            return true;
    }
    return false;
}

void
RegDemProvider::tick(Cycle now)
{
    // Spills and fills happen on the issue path; the tick only polls
    // the injected provider-crash fault (DESIGN.md §9).
    if (_faults && _faults->fire(FaultPlan::Kind::ProviderThrow, now))
        panic("injected provider fault at cycle ", now);
}

Cycle
RegDemProvider::nextEventCycle(Cycle from) const
{
    // canIssue() refuses warps while the L1 port is busy, and the SM
    // records no per-warp skip bound on a provider refusal — so the
    // port-free cycle must be reported here or the skip engine could
    // jump past the unblock point. The comparison is >=, not >: the
    // skip probe runs at from - 1, so a port freeing exactly at
    // `from` is precisely the wake-up a just-refused warp is waiting
    // for (mem::MemorySystem::nextEventCycle clamps the same way).
    Cycle next = kNoProviderEvent;
    const Cycle port_free = _mem.l1PortNextFree();
    if (port_free >= from)
        next = port_free;
    if (_faults && !_faults->fired() &&
        _faults->plan().kind == FaultPlan::Kind::ProviderThrow) {
        next = std::min(next,
                        std::max(from, _faults->plan().triggerCycle));
    }
    return next;
}

bool
RegDemProvider::canIssue(const arch::Warp &warp, Cycle now)
{
    if (warp.pc() >= _kernel.numInsns())
        return true;
    if (!touchesDemoted(_kernel.insn(warp.pc())))
        return true;
    if (_mem.l1PortFree(now))
        return true;
    ++_portStalls;
    return false;
}

arch::StallCause
RegDemProvider::blockCause(const arch::Warp &, Cycle) const
{
    // The warp is waiting for the L1 port its fills/spills share with
    // program memory traffic.
    return arch::StallCause::ExecPortBusy;
}

Cycle
RegDemProvider::operandDelay(const arch::Warp &warp,
                             const ir::Instruction &insn, Cycle now)
{
    // Fill every demoted source from the spill space. The accesses
    // serialise through the single L1 port; the instruction waits for
    // the slowest fill.
    Cycle delay = 0;
    for (RegId src : insn.srcs()) {
        if (!_demoted[src])
            continue;
        Cycle t = std::max(now, _mem.l1PortNextFree());
        mem::MemAccessResult mr =
            _mem.access(spillAddr(warp.id(), src), /*is_write=*/false,
                        mem::MemSpace::Register, t);
        ++_fillLoads;
        if (mr.readyCycle > now)
            delay = std::max(delay, mr.readyCycle - now);
    }
    return delay;
}

void
RegDemProvider::onIssue(const arch::Warp &warp, Pc,
                        const ir::Instruction &insn, Cycle now, Cycle)
{
    for (RegId src : insn.srcs()) {
        if (!_demoted[src])
            ++_rfReads;
        // Demoted sources were charged as fill loads in operandDelay.
    }
    if (!insn.writesReg())
        return;
    const RegId dst = insn.dst();
    if (!_demoted[dst]) {
        ++_rfWrites;
        return;
    }
    // Spill the demoted result; the store queues behind any fills
    // this instruction just issued.
    Cycle t = std::max(now, _mem.l1PortNextFree());
    _mem.access(spillAddr(warp.id(), dst), /*is_write=*/true,
                mem::MemSpace::Register, t);
    ++_spillStores;
}

} // namespace regless::regfile
