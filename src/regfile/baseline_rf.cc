#include "regfile/baseline_rf.hh"

#include <map>

namespace regless::regfile
{

BaselineRf::BaselineRf(Cycle window, unsigned num_banks,
                       Cycle collector_penalty)
    : RegisterProvider("rf"),
      _window(window),
      _numBanks(num_banks),
      _collectorPenalty(collector_penalty),
      _accessSeries(window),
      _reads(_stats.counter("reads")),
      _writes(_stats.counter("writes")),
      _bankConflicts(_stats.counter("bank_conflicts"))
{
}

Cycle
BaselineRf::operandDelay(const arch::Warp &warp,
                         const ir::Instruction &insn, Cycle now)
{
    (void)now;
    // An instruction's sources that map to the same bank serialise on
    // the bank's read port; operand collectors buffer the fetches, so
    // the penalty is configurable (and zero by default).
    if (insn.srcs().size() < 2)
        return 0;
    unsigned worst = 0;
    std::map<unsigned, unsigned> uses;
    for (RegId src : insn.srcs()) {
        unsigned bank = (warp.id() + src) % _numBanks;
        worst = std::max(worst, ++uses[bank]);
    }
    if (worst > 1) {
        ++_bankConflicts;
        return (worst - 1) * _collectorPenalty;
    }
    return 0;
}

bool
BaselineRf::canIssue(const arch::Warp &, Cycle)
{
    return true;
}

void
BaselineRf::onIssue(const arch::Warp &warp, Pc, const ir::Instruction &insn,
                    Cycle now, Cycle)
{
    // Close working-set windows that have elapsed.
    while (now >= _windowStart + _window) {
        _workingSet.sample(static_cast<double>(_windowRegs.size()) *
                           regBytes);
        _windowRegs.clear();
        _windowStart += _window;
    }

    for (RegId src : insn.srcs()) {
        ++_reads;
        _accessSeries.record(now, 1.0);
        _windowRegs.emplace(warp.id(), src);
    }
    if (insn.writesReg()) {
        ++_writes;
        _accessSeries.record(now, 1.0);
        _windowRegs.emplace(warp.id(), insn.dst());
    }
}

double
BaselineRf::meanWorkingSetBytes()
{
    if (!_windowRegs.empty()) {
        _workingSet.sample(static_cast<double>(_windowRegs.size()) *
                           regBytes);
        _windowRegs.clear();
    }
    return _workingSet.mean();
}

void
BaselineRf::flushSeries()
{
    _accessSeries.flush();
}

} // namespace regless::regfile
