/**
 * @file
 * RFH: compile-time managed register file hierarchy, Gebhart et
 * al. [11] (Figure 1b).
 *
 * Values are statically assigned to one of three levels: a per-lane
 * last-result file (LRF), a small operand register file (ORF, a few
 * entries per warp), or the full main register file (MRF). Short-lived
 * values never touch the MRF, saving most of its dynamic energy; the
 * MRF itself remains full size. The technique requires the two-level
 * warp scheduler (wired by the simulator), which is where its
 * performance cost relative to GTO comes from.
 */

#ifndef REGLESS_REGFILE_RF_HIERARCHY_HH
#define REGLESS_REGFILE_RF_HIERARCHY_HH

#include <vector>

#include "compiler/compiler.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "regfile/register_provider.hh"

namespace regless::regfile
{

/** Storage level a register is assigned to. */
enum class RfLevel : std::uint8_t
{
    Lrf, ///< last result file: single-use, next-instruction values
    Orf, ///< operand register file: short-lived values
    Mrf, ///< main register file: everything else
};

/** Compile-time managed three-level register file. */
class RfHierarchy : public RegisterProvider
{
  public:
    /** Static level-assignment knobs. */
    struct Params
    {
        /** Max def-to-use distance for the LRF (single use). */
        unsigned lrfMaxDistance = 3;
        /** Max def-to-last-use distance for the ORF. */
        unsigned orfMaxDistance = 20;
        /** ORF entries per warp (capacity of the middle level). */
        unsigned orfEntriesPerWarp = 6;
    };

    explicit RfHierarchy(const compiler::CompiledKernel &ck);
    RfHierarchy(const compiler::CompiledKernel &ck, const Params &params);

    bool canIssue(const arch::Warp &warp, Cycle now) override;

    void onIssue(const arch::Warp &warp, Pc pc,
                 const ir::Instruction &insn, Cycle now,
                 Cycle writeback) override;

    /** Static level of a register (exposed for tests). */
    RfLevel levelOf(RegId reg) const { return _level.at(reg); }

    /** Per-window MRF accesses (the Figure 3 "RF hierarchy" series). */
    WindowedSeries &mrfSeries() { return _mrfSeries; }

  private:
    /** Run the static assignment pass. */
    void assignLevels(const Params &params);

    const compiler::CompiledKernel &_ck;
    ir::CfgAnalysis _cfg;
    ir::Liveness _live;
    std::vector<RfLevel> _level;
    WindowedSeries _mrfSeries;
    Counter &_lrfReads;
    Counter &_lrfWrites;
    Counter &_orfReads;
    Counter &_orfWrites;
    Counter &_mrfReads;
    Counter &_mrfWrites;
};

} // namespace regless::regfile

#endif // REGLESS_REGFILE_RF_HIERARCHY_HH
