/**
 * @file
 * Baseline register file: the full-size, always-available RF of
 * Figure 1(a). Registers are always resident, so the model's only job
 * is counting accesses (and the working set, for Figure 2).
 */

#ifndef REGLESS_REGFILE_BASELINE_RF_HH
#define REGLESS_REGFILE_BASELINE_RF_HH

#include <set>
#include <utility>

#include "regfile/register_provider.hh"

namespace regless::regfile
{

/** Full-size baseline register file. */
class BaselineRf : public RegisterProvider
{
  public:
    /**
     * @param window Cycles per working-set measurement window
     *        (Figure 2 uses 100).
     * @param num_banks Register-file banks (operand fetch conflicts
     *        when one instruction's sources share a bank).
     * @param collector_penalty Extra issue cycles per bank conflict.
     *        Real GPUs hide most of this behind operand collectors,
     *        so the default charges nothing and only counts.
     */
    explicit BaselineRf(Cycle window = 100, unsigned num_banks = 32,
                        Cycle collector_penalty = 0);

    bool canIssue(const arch::Warp &warp, Cycle now) override;

    void onIssue(const arch::Warp &warp, Pc pc,
                 const ir::Instruction &insn, Cycle now,
                 Cycle writeback) override;

    Cycle operandDelay(const arch::Warp &warp,
                       const ir::Instruction &insn, Cycle now) override;

    /** Mean per-window register working set in bytes (Figure 2). */
    double meanWorkingSetBytes();

    /** Per-window backing-store (RF) accesses (Figure 3 series). */
    const WindowedSeries &accessSeries() const { return _accessSeries; }

    /** Finalise open windows before reading series data. */
    void flushSeries();

  private:
    Cycle _window;
    unsigned _numBanks;
    Cycle _collectorPenalty;
    Cycle _windowStart = 0;
    std::set<std::pair<WarpId, RegId>> _windowRegs;
    Distribution _workingSet;
    WindowedSeries _accessSeries;
    Counter &_reads;
    Counter &_writes;
    Counter &_bankConflicts;
};

} // namespace regless::regfile

#endif // REGLESS_REGFILE_BASELINE_RF_HH
