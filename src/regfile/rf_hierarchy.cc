#include "regfile/rf_hierarchy.hh"

#include <algorithm>
#include <limits>

namespace regless::regfile
{

RfHierarchy::RfHierarchy(const compiler::CompiledKernel &ck)
    : RfHierarchy(ck, Params())
{
}

RfHierarchy::RfHierarchy(const compiler::CompiledKernel &ck,
                         const Params &params)
    : RegisterProvider("rfh"),
      _ck(ck),
      _cfg(ck.kernel()),
      _live(ck.kernel(), _cfg),
      _level(ck.kernel().numRegs(), RfLevel::Mrf),
      _mrfSeries(100),
      _lrfReads(_stats.counter("lrf_reads")),
      _lrfWrites(_stats.counter("lrf_writes")),
      _orfReads(_stats.counter("orf_reads")),
      _orfWrites(_stats.counter("orf_writes")),
      _mrfReads(_stats.counter("mrf_reads")),
      _mrfWrites(_stats.counter("mrf_writes"))
{
    assignLevels(params);
}

void
RfHierarchy::assignLevels(const Params &params)
{
    const ir::Kernel &kernel = _ck.kernel();
    const unsigned num_regs = kernel.numRegs();

    // Per register: worst-case def-to-use distance, use count, and
    // whether any def/use pair crosses a block boundary.
    struct Facts
    {
        unsigned maxDistance = 0;
        unsigned uses = 0;
        bool crossesBlocks = false;
        bool hasDef = false;
    };
    std::vector<Facts> facts(num_regs);

    for (RegId r = 0; r < num_regs; ++r) {
        Facts &f = facts[r];
        f.uses = static_cast<unsigned>(_live.usesOf(r).size());
        if (_live.hasSoftDef(r)) {
            f.crossesBlocks = true; // divergence demands a full home
            continue;
        }
        for (Pc def : _live.defsOf(r)) {
            f.hasDef = true;
            ir::BlockId def_bb = kernel.blockOf(def);
            // Find the uses reached by this def: the next uses until a
            // redefinition.
            for (Pc use : _live.usesOf(r)) {
                if (use <= def)
                    continue;
                bool redefined = false;
                for (Pc other : _live.defsOf(r)) {
                    if (other > def && other < use) {
                        redefined = true;
                        break;
                    }
                }
                if (redefined)
                    break;
                if (kernel.blockOf(use) != def_bb)
                    f.crossesBlocks = true;
                f.maxDistance =
                    std::max(f.maxDistance, use - def);
            }
            // A value live out of its defining block needs the MRF.
            if (_live.blockLiveOut(def_bb, r))
                f.crossesBlocks = true;
        }
    }

    // LRF: single-use values consumed within a couple of instructions.
    for (RegId r = 0; r < num_regs; ++r) {
        const Facts &f = facts[r];
        if (f.hasDef && !f.crossesBlocks && f.uses == 1 &&
            f.maxDistance <= params.lrfMaxDistance) {
            _level[r] = RfLevel::Lrf;
        }
    }

    // ORF: short-lived values, capacity-limited. Greedily admit by
    // increasing lifetime while co-liveness with admitted registers
    // stays under the per-warp entry count.
    std::vector<RegId> candidates;
    for (RegId r = 0; r < num_regs; ++r) {
        const Facts &f = facts[r];
        if (_level[r] == RfLevel::Mrf && f.hasDef && !f.crossesBlocks &&
            f.maxDistance <= params.orfMaxDistance) {
            candidates.push_back(r);
        }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](RegId a, RegId b) {
                         return facts[a].maxDistance <
                                facts[b].maxDistance;
                     });
    std::vector<RegId> admitted;
    for (RegId r : candidates) {
        // Count admitted registers co-live with r at any PC.
        unsigned worst = 0;
        for (Pc pc = 0; pc < kernel.numInsns(); ++pc) {
            if (!_live.liveBefore(pc, r))
                continue;
            unsigned n = 0;
            for (RegId other : admitted) {
                if (_live.liveBefore(pc, other))
                    ++n;
            }
            worst = std::max(worst, n);
        }
        if (worst < params.orfEntriesPerWarp) {
            _level[r] = RfLevel::Orf;
            admitted.push_back(r);
        }
    }
}

bool
RfHierarchy::canIssue(const arch::Warp &, Cycle)
{
    return true;
}

void
RfHierarchy::onIssue(const arch::Warp &, Pc, const ir::Instruction &insn,
                     Cycle now, Cycle)
{
    for (RegId src : insn.srcs()) {
        switch (_level[src]) {
          case RfLevel::Lrf:
            ++_lrfReads;
            break;
          case RfLevel::Orf:
            ++_orfReads;
            break;
          case RfLevel::Mrf:
            ++_mrfReads;
            _mrfSeries.record(now, 1.0);
            break;
        }
    }
    if (insn.writesReg()) {
        switch (_level[insn.dst()]) {
          case RfLevel::Lrf:
            ++_lrfWrites;
            break;
          case RfLevel::Orf:
            ++_orfWrites;
            break;
          case RfLevel::Mrf:
            ++_mrfWrites;
            _mrfSeries.record(now, 1.0);
            break;
        }
    }
}

} // namespace regless::regfile
