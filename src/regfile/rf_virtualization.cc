#include "regfile/rf_virtualization.hh"

#include <algorithm>

namespace regless::regfile
{

RfVirtualization::RfVirtualization(const compiler::CompiledKernel &ck,
                                   unsigned physical_entries,
                                   Cycle spill_penalty)
    : RegisterProvider("rfv"),
      _ck(ck),
      _cfg(ck.kernel()),
      _live(ck.kernel(), _cfg),
      _physEntries(physical_entries),
      _spillPenalty(spill_penalty),
      _reads(_stats.counter("reads")),
      _writes(_stats.counter("writes")),
      _renameLookups(_stats.counter("rename_lookups")),
      _spillStores(_stats.counter("spill_stores")),
      _spillLoads(_stats.counter("spill_loads")),
      _releases(_stats.counter("releases")),
      _occupancy(_stats.distribution("occupancy"))
{
}

bool
RfVirtualization::canIssue(const arch::Warp &, Cycle)
{
    return true;
}

void
RfVirtualization::mapRegister(std::uint32_t k)
{
    auto it = _mapped.find(k);
    if (it != _mapped.end()) {
        it->second = ++_lruCounter;
        return;
    }
    if (_mapped.size() >= _physEntries) {
        // Spill the least-recently-used mapped value.
        auto victim = _mapped.begin();
        for (auto mit = _mapped.begin(); mit != _mapped.end(); ++mit) {
            if (mit->second < victim->second)
                victim = mit;
        }
        _spilled.insert(victim->first);
        _mapped.erase(victim);
        ++_spillStores;
    }
    _mapped.emplace(k, ++_lruCounter);
}

Cycle
RfVirtualization::operandDelay(const arch::Warp &warp,
                               const ir::Instruction &insn, Cycle now)
{
    (void)now;
    Cycle delay = 0;
    for (RegId src : insn.srcs()) {
        if (_spilled.count(key(warp.id(), src)))
            delay += _spillPenalty;
    }
    return delay;
}

void
RfVirtualization::onIssue(const arch::Warp &warp, Pc pc,
                          const ir::Instruction &insn, Cycle now,
                          Cycle writeback)
{
    (void)now;
    (void)writeback;
    ++_renameLookups;
    for (RegId src : insn.srcs()) {
        ++_reads;
        std::uint32_t k = key(warp.id(), src);
        // A spilled source refills into the physical file first.
        if (_spilled.erase(k)) {
            ++_spillLoads;
            mapRegister(k);
        }
        if (_live.isLastUse(pc, src)) {
            if (_mapped.erase(k))
                ++_releases;
            _spilled.erase(k);
        }
    }
    if (insn.writesReg()) {
        ++_writes;
        std::uint32_t k = key(warp.id(), insn.dst());
        _spilled.erase(k); // a fresh definition supersedes any spill
        mapRegister(k);
    }
    _occupancy.sample(static_cast<double>(_mapped.size()));
}

void
RfVirtualization::onWarpFinished(const arch::Warp &warp, Cycle now)
{
    (void)now;
    for (auto it = _mapped.begin(); it != _mapped.end();) {
        if (static_cast<WarpId>(it->first >> 16) == warp.id())
            it = _mapped.erase(it);
        else
            ++it;
    }
    for (auto it = _spilled.begin(); it != _spilled.end();) {
        if (static_cast<WarpId>(*it >> 16) == warp.id())
            it = _spilled.erase(it);
        else
            ++it;
    }
}

} // namespace regless::regfile
