/**
 * @file
 * Compiler-assisted register-file cache (Shoushtary et al., arXiv
 * 2310.17501; DESIGN.md §13.2). The full main register file remains,
 * but a small per-warp cache sits in front of it and absorbs the
 * accesses to compiler-marked short-lived values. Only marked
 * registers are allocated cache entries, so the tiny capacity is
 * never wasted on values with no near reuse; a read of a marked value
 * that was already evicted pays a miss penalty on the operand path.
 */

#ifndef REGLESS_REGFILE_COMPILER_RF_CACHE_HH
#define REGLESS_REGFILE_COMPILER_RF_CACHE_HH

#include <unordered_map>
#include <vector>

#include "compiler/compiler.hh"
#include "compiler/rf_cache_hints.hh"
#include "regfile/register_provider.hh"

namespace regless::regfile
{

/** Small compiler-managed cache in front of a full register file. */
class CompilerRfCache : public RegisterProvider
{
  public:
    /** Hardware parameters (part of the config fingerprint). */
    struct Params
    {
        /** Cache entries per warp (each holds one 128 B register). */
        unsigned cacheEntriesPerWarp = 8;
        /** Extra issue latency when a marked source missed. */
        Cycle missPenalty = 3;
        /** Compiler pass knob: max def-to-last-use distance. */
        unsigned maxDefUseDistance = 12;
    };

    CompilerRfCache(const compiler::CompiledKernel &ck,
                    const Params &params);

    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle from) const override;
    bool canIssue(const arch::Warp &warp, Cycle now) override;
    void onIssue(const arch::Warp &warp, Pc pc,
                 const ir::Instruction &insn, Cycle now,
                 Cycle writeback) override;
    void onWarpFinished(const arch::Warp &warp, Cycle now) override;
    Cycle operandDelay(const arch::Warp &warp,
                       const ir::Instruction &insn, Cycle now) override;
    void setFaultInjector(FaultInjector *injector) override
    {
        _faults = injector;
    }

    /** Static cacheability of a register (exposed for tests). */
    bool cacheable(RegId reg) const { return _cacheable.at(reg); }

  private:
    static std::uint32_t
    key(WarpId warp, RegId reg)
    {
        return (static_cast<std::uint32_t>(warp) << 16) | reg;
    }

    /** Is (warp, reg) resident? Refreshes LRU age on a hit. */
    bool lookup(std::uint32_t k);

    /** Insert (warp, reg), evicting this warp's LRU entry when full. */
    void insert(WarpId warp, std::uint32_t k);

    Params _params;
    std::vector<bool> _cacheable;
    /** Resident (warp, reg) -> LRU age. */
    std::unordered_map<std::uint32_t, std::uint64_t> _resident;
    /** Resident entries per warp (bounds each warp's slice). */
    std::vector<unsigned> _perWarp;
    std::uint64_t _lruCounter = 0;
    FaultInjector *_faults = nullptr;
    Counter &_hits;
    Counter &_misses;
    Counter &_mrfReads;
    Counter &_mrfWrites;
    Counter &_evictions;
};

} // namespace regless::regfile

#endif // REGLESS_REGFILE_COMPILER_RF_CACHE_HH
