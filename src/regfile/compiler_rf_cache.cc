#include "regfile/compiler_rf_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace regless::regfile
{

CompilerRfCache::CompilerRfCache(const compiler::CompiledKernel &ck,
                                 const Params &params)
    : RegisterProvider("rfcache"),
      _params(params),
      _perWarp(1, 0),
      _hits(_stats.counter("cache_hits")),
      _misses(_stats.counter("cache_misses")),
      _mrfReads(_stats.counter("mrf_reads")),
      _mrfWrites(_stats.counter("mrf_writes")),
      _evictions(_stats.counter("evictions"))
{
    compiler::RfCacheHintParams hints;
    hints.maxDefUseDistance = params.maxDefUseDistance;
    _cacheable = compiler::rfCacheableRegs(ck.kernel(), hints);
}

void
CompilerRfCache::tick(Cycle now)
{
    // The cache itself has no background work; the tick only polls
    // the injected provider-crash fault (DESIGN.md §9).
    if (_faults && _faults->fire(FaultPlan::Kind::ProviderThrow, now))
        panic("injected provider fault at cycle ", now);
}

Cycle
CompilerRfCache::nextEventCycle(Cycle from) const
{
    // State only changes at issue, so the skip engine may collapse any
    // stalled window — except past a pending ProviderThrow trigger,
    // which tick() must poll at exactly its cycle.
    if (_faults && !_faults->fired() &&
        _faults->plan().kind == FaultPlan::Kind::ProviderThrow) {
        return std::max(from, _faults->plan().triggerCycle);
    }
    return kNoProviderEvent;
}

bool
CompilerRfCache::canIssue(const arch::Warp &, Cycle)
{
    // The backing file always has the value; a miss costs latency
    // (operandDelay), never issue eligibility.
    return true;
}

bool
CompilerRfCache::lookup(std::uint32_t k)
{
    auto it = _resident.find(k);
    if (it == _resident.end())
        return false;
    it->second = ++_lruCounter;
    return true;
}

void
CompilerRfCache::insert(WarpId warp, std::uint32_t k)
{
    if (_resident.count(k)) {
        _resident[k] = ++_lruCounter;
        return;
    }
    if (warp >= _perWarp.size())
        _perWarp.resize(warp + 1, 0);
    if (_perWarp[warp] >= _params.cacheEntriesPerWarp) {
        // Evict this warp's least-recently-used entry; the victim was
        // written to the cache only, so it retires to the MRF now.
        auto victim = _resident.end();
        for (auto it = _resident.begin(); it != _resident.end(); ++it) {
            if (static_cast<WarpId>(it->first >> 16) != warp)
                continue;
            if (victim == _resident.end() ||
                it->second < victim->second)
                victim = it;
        }
        _resident.erase(victim);
        --_perWarp[warp];
        ++_evictions;
        ++_mrfWrites;
    }
    _resident.emplace(k, ++_lruCounter);
    ++_perWarp[warp];
}

Cycle
CompilerRfCache::operandDelay(const arch::Warp &warp,
                              const ir::Instruction &insn, Cycle now)
{
    (void)now;
    // Pure read of pre-issue residency; onIssue does the bookkeeping
    // against the same state.
    Cycle delay = 0;
    for (RegId src : insn.srcs()) {
        if (_cacheable[src] && !_resident.count(key(warp.id(), src)))
            delay += _params.missPenalty;
    }
    return delay;
}

void
CompilerRfCache::onIssue(const arch::Warp &warp, Pc,
                         const ir::Instruction &insn, Cycle, Cycle)
{
    for (RegId src : insn.srcs()) {
        std::uint32_t k = key(warp.id(), src);
        if (_cacheable[src] && lookup(k)) {
            ++_hits;
            continue;
        }
        ++_mrfReads;
        if (_cacheable[src]) {
            // Evicted before reuse: refill alongside the MRF read.
            ++_misses;
            insert(warp.id(), k);
        }
    }
    if (insn.writesReg()) {
        const RegId dst = insn.dst();
        if (_cacheable[dst])
            insert(warp.id(), key(warp.id(), dst));
        else
            ++_mrfWrites;
    }
}

void
CompilerRfCache::onWarpFinished(const arch::Warp &warp, Cycle)
{
    for (auto it = _resident.begin(); it != _resident.end();) {
        if (static_cast<WarpId>(it->first >> 16) == warp.id())
            it = _resident.erase(it);
        else
            ++it;
    }
    if (warp.id() < _perWarp.size())
        _perWarp[warp.id()] = 0;
}

} // namespace regless::regfile
