#include "workloads/kernel_builder.hh"

#include "common/logging.hh"

namespace regless::workloads
{

using ir::Opcode;

KernelBuilder::KernelBuilder(std::string name) : _name(std::move(name)) {}

RegId
KernelBuilder::reg()
{
    return _nextReg++;
}

RegId
KernelBuilder::emit(Opcode op, std::vector<RegId> srcs, std::int64_t imm)
{
    RegId dst = reg();
    _insns.emplace_back(op, dst, std::move(srcs), imm);
    return dst;
}

void
KernelBuilder::emitTo(Opcode op, RegId dst, std::vector<RegId> srcs,
                      std::int64_t imm)
{
    _insns.emplace_back(op, dst, std::move(srcs), imm);
}

RegId KernelBuilder::tid() { return emit(Opcode::Tid, {}); }
RegId KernelBuilder::ctaid() { return emit(Opcode::CtaId, {}); }

RegId
KernelBuilder::movi(std::int64_t imm)
{
    return emit(Opcode::MovImm, {}, imm);
}

RegId KernelBuilder::mov(RegId src) { return emit(Opcode::Mov, {src}); }

RegId
KernelBuilder::iadd(RegId a, RegId b)
{
    return emit(Opcode::IAdd, {a, b});
}

RegId
KernelBuilder::isub(RegId a, RegId b)
{
    return emit(Opcode::ISub, {a, b});
}

RegId
KernelBuilder::imul(RegId a, RegId b)
{
    return emit(Opcode::IMul, {a, b});
}

RegId
KernelBuilder::imad(RegId a, RegId b, RegId c)
{
    return emit(Opcode::IMad, {a, b, c});
}

RegId
KernelBuilder::iaddi(RegId a, std::int64_t imm)
{
    return emit(Opcode::IAddImm, {a}, imm);
}

RegId
KernelBuilder::imuli(RegId a, std::int64_t imm)
{
    return emit(Opcode::IMulImm, {a}, imm);
}

RegId
KernelBuilder::fadd(RegId a, RegId b)
{
    return emit(Opcode::FAdd, {a, b});
}

RegId
KernelBuilder::fmul(RegId a, RegId b)
{
    return emit(Opcode::FMul, {a, b});
}

RegId
KernelBuilder::ffma(RegId a, RegId b, RegId c)
{
    return emit(Opcode::FFma, {a, b, c});
}

RegId KernelBuilder::shl(RegId a, RegId b) { return emit(Opcode::Shl, {a, b}); }
RegId KernelBuilder::shr(RegId a, RegId b) { return emit(Opcode::Shr, {a, b}); }

RegId
KernelBuilder::band(RegId a, RegId b)
{
    return emit(Opcode::And, {a, b});
}

RegId KernelBuilder::bor(RegId a, RegId b) { return emit(Opcode::Or, {a, b}); }

RegId
KernelBuilder::bxor(RegId a, RegId b)
{
    return emit(Opcode::Xor, {a, b});
}

RegId
KernelBuilder::imin(RegId a, RegId b)
{
    return emit(Opcode::IMin, {a, b});
}

RegId
KernelBuilder::imax(RegId a, RegId b)
{
    return emit(Opcode::IMax, {a, b});
}

RegId
KernelBuilder::setLt(RegId a, RegId b)
{
    return emit(Opcode::SetLt, {a, b});
}

RegId
KernelBuilder::setGe(RegId a, RegId b)
{
    return emit(Opcode::SetGe, {a, b});
}

RegId
KernelBuilder::setEq(RegId a, RegId b)
{
    return emit(Opcode::SetEq, {a, b});
}

RegId
KernelBuilder::setNe(RegId a, RegId b)
{
    return emit(Opcode::SetNe, {a, b});
}

RegId
KernelBuilder::selp(RegId a, RegId b, RegId pred)
{
    return emit(Opcode::Selp, {a, b, pred});
}

RegId KernelBuilder::rcp(RegId a) { return emit(Opcode::Rcp, {a}); }
RegId KernelBuilder::fsqrt(RegId a) { return emit(Opcode::Sqrt, {a}); }

RegId
KernelBuilder::ld(RegId addr, std::int64_t offset)
{
    return emit(Opcode::LdGlobal, {addr}, offset);
}

RegId
KernelBuilder::lds(RegId addr, std::int64_t offset)
{
    return emit(Opcode::LdShared, {addr}, offset);
}

void
KernelBuilder::movTo(RegId dst, RegId src)
{
    emitTo(Opcode::Mov, dst, {src});
}

void
KernelBuilder::moviTo(RegId dst, std::int64_t imm)
{
    emitTo(Opcode::MovImm, dst, {}, imm);
}

void
KernelBuilder::iaddTo(RegId dst, RegId a, RegId b)
{
    emitTo(Opcode::IAdd, dst, {a, b});
}

void
KernelBuilder::iaddiTo(RegId dst, RegId a, std::int64_t imm)
{
    emitTo(Opcode::IAddImm, dst, {a}, imm);
}

void
KernelBuilder::ffmaTo(RegId dst, RegId a, RegId b, RegId c)
{
    emitTo(Opcode::FFma, dst, {a, b, c});
}

void
KernelBuilder::ldTo(RegId dst, RegId addr, std::int64_t offset)
{
    emitTo(Opcode::LdGlobal, dst, {addr}, offset);
}

void
KernelBuilder::st(RegId data, RegId addr, std::int64_t offset)
{
    _insns.emplace_back(Opcode::StGlobal, invalidReg,
                        std::vector<RegId>{data, addr}, offset);
}

void
KernelBuilder::sts(RegId data, RegId addr, std::int64_t offset)
{
    _insns.emplace_back(Opcode::StShared, invalidReg,
                        std::vector<RegId>{data, addr}, offset);
}

Label
KernelBuilder::newLabel()
{
    _labelPcs.push_back(invalidPc);
    return Label(_labelPcs.size() - 1);
}

void
KernelBuilder::bind(Label &label)
{
    if (!label._valid)
        fatal("binding an uninitialised label in kernel '", _name, "'");
    if (_labelPcs.at(label._index) != invalidPc)
        fatal("label bound twice in kernel '", _name, "'");
    _labelPcs[label._index] = here();
}

void
KernelBuilder::braIf(RegId pred, const Label &label)
{
    if (!label._valid)
        fatal("branch to uninitialised label in kernel '", _name, "'");
    _fixups.emplace_back(here(), label._index);
    _insns.emplace_back(Opcode::Bra, invalidReg,
                        std::vector<RegId>{pred}, 0, 0);
}

void
KernelBuilder::jmp(const Label &label)
{
    if (!label._valid)
        fatal("jump to uninitialised label in kernel '", _name, "'");
    _fixups.emplace_back(here(), label._index);
    _insns.emplace_back(Opcode::Jmp, invalidReg, std::vector<RegId>{}, 0,
                        0);
}

void
KernelBuilder::bar()
{
    _insns.emplace_back(Opcode::Bar, invalidReg, std::vector<RegId>{});
}

void
KernelBuilder::exit()
{
    _insns.emplace_back(Opcode::Exit, invalidReg, std::vector<RegId>{});
}

ir::Kernel
KernelBuilder::build()
{
    if (_insns.empty() || !_insns.back().isExit())
        exit();

    for (const auto &[pc, label_index] : _fixups) {
        Pc target = _labelPcs.at(label_index);
        if (target == invalidPc)
            fatal("unbound label in kernel '", _name, "'");
        const ir::Instruction &old = _insns[pc];
        _insns[pc] = ir::Instruction(old.op(), old.dst(), old.srcs(),
                                     old.imm(), target);
    }

    ir::Kernel kernel(_name, std::move(_insns));
    kernel.setWarpsPerBlock(_warpsPerBlock);
    kernel.setWorkScale(_workScale);
    kernel.setValueProfile(_profile);
    return kernel;
}

} // namespace regless::workloads
