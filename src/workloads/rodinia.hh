/**
 * @file
 * Synthetic stand-ins for the 21 Rodinia benchmarks the paper
 * evaluates. Each generator reproduces the published character of its
 * namesake — register pressure, region sizes, control divergence,
 * memory intensity, and value compressibility — so the evaluation's
 * per-benchmark *shape* (which apps stress the OSU, which compress
 * well, which suffer conservative liveness) carries over. See
 * DESIGN.md §2 for the substitution rationale.
 */

#ifndef REGLESS_WORKLOADS_RODINIA_HH
#define REGLESS_WORKLOADS_RODINIA_HH

#include <string>
#include <vector>

#include "ir/kernel.hh"

namespace regless::workloads
{

/** The 21 benchmark names, in the paper's figure order. */
const std::vector<std::string> &rodiniaNames();

/**
 * Build the synthetic kernel for @a name.
 * @param work_scale Multiplies loop trip counts (1 = bench default).
 */
ir::Kernel makeRodinia(const std::string &name, unsigned work_scale = 1);

/** All 21 kernels at the given scale. */
std::vector<ir::Kernel> allRodinia(unsigned work_scale = 1);

} // namespace regless::workloads

#endif // REGLESS_WORKLOADS_RODINIA_HH
