/**
 * @file
 * A small builder DSL for emitting IR kernels.
 *
 * Workload generators use this instead of hand-counting PCs: labels are
 * patched at build() time, fresh registers are allocated on demand, and
 * common idioms (counted loops, divergent branches) have helpers.
 * Register ids produced here are "as allocated by ptxas"; the RegLess
 * compiler may renumber them later.
 */

#ifndef REGLESS_WORKLOADS_KERNEL_BUILDER_HH
#define REGLESS_WORKLOADS_KERNEL_BUILDER_HH

#include <string>
#include <vector>

#include "ir/kernel.hh"

namespace regless::workloads
{

/** Forward-referencable branch target. */
class Label
{
  public:
    Label() = default;

  private:
    friend class KernelBuilder;
    explicit Label(std::size_t index) : _index(index), _valid(true) {}
    std::size_t _index = 0;
    bool _valid = false;
};

/** Incremental kernel assembler. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    /** Allocate a fresh register id. */
    RegId reg();

    /** @name Value producers — return the destination register. */
    /// @{
    RegId tid();
    RegId ctaid();
    RegId movi(std::int64_t imm);
    RegId mov(RegId src);
    RegId iadd(RegId a, RegId b);
    RegId isub(RegId a, RegId b);
    RegId imul(RegId a, RegId b);
    RegId imad(RegId a, RegId b, RegId c);
    RegId iaddi(RegId a, std::int64_t imm);
    RegId imuli(RegId a, std::int64_t imm);
    RegId fadd(RegId a, RegId b);
    RegId fmul(RegId a, RegId b);
    RegId ffma(RegId a, RegId b, RegId c);
    RegId shl(RegId a, RegId b);
    RegId shr(RegId a, RegId b);
    RegId band(RegId a, RegId b);
    RegId bor(RegId a, RegId b);
    RegId bxor(RegId a, RegId b);
    RegId imin(RegId a, RegId b);
    RegId imax(RegId a, RegId b);
    RegId setLt(RegId a, RegId b);
    RegId setGe(RegId a, RegId b);
    RegId setEq(RegId a, RegId b);
    RegId setNe(RegId a, RegId b);
    RegId selp(RegId a, RegId b, RegId pred);
    RegId rcp(RegId a);
    RegId fsqrt(RegId a);
    RegId ld(RegId addr, std::int64_t offset = 0);
    RegId lds(RegId addr, std::int64_t offset = 0);
    /// @}

    /** @name Explicit-destination variants for loop-carried values. */
    /// @{
    void movTo(RegId dst, RegId src);
    void moviTo(RegId dst, std::int64_t imm);
    void iaddTo(RegId dst, RegId a, RegId b);
    void iaddiTo(RegId dst, RegId a, std::int64_t imm);
    void ffmaTo(RegId dst, RegId a, RegId b, RegId c);
    void ldTo(RegId dst, RegId addr, std::int64_t offset = 0);
    /// @}

    void st(RegId data, RegId addr, std::int64_t offset = 0);
    void sts(RegId data, RegId addr, std::int64_t offset = 0);

    /** @name Control flow. */
    /// @{
    Label newLabel();
    void bind(Label &label);
    void braIf(RegId pred, const Label &label);
    void jmp(const Label &label);
    void bar();
    void exit();
    /// @}

    /** Number of instructions emitted so far. */
    Pc here() const { return static_cast<Pc>(_insns.size()); }

    /** Launch-geometry and value-structure pass-throughs. */
    void setWarpsPerBlock(unsigned w) { _warpsPerBlock = w; }
    void setWorkScale(unsigned s) { _workScale = s; }
    void setValueProfile(const ir::ValueProfile &p) { _profile = p; }

    /**
     * Patch labels and produce the kernel. An exit is appended when the
     * stream does not already end in one.
     */
    ir::Kernel build();

  private:
    RegId emit(ir::Opcode op, std::vector<RegId> srcs,
               std::int64_t imm = 0);
    void emitTo(ir::Opcode op, RegId dst, std::vector<RegId> srcs,
                std::int64_t imm = 0);

    std::string _name;
    std::vector<ir::Instruction> _insns;
    std::vector<Pc> _labelPcs;
    /** Fixups: instruction index -> label index. */
    std::vector<std::pair<Pc, std::size_t>> _fixups;
    RegId _nextReg = 0;
    unsigned _warpsPerBlock = 8;
    unsigned _workScale = 1;
    ir::ValueProfile _profile;
};

} // namespace regless::workloads

#endif // REGLESS_WORKLOADS_KERNEL_BUILDER_HH
