#include "workloads/random_kernel.hh"

#include <string>
#include <vector>

#include "common/rng.hh"
#include "workloads/kernel_builder.hh"

namespace regless::workloads
{

ir::Kernel
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    KernelBuilder b("prop_" + std::to_string(seed));

    RegId tid = b.tid();
    RegId addr = b.imuli(tid, 4);
    std::vector<RegId> pool{tid, addr};
    auto any = [&]() -> RegId {
        return pool[rng.nextBelow(pool.size())];
    };
    unsigned store_segment = 0;

    const unsigned segments = 2 + rng.nextBelow(4);
    for (unsigned seg = 0; seg < segments; ++seg) {
        switch (rng.nextBelow(4)) {
          case 0: {
            // Straight-line arithmetic.
            unsigned n = 2 + rng.nextBelow(6);
            for (unsigned i = 0; i < n; ++i) {
                RegId a = any(), c = any();
                switch (rng.nextBelow(5)) {
                  case 0: pool.push_back(b.iadd(a, c)); break;
                  case 1: pool.push_back(b.imul(a, c)); break;
                  case 2: pool.push_back(b.bxor(a, c)); break;
                  case 3: pool.push_back(b.imin(a, c)); break;
                  default:
                    pool.push_back(
                        b.iaddi(a, rng.nextRange(-100, 100)));
                }
            }
            break;
          }
          case 1: {
            // Load, combine, store.
            RegId masked = b.band(any(), b.movi(8191));
            RegId la = b.imuli(masked, 4);
            RegId v = b.ld(la, 1 << 16);
            RegId sum = b.iadd(v, any());
            pool.push_back(sum);
            b.st(sum, addr, (2u << 20) + 16384 * store_segment++);
            break;
          }
          case 2: {
            // Diamond with divergent sides.
            RegId bit = b.band(tid, b.movi(1 + rng.nextBelow(7)));
            RegId p = b.setNe(bit, b.movi(0));
            Label else_l = b.newLabel();
            Label join = b.newLabel();
            RegId shared = b.reg();
            RegId np = b.setEq(p, b.movi(0));
            b.braIf(np, else_l);
            b.iaddTo(shared, any(), any());
            b.jmp(join);
            b.bind(else_l);
            b.iaddTo(shared, any(), b.movi(rng.nextRange(1, 50)));
            b.bind(join);
            pool.push_back(shared);
            break;
          }
          default: {
            // Counted loop with a loop-carried accumulator and,
            // sometimes, a divergent conditional in the body (the
            // soft-definition-inside-loop corner).
            RegId acc = b.reg();
            b.movTo(acc, any());
            RegId i = b.reg();
            b.moviTo(i, 0);
            RegId limit = b.movi(2 + rng.nextBelow(6));
            bool divergent_body = rng.chance(0.5);
            Label head = b.newLabel();
            b.bind(head);
            b.iaddTo(acc, acc, any());
            if (divergent_body) {
                RegId bit = b.band(tid, b.movi(1 + rng.nextBelow(7)));
                RegId p2 = b.setNe(bit, b.movi(0));
                Label skip = b.newLabel();
                RegId np = b.setEq(p2, b.movi(0));
                b.braIf(np, skip);
                // Soft definition of acc: only some lanes update.
                b.iaddTo(acc, acc, b.movi(rng.nextRange(1, 9)));
                b.bind(skip);
            }
            b.iaddiTo(i, i, 1);
            RegId p = b.setLt(i, limit);
            b.braIf(p, head);
            pool.push_back(acc);
            break;
          }
        }
    }
    // Final observable store of a mixed value.
    RegId out = any();
    for (unsigned i = 0; i < 2 && pool.size() > 1; ++i)
        out = b.bxor(out, any());
    b.st(out, addr, 3u << 20);
    return b.build();
}

} // namespace regless::workloads
