#include "workloads/rodinia.hh"

#include <functional>
#include <map>

#include "common/logging.hh"
#include "workloads/kernel_builder.hh"

namespace regless::workloads
{

namespace
{

using ir::Kernel;
using ir::ValueProfile;

/** Counted-loop helper: body(i) runs trips times. */
void
countedLoop(KernelBuilder &b, unsigned trips,
            const std::function<void(RegId)> &body)
{
    RegId i = b.reg();
    b.moviTo(i, 0);
    RegId limit = b.movi(trips);
    Label head = b.newLabel();
    b.bind(head);
    body(i);
    b.iaddiTo(i, i, 1);
    RegId p = b.setLt(i, limit);
    b.braIf(p, head);
}

/** Divergent if: lanes where (tid & mask) == match run then(). */
void
divergentIf(KernelBuilder &b, RegId tid, unsigned mask, unsigned match,
            const std::function<void()> &then_body)
{
    RegId bits = b.band(tid, b.movi(mask));
    RegId miss = b.setNe(bits, b.movi(match));
    Label skip = b.newLabel();
    b.braIf(miss, skip);
    then_body();
    b.bind(skip);
}

/** Highly compressible load values (regular data structures). */
ValueProfile
compressibleProfile()
{
    ValueProfile p;
    p.constantFrac = 0.45;
    p.stride1Frac = 0.30;
    p.stride4Frac = 0.10;
    p.halfWarpFrac = 0.05;
    return p;
}

/** Mostly incompressible values (transformed/float-noise data). */
ValueProfile
noisyProfile()
{
    ValueProfile p;
    p.constantFrac = 0.05;
    p.stride1Frac = 0.05;
    p.stride4Frac = 0.02;
    p.halfWarpFrac = 0.03;
    return p;
}

ValueProfile
mediumProfile()
{
    return ValueProfile{}; // 0.3 / 0.3 / 0.1 / 0.1
}

// ---------------------------------------------------------------------
// Individual benchmark generators. Paper traits cited from Table 2 and
// Figures 16-19 are noted on each.
// ---------------------------------------------------------------------

/**
 * b+tree: pointer-chasing tree search. Dependent loads force small
 * regions (3.7 insns / 150 cycles); uses compressor capacity (Fig 17).
 */
Kernel
makeBtree(unsigned scale)
{
    KernelBuilder b("b+tree");
    b.setValueProfile(compressibleProfile());
    RegId t = b.tid();
    RegId out_addr = b.imuli(t, 4);
    RegId key = b.iaddi(b.band(t, b.movi(1023)), 17);
    RegId node = b.reg();
    b.movTo(node, b.band(t, b.movi(255)));
    countedLoop(b, 8 * scale, [&](RegId) {
        RegId addr = b.imuli(node, 4);
        RegId v = b.ld(addr);
        RegId go_right = b.setLt(v, key);
        RegId left = b.band(v, b.movi(511));
        RegId right = b.iaddi(left, 1);
        RegId next = b.selp(right, left, go_right);
        b.movTo(node, next);
    });
    b.st(node, out_addr, 8192);
    return b.build();
}

/**
 * backprop: two phases through shared memory with a barrier between
 * (6.7 insns / 323 cycles per region).
 */
Kernel
makeBackprop(unsigned scale)
{
    KernelBuilder b("backprop");
    b.setWarpsPerBlock(4);
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId acc = b.reg();
    b.moviTo(acc, 0);
    countedLoop(b, 6 * scale, [&](RegId i) {
        RegId w_addr = b.iadd(addr, b.imuli(i, 256));
        RegId w = b.ld(w_addr);
        RegId x = b.ld(w_addr, 4096);
        RegId prod = b.imul(w, x);
        b.iaddTo(acc, acc, prod);
    });
    b.sts(acc, addr);
    b.bar();
    RegId partial = b.lds(addr);
    RegId neighbor = b.lds(b.bxor(addr, b.movi(128)));
    RegId delta = b.isub(partial, neighbor);
    RegId scaled = b.imuli(delta, 3);
    b.st(scaled, addr, 16384);
    return b.build();
}

/**
 * bfs: memory-bound frontier expansion with per-node divergence.
 * Smallest regions in the suite (3.3 insns / 60 cycles); register
 * working set small enough that preloads never miss the OSU (Fig 17).
 */
Kernel
makeBfs(unsigned scale)
{
    KernelBuilder b("bfs");
    b.setValueProfile(compressibleProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    countedLoop(b, 6 * scale, [&](RegId i) {
        RegId node_addr = b.iadd(addr, b.imuli(i, 512));
        RegId v = b.ld(node_addr);
        divergentIf(b, t, 1, 0, [&] {
            RegId n0 = b.ld(b.imuli(b.band(v, b.movi(1023)), 4));
            RegId cost = b.iaddi(n0, 1);
            RegId frontier = b.iadd(addr, b.imuli(i, 16384));
            b.st(cost, frontier, 65536);
        });
    });
    return b.build();
}

/**
 * dwt2d: wavelet transform. Many simultaneously live registers (20+,
 * Fig 19), few of them compressible -> the suite's worst added-L2
 * traffic (2.6%, Fig 17). Regions 9.5 insns / 457 cycles.
 */
Kernel
makeDwt2d(unsigned scale)
{
    KernelBuilder b("dwt2d");
    b.setValueProfile(noisyProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    countedLoop(b, 3 * scale, [&](RegId i) {
        RegId base = b.iadd(addr, b.imuli(i, 8192));
        // Load a 16-coefficient window: all live at once.
        std::vector<RegId> coeff;
        for (int k = 0; k < 16; ++k)
            coeff.push_back(b.ld(base, 128 * k));
        // Butterfly-style combination keeps the window live.
        std::vector<RegId> low, high;
        for (int k = 0; k < 8; ++k) {
            low.push_back(b.iadd(coeff[2 * k], coeff[2 * k + 1]));
            high.push_back(b.isub(coeff[2 * k], coeff[2 * k + 1]));
        }
        RegId acc_l = low[0];
        RegId acc_h = high[0];
        for (int k = 1; k < 8; ++k) {
            acc_l = b.imad(low[k], b.movi(3), acc_l);
            acc_h = b.imad(high[k], b.movi(5), acc_h);
        }
        b.st(acc_l, base, 65536);
        b.st(acc_h, base, 65536 + 32768);
    });
    return b.build();
}

/**
 * gaussian: elimination with many registers live across global loads
 * (8.1 insns / 1207 cycles) - the paper's worst slowdown case, since
 * consecutive regions from one warp rarely chain.
 */
Kernel
makeGaussian(unsigned scale)
{
    KernelBuilder b("gaussian");
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    // Long-lived accumulators spanning every load in the loop.
    std::vector<RegId> acc;
    for (int k = 0; k < 4; ++k) {
        RegId r = b.reg();
        b.moviTo(r, k + 1);
        acc.push_back(r);
    }
    countedLoop(b, 8 * scale, [&](RegId i) {
        RegId row = b.iadd(addr, b.imuli(i, 1024));
        RegId pivot = b.ld(row);
        for (int k = 0; k < 4; ++k) {
            RegId scaled = b.imul(pivot, acc[k]);
            b.iaddTo(acc[k], acc[k], scaled);
        }
    });
    RegId result = acc[0];
    for (int k = 1; k < 4; ++k)
        result = b.iadd(result, acc[k]);
    b.st(result, addr, 131072);
    return b.build();
}

/**
 * heartwall: tracking with complex nested control flow (4.6 insns /
 * 32 cycles): registers stay conservatively live across paths, one of
 * the paper's >5% slowdown cases.
 */
Kernel
makeHeartwall(unsigned scale)
{
    KernelBuilder b("heartwall");
    b.setValueProfile(noisyProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId best = b.reg();
    b.moviTo(best, 0x7fffff);
    countedLoop(b, 10 * scale, [&](RegId i) {
        RegId sample = b.ld(b.iadd(addr, b.imuli(i, 256)));
        RegId sel = b.band(b.iadd(t, i), b.movi(3));
        RegId is0 = b.setEq(sel, b.movi(0));
        Label not0 = b.newLabel();
        Label done = b.newLabel();
        RegId n0 = b.setEq(is0, b.movi(0));
        b.braIf(n0, not0);
        {
            // Path A: nested divergence on another bit.
            divergentIf(b, t, 4, 0, [&] {
                RegId cand = b.iaddi(sample, 3);
                b.movTo(best, b.imin(best, cand));
            });
            b.jmp(done);
        }
        b.bind(not0);
        {
            RegId cand = b.bxor(sample, b.movi(0x55));
            b.movTo(best, b.imin(best, cand));
        }
        b.bind(done);
    });
    b.st(best, addr, 262144);
    return b.build();
}

/**
 * hotspot: 5-point stencil, register-intensive but with regular,
 * compressible temperature values (uses the compressor, Fig 17).
 */
Kernel
makeHotspot(unsigned scale)
{
    KernelBuilder b("hotspot");
    b.setValueProfile(compressibleProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    countedLoop(b, 5 * scale, [&](RegId i) {
        RegId base = b.iadd(addr, b.imuli(i, 16384));
        RegId center = b.ld(base);
        RegId north = b.ld(base, 128);
        RegId south = b.ld(base, 256);
        RegId east = b.ld(base, 384);
        RegId west = b.ld(base, 512);
        RegId vertical = b.iadd(north, south);
        RegId horizontal = b.iadd(east, west);
        RegId ring = b.iadd(vertical, horizontal);
        RegId scaled_c = b.imuli(center, 4);
        RegId laplacian = b.isub(ring, scaled_c);
        RegId damped = b.shr(laplacian, b.movi(2));
        RegId next = b.iadd(center, damped);
        b.st(next, base, 1 << 18);
    });
    return b.build();
}

/**
 * hybridsort: bucket/merge phases with registers redefined on some
 * control paths before being read - the conservative-liveness
 * pathology (more L1 stores than loads, Fig 18; >5% slowdown).
 */
Kernel
makeHybridsort(unsigned scale)
{
    KernelBuilder b("hybridsort");
    b.setValueProfile(noisyProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId pivot = b.reg();
    b.moviTo(pivot, 500);
    countedLoop(b, 8 * scale, [&](RegId i) {
        RegId v = b.ld(b.iadd(addr, b.imuli(i, 512)));
        // pivot conditionally redefined (soft definition) before use.
        divergentIf(b, t, 3, 0, [&] {
            RegId mixed = b.bxor(v, pivot);
            b.movTo(pivot, b.band(mixed, b.movi(1023)));
        });
        RegId bucket = b.setLt(v, pivot);
        divergentIf(b, t, 3, 1, [&] {
            // A value written on this path only, then dead on the
            // reconverged path: liveness must stay conservative.
            RegId stash = b.iadd(v, bucket);
            b.st(stash, addr, 1 << 19);
        });
    });
    b.st(pivot, addr, (1 << 19) + 8192);
    return b.build();
}

/**
 * kmeans: distance loop over cluster centres; saw speedup under
 * RegLess from improved memory locality (3.9 insns / 993 cycles).
 */
Kernel
makeKmeans(unsigned scale)
{
    KernelBuilder b("kmeans");
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId feature = b.ld(addr);
    RegId best_dist = b.reg();
    RegId best_idx = b.reg();
    b.moviTo(best_dist, 0x7fffffff);
    b.moviTo(best_idx, 0);
    countedLoop(b, 8 * scale, [&](RegId i) {
        RegId center = b.ld(b.imuli(i, 4), 65536);
        RegId diff = b.isub(feature, center);
        RegId dist = b.imul(diff, diff);
        RegId closer = b.setLt(dist, best_dist);
        b.movTo(best_dist, b.selp(dist, best_dist, closer));
        b.movTo(best_idx, b.selp(i, best_idx, closer));
    });
    b.st(best_idx, addr, 1 << 20);
    return b.build();
}

/**
 * lavaMD: particle interactions. Big compute regions holding many
 * registers (7.5 insns / 1601 cycles - the longest-lived regions).
 */
Kernel
makeLavaMD(unsigned scale)
{
    KernelBuilder b("lavaMD");
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId fx = b.reg(), fy = b.reg(), fz = b.reg();
    b.moviTo(fx, 0);
    b.moviTo(fy, 0);
    b.moviTo(fz, 0);
    countedLoop(b, 4 * scale, [&](RegId i) {
        RegId base = b.iadd(addr, b.imuli(i, 2048));
        RegId px = b.ld(base);
        RegId py = b.ld(base, 128);
        RegId pz = b.ld(base, 256);
        RegId dx = b.isub(px, t);
        RegId dy = b.isub(py, t);
        RegId dz = b.isub(pz, t);
        RegId r2 = b.imad(dx, dx, b.imad(dy, dy, b.imul(dz, dz)));
        RegId inv = b.iaddi(b.shr(r2, b.movi(8)), 1);
        RegId s1 = b.imul(inv, dx);
        RegId s2 = b.imul(inv, dy);
        RegId s3 = b.imul(inv, dz);
        RegId w1 = b.imad(s1, inv, dx);
        RegId w2 = b.imad(s2, inv, dy);
        RegId w3 = b.imad(s3, inv, dz);
        b.iaddTo(fx, fx, w1);
        b.iaddTo(fy, fy, w2);
        b.iaddTo(fz, fz, w3);
    });
    b.st(fx, addr, 1 << 21);
    b.st(fy, addr, (1 << 21) + 8192);
    b.st(fz, addr, (1 << 21) + 16384);
    return b.build();
}

/**
 * leukocyte: cell tracking dominated by special-function math
 * (7.7 insns / 297 cycles); saw slight speedup under RegLess.
 */
Kernel
makeLeukocyte(unsigned scale)
{
    KernelBuilder b("leukocyte");
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId acc = b.reg();
    b.moviTo(acc, 0);
    countedLoop(b, 6 * scale, [&](RegId i) {
        RegId v = b.ld(b.iadd(addr, b.imuli(i, 1024)));
        RegId f = b.bor(v, b.movi(0x3f800000)); // force positive float
        RegId root = b.fsqrt(f);
        RegId inv = b.rcp(root);
        RegId grad = b.fmul(inv, f);
        b.iaddTo(acc, acc, grad);
    });
    b.st(acc, addr, 1 << 22);
    return b.build();
}

/**
 * lud: dense factorisation; the suite's largest regions (16.0 insns /
 * 816 cycles) - pure compute with deep FMA chains.
 */
Kernel
makeLud(unsigned scale)
{
    KernelBuilder b("lud");
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId diag = b.ld(addr);
    RegId acc = b.reg();
    b.movTo(acc, diag);
    countedLoop(b, 3 * scale, [&](RegId i) {
        RegId row = b.ld(b.iadd(addr, b.imuli(i, 4096)));
        // Deep in-region chain: 16+ ALU ops, all interior.
        RegId x1 = b.imad(row, acc, diag);
        RegId x2 = b.imad(x1, row, acc);
        RegId x3 = b.imad(x2, x1, row);
        RegId x4 = b.iadd(x3, x2);
        RegId x5 = b.imul(x4, x1);
        RegId x6 = b.imad(x5, x4, x3);
        RegId x7 = b.isub(x6, x5);
        RegId x8 = b.imad(x7, x6, x5);
        RegId x9 = b.iadd(x8, x7);
        RegId x10 = b.imul(x9, x8);
        RegId x11 = b.imad(x10, x9, x8);
        RegId x12 = b.iadd(x11, x10);
        RegId x13 = b.imad(x12, x11, x10);
        RegId x14 = b.bxor(x13, x12);
        RegId x15 = b.imad(x14, x13, x12);
        b.movTo(acc, x15);
    });
    b.st(acc, addr, 1 << 23);
    return b.build();
}

/**
 * mummergpu: suffix-tree matching - pointer chasing with data-
 * dependent early exit (6.4 insns / 240 cycles).
 */
Kernel
makeMummergpu(unsigned scale)
{
    KernelBuilder b("mummergpu");
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId pos = b.reg();
    b.movTo(pos, b.band(t, b.movi(511)));
    RegId matched = b.reg();
    b.moviTo(matched, 0);
    countedLoop(b, 7 * scale, [&](RegId i) {
        RegId node = b.ld(b.imuli(pos, 4), 32768);
        RegId want = b.band(b.iadd(t, i), b.movi(255));
        RegId hit = b.setEq(b.band(node, b.movi(255)), want);
        // Divergent bookkeeping on a match.
        Label miss = b.newLabel();
        RegId no_hit = b.setEq(hit, b.movi(0));
        b.braIf(no_hit, miss);
        b.iaddiTo(matched, matched, 1);
        b.bind(miss);
        b.movTo(pos, b.band(b.shr(node, b.movi(8)), b.movi(511)));
    });
    b.st(matched, addr, 1 << 24);
    return b.build();
}

/**
 * myocyte: enormous straight-line ODE expressions - 20+ concurrent
 * live registers (Fig 19) but a tiny total working set, so RegLess
 * handles it with no performance change.
 */
Kernel
makeMyocyte(unsigned scale)
{
    KernelBuilder b("myocyte");
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    // Rodinia's myocyte solves ODEs with very few threads: most warps
    // exit immediately, so the per-window register working set is tiny
    // even though each surviving warp holds 20+ live registers.
    Label done = b.newLabel();
    RegId inactive = b.setGe(t, b.movi(256));
    b.braIf(inactive, done);
    RegId addr = b.imuli(t, 4);
    RegId state = b.ld(addr);
    RegId out = b.reg();
    b.moviTo(out, 0);
    countedLoop(b, 4 * scale, [&](RegId i) {
        // Build a wide window of live temporaries, then collapse with
        // a balanced tree (the ODE expressions are wide, not serial).
        std::vector<RegId> terms;
        RegId seed = b.iadd(state, i);
        for (int k = 0; k < 20; ++k)
            terms.push_back(b.imad(seed, b.movi(k + 2), t));
        while (terms.size() > 1) {
            std::vector<RegId> next;
            for (std::size_t k = 0; k + 1 < terms.size(); k += 2)
                next.push_back(b.iadd(terms[k], terms[k + 1]));
            if (terms.size() % 2)
                next.push_back(terms.back());
            terms = std::move(next);
        }
        b.iaddTo(out, out, terms[0]);
    });
    b.st(out, addr, 1 << 25);
    b.bind(done);
    return b.build();
}

/**
 * nn: nearest neighbour - a very small kernel (6.3 insns / 940
 * cycles); saw speedup under RegLess from fewer active warps.
 */
Kernel
makeNn(unsigned scale)
{
    KernelBuilder b("nn");
    b.setValueProfile(compressibleProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    countedLoop(b, 2 * scale, [&](RegId i) {
        RegId base = b.iadd(addr, b.imuli(i, 16384));
        RegId lat = b.ld(base);
        RegId lng = b.ld(base, 4096);
        RegId dlat = b.isub(lat, t);
        RegId dlng = b.isub(lng, t);
        RegId dist = b.imad(dlat, dlat, b.imul(dlng, dlng));
        b.st(dist, base, 1 << 26);
    });
    return b.build();
}

/**
 * nw: Needleman-Wunsch wavefront through shared memory; compute-heavy
 * regions (10.8 insns / 78 cycles) whose preloads never miss the OSU.
 */
Kernel
makeNw(unsigned scale)
{
    KernelBuilder b("nw");
    b.setWarpsPerBlock(4);
    b.setValueProfile(compressibleProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId score = b.ld(addr);
    b.sts(score, addr);
    b.bar();
    countedLoop(b, 4 * scale, [&](RegId i) {
        RegId up = b.lds(addr, 0);
        RegId left = b.lds(b.bxor(addr, b.movi(4)));
        RegId diag = b.lds(b.bxor(addr, b.movi(8)));
        RegId gap_up = b.iaddi(up, -1);
        RegId gap_left = b.iaddi(left, -1);
        RegId match = b.iadd(diag, b.band(b.iadd(t, i), b.movi(1)));
        RegId best = b.imax(b.imax(gap_up, gap_left), match);
        b.sts(best, addr);
        b.bar();
    });
    RegId final_score = b.lds(addr);
    b.st(final_score, addr, 1 << 27);
    return b.build();
}

/**
 * particle_filter: alternating expression build-up and collapse - the
 * Figure 5 kernel whose live-register seams the region splitter uses
 * (10.0 insns / 20 cycles).
 */
Kernel
makeParticleFilter(unsigned scale)
{
    KernelBuilder b("particle_filter");
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId weight = b.reg();
    b.movTo(weight, t);
    countedLoop(b, 3 * scale, [&](RegId i) {
        // Phase: grow 6 temporaries, collapse to one (a seam), twice.
        for (int phase = 0; phase < 2; ++phase) {
            std::vector<RegId> temps;
            RegId seed = b.iadd(weight, i);
            for (int k = 0; k < 6; ++k)
                temps.push_back(b.imad(seed, b.movi(3 + k + phase), t));
            while (temps.size() > 1) {
                std::vector<RegId> next;
                for (std::size_t k = 0; k + 1 < temps.size(); k += 2)
                    next.push_back(b.iadd(temps[k], temps[k + 1]));
                if (temps.size() % 2)
                    next.push_back(temps.back());
                temps = std::move(next);
            }
            b.movTo(weight, temps[0]);
        }
    });
    b.st(weight, addr, 1 << 28);
    return b.build();
}

/**
 * pathfinder: dynamic-programming stencil through shared memory with
 * highly regular (compressible) cost values (4.9 insns / 72 cycles).
 */
Kernel
makePathfinder(unsigned scale)
{
    KernelBuilder b("pathfinder");
    b.setWarpsPerBlock(4);
    b.setValueProfile(compressibleProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId cost = b.ld(addr);
    b.sts(cost, addr);
    b.bar();
    countedLoop(b, 4 * scale, [&](RegId i) {
        RegId center = b.lds(addr);
        RegId left = b.lds(b.bxor(addr, b.movi(4)));
        RegId right = b.lds(b.bxor(addr, b.movi(8)));
        RegId best = b.imin(b.imin(left, right), center);
        RegId step = b.ld(b.iadd(addr, b.imuli(i, 8192)), 65536);
        RegId next = b.iadd(best, step);
        b.sts(next, addr);
        b.bar();
    });
    RegId out = b.lds(addr);
    b.st(out, addr, 1 << 29);
    return b.build();
}

/**
 * srad_v1: speckle-reducing diffusion; boundary-check divergence and
 * reciprocal math (9.1 insns / 350 cycles).
 */
Kernel
makeSradV1(unsigned scale)
{
    KernelBuilder b("srad_v1");
    b.setValueProfile(mediumProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    countedLoop(b, 4 * scale, [&](RegId i) {
        RegId base = b.iadd(addr, b.imuli(i, 16384));
        RegId c = b.ld(base);
        RegId n = b.ld(base, 128);
        RegId s = b.ld(base, 256);
        RegId grad = b.isub(n, s);
        RegId mag = b.imul(grad, grad);
        RegId denom = b.iaddi(mag, 16);
        RegId coef = b.rcp(b.bor(denom, b.movi(0x3f800000)));
        RegId update = b.imad(grad, coef, c);
        divergentIf(b, t, 7, 0, [&] {
            // Boundary lanes store a clamped value instead.
            RegId clamped = b.imin(update, b.movi(4096));
            b.st(clamped, base, 1 << 30);
        });
        b.st(update, base, (1 << 30) + 65536);
    });
    return b.build();
}

/**
 * srad_v2: like v1 but with registers redefined on a control path
 * before being read, producing the more-stores-than-loads L1 pattern
 * the paper reports (Fig 18).
 */
Kernel
makeSradV2(unsigned scale)
{
    KernelBuilder b("srad_v2");
    b.setValueProfile(noisyProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId carry = b.reg();
    b.moviTo(carry, 7);
    countedLoop(b, 5 * scale, [&](RegId i) {
        RegId base = b.iadd(addr, b.imuli(i, 16384));
        RegId v = b.ld(base);
        // carry written every iteration but read only on one path of
        // the *next* iteration: redefinition-before-read on the other.
        divergentIf(b, t, 3, 2, [&] {
            RegId used = b.imad(carry, v, t);
            b.st(used, base, 1u << 31);
        });
        RegId fresh = b.bxor(v, b.imuli(t, 13));
        b.movTo(carry, fresh);
    });
    b.st(carry, addr, (1u << 31) + 65536);
    return b.build();
}

/**
 * streamcluster: tiny memory-bound regions (4.3 insns / 16 cycles -
 * the shortest in the suite); no performance change under RegLess.
 */
Kernel
makeStreamcluster(unsigned scale)
{
    KernelBuilder b("streamcluster");
    b.setValueProfile(compressibleProfile());
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId opened = b.reg();
    b.moviTo(opened, 0);
    countedLoop(b, 12 * scale, [&](RegId i) {
        RegId p = b.ld(b.iadd(addr, b.imuli(i, 1024)));
        RegId c = b.ld(b.iadd(addr, b.imuli(i, 512)), 262144);
        RegId d = b.isub(p, c);
        RegId gain = b.imul(d, d);
        RegId worth = b.setLt(gain, b.movi(1000000));
        b.iaddTo(opened, opened, worth);
    });
    b.st(opened, addr, 3u << 30);
    return b.build();
}

using Generator = Kernel (*)(unsigned);

const std::map<std::string, Generator> &
generators()
{
    static const std::map<std::string, Generator> map = {
        {"b+tree", makeBtree},
        {"backprop", makeBackprop},
        {"bfs", makeBfs},
        {"dwt2d", makeDwt2d},
        {"gaussian", makeGaussian},
        {"heartwall", makeHeartwall},
        {"hotspot", makeHotspot},
        {"hybridsort", makeHybridsort},
        {"kmeans", makeKmeans},
        {"lavaMD", makeLavaMD},
        {"leukocyte", makeLeukocyte},
        {"lud", makeLud},
        {"mummergpu", makeMummergpu},
        {"myocyte", makeMyocyte},
        {"nn", makeNn},
        {"nw", makeNw},
        {"particle_filter", makeParticleFilter},
        {"pathfinder", makePathfinder},
        {"srad_v1", makeSradV1},
        {"srad_v2", makeSradV2},
        {"streamcluster", makeStreamcluster},
    };
    return map;
}

} // namespace

const std::vector<std::string> &
rodiniaNames()
{
    static const std::vector<std::string> names = {
        "b+tree",     "backprop",  "bfs",
        "dwt2d",      "gaussian",  "heartwall",
        "hotspot",    "hybridsort", "kmeans",
        "lavaMD",     "leukocyte", "lud",
        "mummergpu",  "myocyte",   "nn",
        "nw",         "particle_filter", "pathfinder",
        "srad_v1",    "srad_v2",   "streamcluster",
    };
    return names;
}

ir::Kernel
makeRodinia(const std::string &name, unsigned work_scale)
{
    auto it = generators().find(name);
    if (it == generators().end())
        fatal("unknown Rodinia benchmark '", name, "'");
    if (work_scale == 0)
        fatal("work scale must be positive");
    ir::Kernel kernel = it->second(work_scale);
    return kernel;
}

std::vector<ir::Kernel>
allRodinia(unsigned work_scale)
{
    std::vector<ir::Kernel> kernels;
    kernels.reserve(rodiniaNames().size());
    for (const std::string &name : rodiniaNames())
        kernels.push_back(makeRodinia(name, work_scale));
    return kernels;
}

} // namespace regless::workloads
