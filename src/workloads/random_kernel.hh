/**
 * @file
 * Random, guaranteed-valid kernel generator.
 *
 * Shared by the property-based differential tests and the
 * regless_lint fuzz mode: every register is written before it is
 * read, loops are counted, branches reconverge, and all addresses
 * stay inside a bounded data window, so any lint finding or
 * baseline/RegLess divergence on these kernels is a real bug.
 */

#ifndef REGLESS_WORKLOADS_RANDOM_KERNEL_HH
#define REGLESS_WORKLOADS_RANDOM_KERNEL_HH

#include <cstdint>

#include "ir/kernel.hh"

namespace regless::workloads
{

/**
 * Deterministically generate the random kernel for @a seed. The shape
 * mixes straight-line arithmetic, load/combine/store segments,
 * divergent diamonds, and counted loops with optional soft
 * definitions in the body.
 */
ir::Kernel randomKernel(std::uint64_t seed);

} // namespace regless::workloads

#endif // REGLESS_WORKLOADS_RANDOM_KERNEL_HH
