/**
 * @file
 * Area model for Figure 11: RegLess configurations normalized to the
 * 2048-entry baseline register file, split into storage, logic, and
 * compressor components as in the paper's placed-and-routed results.
 */

#ifndef REGLESS_ENERGY_AREA_MODEL_HH
#define REGLESS_ENERGY_AREA_MODEL_HH

namespace regless::energy
{

/** Area fractions relative to the baseline RF's total area. */
struct AreaBreakdown
{
    double storage = 0.0;
    double logic = 0.0;
    double compressor = 0.0;

    double total() const { return storage + logic + compressor; }
};

/** Analytical area model. */
struct AreaConfig
{
    /** Baseline RF area split (normalized to total = 1.0). */
    double storageFraction = 0.78;
    double logicFraction = 0.22;
    /** Tag/queue logic scales sublinearly with capacity. */
    double logicExponent = 0.9;
    /** Fixed compressor area (all four shards), normalized. */
    double compressorArea = 0.02;
    /** Extra tag storage RegLess needs vs a plain RF of equal size. */
    double reglessStorageOverhead = 1.08;

    /** Area of a RegLess design with @a entries OSU registers. */
    AreaBreakdown regless(unsigned entries,
                          bool with_compressor = true) const;

    /** Area of a plain register file with @a entries registers. */
    AreaBreakdown plainRf(unsigned entries) const;
};

} // namespace regless::energy

#endif // REGLESS_ENERGY_AREA_MODEL_HH
