/**
 * @file
 * Analytical energy model standing in for the paper's synthesized
 * Verilog + GPUWattch flow.
 *
 * All figures that use energy (12-15) compare configurations
 * *relative* to the baseline, so the model only needs consistent
 * per-access energies with capacity scaling, plus static power and a
 * rest-of-GPU component. Constants are calibrated so the baseline
 * register file is ~1/6 of total GPU energy — the paper's "No RF"
 * upper bound of 16.7%.
 */

#ifndef REGLESS_ENERGY_ENERGY_MODEL_HH
#define REGLESS_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace regless::energy
{

/** Model constants. Units: pJ for energy, pJ/cycle for static power. */
struct EnergyConfig
{
    /** Per-access energy of a 2048-entry (256 KB) register file. */
    double rfAccess2048 = 80.0;

    /**
     * Capacity scaling: E(n) = rfAccess2048 * (n / 2048)^k. Wire-
     * dominated arrays scale slightly superlinearly with capacity.
     */
    double capacityExponent = 1.15;

    /** Small CAM/SRAM side structures. */
    double tagAccess = 2.0;
    double renameAccess = 12.0;
    double lrfAccess = 1.5;
    double orfAccess = 4.0;
    double compressorAccess = 3.0;

    /** OSU tag/decode overhead vs a bare SRAM of equal capacity. */
    double osuOverheadFactor = 1.15;

    /** Memory-hierarchy access energies (per 128 B line). */
    double l1Access = 60.0;
    double l2Access = 240.0;
    double dramAccess = 2400.0;

    /** Static (leakage + clock) power of the 2048-entry RF. */
    double rfStatic2048PerCycle = 20.0;
    double compressorStaticPerCycle = 0.3;

    /** Rest of the GPU: execution units, fetch/decode, networks. */
    double restPerInsn = 480.0;
    /** Fetch/decode-only cost of a RegLess metadata instruction. */
    double metadataInsnEnergy = 120.0;
    double restStaticPerCycle = 400.0;

    /** Scaled per-access energy for an n-entry register structure. */
    double accessEnergy(unsigned entries) const;

    /** Scaled static power for an n-entry register structure. */
    double staticPower(unsigned entries) const;
};

/** Energy totals for one simulated kernel run. */
struct EnergyBreakdown
{
    /** Dynamic energy of the register structures. */
    double regDynamic = 0.0;
    /** Static energy of the register structures. */
    double regStatic = 0.0;
    /** Compressor dynamic + static (RegLess only). */
    double compressor = 0.0;
    /** Memory hierarchy (L1 + L2 + DRAM). */
    double memory = 0.0;
    /** Rest of the GPU (EUs, fetch/decode incl. metadata, idle). */
    double rest = 0.0;

    /** Paper's "register file energy" (Figure 14). */
    double
    registerStructures() const
    {
        return regDynamic + regStatic + compressor;
    }

    /** Paper's "total GPU energy" (Figure 15). */
    double
    total() const
    {
        return registerStructures() + memory + rest;
    }
};

} // namespace regless::energy

#endif // REGLESS_ENERGY_ENERGY_MODEL_HH
