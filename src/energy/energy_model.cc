#include "energy/energy_model.hh"

#include <cmath>

namespace regless::energy
{

double
EnergyConfig::accessEnergy(unsigned entries) const
{
    return rfAccess2048 *
           std::pow(static_cast<double>(entries) / 2048.0,
                    capacityExponent);
}

double
EnergyConfig::staticPower(unsigned entries) const
{
    return rfStatic2048PerCycle * static_cast<double>(entries) / 2048.0;
}

} // namespace regless::energy
