#include "energy/area_model.hh"

#include <cmath>

namespace regless::energy
{

AreaBreakdown
AreaConfig::regless(unsigned entries, bool with_compressor) const
{
    const double ratio = static_cast<double>(entries) / 2048.0;
    AreaBreakdown area;
    area.storage = storageFraction * ratio * reglessStorageOverhead;
    area.logic = logicFraction * std::pow(ratio, logicExponent);
    area.compressor = with_compressor ? compressorArea : 0.0;
    return area;
}

AreaBreakdown
AreaConfig::plainRf(unsigned entries) const
{
    const double ratio = static_cast<double>(entries) / 2048.0;
    AreaBreakdown area;
    area.storage = storageFraction * ratio;
    area.logic = logicFraction * std::pow(ratio, logicExponent);
    area.compressor = 0.0;
    return area;
}

} // namespace regless::energy
