/**
 * @file
 * Eviction compressor (paper §5.3).
 *
 * Registers evicted from the OSU are matched against six patterns
 * (uncompressed, constant, stride-1, stride-4, and half-warp variants
 * of the strides). Compressed representations pack 15 registers per
 * 128-byte backing line, so compressed traffic both saves L1 capacity
 * and batches many registers into one L1 request. A per-register bit
 * vector records compression state so preloads of uncompressed
 * registers never touch compressed lines; a small internal cache holds
 * recently used compressed lines.
 */

#ifndef REGLESS_REGLESS_COMPRESSOR_HH
#define REGLESS_REGLESS_COMPRESSOR_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "common/stats.hh"
#include "common/types.hh"
#include "compiler/region.hh"
#include "ir/instruction.hh"
#include "mem/memory_system.hh"
#include "regless/regless_config.hh"

namespace regless::staging
{

/** Value patterns the compressor recognises. */
enum class Pattern : std::uint8_t
{
    None,        ///< incompressible
    Constant,    ///< all lanes equal
    Stride1,     ///< lane i = base + i
    Stride4,     ///< lane i = base + 4 i
    HalfStride1, ///< independent stride-1 per half warp
    HalfStride4, ///< independent stride-4 per half warp
};

/** One shard's compressor. */
class Compressor
{
  public:
    /** Outcome of routing a preload through the compressor. */
    struct PreloadResult
    {
        /** False when the L1 port was busy; retry next cycle. */
        bool accepted = true;
        /** True when the register was stored compressed. */
        bool wasCompressed = false;
        /** True when it decompressed from the internal cache. */
        bool cacheHit = false;
        Cycle ready = 0;
        mem::MemSource source = mem::MemSource::L1;
    };

    /**
     * @param name Stats prefix.
     * @param config Compressor parameters.
     * @param mem Shared memory hierarchy (for line fetch/flush).
     * @param compressed_base Base address of the compressed space.
     * @param num_warps Warps per SM (for the register index layout).
     */
    Compressor(std::string name, const CompressorConfig &config,
               mem::MemorySystem &mem, Addr compressed_base,
               unsigned num_warps);

    /** Classify @a value (pure; exposed for tests and benches). */
    static Pattern matchPattern(const ir::LaneValues &value);

    /** Outcome of offering a dirty eviction to the compressor. */
    struct EvictResult
    {
        /**
         * The value compressed (stored internally, flushed lazily);
         * when false the caller must write the full line to L1.
         */
        bool compressed = false;
        /** A compile-time proven encoding was applied. */
        bool staticHit = false;
        /**
         * The value escaped its compile-time proven range: the static
         * analysis (or a mutated annotation) is unsound for it.
         */
        bool unsound = false;
    };

    /**
     * Enable static/hybrid compression against the compiled kernel's
     * proven-encoding table (indexed by RegId; may be null or short —
     * missing entries behave as StaticEncoding::None). The table must
     * outlive the compressor.
     */
    void setStaticEncodings(
        CompressionMode mode,
        const std::vector<compiler::StaticEncoding> *encodings)
    {
        _mode = mode;
        _encodings = encodings;
    }

    /** Try to absorb a dirty eviction. */
    EvictResult compressEvict(WarpId warp, RegId reg,
                              const ir::LaneValues &value, Cycle now);

    /**
     * Route a preload. Checks the bit vector; for compressed registers
     * serves from the internal cache or fetches the compressed line.
     * For uncompressed registers returns wasCompressed = false and the
     * caller fetches the full line from L1.
     */
    PreloadResult preload(WarpId warp, RegId reg, Cycle now);

    /** Invalidating read / cache invalidation: forget the register. */
    void invalidate(WarpId warp, RegId reg);

    /** Bit-vector check (no latency accounting). */
    bool isCompressed(WarpId warp, RegId reg) const;

    /** Flush at most one dirty cached line to L1 (background work). */
    void tick(Cycle now);

    /**
     * Dirty lines still queued for write-back. While true, tick() has
     * per-cycle observable work, so the cycle-skip engine must not
     * collapse cycles over this shard.
     */
    bool flushPending() const { return !_flushQueue.empty(); }

    /** Extra latency charged on top of a compressed preload. */
    Cycle hitLatency() const { return _cfg.hitLatency; }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    std::uint32_t
    regIndex(WarpId warp, RegId reg) const
    {
        return static_cast<std::uint32_t>(reg) * _numWarps + warp;
    }

    std::uint32_t
    lineOf(WarpId warp, RegId reg) const
    {
        return regIndex(warp, reg) / _cfg.regsPerLine;
    }

    Addr
    lineAddr(std::uint32_t line) const
    {
        return _compressedBase + static_cast<Addr>(line) * 128;
    }

    /** Install @a line in the cache; may queue a dirty victim flush. */
    void installLine(std::uint32_t line, bool dirty);

    struct CacheEntry
    {
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    CompressorConfig _cfg;
    mem::MemorySystem &_mem;
    Addr _compressedBase;
    unsigned _numWarps;
    CompressionMode _mode = CompressionMode::Dynamic;
    /** Kernel-wide proven encodings, or null in dynamic mode. */
    const std::vector<compiler::StaticEncoding> *_encodings = nullptr;
    /** Registers currently stored compressed. */
    std::unordered_set<std::uint32_t> _bitVector;
    /** Internal compressed-line cache. */
    std::unordered_map<std::uint32_t, CacheEntry> _cache;
    /** Dirty lines waiting for an L1 port slot. */
    std::list<std::uint32_t> _flushQueue;
    std::uint64_t _lruCounter = 0;
    StatGroup _stats;
    Counter &_matches;
    Counter &_misses;
    Counter &_staticHits;
    Counter &_staticUnsound;
    Counter &_cacheHits;
    Counter &_cacheMisses;
    Counter &_lineFetches;
    Counter &_lineFlushes;
    std::array<Counter *, 6> _patternCounts;
};

} // namespace regless::staging

#endif // REGLESS_REGLESS_COMPRESSOR_HH
