/**
 * @file
 * Capacity manager (CM), paper §5.1 and Figure 9.
 *
 * One CM per warp scheduler. It owns a warp stack of inactive warps
 * and per-warp state machines (inactive -> preloading -> active ->
 * draining -> inactive). Each cycle it tries to activate the top
 * stack warp (reserving per-bank OSU lines for the warp's next
 * region), drains preload and invalidation queues through the
 * compressor and L1, and retires draining warps once their last
 * writes land. Only warps in the active state may issue instructions.
 */

#ifndef REGLESS_REGLESS_CAPACITY_MANAGER_HH
#define REGLESS_REGLESS_CAPACITY_MANAGER_HH

#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "arch/stall.hh"
#include "arch/warp.hh"
#include "common/fault_injector.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "compiler/compiler.hh"
#include "mem/memory_system.hh"
#include "regless/compressor.hh"
#include "regless/operand_staging_unit.hh"
#include "regless/regless_config.hh"

namespace regless::staging
{

class ShadowChecker;

/** Figure 9 warp states. */
enum class CmState : std::uint8_t
{
    Inactive,
    Preloading,
    Active,
    Draining,
    Done,
};

/** One warp scheduler's capacity manager. */
class CapacityManager
{
  public:
    /** Accessor for a warp's architectural state (PC, status, values). */
    using WarpSource = std::function<const arch::Warp &(WarpId)>;

    /**
     * @param name Stats prefix.
     * @param shard_warps Warps supervised by this CM's scheduler.
     * @param ck Compiled kernel with region annotations.
     * @param osu This shard's staging unit.
     * @param compressor This shard's compressor (null disables the
     *        compressor, the paper's ablation in Figure 16).
     * @param mem Shared memory hierarchy.
     * @param cfg RegLess configuration.
     * @param num_warps Warps per SM (register address layout).
     */
    CapacityManager(std::string name, std::vector<WarpId> shard_warps,
                    const compiler::CompiledKernel &ck,
                    OperandStagingUnit &osu, Compressor *compressor,
                    mem::MemorySystem &mem, const ReglessConfig &cfg,
                    unsigned num_warps);

    /** Must be called before the first tick. */
    void setWarpSource(WarpSource ws) { _warpOf = std::move(ws); }

    /** Attach the dynamic staging-state checker (null disables). */
    void setShadow(ShadowChecker *shadow) { _shadow = shadow; }

    /** Attach a fault injector (null = no faults, the default). */
    void setFaultInjector(FaultInjector *injector)
    {
        _faults = injector;
    }

    /** Per-cycle work: queues, drains, activation. */
    void tick(Cycle now);

    /**
     * Earliest cycle >= @a from at which tick() could do anything
     * observable. Returns @a from while any warp has queued preloads
     * or invalidations, or the compressor has flushes pending (those
     * paths count tag lookups and retry ports every cycle); otherwise
     * the nearest preload-ready or drain-end cycle; otherwise never.
     */
    Cycle nextEventCycle(Cycle from) const;

    /**
     * Cycles [@a from, @a from + @a n) were skipped: bulk-apply the
     * unconditional per-cycle bookkeeping those ticks would have done
     * (currently just the blocked-activation counter, which charges
     * one cycle per tick while the top stacked warp does not fit).
     */
    void onCyclesSkipped(Cycle from, Cycle n);

    /** Only active warps whose PC is inside their region may issue. */
    bool canIssue(const arch::Warp &warp, Cycle now) const;

    /**
     * Why canIssue last refused @a warp (stall attribution): waiting
     * for activation (CmNotStaged), activation blocked on OSU space
     * (CmNoCapacity), preloads blocked on a bank port
     * (OsuBankConflict), or preload data in flight (MemPending).
     */
    arch::StallCause blockCause(WarpId warp) const
    {
        return ctx(warp).blockCause;
    }

    /** Observer called at every region activation (tracing). */
    using ActivationHook =
        std::function<void(WarpId, compiler::RegionId, Cycle)>;
    void setActivationHook(ActivationHook hook)
    {
        _onActivate = std::move(hook);
    }

    /** Process annotations and region boundaries for an issue. */
    void onIssue(const arch::Warp &warp, Pc pc,
                 const ir::Instruction &insn, Cycle now, Cycle writeback);

    /** Kernel exit: release the warp's staging resources. */
    void onWarpFinished(const arch::Warp &warp, Cycle now);

    CmState state(WarpId warp) const { return ctx(warp).state; }

    /** Outstanding reserved-but-unallocated lines in @a bank. */
    int reservedFuture(unsigned bank) const
    {
        return _reservedFuture.at(bank);
    }

    /** Remaining allocation budget of @a warp in @a bank. */
    int warpBudget(WarpId warp, unsigned bank) const
    {
        return ctx(warp).budget.at(bank);
    }

    /** Current region of @a warp (invalidRegion when inactive). */
    compiler::RegionId warpRegion(WarpId warp) const
    {
        return ctx(warp).region;
    }

    /** Pending (not yet issued) preloads of @a warp's region. */
    std::size_t pendingPreloads(WarpId warp) const
    {
        return ctx(warp).preloads.size();
    }

    /** Region activations so far (a forward-progress event). */
    std::uint64_t activations() const { return _activations.value(); }

    /** @name Multi-tenant hooks (DESIGN.md §16). */
    /// @{

    /**
     * Admission gate consulted before a region activation commits
     * @a lines new OSU-line reservations. Under multi-tenant operation
     * the TenantArbiter sits here; a refusal blocks the activation
     * exactly like an out-of-space condition (CmNoCapacity), retried
     * every cycle.
     */
    using AdmissionGate = std::function<bool(unsigned lines)>;
    void setAdmissionGate(AdmissionGate gate)
    {
        _admissionGate = std::move(gate);
    }

    /**
     * Begin suspending: stop starting new region activations.
     * In-flight regions (preloading/active/draining) run to their
     * natural boundary. Idempotent.
     */
    void requestSuspend();

    /**
     * Every supervised warp parked at a region boundary (Inactive or
     * Done) and no compressor flushes outstanding?
     */
    bool suspendComplete() const;

    /**
     * Hand off the architected state: write back every staged line
     * that has no current backing copy, then release all lines. Only
     * legal once suspendComplete(); afterwards linesInUse() == 0.
     */
    void finalizeSuspend(Cycle now);

    /** Allow activations again after a suspension. Idempotent. */
    void resume();

    /**
     * Lines currently held against the shared physical pool: Owned
     * lines of in-flight regions plus outstanding reserved-future
     * lines. Evictable lines are excluded — they are reclaimable on
     * demand, so the arbiter treats them as free capacity.
     */
    std::uint64_t linesInUse() const;
    /// @}

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /** L1 transactions attributable to RegLess (Figures 3 and 18). */
    WindowedSeries &l1Series() { return _l1Series; }

    /** @name Dynamic region statistics (Figure 19, Table 2). */
    /// @{
    Distribution &regionPreloads() { return _regionPreloads; }
    Distribution &regionLive() { return _regionLive; }
    Distribution &regionCycles() { return _regionCycles; }
    Distribution &regionInsns() { return _regionInsns; }
    /// @}

  private:
    struct WarpCtx
    {
        CmState state = CmState::Inactive;
        compiler::RegionId region = compiler::invalidRegion;
        std::deque<compiler::Preload> preloads;
        std::deque<RegId> invalidations;
        Cycle preloadReady = 0;
        Cycle activatedAt = 0;
        Cycle drainUntil = 0;
        unsigned preloadCount = 0;
        /** New lines this region may still allocate, per bank. */
        std::array<int, osuBanks> budget{};
        std::vector<RegId> deferredErase;
        std::vector<RegId> deferredEvict;
        /** Last reason canIssue would refuse this warp. */
        arch::StallCause blockCause = arch::StallCause::CmNotStaged;
    };

    WarpCtx &ctx(WarpId warp);
    const WarpCtx &ctx(WarpId warp) const;

    Addr regAddr(WarpId warp, RegId reg) const;

    /** Handle a reclaim's write-back duty (compressor or L1). */
    void handleReclaim(const OperandStagingUnit::Reclaim &reclaim,
                       Cycle now);

    /** Write a line's value to the backing path (compressor or L1). */
    void writeBackLine(WarpId warp, RegId reg, Cycle now);

    /** Allocate an owned line, consuming the warp's budget. */
    void allocateLine(WarpCtx &wc, WarpId warp, RegId reg, bool dirty,
                      Cycle now);

    /** Return a mid-region released line to the region's budget. */
    void creditLine(WarpCtx &wc, WarpId warp, RegId reg);

    /** Forget a register's backing-store copy (invalidating read). */
    void invalidateBacking(WarpId warp, RegId reg, bool charge_l1,
                           Cycle now);

    void processInvalidations(WarpCtx &wc, WarpId warp, Cycle now);
    void processPreloads(WarpCtx &wc, WarpId warp, Cycle now,
                         std::array<bool, osuBanks> &bank_busy);
    void finishDrain(WarpCtx &wc, WarpId warp, Cycle now);
    void sampleRegionStats(const WarpCtx &wc, Cycle now);
    void tryActivate(Cycle now);
    unsigned preloadingWarps() const;

    std::vector<WarpId> _shardWarps;
    const compiler::CompiledKernel &_ck;
    OperandStagingUnit &_osu;
    Compressor *_compressor;
    mem::MemorySystem &_mem;
    ReglessConfig _cfg;
    unsigned _numWarps;
    WarpSource _warpOf;
    ShadowChecker *_shadow = nullptr;
    FaultInjector *_faults = nullptr;
    ActivationHook _onActivate;

    /**
     * Per-warp state, indexed by global warp id (structure-of-arrays
     * layout: the issue path and the skip probe scan this flat vector
     * instead of chasing hash buckets). `_supervised[w]` guards
     * against lookups for warps this CM does not own.
     */
    std::vector<WarpCtx> _ctx;
    std::vector<std::uint8_t> _supervised;
    /** Did the last tick charge a blocked activation? (skip replay) */
    bool _activationWasBlocked = false;
    /**
     * Last activation attempt was refused by the admission gate. The
     * gate's answer depends on *other* tenants' usage, invisible to
     * this CM's event horizon, so nextEventCycle() must pin the SM to
     * cycle granularity while set.
     */
    bool _gateBlocked = false;
    /** Activations are suspended (region-boundary preemption). */
    bool _suspended = false;
    AdmissionGate _admissionGate;
    /** Banks counted gated by the last tick (skip replay). */
    unsigned _lastGatedBanks = 0;
    std::deque<WarpId> _stack; ///< front = top (last to have executed)
    std::array<int, osuBanks> _reservedFuture{};
    /** Registers with a live copy in the compressor/L1/L2 path. */
    std::unordered_set<std::uint32_t> _inBackingStore;
    /** Subset whose copy is an uncompressed L1/L2 line. */
    std::unordered_set<std::uint32_t> _inL1;

    StatGroup _stats;
    WindowedSeries _l1Series;
    Distribution _regionPreloads;
    Distribution _regionLive;
    Distribution _regionCycles;
    Distribution _regionInsns;
    Counter &_activations;
    Counter &_preloadSrcOsu;
    Counter &_preloadSrcCompressor;
    Counter &_preloadSrcL1;
    Counter &_preloadSrcL2Dram;
    Counter &_l1PreloadReqs;
    Counter &_l1StoreReqs;
    Counter &_l1InvalidateReqs;
    Counter &_activationBlocked;
    Counter &_metadataInsns;
    Counter &_gatedBankCycles;
};

} // namespace regless::staging

#endif // REGLESS_REGLESS_CAPACITY_MANAGER_HH
