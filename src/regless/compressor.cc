#include "regless/compressor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compiler/value_range.hh"

namespace regless::staging
{

namespace
{

/** Check lanes [lo, hi) for value[i] = value[lo] + (i - lo) * stride. */
bool
isStriding(const ir::LaneValues &v, unsigned lo, unsigned hi,
           std::uint32_t stride)
{
    for (unsigned i = lo + 1; i < hi; ++i) {
        if (v[i] != v[lo] + (i - lo) * stride)
            return false;
    }
    return true;
}

} // namespace

Compressor::Compressor(std::string name, const CompressorConfig &config,
                       mem::MemorySystem &mem, Addr compressed_base,
                       unsigned num_warps)
    : _cfg(config),
      _mem(mem),
      _compressedBase(compressed_base),
      _numWarps(num_warps),
      _stats(std::move(name)),
      _matches(_stats.counter("matches")),
      _misses(_stats.counter("incompressible")),
      _staticHits(_stats.counter("static_hits")),
      _staticUnsound(_stats.counter("static_unsound")),
      _cacheHits(_stats.counter("cache_hits")),
      _cacheMisses(_stats.counter("cache_misses")),
      _lineFetches(_stats.counter("line_fetches")),
      _lineFlushes(_stats.counter("line_flushes")),
      _patternCounts{&_stats.counter("pattern_none"),
                     &_stats.counter("pattern_constant"),
                     &_stats.counter("pattern_stride1"),
                     &_stats.counter("pattern_stride4"),
                     &_stats.counter("pattern_half_stride1"),
                     &_stats.counter("pattern_half_stride4")}
{
}

Pattern
Compressor::matchPattern(const ir::LaneValues &value)
{
    if (isStriding(value, 0, warpSize, 0))
        return Pattern::Constant;
    if (isStriding(value, 0, warpSize, 1))
        return Pattern::Stride1;
    if (isStriding(value, 0, warpSize, 4))
        return Pattern::Stride4;
    constexpr unsigned half = warpSize / 2;
    if (isStriding(value, 0, half, 1) &&
        isStriding(value, half, warpSize, 1)) {
        return Pattern::HalfStride1;
    }
    if (isStriding(value, 0, half, 4) &&
        isStriding(value, half, warpSize, 4)) {
        return Pattern::HalfStride4;
    }
    return Pattern::None;
}

void
Compressor::installLine(std::uint32_t line, bool dirty)
{
    auto it = _cache.find(line);
    if (it != _cache.end()) {
        it->second.dirty |= dirty;
        it->second.lruStamp = ++_lruCounter;
        return;
    }
    if (_cache.size() >= _cfg.cacheLines) {
        // Evict LRU; dirty victims queue for a lazy flush.
        auto victim = _cache.begin();
        for (auto cit = _cache.begin(); cit != _cache.end(); ++cit) {
            if (cit->second.lruStamp < victim->second.lruStamp)
                victim = cit;
        }
        if (victim->second.dirty)
            _flushQueue.push_back(victim->first);
        _cache.erase(victim);
    }
    CacheEntry entry;
    entry.dirty = dirty;
    entry.lruStamp = ++_lruCounter;
    _cache.emplace(line, entry);
}

Compressor::EvictResult
Compressor::compressEvict(WarpId warp, RegId reg,
                          const ir::LaneValues &value, Cycle now)
{
    (void)now;
    EvictResult result;

    // Static/hybrid: consult the compile-time proven encoding before
    // (or instead of) the runtime matcher. The guard against the
    // actual lanes makes an unsound proof cost compression only.
    if (_mode != CompressionMode::Dynamic) {
        compiler::StaticEncoding enc = compiler::StaticEncoding::None;
        if (_encodings && reg < _encodings->size())
            enc = (*_encodings)[reg];
        if (enc != compiler::StaticEncoding::None) {
            if (compiler::encodingHolds(enc, value)) {
                ++_staticHits;
                ++_matches;
                _bitVector.insert(regIndex(warp, reg));
                installLine(lineOf(warp, reg), /*dirty=*/true);
                result.compressed = true;
                result.staticHit = true;
                return result;
            }
            // The value escaped its proven range.
            ++_staticUnsound;
            result.unsound = true;
            if (_mode == CompressionMode::Static) {
                ++_misses;
                _bitVector.erase(regIndex(warp, reg));
                return result;
            }
            // Hybrid falls through to the matcher.
        } else if (_mode == CompressionMode::Static) {
            // Nothing proven and no matcher in static mode.
            ++_misses;
            _bitVector.erase(regIndex(warp, reg));
            return result;
        }
    }

    Pattern pattern = matchPattern(value);
    if (pattern != Pattern::None &&
        !((_cfg.patternMask >> static_cast<unsigned>(pattern)) & 1u)) {
        pattern = Pattern::None; // class disabled by configuration
    }
    ++*_patternCounts[static_cast<unsigned>(pattern)];
    if (pattern == Pattern::None) {
        ++_misses;
        _bitVector.erase(regIndex(warp, reg));
        return result;
    }
    ++_matches;
    _bitVector.insert(regIndex(warp, reg));
    installLine(lineOf(warp, reg), /*dirty=*/true);
    result.compressed = true;
    return result;
}

Compressor::PreloadResult
Compressor::preload(WarpId warp, RegId reg, Cycle now)
{
    PreloadResult result;
    if (!isCompressed(warp, reg)) {
        result.wasCompressed = false;
        result.ready = now + _cfg.checkLatency;
        return result;
    }
    result.wasCompressed = true;
    std::uint32_t line = lineOf(warp, reg);
    auto it = _cache.find(line);
    if (it != _cache.end()) {
        ++_cacheHits;
        it->second.lruStamp = ++_lruCounter;
        result.cacheHit = true;
        result.ready = now + _cfg.checkLatency + _cfg.hitLatency;
        return result;
    }
    // Fetch the compressed line from the memory system.
    ++_cacheMisses;
    if (!_mem.l1PortFree(now)) {
        result.accepted = false;
        return result;
    }
    mem::MemAccessResult mr = _mem.access(
        lineAddr(line), /*is_write=*/false, mem::MemSpace::Register, now);
    if (!mr.accepted) {
        result.accepted = false;
        return result;
    }
    ++_lineFetches;
    installLine(line, /*dirty=*/false);
    // The bit-vector check precedes the fetch, so a miss pays
    // checkLatency just like the hit and not-compressed paths (it was
    // formerly dropped here, modelling misses as cheaper than hits).
    result.ready = mr.readyCycle + _cfg.checkLatency + _cfg.hitLatency;
    result.source = mr.source;
    return result;
}

void
Compressor::invalidate(WarpId warp, RegId reg)
{
    _bitVector.erase(regIndex(warp, reg));
    // The line may hold other registers; it stays cached.
}

bool
Compressor::isCompressed(WarpId warp, RegId reg) const
{
    return _bitVector.count(regIndex(warp, reg)) > 0;
}

void
Compressor::tick(Cycle now)
{
    if (_flushQueue.empty() || !_mem.l1PortFree(now))
        return;
    std::uint32_t line = _flushQueue.front();
    mem::MemAccessResult mr = _mem.access(
        lineAddr(line), /*is_write=*/true, mem::MemSpace::Register, now);
    if (!mr.accepted)
        return;
    ++_lineFlushes;
    _flushQueue.pop_front();
}

} // namespace regless::staging
