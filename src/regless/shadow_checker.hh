/**
 * @file
 * Dynamic staging-state shadow checker.
 *
 * The runtime half of the staging verifier (the static half is
 * compiler/staging_checker.hh). The simulator's functional values live
 * in the warps, so a staging bug — a value erased, invalidated, or
 * reclaimed while a later instruction still needs it — never corrupts
 * results; it would only surface on real hardware. This checker makes
 * such bugs observable in simulation: it shadows every OSU and
 * backing-store transition and records exactly which (warp, register)
 * values have been *lost* (no staged copy and no backing copy
 * anywhere). Reads, preload fetches, and region drains are then
 * cross-checked against that lost set and against OSU residency, and
 * each violated invariant is reported as a compiler::Finding with an
 * `rt-` code. Enabled by ReglessConfig::runtimeCheck; see DESIGN.md §8.
 */

#ifndef REGLESS_REGLESS_SHADOW_CHECKER_HH
#define REGLESS_REGLESS_SHADOW_CHECKER_HH

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "compiler/compiler.hh"
#include "compiler/finding.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "regless/operand_staging_unit.hh"

namespace regless::staging
{

/**
 * One shadow checker per SM, shared by the SM's capacity managers
 * (CM callbacks are single-threaded within an SM).
 */
class ShadowChecker
{
  public:
    explicit ShadowChecker(const compiler::CompiledKernel &ck);

    /** @name Event hooks, called by CapacityManager. */
    /// @{

    /** An OSU line was erased (annotation or stale-output cleanup). */
    void onErase(WarpId warp, RegId reg);

    /** The destination of an issued instruction was written. */
    void onWrite(WarpId warp, RegId reg);

    /**
     * A clean (no write-back) victim was reclaimed. @a in_backing is
     * whether the CM still tracks a backing-store copy of the value.
     */
    void onCleanReclaim(WarpId warp, RegId reg, bool in_backing);

    /**
     * The backing-store copy was dropped (invalidating read or cache
     * invalidation). @a resident is OSU residency at that moment.
     */
    void onBackingInvalidate(WarpId warp, RegId reg, bool resident);

    /** A preload missed the OSU and fetches from the backing path. */
    void onPreloadFetch(WarpId warp, RegId reg,
                        compiler::RegionId region);

    /** An instruction issued: check its reads, then apply its write. */
    void onIssue(WarpId warp, Pc pc, const ir::Instruction &insn,
                 const OperandStagingUnit &osu,
                 compiler::RegionId region);

    /**
     * A region finished draining (deferred erases/evicts applied):
     * any line the warp still owns leaked past its region.
     */
    void onDrainEnd(WarpId warp, const OperandStagingUnit &osu,
                    compiler::RegionId region, Pc end_pc);

    /**
     * An evicted value escaped its compile-time proven encoding: the
     * static value-range analysis (or a mutated annotation) claimed a
     * range the runtime value violates. The compressor's lane guard
     * already kept the data safe; this records the unsound proof.
     */
    void onEncodingUnsound(WarpId warp, RegId reg);

    /** The warp exited the kernel; all its values are dead. */
    void onWarpDropped(WarpId warp);

    /// @}

    const std::vector<compiler::Finding> &violations() const
    {
        return _violations;
    }

  private:
    enum class Loss : std::uint8_t { Erased, Invalidated };

    static std::uint32_t
    key(WarpId warp, RegId reg)
    {
        return (static_cast<std::uint32_t>(warp) << 16) | reg;
    }

    void flag(const char *code, compiler::RegionId region, Pc pc,
              RegId reg, std::string message);

    const compiler::CompiledKernel &_ck;
    ir::CfgAnalysis _cfg;
    ir::Liveness _live;

    /** Values with no staged and no backing copy, by loss kind. */
    std::unordered_map<std::uint32_t, Loss> _lost;

    /**
     * Values whose backing-store line still matches the current
     * architectural value (fetched and not yet rewritten or
     * invalidated). The CM's _inBackingStore only tracks copies
     * RegLess wrote back; this covers the pristine original.
     */
    std::set<std::uint32_t> _backingFresh;

    /**
     * Leaked lines already reported. A leak persists across the
     * warp's later drains; report it once, at the region that
     * caused it.
     */
    std::set<std::uint32_t> _leakReported;

    /** Dedup key: one report per (code, region, pc, reg). */
    std::set<std::tuple<std::string, compiler::RegionId, Pc, RegId>>
        _seen;
    std::vector<compiler::Finding> _violations;
};

} // namespace regless::staging

#endif // REGLESS_REGLESS_SHADOW_CHECKER_HH
