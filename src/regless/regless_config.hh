/**
 * @file
 * RegLess hardware configuration.
 */

#ifndef REGLESS_REGLESS_REGLESS_CONFIG_HH
#define REGLESS_REGLESS_REGLESS_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace regless::staging
{

/** Victim preference when the OSU must reclaim a line (§5.2). */
enum class VictimOrder
{
    FreeCleanDirty, ///< paper order: free, then clean, then dirty
    DirtyFirst,     ///< ablation: prefer dirty victims
};

/**
 * How the eviction compressor picks a representation (DESIGN.md §14).
 * Static and hybrid consult the compile-time proven encoding table
 * from the value-range analysis; every static decision is still
 * guarded against the actual lanes, so an unsound proof can only cost
 * compression, never correctness.
 */
enum class CompressionMode : std::uint8_t
{
    Dynamic = 0, ///< runtime pattern matcher only (paper §5.3)
    Static,      ///< compile-time proven encodings only, no matcher
    Hybrid,      ///< proven encoding first, matcher as fallback
};

/** Compressor parameters (§5.3). */
struct CompressorConfig
{
    /** Internal compressed-line cache entries per shard. */
    unsigned cacheLines = 12;
    /** Compressed registers per 128-byte backing line. */
    unsigned regsPerLine = 15;
    /** Extra preload latency when the value decompresses from cache. */
    Cycle hitLatency = 2;
    /** Bit-vector check latency on every non-compressed preload. */
    Cycle checkLatency = 1;

    /**
     * Enabled pattern classes, as a bit per Pattern enum value
     * (bit 1 = Constant .. bit 5 = HalfStride4). Default: all six
     * paper patterns. Used by the compressor ablation study.
     */
    unsigned patternMask = 0x3e;
};

/** Whole-RegLess parameters. */
struct ReglessConfig
{
    /** OSU entries (128B registers) across the whole SM. */
    unsigned osuEntriesPerSm = 512;
    /** One shard per warp scheduler. */
    unsigned numShards = 4;
    /** Warps a shard may hold in the preloading state at once. */
    unsigned preloadSlotsPerShard = 2;
    /** Enable the eviction compressor. */
    bool compressorEnabled = true;
    CompressorConfig compressor;
    /** Compressed-representation selection policy. */
    CompressionMode compressionMode = CompressionMode::Dynamic;
    /**
     * Power-gate OSU banks that hold no lines and have no outstanding
     * reservation: the static per-region footprint bound proves such a
     * bank stays empty until the next activation can touch it, so its
     * leakage is discounted in the energy model (DESIGN.md §14).
     */
    bool bankGating = true;
    /** Activation order: LIFO warp stack (paper) vs FIFO (ablation). */
    bool fifoActivation = false;
    VictimOrder victimOrder = VictimOrder::FreeCleanDirty;
    /** Base of the uncompressed register backing space. */
    Addr regBase = 0x4000'0000;
    /** Base of the compressed register backing space. */
    Addr compressedBase = 0x6000'0000;
    /**
     * Enable the dynamic staging-state shadow checker (DESIGN.md §8).
     * Off by default: it is a verification aid, not modelled hardware.
     */
    bool runtimeCheck = false;
};

} // namespace regless::staging

#endif // REGLESS_REGLESS_REGLESS_CONFIG_HH
