#include "regless/operand_staging_unit.hh"

#include "common/logging.hh"

namespace regless::staging
{

OperandStagingUnit::OperandStagingUnit(std::string name,
                                       unsigned total_lines,
                                       VictimOrder order)
    : _order(order),
      _stats(std::move(name)),
      _reads(_stats.counter("reads")),
      _writes(_stats.counter("writes")),
      _tagLookups(_stats.counter("tag_lookups")),
      _reclaims(_stats.counter("reclaims")),
      _dirtyReclaims(_stats.counter("dirty_reclaims"))
{
    if (total_lines % osuBanks != 0)
        fatal("OSU lines (", total_lines, ") must divide into ", osuBanks,
              " banks");
    _linesPerBank = total_lines / osuBanks;
    if (_linesPerBank == 0)
        fatal("OSU too small: zero lines per bank");
    for (auto &counts : _counts)
        counts.free = _linesPerBank;
}

OperandStagingUnit::BankCounts
OperandStagingUnit::bankCounts(unsigned bank) const
{
    return _counts.at(bank);
}

bool
OperandStagingUnit::present(WarpId warp, RegId reg) const
{
    const auto &bank = _banks[bankOf(warp, reg)];
    return bank.find(key(warp, reg)) != bank.end();
}

bool
OperandStagingUnit::presentEvictable(WarpId warp, RegId reg) const
{
    const auto &bank = _banks[bankOf(warp, reg)];
    auto it = bank.find(key(warp, reg));
    return it != bank.end() && it->second.state != LineState::Owned;
}

bool
OperandStagingUnit::isDirty(WarpId warp, RegId reg) const
{
    const auto &bank = _banks[bankOf(warp, reg)];
    auto it = bank.find(key(warp, reg));
    return it != bank.end() && it->second.dirty;
}

void
OperandStagingUnit::claim(WarpId warp, RegId reg)
{
    unsigned b = bankOf(warp, reg);
    auto it = _banks[b].find(key(warp, reg));
    if (it == _banks[b].end())
        panic("OSU claim of absent entry w", warp, " r", reg);
    Entry &entry = it->second;
    if (entry.state == LineState::Owned)
        return;
    if (entry.state == LineState::EvictClean)
        --_counts[b].clean;
    else
        --_counts[b].dirty;
    entry.state = LineState::Owned;
    entry.lruStamp = ++_lruCounter;
    ++_counts[b].owned;
}

OperandStagingUnit::Reclaim
OperandStagingUnit::allocate(WarpId warp, RegId reg, bool dirty)
{
    unsigned b = bankOf(warp, reg);
    auto &bank = _banks[b];
    if (bank.find(key(warp, reg)) != bank.end())
        panic("OSU double allocation of w", warp, " r", reg);

    Reclaim reclaim;
    if (_counts[b].free == 0) {
        reclaim.needed = true;
        ++_reclaims;
        // Choose a victim state by policy, then LRU within it.
        LineState prefer = LineState::EvictClean;
        LineState fallback = LineState::EvictDirty;
        if (_order == VictimOrder::DirtyFirst ||
            (_counts[b].clean == 0)) {
            prefer = LineState::EvictDirty;
            fallback = LineState::EvictClean;
        }
        if (_order == VictimOrder::DirtyFirst && _counts[b].dirty == 0) {
            prefer = LineState::EvictClean;
            fallback = LineState::EvictDirty;
        }
        auto pick = [&](LineState state) {
            auto best = bank.end();
            for (auto it = bank.begin(); it != bank.end(); ++it) {
                if (it->second.state != state)
                    continue;
                if (best == bank.end() ||
                    it->second.lruStamp < best->second.lruStamp) {
                    best = it;
                }
            }
            return best;
        };
        auto victim = pick(prefer);
        if (victim == bank.end())
            victim = pick(fallback);
        if (victim == bank.end())
            panic("OSU bank ", b, " full of owned lines; the capacity "
                  "manager over-committed");
        reclaim.victimWarp =
            static_cast<WarpId>(victim->first >> 16);
        reclaim.victimReg = static_cast<RegId>(victim->first & 0xffff);
        if (victim->second.state == LineState::EvictDirty) {
            reclaim.writeback = true;
            ++_dirtyReclaims;
            --_counts[b].dirty;
        } else {
            --_counts[b].clean;
        }
        bank.erase(victim);
        --_occupied;
    } else {
        --_counts[b].free;
    }

    Entry entry;
    entry.state = LineState::Owned;
    entry.dirty = dirty;
    entry.lruStamp = ++_lruCounter;
    bank.emplace(key(warp, reg), entry);
    ++_counts[b].owned;
    ++_occupied;
    if (reclaim.needed) {
        // The freed line was consumed by this allocation; the free
        // count is unchanged (victim out, new entry in).
    }
    return reclaim;
}

void
OperandStagingUnit::erase(WarpId warp, RegId reg)
{
    unsigned b = bankOf(warp, reg);
    auto it = _banks[b].find(key(warp, reg));
    if (it == _banks[b].end())
        panic("OSU erase of absent entry w", warp, " r", reg);
    switch (it->second.state) {
      case LineState::Owned:
        --_counts[b].owned;
        break;
      case LineState::EvictClean:
        --_counts[b].clean;
        break;
      case LineState::EvictDirty:
        --_counts[b].dirty;
        break;
    }
    ++_counts[b].free;
    _banks[b].erase(it);
    --_occupied;
}

void
OperandStagingUnit::markEvictable(WarpId warp, RegId reg)
{
    unsigned b = bankOf(warp, reg);
    auto it = _banks[b].find(key(warp, reg));
    if (it == _banks[b].end())
        panic("OSU evict-mark of absent entry w", warp, " r", reg);
    Entry &entry = it->second;
    if (entry.state != LineState::Owned)
        return;
    --_counts[b].owned;
    if (entry.dirty) {
        entry.state = LineState::EvictDirty;
        ++_counts[b].dirty;
    } else {
        entry.state = LineState::EvictClean;
        ++_counts[b].clean;
    }
    entry.lruStamp = ++_lruCounter;
}

void
OperandStagingUnit::recordWrite(WarpId warp, RegId reg)
{
    unsigned b = bankOf(warp, reg);
    auto it = _banks[b].find(key(warp, reg));
    if (it == _banks[b].end())
        panic("OSU write to absent entry w", warp, " r", reg);
    it->second.dirty = true;
    it->second.lruStamp = ++_lruCounter;
}

std::vector<OperandStagingUnit::EntryInfo>
OperandStagingUnit::bankEntries(unsigned bank) const
{
    std::vector<EntryInfo> out;
    for (const auto &[k, entry] : _banks.at(bank)) {
        out.push_back(EntryInfo{static_cast<WarpId>(k >> 16),
                                static_cast<RegId>(k & 0xffff),
                                entry.state});
    }
    return out;
}

void
OperandStagingUnit::dropWarp(WarpId warp)
{
    for (unsigned b = 0; b < osuBanks; ++b) {
        auto &bank = _banks[b];
        for (auto it = bank.begin(); it != bank.end();) {
            if (static_cast<WarpId>(it->first >> 16) == warp) {
                switch (it->second.state) {
                  case LineState::Owned:
                    --_counts[b].owned;
                    break;
                  case LineState::EvictClean:
                    --_counts[b].clean;
                    break;
                  case LineState::EvictDirty:
                    --_counts[b].dirty;
                    break;
                }
                ++_counts[b].free;
                it = bank.erase(it);
                --_occupied;
            } else {
                ++it;
            }
        }
    }
}

} // namespace regless::staging
