/**
 * @file
 * The RegLess operand provider: four shards (one per warp scheduler),
 * each with its own capacity manager, operand staging unit, and
 * compressor, sharing the SM's single L1 port (paper Figure 8).
 */

#ifndef REGLESS_REGLESS_REGLESS_PROVIDER_HH
#define REGLESS_REGLESS_REGLESS_PROVIDER_HH

#include <memory>
#include <vector>

#include "compiler/compiler.hh"
#include "mem/memory_system.hh"
#include "regfile/register_provider.hh"
#include "regless/capacity_manager.hh"
#include "regless/compressor.hh"
#include "regless/operand_staging_unit.hh"
#include "regless/regless_config.hh"
#include "regless/shadow_checker.hh"

namespace regless::staging
{

/** Operand staging replacing the register file (Figure 1e). */
class ReglessProvider : public regfile::RegisterProvider
{
  public:
    /**
     * @param ck Compiled kernel with region annotations.
     * @param mem The SM's memory hierarchy.
     * @param cfg RegLess parameters.
     * @param num_warps Warp slots in the SM (register address layout
     *        spans the whole SM even under multi-tenant operation, so
     *        backing addresses stay globally unique).
     * @param warp_base First warp this provider serves.
     * @param warp_count Warps served, [warp_base, warp_base+count).
     */
    ReglessProvider(const compiler::CompiledKernel &ck,
                    mem::MemorySystem &mem, const ReglessConfig &cfg,
                    unsigned num_warps, WarpId warp_base,
                    unsigned warp_count);

    /** Whole-SM launch: serve every warp slot. */
    ReglessProvider(const compiler::CompiledKernel &ck,
                    mem::MemorySystem &mem, const ReglessConfig &cfg,
                    unsigned num_warps);

    /** Bind the warp-state accessor; must precede the first tick. */
    void setWarpSource(CapacityManager::WarpSource ws);

    /** Registry hook: the CMs are the warp-source consumers. */
    void
    bindWarpSource(WarpSource source) override
    {
        setWarpSource(std::move(source));
    }

    /** Registry hook: CM activations are the activation events. */
    void
    setActivationObserver(ActivationObserver observer) override
    {
        setActivationHook(std::move(observer));
    }

    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle from) const override;
    void onCyclesSkipped(Cycle from, Cycle n) override;
    bool canIssue(const arch::Warp &warp, Cycle now) override;
    arch::StallCause blockCause(const arch::Warp &warp,
                                Cycle now) const override
    {
        (void)now;
        return _cms.at(shardOf(warp.id()))->blockCause(warp.id());
    }
    /** Forward an activation observer to every shard's CM. */
    void setActivationHook(CapacityManager::ActivationHook hook)
    {
        for (auto &cm : _cms)
            cm->setActivationHook(hook);
    }
    void onIssue(const arch::Warp &warp, Pc pc,
                 const ir::Instruction &insn, Cycle now,
                 Cycle writeback) override;
    void onWarpFinished(const arch::Warp &warp, Cycle now) override;
    Cycle operandDelay(const arch::Warp &warp,
                       const ir::Instruction &insn, Cycle now) override;

    void dumpStats(std::ostream &os) const override;

    /** CM activations across shards: background forward progress. */
    std::uint64_t progressEvents() const override;

    /** Forward the injector to the CMs; deliver ProviderThrow here. */
    void setFaultInjector(FaultInjector *injector) override;

    /** @name Multi-tenant hooks (DESIGN.md §16): arbiter admission
     *  gating and the region-boundary suspend protocol, forwarded to
     *  every shard's capacity manager. */
    /// @{
    void joinTenantArbiter(regfile::TenantArbiter &arbiter,
                           unsigned tenant,
                           unsigned priority) override;
    void requestSuspend(Cycle now) override;
    bool suspendComplete() const override;
    void finalizeSuspend(Cycle now) override;
    void resume(Cycle now) override;
    std::uint64_t stagedLinesInUse() const override;
    /// @}

    unsigned numShards() const { return _cfg.numShards; }
    CapacityManager &cm(unsigned shard) { return *_cms.at(shard); }
    OperandStagingUnit &osu(unsigned shard) { return *_osus.at(shard); }
    Compressor *compressor(unsigned shard)
    {
        return _compressors.empty() ? nullptr
                                    : _compressors.at(shard).get();
    }

    const ReglessConfig &config() const { return _cfg; }

    /**
     * Dynamic staging violations seen so far (always empty unless
     * ReglessConfig::runtimeCheck is set).
     */
    std::vector<compiler::Finding>
    runtimeViolations() const override
    {
        return _shadow ? _shadow->violations()
                       : std::vector<compiler::Finding>{};
    }

    /** CM state, region, and pending preloads of @a warp. */
    void describeWarp(WarpId warp, std::ostream &os) const override;

    /** One line per OSU bank: owned/clean/dirty/free + reservations. */
    void
    describeStorage(std::vector<std::string> &out) const override;

    /** @name Aggregates across shards (Figures 3, 17, 18, 19). */
    /// @{
    std::uint64_t preloadsFrom(const char *counter_name);
    std::uint64_t l1Requests(const char *counter_name);
    double meanRegionPreloads();
    double meanRegionLive();
    double stddevRegionLive();
    double meanRegionCycles();
    double meanRegionInsns();
    std::uint64_t osuAccesses();
    std::uint64_t compressorAccesses();
    /** Sum of all shards' per-100-cycle L1 request series. */
    std::vector<double> l1SeriesPoints();
    /// @}

  private:
    unsigned shardOf(WarpId warp) const { return warp % _cfg.numShards; }

    const compiler::CompiledKernel &_ck;
    ReglessConfig _cfg;
    std::vector<std::unique_ptr<OperandStagingUnit>> _osus;
    std::vector<std::unique_ptr<Compressor>> _compressors;
    std::vector<std::unique_ptr<CapacityManager>> _cms;
    std::unique_ptr<ShadowChecker> _shadow;
    FaultInjector *_faults = nullptr;
    Cycle _tickRotation = 0;
    Counter &_bankConflicts;
};

} // namespace regless::staging

#endif // REGLESS_REGLESS_REGLESS_PROVIDER_HH
