#include "regless/regless_provider.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "regfile/tenant_arbiter.hh"

namespace regless::staging
{

ReglessProvider::ReglessProvider(const compiler::CompiledKernel &ck,
                                 mem::MemorySystem &mem,
                                 const ReglessConfig &cfg,
                                 unsigned num_warps)
    : ReglessProvider(ck, mem, cfg, num_warps, /*warp_base=*/0,
                      /*warp_count=*/num_warps)
{
}

ReglessProvider::ReglessProvider(const compiler::CompiledKernel &ck,
                                 mem::MemorySystem &mem,
                                 const ReglessConfig &cfg,
                                 unsigned num_warps, WarpId warp_base,
                                 unsigned warp_count)
    : RegisterProvider("regless"),
      _ck(ck),
      _cfg(cfg),
      _bankConflicts(_stats.counter("osu_bank_conflicts"))
{
    if (cfg.osuEntriesPerSm % cfg.numShards != 0)
        fatal("OSU entries (", cfg.osuEntriesPerSm,
              ") must divide across ", cfg.numShards, " shards");
    if (warp_base + warp_count > num_warps)
        fatal("provider warp range [", warp_base, ", ",
              warp_base + warp_count, ") exceeds ", num_warps,
              " SM warp slots");
    const unsigned lines_per_shard = cfg.osuEntriesPerSm / cfg.numShards;

    for (unsigned s = 0; s < cfg.numShards; ++s) {
        _osus.push_back(std::make_unique<OperandStagingUnit>(
            "osu" + std::to_string(s), lines_per_shard, cfg.victimOrder));
    }
    if (cfg.compressorEnabled) {
        for (unsigned s = 0; s < cfg.numShards; ++s) {
            _compressors.push_back(std::make_unique<Compressor>(
                "compressor" + std::to_string(s), cfg.compressor, mem,
                cfg.compressedBase, num_warps));
            _compressors.back()->setStaticEncodings(
                cfg.compressionMode, &ck.staticEncodings());
        }
    }
    for (unsigned s = 0; s < cfg.numShards; ++s) {
        std::vector<WarpId> shard_warps;
        for (WarpId w = warp_base; w < warp_base + warp_count; ++w) {
            if (w % cfg.numShards == s)
                shard_warps.push_back(w);
        }
        _cms.push_back(std::make_unique<CapacityManager>(
            "cm" + std::to_string(s), std::move(shard_warps), ck,
            *_osus[s],
            cfg.compressorEnabled ? _compressors[s].get() : nullptr, mem,
            cfg, num_warps));
    }
    if (cfg.runtimeCheck) {
        // One shadow per SM: CM callbacks are single-threaded within
        // an SM, and violations aggregate naturally.
        _shadow = std::make_unique<ShadowChecker>(ck);
        for (auto &cm : _cms)
            cm->setShadow(_shadow.get());
    }
}

void
ReglessProvider::setWarpSource(CapacityManager::WarpSource ws)
{
    for (auto &cm : _cms)
        cm->setWarpSource(ws);
}

void
ReglessProvider::tick(Cycle now)
{
    // Injected provider crash: raise an internal error mid-run, the
    // failure class the engine's per-job isolation must contain.
    if (_faults && _faults->fire(FaultPlan::Kind::ProviderThrow, now))
        panic("injected provider fault at cycle ", now);

    // Rotate which shard gets first crack at the shared L1 port.
    const unsigned n = _cfg.numShards;
    for (unsigned i = 0; i < n; ++i)
        _cms[(i + _tickRotation) % n]->tick(now);
    ++_tickRotation;
}

Cycle
ReglessProvider::nextEventCycle(Cycle from) const
{
    Cycle next = regfile::kNoProviderEvent;
    for (const auto &cm : _cms)
        next = std::min(next, cm->nextEventCycle(from));
    // Faults polled by tick() must still fire exactly at their trigger
    // cycle: clamp the skip target so the landing tick polls them.
    // DropDramResponse fires inside memory accesses, whose sequence a
    // skip never changes, so it needs no clamp.
    if (_faults && !_faults->fired()) {
        const FaultPlan &plan = _faults->plan();
        if (plan.kind == FaultPlan::Kind::LeakOsuSlot ||
            plan.kind == FaultPlan::Kind::ProviderThrow) {
            next = std::min(next, std::max(from, plan.triggerCycle));
        }
    }
    return next;
}

void
ReglessProvider::onCyclesSkipped(Cycle from, Cycle n)
{
    // Each skipped tick would have advanced the shard rotation once.
    _tickRotation += n;
    for (auto &cm : _cms)
        cm->onCyclesSkipped(from, n);
}

std::uint64_t
ReglessProvider::progressEvents() const
{
    std::uint64_t total = 0;
    for (const auto &cm : _cms)
        total += cm->activations();
    return total;
}

void
ReglessProvider::setFaultInjector(FaultInjector *injector)
{
    _faults = injector;
    for (auto &cm : _cms)
        cm->setFaultInjector(injector);
}

void
ReglessProvider::joinTenantArbiter(regfile::TenantArbiter &arbiter,
                                   unsigned tenant, unsigned priority)
{
    arbiter.registerTenant(tenant, priority, [this] {
        return stagedLinesInUse();
    });
    for (auto &cm : _cms) {
        cm->setAdmissionGate([&arbiter, tenant](unsigned lines) {
            return arbiter.mayReserve(tenant, lines);
        });
    }
}

void
ReglessProvider::requestSuspend(Cycle now)
{
    (void)now;
    for (auto &cm : _cms)
        cm->requestSuspend();
}

bool
ReglessProvider::suspendComplete() const
{
    for (const auto &cm : _cms) {
        if (!cm->suspendComplete())
            return false;
    }
    return true;
}

void
ReglessProvider::finalizeSuspend(Cycle now)
{
    for (auto &cm : _cms)
        cm->finalizeSuspend(now);
}

void
ReglessProvider::resume(Cycle now)
{
    (void)now;
    for (auto &cm : _cms)
        cm->resume();
}

std::uint64_t
ReglessProvider::stagedLinesInUse() const
{
    std::uint64_t lines = 0;
    for (const auto &cm : _cms)
        lines += cm->linesInUse();
    return lines;
}

bool
ReglessProvider::canIssue(const arch::Warp &warp, Cycle now)
{
    return _cms[shardOf(warp.id())]->canIssue(warp, now);
}

void
ReglessProvider::onIssue(const arch::Warp &warp, Pc pc,
                         const ir::Instruction &insn, Cycle now,
                         Cycle writeback)
{
    _cms[shardOf(warp.id())]->onIssue(warp, pc, insn, now, writeback);
}

void
ReglessProvider::onWarpFinished(const arch::Warp &warp, Cycle now)
{
    _cms[shardOf(warp.id())]->onWarpFinished(warp, now);
}

Cycle
ReglessProvider::operandDelay(const arch::Warp &warp,
                              const ir::Instruction &insn, Cycle now)
{
    (void)now;
    // Two sources in the same OSU bank serialise on the bank port.
    std::array<unsigned, osuBanks> uses{};
    unsigned worst = 0;
    for (RegId src : insn.srcs()) {
        unsigned b = OperandStagingUnit::bankOf(warp.id(), src);
        worst = std::max(worst, ++uses[b]);
    }
    if (worst > 1) {
        ++_bankConflicts;
        return worst - 1;
    }
    return 0;
}

void
ReglessProvider::dumpStats(std::ostream &os) const
{
    _stats.dump(os);
    for (const auto &osu : _osus)
        osu->stats().dump(os);
    for (const auto &comp : _compressors)
        comp->stats().dump(os);
    for (const auto &cm : _cms)
        cm->stats().dump(os);
}

std::uint64_t
ReglessProvider::preloadsFrom(const char *counter_name)
{
    std::uint64_t total = 0;
    for (const auto &cm : _cms)
        total += cm->stats().counter(counter_name).value();
    return total;
}

std::uint64_t
ReglessProvider::l1Requests(const char *counter_name)
{
    return preloadsFrom(counter_name);
}

double
ReglessProvider::meanRegionPreloads()
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &cm : _cms) {
        auto &d = cm->regionPreloads();
        sum += d.sum();
        n += d.count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
ReglessProvider::meanRegionLive()
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &cm : _cms) {
        auto &d = cm->regionLive();
        sum += d.sum();
        n += d.count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
ReglessProvider::stddevRegionLive()
{
    // Combine shard distributions via the law of total variance.
    double total_n = 0.0, mean = meanRegionLive(), acc = 0.0;
    for (const auto &cm : _cms) {
        auto &d = cm->regionLive();
        if (d.count() == 0)
            continue;
        double n = static_cast<double>(d.count());
        double var = d.stddev() * d.stddev();
        double dm = d.mean() - mean;
        acc += n * (var + dm * dm);
        total_n += n;
    }
    return total_n > 0.0 ? std::sqrt(acc / total_n) : 0.0;
}

double
ReglessProvider::meanRegionCycles()
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &cm : _cms) {
        auto &d = cm->regionCycles();
        sum += d.sum();
        n += d.count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
ReglessProvider::meanRegionInsns()
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &cm : _cms) {
        auto &d = cm->regionInsns();
        sum += d.sum();
        n += d.count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t
ReglessProvider::osuAccesses()
{
    std::uint64_t total = 0;
    for (const auto &osu : _osus) {
        auto &s = osu->stats();
        total += s.counter("reads").value() + s.counter("writes").value();
    }
    return total;
}

std::uint64_t
ReglessProvider::compressorAccesses()
{
    std::uint64_t total = 0;
    for (const auto &comp : _compressors) {
        auto &s = comp->stats();
        total += s.counter("matches").value() +
                 s.counter("incompressible").value() +
                 s.counter("cache_hits").value() +
                 s.counter("cache_misses").value();
    }
    return total;
}

std::vector<double>
ReglessProvider::l1SeriesPoints()
{
    std::vector<double> merged;
    for (auto &cm : _cms) {
        cm->l1Series().flush();
        const auto &pts = cm->l1Series().points();
        if (pts.size() > merged.size())
            merged.resize(pts.size(), 0.0);
        for (std::size_t i = 0; i < pts.size(); ++i)
            merged[i] += pts[i];
    }
    return merged;
}

namespace
{

const char *
cmStateName(CmState s)
{
    switch (s) {
      case CmState::Inactive:
        return "inactive";
      case CmState::Preloading:
        return "preloading";
      case CmState::Active:
        return "active";
      case CmState::Draining:
        return "draining";
      case CmState::Done:
        return "done";
    }
    return "?";
}

} // namespace

void
ReglessProvider::describeWarp(WarpId warp, std::ostream &os) const
{
    // CM accessors are non-const only for historical reasons; the
    // snapshot does not mutate anything.
    auto &self = const_cast<ReglessProvider &>(*this);
    auto &cm = self.cm(shardOf(warp));
    os << " cm=" << cmStateName(cm.state(warp)) << " region=";
    if (cm.warpRegion(warp) == compiler::invalidRegion)
        os << "none";
    else
        os << cm.warpRegion(warp);
    os << " pending_preloads=" << cm.pendingPreloads(warp);
}

void
ReglessProvider::describeStorage(std::vector<std::string> &out) const
{
    auto &self = const_cast<ReglessProvider &>(*this);
    for (unsigned s = 0; s < numShards(); ++s) {
        auto &osu = self.osu(s);
        auto &cm = self.cm(s);
        for (unsigned b = 0; b < osuBanks; ++b) {
            auto c = osu.bankCounts(b);
            std::ostringstream os;
            os << "osu" << s << ".b" << b << ": " << c.owned << "/"
               << c.clean << "/" << c.dirty << "/" << c.free
               << ", reserved=" << cm.reservedFuture(b);
            out.push_back(os.str());
        }
    }
}

} // namespace regless::staging
