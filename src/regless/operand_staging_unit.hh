/**
 * @file
 * Operand staging unit (OSU), paper §5.2.
 *
 * One OSU per warp scheduler, 8 independently tracked banks. A line
 * holds one 128-byte register for one warp. Lines are either owned by
 * an executing/preloading region, evictable (clean or dirty, the
 * paper's clean/dirty lists), or free. Registers map to bank
 * (warpId + regId) mod 8. The OSU stores no data — functional values
 * live in the warps — it tracks residency, dirtiness, and LRU order,
 * and counts the accesses the energy model charges.
 */

#ifndef REGLESS_REGLESS_OPERAND_STAGING_UNIT_HH
#define REGLESS_REGLESS_OPERAND_STAGING_UNIT_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "regless/regless_config.hh"

namespace regless::staging
{

/** Number of banks per OSU (fixed by the design). */
constexpr unsigned osuBanks = 8;

/** Residency state of one OSU line. */
enum class LineState : std::uint8_t
{
    Owned,      ///< reserved by an active/preloading/draining region
    EvictClean, ///< evictable, value matches the backing store
    EvictDirty, ///< evictable, must be written back when reclaimed
};

/** One warp-scheduler's operand staging unit. */
class OperandStagingUnit
{
  public:
    /** Per-bank occupancy snapshot. */
    struct BankCounts
    {
        unsigned owned = 0;
        unsigned clean = 0;
        unsigned dirty = 0;
        unsigned free = 0;
    };

    /** Victim that must be written back before its line is reused. */
    struct Reclaim
    {
        bool needed = false;   ///< a line had to be reclaimed
        bool writeback = false; ///< the victim was dirty
        WarpId victimWarp = invalidWarp;
        RegId victimReg = invalidReg;
    };

    /**
     * @param name Stats prefix.
     * @param total_lines Lines in this OSU (entries / shards).
     * @param order Victim preference for reclaims.
     */
    OperandStagingUnit(std::string name, unsigned total_lines,
                       VictimOrder order);

    /** Bank of register @a reg for warp @a warp. */
    static unsigned
    bankOf(WarpId warp, RegId reg)
    {
        return (warp + reg) % osuBanks;
    }

    unsigned linesPerBank() const { return _linesPerBank; }

    BankCounts bankCounts(unsigned bank) const;

    /** @return true when (warp, reg) is resident in any state. */
    bool present(WarpId warp, RegId reg) const;

    /** @return true when (warp, reg) is resident and evictable. */
    bool presentEvictable(WarpId warp, RegId reg) const;

    /** @return true when a resident entry is dirty. */
    bool isDirty(WarpId warp, RegId reg) const;

    /**
     * Convert an evictable entry back to owned (preload hit or
     * redefinition of a resident output). Keeps the dirty history.
     */
    void claim(WarpId warp, RegId reg);

    /**
     * Allocate an owned line for (warp, reg), reclaiming a victim in
     * the same bank if necessary (free, then clean, then dirty — or
     * the ablation order). The entry starts clean unless @a dirty.
     *
     * @return reclaim duties for the caller (write-back traffic).
     */
    Reclaim allocate(WarpId warp, RegId reg, bool dirty);

    /** Erase annotation: the line becomes free immediately. */
    void erase(WarpId warp, RegId reg);

    /** Evict annotation: the line joins the clean or dirty list. */
    void markEvictable(WarpId warp, RegId reg);

    /** Record a write (sets the dirty bit). */
    void recordWrite(WarpId warp, RegId reg);

    /** Drop every line belonging to @a warp (kernel exit). */
    void dropWarp(WarpId warp);

    /** @name Access counting for the energy model. */
    /// @{
    void countRead() { ++_reads; }
    void countWrite() { ++_writes; }
    void countTagLookup() { ++_tagLookups; }
    /// @}

    /** Total lines currently occupied (for occupancy stats). */
    unsigned occupiedLines() const { return _occupied; }

    /** Entry listing of one bank (diagnostics and tests). */
    struct EntryInfo
    {
        WarpId warp;
        RegId reg;
        LineState state;
    };
    std::vector<EntryInfo> bankEntries(unsigned bank) const;

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    struct Entry
    {
        LineState state = LineState::Owned;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    static std::uint32_t
    key(WarpId warp, RegId reg)
    {
        return (static_cast<std::uint32_t>(warp) << 16) | reg;
    }

    unsigned _linesPerBank;
    VictimOrder _order;
    std::array<std::unordered_map<std::uint32_t, Entry>, osuBanks> _banks;
    std::array<BankCounts, osuBanks> _counts;
    std::uint64_t _lruCounter = 0;
    unsigned _occupied = 0;
    StatGroup _stats;
    Counter &_reads;
    Counter &_writes;
    Counter &_tagLookups;
    Counter &_reclaims;
    Counter &_dirtyReclaims;
};

} // namespace regless::staging

#endif // REGLESS_REGLESS_OPERAND_STAGING_UNIT_HH
