#include "regless/capacity_manager.hh"

#include <algorithm>

#include "common/logging.hh"
#include "regfile/register_provider.hh"
#include "regless/shadow_checker.hh"

namespace regless::staging
{

namespace
{

std::uint32_t
backingKey(WarpId warp, RegId reg)
{
    return (static_cast<std::uint32_t>(warp) << 16) | reg;
}

} // namespace

CapacityManager::CapacityManager(std::string name,
                                 std::vector<WarpId> shard_warps,
                                 const compiler::CompiledKernel &ck,
                                 OperandStagingUnit &osu,
                                 Compressor *compressor,
                                 mem::MemorySystem &mem,
                                 const ReglessConfig &cfg,
                                 unsigned num_warps)
    : _shardWarps(std::move(shard_warps)),
      _ck(ck),
      _osu(osu),
      _compressor(compressor),
      _mem(mem),
      _cfg(cfg),
      _numWarps(num_warps),
      _stats(std::move(name)),
      _l1Series(100),
      _activations(_stats.counter("activations")),
      _preloadSrcOsu(_stats.counter("preload_src_osu")),
      _preloadSrcCompressor(_stats.counter("preload_src_compressor")),
      _preloadSrcL1(_stats.counter("preload_src_l1")),
      _preloadSrcL2Dram(_stats.counter("preload_src_l2dram")),
      _l1PreloadReqs(_stats.counter("l1_preload_reqs")),
      _l1StoreReqs(_stats.counter("l1_store_reqs")),
      _l1InvalidateReqs(_stats.counter("l1_invalidate_reqs")),
      _activationBlocked(_stats.counter("activation_blocked_cycles")),
      _metadataInsns(_stats.counter("metadata_insns")),
      _gatedBankCycles(_stats.counter("gated_bank_cycles"))
{
    WarpId max_id = 0;
    for (WarpId w : _shardWarps)
        max_id = std::max(max_id, w);
    _ctx.resize(_shardWarps.empty() ? 0 : max_id + 1);
    _supervised.assign(_ctx.size(), 0);
    for (WarpId w : _shardWarps) {
        _supervised[w] = 1;
        _stack.push_back(w); // lowest id activates first
    }
}

CapacityManager::WarpCtx &
CapacityManager::ctx(WarpId warp)
{
    if (warp >= _ctx.size() || !_supervised[warp])
        panic("warp ", warp, " not supervised by this CM");
    return _ctx[warp];
}

const CapacityManager::WarpCtx &
CapacityManager::ctx(WarpId warp) const
{
    if (warp >= _ctx.size() || !_supervised[warp])
        panic("warp ", warp, " not supervised by this CM");
    return _ctx[warp];
}

Addr
CapacityManager::regAddr(WarpId warp, RegId reg) const
{
    return _cfg.regBase +
           (static_cast<Addr>(reg) * _numWarps + warp) * regBytes;
}

void
CapacityManager::writeBackLine(WarpId warp, RegId reg, Cycle now)
{
    if (_compressor && _warpOf) {
        Compressor::EvictResult er = _compressor->compressEvict(
            warp, reg, _warpOf(warp).regValue(reg), now);
        if (er.unsound && _shadow)
            _shadow->onEncodingUnsound(warp, reg);
        if (er.compressed) {
            // The copy lives in the compressed path; invalidating it
            // later is a free bit-vector clear, not an L1 request.
            _inBackingStore.insert(backingKey(warp, reg));
            _inL1.erase(backingKey(warp, reg));
            return;
        }
    }
    // Incompressible: full-line write to L1 at the next port slot.
    Cycle t = std::max(now, _mem.l1PortNextFree());
    _mem.access(regAddr(warp, reg), /*is_write=*/true,
                mem::MemSpace::Register, t);
    _inBackingStore.insert(backingKey(warp, reg));
    _inL1.insert(backingKey(warp, reg));
    ++_l1StoreReqs;
    _l1Series.record(now, 1.0);
}

void
CapacityManager::handleReclaim(const OperandStagingUnit::Reclaim &reclaim,
                               Cycle now)
{
    if (!reclaim.needed || !reclaim.writeback)
        return;
    writeBackLine(reclaim.victimWarp, reclaim.victimReg, now);
}

void
CapacityManager::allocateLine(WarpCtx &wc, WarpId warp, RegId reg,
                              bool dirty, Cycle now)
{
    unsigned bank = OperandStagingUnit::bankOf(warp, reg);
    OperandStagingUnit::Reclaim reclaim = _osu.allocate(warp, reg, dirty);
    if (_shadow && reclaim.needed && !reclaim.writeback) {
        // A clean victim is dropped without write-back; if no backing
        // copy exists either, the value is gone.
        _shadow->onCleanReclaim(
            reclaim.victimWarp, reclaim.victimReg,
            _inBackingStore.count(
                backingKey(reclaim.victimWarp, reclaim.victimReg)) != 0);
    }
    handleReclaim(reclaim, now);
    if (wc.budget[bank] > 0) {
        --wc.budget[bank];
        --_reservedFuture[bank];
    }
}

void
CapacityManager::creditLine(WarpCtx &wc, WarpId warp, RegId reg)
{
    // A line released mid-region stays earmarked for its region: the
    // paper's reservation is the region's *peak* concurrent live
    // count, with non-overlapping short-lived registers sharing the
    // same allocation (Fig. 19). Crediting the budget keeps the
    // shared pool sound: other activations see the line as available
    // only together with the matching reservation.
    unsigned bank = OperandStagingUnit::bankOf(warp, reg);
    ++wc.budget[bank];
    ++_reservedFuture[bank];
}

void
CapacityManager::invalidateBacking(WarpId warp, RegId reg,
                                   bool charge_l1, Cycle now)
{
    auto it = _inBackingStore.find(backingKey(warp, reg));
    if (it == _inBackingStore.end())
        return;
    _inBackingStore.erase(it);
    if (_shadow)
        _shadow->onBackingInvalidate(warp, reg, _osu.present(warp, reg));
    if (_compressor)
        _compressor->invalidate(warp, reg);
    if (charge_l1 && _inL1.erase(backingKey(warp, reg))) {
        Cycle t = std::max(now, _mem.l1PortNextFree());
        _mem.invalidateRegisterLine(regAddr(warp, reg), t);
        ++_l1InvalidateReqs;
        _l1Series.record(now, 1.0);
    }
}

void
CapacityManager::processInvalidations(WarpCtx &wc, WarpId warp, Cycle now)
{
    while (!wc.invalidations.empty()) {
        RegId reg = wc.invalidations.front();
        if (_inL1.count(backingKey(warp, reg))) {
            if (!_mem.l1PortFree(now))
                return; // retry next cycle
            invalidateBacking(warp, reg, /*charge_l1=*/true, now);
        } else {
            // Compressed or absent: a free bit-vector clear.
            invalidateBacking(warp, reg, /*charge_l1=*/false, now);
        }
        wc.invalidations.pop_front();
    }
}

void
CapacityManager::processPreloads(WarpCtx &wc, WarpId warp, Cycle now,
                                 std::array<bool, osuBanks> &bank_busy)
{
    bool blocked_bank = false;
    bool blocked_mem = false;
    for (auto it = wc.preloads.begin(); it != wc.preloads.end();) {
        const compiler::Preload preload = *it;
        unsigned bank = OperandStagingUnit::bankOf(warp, preload.reg);
        if (bank_busy[bank]) {
            blocked_bank = true;
            ++it;
            continue;
        }
        _osu.countTagLookup();

        // Presence was resolved at activation; entries cannot appear
        // later, but keep the fast path for robustness.
        if (_osu.presentEvictable(warp, preload.reg)) {
            _osu.claim(warp, preload.reg);
            if (wc.budget[bank] > 0) {
                --wc.budget[bank];
                --_reservedFuture[bank];
            }
            ++_preloadSrcOsu;
            bank_busy[bank] = true;
            ++wc.preloadCount;
            it = wc.preloads.erase(it);
            continue;
        }

        // Fetch from the backing path, then allocate a line.
        Cycle ready = now;
        mem::MemSource source = mem::MemSource::L1;
        bool via_compressor = false;
        if (_compressor) {
            Compressor::PreloadResult cr =
                _compressor->preload(warp, preload.reg, now);
            if (!cr.accepted) {
                blocked_mem = true;
                ++it;
                continue; // L1 port busy; retry next cycle
            }
            if (cr.wasCompressed) {
                via_compressor = true;
                ready = cr.ready;
                if (cr.cacheHit) {
                    ++_preloadSrcCompressor;
                } else {
                    // Compressed line fetched through L1.
                    ++_l1PreloadReqs;
                    _l1Series.record(now, 1.0);
                    source = cr.source;
                    if (source == mem::MemSource::L1)
                        ++_preloadSrcL1;
                    else
                        ++_preloadSrcL2Dram;
                }
            }
        }
        if (!via_compressor) {
            if (!_mem.l1PortFree(now)) {
                blocked_mem = true;
                ++it;
                continue;
            }
            mem::MemAccessResult mr =
                _mem.access(regAddr(warp, preload.reg),
                            /*is_write=*/false, mem::MemSpace::Register,
                            now);
            if (!mr.accepted) {
                blocked_mem = true;
                ++it;
                continue;
            }
            ready = mr.readyCycle;
            source = mr.source;
            ++_l1PreloadReqs;
            _l1Series.record(now, 1.0);
            if (source == mem::MemSource::L1)
                ++_preloadSrcL1;
            else
                ++_preloadSrcL2Dram;
        }

        if (_shadow)
            _shadow->onPreloadFetch(warp, preload.reg, wc.region);
        allocateLine(wc, warp, preload.reg, /*dirty=*/false, now);
        if (preload.invalidate)
            invalidateBacking(warp, preload.reg, /*charge_l1=*/false,
                              now);
        wc.preloadReady = std::max(wc.preloadReady, ready);
        bank_busy[bank] = true;
        ++wc.preloadCount;
        it = wc.preloads.erase(it);
    }
    // Attribution: a bank-port conflict only charges OsuBankConflict
    // when nothing was also waiting on memory; otherwise the preload
    // data in flight dominates.
    wc.blockCause = blocked_bank && !blocked_mem
                        ? arch::StallCause::OsuBankConflict
                        : arch::StallCause::MemPending;
}

unsigned
CapacityManager::preloadingWarps() const
{
    unsigned n = 0;
    for (WarpId w : _shardWarps)
        n += (_ctx[w].state == CmState::Preloading);
    return n;
}

void
CapacityManager::sampleRegionStats(const WarpCtx &wc, Cycle now)
{
    const compiler::Region &region = _ck.region(wc.region);
    _regionCycles.sample(static_cast<double>(
        now > wc.activatedAt ? now - wc.activatedAt : 0));
    _regionInsns.sample(static_cast<double>(region.numInsns()));
    _regionLive.sample(static_cast<double>(region.maxLive));
    _regionPreloads.sample(static_cast<double>(wc.preloadCount));
}

void
CapacityManager::finishDrain(WarpCtx &wc, WarpId warp, Cycle now)
{
    for (RegId reg : wc.deferredErase) {
        _osu.erase(warp, reg);
        if (_shadow)
            _shadow->onErase(warp, reg);
    }
    for (RegId reg : wc.deferredEvict)
        _osu.markEvictable(warp, reg);
    wc.deferredErase.clear();
    wc.deferredEvict.clear();
    if (_shadow) {
        _shadow->onDrainEnd(warp, _osu, wc.region,
                            _ck.region(wc.region).endPc);
    }

    // Release any budget the region reserved but never used (its
    // peak-live estimate is an upper bound on distinct allocations).
    for (unsigned b = 0; b < osuBanks; ++b) {
        if (wc.budget[b] > 0) {
            _reservedFuture[b] -= wc.budget[b];
            wc.budget[b] = 0;
        }
    }

    sampleRegionStats(wc, now);
    wc.state = CmState::Inactive;
    wc.blockCause = arch::StallCause::CmNotStaged;
    wc.region = compiler::invalidRegion;
    wc.preloadCount = 0;
    // Last-executed warp goes on top so its outputs are likely still
    // staged when its next region activates (§2.2).
    if (_cfg.fifoActivation)
        _stack.push_back(warp);
    else
        _stack.push_front(warp);
}

void
CapacityManager::tryActivate(Cycle now)
{
    if (!_warpOf)
        panic("CapacityManager warp source not bound");
    if (_suspended)
        return; // region-boundary preemption: no new activations
    while (preloadingWarps() < _cfg.preloadSlotsPerShard &&
           !_stack.empty()) {
        // Top-of-stack activation; warps parked at a barrier are
        // skipped so they cannot hoard staging space.
        auto pick = _stack.end();
        for (auto it = _stack.begin(); it != _stack.end(); ++it) {
            if (_warpOf(*it).status() == arch::WarpStatus::Running) {
                pick = it;
                break;
            }
        }
        if (pick == _stack.end())
            return;
        const WarpId warp = *pick;
        WarpCtx &wc = ctx(warp);
        if (wc.state != CmState::Inactive)
            panic("stacked warp ", warp, " not inactive");

        const Pc pc = _warpOf(warp).pc();
        compiler::RegionId rid = _ck.regionStartingAt(pc);
        if (rid == compiler::invalidRegion)
            panic("warp ", warp, " parked at pc ", pc,
                  " which is not a region start");
        const compiler::Region &region = _ck.region(rid);

        // Hardware bank b holds compiler bank (b - warp) mod 8.
        std::array<unsigned, osuBanks> need{};
        for (unsigned b = 0; b < osuBanks; ++b) {
            need[b] = region.bankUsage[(b + osuBanks -
                                        (warp % osuBanks)) % osuBanks];
        }
        // Region inputs still resident from an earlier region are
        // *pinned* at activation (the preload-hit fast path). Pinning
        // converts an available line to owned, so the fits check
        // covers the full per-bank need, not need minus hits —
        // otherwise pins silently starve other warps' reservations.
        std::array<unsigned, osuBanks> pinned_in{};
        std::vector<RegId> pinned;
        for (const compiler::Preload &p : region.preloads) {
            if (std::find(pinned.begin(), pinned.end(), p.reg) !=
                pinned.end()) {
                continue;
            }
            if (_osu.presentEvictable(warp, p.reg)) {
                pinned.push_back(p.reg);
                ++pinned_in[OperandStagingUnit::bankOf(warp, p.reg)];
            }
        }
        // Resident pure outputs (hard-defined before any read) hold
        // values that are dead on entry; erase them now so their
        // stale lines neither get stolen mid-region nor occupy space
        // beyond the peak-live reservation.
        std::vector<RegId> stale_outputs;
        for (RegId reg : region.outputs) {
            if (std::find(pinned.begin(), pinned.end(), reg) !=
                    pinned.end() ||
                std::find(stale_outputs.begin(), stale_outputs.end(),
                          reg) != stale_outputs.end()) {
                continue;
            }
            if (_osu.presentEvictable(warp, reg))
                stale_outputs.push_back(reg);
        }

        // Erasing a stale output turns an evictable line into a free
        // one, so it does not change availability; the plain need is
        // the whole requirement.
        bool fits = true;
        for (unsigned b = 0; b < osuBanks; ++b) {
            auto c = _osu.bankCounts(b);
            int avail = static_cast<int>(c.free + c.clean + c.dirty) -
                        _reservedFuture[b];
            if (avail < static_cast<int>(need[b])) {
                fits = false;
                break;
            }
        }
        if (!fits) {
            ++_activationBlocked;
            _activationWasBlocked = true;
            wc.blockCause = arch::StallCause::CmNoCapacity;
            return;
        }
        // Multi-tenant admission: the shared physical pool may refuse
        // the reservation even though this CM's own structures fit.
        // The whole requirement is charged: linesInUse() counts only
        // non-relinquishable lines, and activation converts the whole
        // need into those (pinned evictables become Owned, the rest
        // becomes reservations).
        if (_admissionGate) {
            unsigned new_lines = 0;
            for (unsigned b = 0; b < osuBanks; ++b)
                new_lines += need[b];
            if (!_admissionGate(new_lines)) {
                ++_activationBlocked;
                _activationWasBlocked = true;
                _gateBlocked = true;
                wc.blockCause = arch::StallCause::CmNoCapacity;
                return;
            }
        }
        for (RegId reg : stale_outputs) {
            _osu.erase(warp, reg);
            if (_shadow)
                _shadow->onErase(warp, reg);
        }

        // Commit the activation. The region's metadata instructions
        // are fetched and decoded as the region enters the pipeline.
        _metadataInsns += region.metadataInsns;
        _stack.erase(pick);
        wc.state = CmState::Preloading;
        wc.blockCause = arch::StallCause::MemPending;
        wc.region = rid;
        wc.preloadReady = now;
        wc.drainUntil = 0;
        wc.preloadCount = 0;
        for (unsigned b = 0; b < osuBanks; ++b) {
            int needed_new = static_cast<int>(need[b]) -
                             static_cast<int>(pinned_in[b]);
            needed_new = std::max(needed_new, 0);
            wc.budget[b] = needed_new;
            _reservedFuture[b] += needed_new;
        }
        for (RegId reg : pinned) {
            _osu.countTagLookup();
            _osu.claim(warp, reg);
        }
        for (const compiler::Preload &p : region.preloads) {
            if (std::find(pinned.begin(), pinned.end(), p.reg) !=
                pinned.end()) {
                ++_preloadSrcOsu;
                ++wc.preloadCount;
                if (p.invalidate &&
                    _inBackingStore.count(backingKey(warp, p.reg))) {
                    wc.invalidations.push_back(p.reg);
                }
            } else {
                wc.preloads.push_back(p);
            }
        }
        for (RegId reg : region.cacheInvalidations)
            wc.invalidations.push_back(reg);

        if (wc.preloads.empty() && wc.invalidations.empty()) {
            wc.state = CmState::Active;
            wc.blockCause = arch::StallCause::CmNotStaged;
            wc.activatedAt = now;
            ++_activations;
            if (_onActivate)
                _onActivate(warp, rid, now);
        }
    }
}

void
CapacityManager::tick(Cycle now)
{
    _activationWasBlocked = false;
    _gateBlocked = false;

    // Injected staging-space leak: phantom reservations permanently
    // consume every bank's lines, so no region ever fits again and
    // the shard's warps wedge in Inactive — the §4.4 deadlock class
    // the forward-progress watchdog must catch.
    if (_faults && _faults->fire(FaultPlan::Kind::LeakOsuSlot, now)) {
        for (unsigned b = 0; b < osuBanks; ++b)
            _reservedFuture[b] += static_cast<int>(_osu.linesPerBank());
    }

    if (_compressor)
        _compressor->tick(now);

    // Retire draining warps first so their lines are reusable.
    for (WarpId w : _shardWarps) {
        WarpCtx &wc = ctx(w);
        if (wc.state == CmState::Draining && now >= wc.drainUntil)
            finishDrain(wc, w, now);
    }

    // Progress preloading warps (one preload per bank per cycle).
    std::array<bool, osuBanks> bank_busy{};
    for (WarpId w : _shardWarps) {
        WarpCtx &wc = ctx(w);
        if (wc.state != CmState::Preloading)
            continue;
        processInvalidations(wc, w, now);
        processPreloads(wc, w, now, bank_busy);
        if (wc.preloads.empty() && wc.invalidations.empty() &&
            now >= wc.preloadReady) {
            wc.state = CmState::Active;
            wc.blockCause = arch::StallCause::CmNotStaged;
            wc.activatedAt = now;
            ++_activations;
            if (_onActivate)
                _onActivate(w, wc.region, now);
        }
    }

    tryActivate(now);

    // Static footprint gating (DESIGN.md §14): a bank with no resident
    // lines and no outstanding reservation provably stays empty until
    // an activation — which this tick declined or exhausted — claims
    // space in it, so the energy model may discount its leakage.
    if (_cfg.bankGating) {
        unsigned gated = 0;
        for (unsigned b = 0; b < osuBanks; ++b) {
            auto c = _osu.bankCounts(b);
            if (c.owned + c.clean + c.dirty == 0 &&
                _reservedFuture[b] <= 0) {
                ++gated;
            }
        }
        _lastGatedBanks = gated;
        _gatedBankCycles += gated;
    }
}

Cycle
CapacityManager::nextEventCycle(Cycle from) const
{
    // Per-cycle busy work pins the CM to cycle granularity: queued
    // preloads retry ports and count tag lookups every cycle, and the
    // compressor flushes one line per cycle while its queue drains.
    if (_compressor && _compressor->flushPending())
        return from;
    // A gate-blocked activation can unblock whenever *another* tenant
    // frees lines — an event outside this CM's horizon. Stay at cycle
    // granularity until the activation goes through.
    if (_gateBlocked)
        return from;
    Cycle next = regfile::kNoProviderEvent;
    auto consider = [&](Cycle at) {
        next = std::min(next, std::max(from, at));
    };
    for (WarpId w : _shardWarps) {
        const WarpCtx &wc = _ctx[w];
        if (wc.state == CmState::Preloading) {
            if (!wc.preloads.empty() || !wc.invalidations.empty())
                return from;
            consider(wc.preloadReady);
        } else if (wc.state == CmState::Draining) {
            consider(wc.drainUntil);
        }
    }
    // Activation attempts need no bound of their own: their outcome
    // only changes when a drain retires, a preload slot frees, or a
    // warp issues — all covered above or impossible while skipping.
    return next;
}

void
CapacityManager::onCyclesSkipped(Cycle from, Cycle n)
{
    (void)from;
    // Each skipped tick would have retried (and re-blocked) the same
    // activation: the counter is defined as blocked *cycles*.
    if (_activationWasBlocked)
        _activationBlocked += n;
    // Skippable windows cannot change OSU occupancy or reservations,
    // so every skipped tick would have counted the same gated banks.
    _gatedBankCycles += static_cast<std::uint64_t>(n) * _lastGatedBanks;
}

bool
CapacityManager::canIssue(const arch::Warp &warp, Cycle now) const
{
    (void)now;
    const WarpCtx &wc = ctx(warp.id());
    if (wc.state != CmState::Active)
        return false;
    return _ck.region(wc.region).contains(warp.pc());
}

void
CapacityManager::onIssue(const arch::Warp &warp, Pc pc,
                         const ir::Instruction &insn, Cycle now,
                         Cycle writeback)
{
    WarpCtx &wc = ctx(warp.id());
    if (wc.state == CmState::Done)
        return; // exit instruction already tore the warp down
    if (wc.state != CmState::Active)
        panic("onIssue for non-active warp ", warp.id(), " in state ",
              static_cast<int>(wc.state));
    const compiler::Region &region = _ck.region(wc.region);

    // Cross-check the instruction's reads against the shadow state
    // before any OSU mutation below can mask a missing line.
    if (_shadow)
        _shadow->onIssue(warp.id(), pc, insn, _osu, wc.region);

    // Operand reads and the destination write hit the OSU.
    for (std::size_t i = 0; i < insn.srcs().size(); ++i)
        _osu.countRead();
    if (insn.writesReg()) {
        _osu.countWrite();
        const RegId dst = insn.dst();
        if (_osu.presentEvictable(warp.id(), dst)) {
            // Redefinition of a still-resident value: reuse its line.
            // The activation budgeted a fresh line for this register,
            // so consume the reservation here or it leaks.
            _osu.claim(warp.id(), dst);
            _osu.recordWrite(warp.id(), dst);
            unsigned bank = OperandStagingUnit::bankOf(warp.id(), dst);
            if (wc.budget[bank] > 0) {
                --wc.budget[bank];
                --_reservedFuture[bank];
            }
        } else if (_osu.present(warp.id(), dst)) {
            _osu.recordWrite(warp.id(), dst);
        } else {
            allocateLine(wc, warp.id(), dst, /*dirty=*/true, now);
        }
    }

    // Lifetime annotations at this PC.
    auto erase_it = region.erases.find(pc);
    if (erase_it != region.erases.end()) {
        for (RegId reg : erase_it->second) {
            if (insn.writesReg() && reg == insn.dst() &&
                writeback > now) {
                wc.deferredErase.push_back(reg);
                wc.drainUntil = std::max(wc.drainUntil, writeback);
            } else {
                _osu.erase(warp.id(), reg);
                if (_shadow)
                    _shadow->onErase(warp.id(), reg);
                creditLine(wc, warp.id(), reg);
            }
        }
    }
    auto evict_it = region.evicts.find(pc);
    if (evict_it != region.evicts.end()) {
        for (RegId reg : evict_it->second) {
            if (insn.writesReg() && reg == insn.dst() &&
                writeback > now) {
                wc.deferredEvict.push_back(reg);
                wc.drainUntil = std::max(wc.drainUntil, writeback);
            } else {
                _osu.markEvictable(warp.id(), reg);
                creditLine(wc, warp.id(), reg);
            }
        }
    }

    // Region boundary: enter the draining state. The region issues no
    // further instructions, so its remaining allocation budget is
    // released immediately — only lines pending write-back stay owned
    // ("any other registers that were allocated to that region can be
    // freed for other warps, but the pending register must stay
    // allocated", §5.1).
    if (pc == region.endPc) {
        for (unsigned b = 0; b < osuBanks; ++b) {
            if (wc.budget[b] > 0) {
                _reservedFuture[b] -= wc.budget[b];
                wc.budget[b] = 0;
            }
        }
        wc.drainUntil = std::max({wc.drainUntil, now + 1, writeback});
        wc.state = CmState::Draining;
        wc.blockCause = arch::StallCause::CmNotStaged;
    }
}

void
CapacityManager::requestSuspend()
{
    _suspended = true;
    _gateBlocked = false; // no more activation attempts to unblock
}

bool
CapacityManager::suspendComplete() const
{
    for (WarpId w : _shardWarps) {
        const WarpCtx &wc = _ctx[w];
        if (wc.state != CmState::Inactive && wc.state != CmState::Done)
            return false;
    }
    return !_compressor || !_compressor->flushPending();
}

void
CapacityManager::finalizeSuspend(Cycle now)
{
    if (!_suspended)
        panic("finalizeSuspend without requestSuspend");
    if (!suspendComplete())
        panic("finalizeSuspend with regions still in flight");

    // Region-boundary invariant: with every warp parked between
    // regions, no reservation can be outstanding.
    for (unsigned b = 0; b < osuBanks; ++b) {
        if (_reservedFuture[b] != 0) {
            panic("finalizeSuspend: bank ", b, " holds ",
                  _reservedFuture[b], " outstanding reservations");
        }
    }

    // Every surviving line is a region output parked evictable
    // between regions (an Owned line would mean a region is still
    // mid-flight). Write back any value whose only current copy is
    // the staged line, then release everything: the handoff leaves
    // the tenant's architected state entirely in the backing path.
    std::vector<OperandStagingUnit::EntryInfo> lines;
    for (unsigned b = 0; b < osuBanks; ++b) {
        for (const OperandStagingUnit::EntryInfo &e :
             _osu.bankEntries(b)) {
            if (e.state == LineState::Owned)
                panic("finalizeSuspend: warp ", e.warp, " reg ",
                      e.reg, " still owned");
            lines.push_back(e);
        }
    }
    for (const OperandStagingUnit::EntryInfo &e : lines) {
        const std::uint32_t key = backingKey(e.warp, e.reg);
        if (e.state == LineState::EvictDirty ||
            !_inBackingStore.count(key)) {
            writeBackLine(e.warp, e.reg, now);
        }
        if (_shadow) {
            // Equivalent to a clean reclaim with the backing copy
            // guaranteed present: the value is handed off, not lost.
            _shadow->onCleanReclaim(e.warp, e.reg,
                                    /*in_backing=*/true);
        }
        _osu.erase(e.warp, e.reg);
    }
    if (_osu.occupiedLines() != 0) {
        panic("finalizeSuspend: ", _osu.occupiedLines(),
              " lines leaked past the handoff");
    }
}

void
CapacityManager::resume()
{
    // Warps stayed on the activation stack throughout the suspension;
    // their next activation re-preloads from the backing path.
    _suspended = false;
}

std::uint64_t
CapacityManager::linesInUse() const
{
    // Only lines the tenant cannot relinquish on demand are charged
    // against the shared pool: Owned lines of in-flight regions plus
    // outstanding preload reservations. Evictable lines are backed
    // (or one write-back away from it) and the activation fit check
    // already treats them as available, so charging them would wedge
    // a tenant behind its own reclaimable residue — capacity the
    // arbiter could hand to any tenant on demand.
    std::uint64_t lines = 0;
    for (unsigned b = 0; b < osuBanks; ++b) {
        lines += _osu.bankCounts(b).owned;
        lines += static_cast<std::uint64_t>(
            std::max(_reservedFuture[b], 0));
    }
    return lines;
}

void
CapacityManager::onWarpFinished(const arch::Warp &warp, Cycle now)
{
    WarpCtx &wc = ctx(warp.id());
    // Release everything the warp still holds; dead values need no
    // write-back.
    _osu.dropWarp(warp.id());
    if (_shadow)
        _shadow->onWarpDropped(warp.id());
    wc.deferredErase.clear();
    wc.deferredEvict.clear();
    for (unsigned b = 0; b < osuBanks; ++b) {
        if (wc.budget[b] > 0) {
            _reservedFuture[b] -= wc.budget[b];
            wc.budget[b] = 0;
        }
    }
    wc.preloads.clear();
    wc.invalidations.clear();
    if (wc.region != compiler::invalidRegion)
        sampleRegionStats(wc, now);
    wc.state = CmState::Done;
    wc.region = compiler::invalidRegion;
    for (auto it = _stack.begin(); it != _stack.end();) {
        if (*it == warp.id())
            it = _stack.erase(it);
        else
            ++it;
    }
}

} // namespace regless::staging
