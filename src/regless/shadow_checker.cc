#include "regless/shadow_checker.hh"

#include <algorithm>

namespace regless::staging
{

ShadowChecker::ShadowChecker(const compiler::CompiledKernel &ck)
    : _ck(ck), _cfg(ck.kernel()), _live(ck.kernel(), _cfg)
{
}

void
ShadowChecker::flag(const char *code, compiler::RegionId region, Pc pc,
                    RegId reg, std::string message)
{
    if (!_seen.emplace(code, region, pc, reg).second)
        return;
    compiler::Finding f;
    f.code = code;
    f.severity = compiler::Severity::Error;
    f.region = region;
    f.pc = pc;
    f.reg = reg;
    f.message = std::move(message);
    _violations.push_back(std::move(f));
}

void
ShadowChecker::onErase(WarpId warp, RegId reg)
{
    _lost[key(warp, reg)] = Loss::Erased;
}

void
ShadowChecker::onWrite(WarpId warp, RegId reg)
{
    _lost.erase(key(warp, reg));
    // The new value lives only in the staged line now.
    _backingFresh.erase(key(warp, reg));
}

void
ShadowChecker::onCleanReclaim(WarpId warp, RegId reg, bool in_backing)
{
    // A clean victim needs no write-back only because a backing copy
    // is assumed valid; if neither the CM nor the pristine original
    // still holds the value, the reclaim just destroyed its last copy.
    if (!in_backing && !_backingFresh.count(key(warp, reg)))
        _lost.emplace(key(warp, reg), Loss::Invalidated);
}

void
ShadowChecker::onBackingInvalidate(WarpId warp, RegId reg, bool resident)
{
    _backingFresh.erase(key(warp, reg));
    if (!resident)
        _lost.emplace(key(warp, reg), Loss::Invalidated);
}

void
ShadowChecker::onPreloadFetch(WarpId warp, RegId reg,
                              compiler::RegionId region)
{
    auto it = _lost.find(key(warp, reg));
    // The fetched line now mirrors the backing copy.
    _backingFresh.insert(key(warp, reg));
    if (it == _lost.end())
        return;
    const char *how =
        it->second == Loss::Erased ? "erased" : "invalidated";
    flag(compiler::codes::rtPreloadLost, region, invalidPc, reg,
         "warp " + std::to_string(warp) + " preloads r" +
             std::to_string(reg) + " whose value was " + how +
             " with no surviving copy");
    // The fetch re-stages *something*; recover so one lost value does
    // not cascade into a report at every later use.
    _lost.erase(it);
}

void
ShadowChecker::onIssue(WarpId warp, Pc pc, const ir::Instruction &insn,
                       const OperandStagingUnit &osu,
                       compiler::RegionId region)
{
    std::vector<RegId> reads = ir::Liveness::usedRegs(insn);
    if (insn.writesReg() && _live.isSoftDef(pc)) {
        // A partial-lane write merges with the old value: a read.
        reads.push_back(insn.dst());
    }
    std::sort(reads.begin(), reads.end());
    reads.erase(std::unique(reads.begin(), reads.end()), reads.end());

    for (RegId r : reads) {
        auto it = _lost.find(key(warp, r));
        if (it != _lost.end()) {
            const char *code = it->second == Loss::Erased
                                   ? compiler::codes::rtReadAfterErase
                                   : compiler::codes::rtReadAfterInvalidate;
            const char *how =
                it->second == Loss::Erased ? "erased" : "invalidated";
            flag(code, region, pc, r,
                 "warp " + std::to_string(warp) + " reads r" +
                     std::to_string(r) + " after its value was " + how);
        } else if (!osu.present(warp, r)) {
            flag(compiler::codes::rtReadUnstaged, region, pc, r,
                 "warp " + std::to_string(warp) + " reads r" +
                     std::to_string(r) +
                     " with no staged line (preload missing?)");
        }
    }

    if (insn.writesReg())
        onWrite(warp, insn.dst());
}

void
ShadowChecker::onDrainEnd(WarpId warp, const OperandStagingUnit &osu,
                          compiler::RegionId region, Pc end_pc)
{
    for (unsigned b = 0; b < osuBanks; ++b) {
        for (const OperandStagingUnit::EntryInfo &e :
             osu.bankEntries(b)) {
            if (e.warp != warp || e.state != LineState::Owned)
                continue;
            if (!_leakReported.insert(key(warp, e.reg)).second)
                continue;
            flag(compiler::codes::rtLeakedLine, region, end_pc, e.reg,
                 "warp " + std::to_string(warp) + " still owns r" +
                     std::to_string(e.reg) +
                     " after its region drained (missing erase/evict)");
        }
    }
}

void
ShadowChecker::onEncodingUnsound(WarpId warp, RegId reg)
{
    flag(compiler::codes::rtEncodingUnsound, compiler::invalidRegion,
         invalidPc, reg,
         "warp " + std::to_string(warp) + " evicts r" +
             std::to_string(reg) +
             " with a value outside its statically proven encoding");
}

void
ShadowChecker::onWarpDropped(WarpId warp)
{
    for (auto it = _lost.begin(); it != _lost.end();) {
        if ((it->first >> 16) == warp)
            it = _lost.erase(it);
        else
            ++it;
    }
    for (auto it = _backingFresh.begin(); it != _backingFresh.end();) {
        if ((*it >> 16) == warp)
            it = _backingFresh.erase(it);
        else
            ++it;
    }
}

} // namespace regless::staging
