/**
 * @file
 * Text assembler for the register-level IR.
 *
 * Lets kernels be written as plain text instead of through the C++
 * builder — the CLI driver consumes these, and they make compiler test
 * cases readable. The syntax mirrors Instruction::toString():
 *
 *     .kernel saxpy
 *     .warps_per_block 8
 *     .values constant=0.3 stride1=0.3 stride4=0.1 half=0.1
 *
 *     tid   r0
 *     imuli r1, r0, 4
 *     ld    r2, r1, 0
 *     imad  r3, r2, r0, r0
 *     setlt r4, r0, r3
 *     bra   r4, @skip
 *     st    r3, r1, 65536
 *     skip:
 *     exit
 *
 * One instruction per line; `name:` defines a label; `@name` references
 * it; `#` starts a comment. Destination register first, then sources,
 * then an optional immediate. Stores take (data, address, offset).
 */

#ifndef REGLESS_IR_ASSEMBLER_HH
#define REGLESS_IR_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "ir/kernel.hh"

namespace regless::ir
{

/** Error with a line number, thrown on malformed input. */
class AssemblyError : public std::runtime_error
{
  public:
    AssemblyError(unsigned line, const std::string &message);

    unsigned line() const { return _line; }

  private:
    unsigned _line;
};

/**
 * Assemble @a source into a kernel.
 *
 * @param source Full assembly text.
 * @param default_name Kernel name when no `.kernel` directive appears.
 * @throws AssemblyError on any syntax or semantic problem.
 */
Kernel assemble(const std::string &source,
                const std::string &default_name = "kernel");

/** Read @a path and assemble it. */
Kernel assembleFile(const std::string &path);

/** Render @a kernel back to assembly accepted by assemble(). */
std::string disassembleToAsm(const Kernel &kernel);

} // namespace regless::ir

#endif // REGLESS_IR_ASSEMBLER_HH
