#include "ir/basic_block.hh"

// BasicBlock is header-only today; this translation unit anchors the
// header so a future out-of-line method has a home and the build list
// stays stable.
