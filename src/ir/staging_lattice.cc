#include "ir/staging_lattice.hh"

namespace regless::ir
{

const char *
stageLocName(StageLoc loc)
{
    switch (loc) {
      case StageLoc::Undef: return "undef";
      case StageLoc::Staged: return "staged";
      case StageLoc::Backing: return "backing";
      case StageLoc::Invalidated: return "invalidated";
      case StageLoc::Dead: return "dead";
    }
    return "?";
}

std::string
StageSet::toString() const
{
    if (empty())
        return "{}";
    std::string out = "{";
    for (unsigned i = 0; i < numStageLocs; ++i) {
        StageLoc loc = static_cast<StageLoc>(i);
        if (!contains(loc))
            continue;
        if (out.size() > 1)
            out += '|';
        out += stageLocName(loc);
    }
    out += '}';
    return out;
}

} // namespace regless::ir
