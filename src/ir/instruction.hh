/**
 * @file
 * Register-level instruction representation.
 *
 * The IR models post-register-allocation GPU machine code, the
 * abstraction the RegLess compiler operates on: SSA has been lowered,
 * register numbers are architectural, and control flow is explicit
 * branches between numbered instructions. Each instruction also carries
 * enough semantics to be executed functionally across 32 lanes, which is
 * what makes the eviction compressor's pattern matching meaningful.
 */

#ifndef REGLESS_IR_INSTRUCTION_HH
#define REGLESS_IR_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace regless::ir
{

/** One register's value across all 32 lanes of a warp. */
using LaneValues = std::array<std::uint32_t, warpSize>;

/** Machine opcodes. Arithmetic is integer unless prefixed with F. */
enum class Opcode : std::uint8_t
{
    Nop,
    Mov,     ///< dst = src0
    MovImm,  ///< dst = imm (broadcast)
    Tid,     ///< dst = lane id + warp id * warpSize (thread index)
    CtaId,   ///< dst = block index (broadcast)
    IAdd,    ///< dst = src0 + src1
    ISub,    ///< dst = src0 - src1
    IMul,    ///< dst = src0 * src1
    IMad,    ///< dst = src0 * src1 + src2
    IAddImm, ///< dst = src0 + imm
    IMulImm, ///< dst = src0 * imm
    FAdd,    ///< float add (bit-cast semantics)
    FMul,    ///< float multiply
    FFma,    ///< float fused multiply-add
    Shl,     ///< dst = src0 << (src1 & 31)
    Shr,     ///< dst = src0 >> (src1 & 31)
    And,     ///< dst = src0 & src1
    Or,      ///< dst = src0 | src1
    Xor,     ///< dst = src0 ^ src1
    IMin,    ///< signed minimum
    IMax,    ///< signed maximum
    SetLt,   ///< dst = (int)src0 < (int)src1 ? 1 : 0
    SetGe,   ///< dst = (int)src0 >= (int)src1 ? 1 : 0
    SetEq,   ///< dst = src0 == src1 ? 1 : 0
    SetNe,   ///< dst = src0 != src1 ? 1 : 0
    Selp,    ///< dst = src2 ? src0 : src1 (per lane)
    Rcp,     ///< special-function reciprocal approximation
    Sqrt,    ///< special-function square root approximation
    LdGlobal, ///< dst = mem[src0 + imm]
    StGlobal, ///< mem[src1 + imm] = src0
    LdShared, ///< dst = shmem[src0 + imm]
    StShared, ///< shmem[src1 + imm] = src0
    Bra,     ///< if (src0 != 0 per lane) goto target
    Jmp,     ///< goto target
    Bar,     ///< block-wide barrier
    Exit,    ///< thread terminates
};

/** @return a short mnemonic for @a op. */
const char *opcodeName(Opcode op);

/** Broad functional-unit class used for latency and issue modelling. */
enum class FuClass : std::uint8_t
{
    Alu,     ///< integer/float pipeline
    Sfu,     ///< special function unit (Rcp, Sqrt)
    Mem,     ///< LSU: global/shared memory
    Control, ///< branches, barrier, exit
};

/**
 * One machine instruction. Instances are immutable after kernel
 * construction; all compiler annotations live in side tables keyed by PC.
 */
class Instruction
{
  public:
    Instruction() = default;

    /** Full constructor; prefer the factory helpers in KernelBuilder. */
    Instruction(Opcode op, RegId dst, std::vector<RegId> srcs,
                std::int64_t imm = 0, Pc target = invalidPc);

    Opcode op() const { return _op; }
    RegId dst() const { return _dst; }
    const std::vector<RegId> &srcs() const { return _srcs; }
    std::int64_t imm() const { return _imm; }
    Pc target() const { return _target; }

    /** @return true when the instruction writes a destination register. */
    bool writesReg() const { return _dst != invalidReg; }

    bool isGlobalLoad() const { return _op == Opcode::LdGlobal; }
    bool isGlobalStore() const { return _op == Opcode::StGlobal; }
    bool isSharedAccess() const;
    bool isMemAccess() const;
    bool isBranch() const { return _op == Opcode::Bra; }
    bool isJump() const { return _op == Opcode::Jmp; }
    bool isBarrier() const { return _op == Opcode::Bar; }
    bool isExit() const { return _op == Opcode::Exit; }

    /** @return true for instructions that terminate a basic block. */
    bool isBlockTerminator() const;

    /** Functional-unit class for latency modelling. */
    FuClass fuClass() const;

    /**
     * Compute the destination lane values from source lane values.
     * Memory and control instructions must not be passed here; their
     * effects are applied by the SM pipeline.
     *
     * @param srcs Source operand values, one entry per source register.
     * @return Destination lane values.
     */
    LaneValues evaluate(const std::vector<LaneValues> &srcs) const;

    /** Render as "iadd r1, r2, r3"-style text for debugging. */
    std::string toString() const;

  private:
    Opcode _op = Opcode::Nop;
    RegId _dst = invalidReg;
    std::vector<RegId> _srcs;
    std::int64_t _imm = 0;
    Pc _target = invalidPc;
};

} // namespace regless::ir

#endif // REGLESS_IR_INSTRUCTION_HH
