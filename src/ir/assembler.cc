#include "ir/assembler.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace regless::ir
{

namespace
{

/** Operand signature of one mnemonic. */
struct OpSpec
{
    Opcode op;
    bool hasDst = false;
    unsigned numSrcs = 0;
    bool takesImm = false;  ///< optional trailing immediate
    bool needsImm = false;  ///< immediate is mandatory (movi, iaddi...)
    bool takesTarget = false;
};

const std::map<std::string, OpSpec> &
opTable()
{
    static const std::map<std::string, OpSpec> table = {
        {"nop", {Opcode::Nop}},
        {"mov", {Opcode::Mov, true, 1}},
        {"movi", {Opcode::MovImm, true, 0, true, true}},
        {"tid", {Opcode::Tid, true, 0}},
        {"ctaid", {Opcode::CtaId, true, 0}},
        {"iadd", {Opcode::IAdd, true, 2}},
        {"isub", {Opcode::ISub, true, 2}},
        {"imul", {Opcode::IMul, true, 2}},
        {"imad", {Opcode::IMad, true, 3}},
        {"iaddi", {Opcode::IAddImm, true, 1, true, true}},
        {"imuli", {Opcode::IMulImm, true, 1, true, true}},
        {"fadd", {Opcode::FAdd, true, 2}},
        {"fmul", {Opcode::FMul, true, 2}},
        {"ffma", {Opcode::FFma, true, 3}},
        {"shl", {Opcode::Shl, true, 2}},
        {"shr", {Opcode::Shr, true, 2}},
        {"and", {Opcode::And, true, 2}},
        {"or", {Opcode::Or, true, 2}},
        {"xor", {Opcode::Xor, true, 2}},
        {"imin", {Opcode::IMin, true, 2}},
        {"imax", {Opcode::IMax, true, 2}},
        {"setlt", {Opcode::SetLt, true, 2}},
        {"setge", {Opcode::SetGe, true, 2}},
        {"seteq", {Opcode::SetEq, true, 2}},
        {"setne", {Opcode::SetNe, true, 2}},
        {"selp", {Opcode::Selp, true, 3}},
        {"rcp", {Opcode::Rcp, true, 1}},
        {"sqrt", {Opcode::Sqrt, true, 1}},
        {"ld", {Opcode::LdGlobal, true, 1, true}},
        {"ld.global", {Opcode::LdGlobal, true, 1, true}},
        {"st", {Opcode::StGlobal, false, 2, true}},
        {"st.global", {Opcode::StGlobal, false, 2, true}},
        {"lds", {Opcode::LdShared, true, 1, true}},
        {"ld.shared", {Opcode::LdShared, true, 1, true}},
        {"sts", {Opcode::StShared, false, 2, true}},
        {"st.shared", {Opcode::StShared, false, 2, true}},
        {"bra", {Opcode::Bra, false, 1, false, false, true}},
        {"jmp", {Opcode::Jmp, false, 0, false, false, true}},
        {"bar", {Opcode::Bar}},
        {"exit", {Opcode::Exit}},
    };
    return table;
}

std::string
trim(const std::string &text)
{
    std::size_t first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    std::size_t last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        item = trim(item);
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

RegId
parseReg(unsigned line, const std::string &token)
{
    if (token.size() < 2 || token[0] != 'r')
        throw AssemblyError(line, "expected register, got '" + token +
                                      "'");
    for (std::size_t i = 1; i < token.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(token[i])))
            throw AssemblyError(line, "bad register '" + token + "'");
    }
    unsigned long value = std::stoul(token.substr(1));
    if (value >= invalidReg)
        throw AssemblyError(line, "register number too large");
    return static_cast<RegId>(value);
}

std::int64_t
parseImm(unsigned line, const std::string &token)
{
    try {
        std::size_t pos = 0;
        std::int64_t value = std::stoll(token, &pos, 0);
        if (pos != token.size())
            throw AssemblyError(line, "bad immediate '" + token + "'");
        return value;
    } catch (const AssemblyError &) {
        throw;
    } catch (const std::exception &) {
        throw AssemblyError(line, "bad immediate '" + token + "'");
    }
}

double
parseFrac(unsigned line, const std::string &token)
{
    try {
        return std::stod(token);
    } catch (const std::exception &) {
        throw AssemblyError(line, "bad fraction '" + token + "'");
    }
}

} // namespace

AssemblyError::AssemblyError(unsigned line, const std::string &message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      _line(line)
{
}

Kernel
assemble(const std::string &source, const std::string &default_name)
{
    std::string name = default_name;
    unsigned warps_per_block = 8;
    unsigned work_scale = 1;
    ValueProfile profile;

    struct PendingInsn
    {
        unsigned line;
        Opcode op;
        RegId dst = invalidReg;
        std::vector<RegId> srcs;
        std::int64_t imm = 0;
        std::string target_label; // empty = none
    };
    std::vector<PendingInsn> insns;
    std::map<std::string, Pc> labels;

    std::istringstream stream(source);
    std::string raw;
    unsigned line_no = 0;
    while (std::getline(stream, raw)) {
        ++line_no;
        std::string line = raw;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        if (line[0] == '.') {
            std::istringstream dss(line);
            std::string directive;
            dss >> directive;
            if (directive == ".kernel") {
                dss >> name;
                if (name.empty())
                    throw AssemblyError(line_no, ".kernel needs a name");
            } else if (directive == ".warps_per_block") {
                dss >> warps_per_block;
                if (warps_per_block == 0)
                    throw AssemblyError(line_no,
                                        "warps_per_block must be > 0");
            } else if (directive == ".work_scale") {
                dss >> work_scale;
            } else if (directive == ".values") {
                std::string kv;
                while (dss >> kv) {
                    std::size_t eq = kv.find('=');
                    if (eq == std::string::npos)
                        throw AssemblyError(line_no,
                                            "expected key=value in "
                                            ".values");
                    std::string key = kv.substr(0, eq);
                    double v = parseFrac(line_no, kv.substr(eq + 1));
                    if (key == "constant")
                        profile.constantFrac = v;
                    else if (key == "stride1")
                        profile.stride1Frac = v;
                    else if (key == "stride4")
                        profile.stride4Frac = v;
                    else if (key == "half")
                        profile.halfWarpFrac = v;
                    else
                        throw AssemblyError(line_no, "unknown value "
                                                     "class '" +
                                                         key + "'");
                }
            } else {
                throw AssemblyError(line_no, "unknown directive '" +
                                                 directive + "'");
            }
            continue;
        }

        if (line.back() == ':') {
            std::string label = trim(line.substr(0, line.size() - 1));
            if (label.empty())
                throw AssemblyError(line_no, "empty label");
            if (labels.count(label))
                throw AssemblyError(line_no, "label '" + label +
                                                 "' defined twice");
            labels[label] = static_cast<Pc>(insns.size());
            continue;
        }

        std::istringstream iss(line);
        std::string mnemonic;
        iss >> mnemonic;
        std::transform(mnemonic.begin(), mnemonic.end(),
                       mnemonic.begin(), ::tolower);
        auto it = opTable().find(mnemonic);
        if (it == opTable().end())
            throw AssemblyError(line_no, "unknown mnemonic '" +
                                             mnemonic + "'");
        const OpSpec &spec = it->second;

        std::string rest;
        std::getline(iss, rest);
        std::vector<std::string> ops = splitOperands(rest);

        PendingInsn insn;
        insn.line = line_no;
        insn.op = spec.op;
        std::size_t idx = 0;
        if (spec.hasDst) {
            if (idx >= ops.size())
                throw AssemblyError(line_no, "missing destination");
            insn.dst = parseReg(line_no, ops[idx++]);
        }
        for (unsigned s = 0; s < spec.numSrcs; ++s) {
            if (idx >= ops.size())
                throw AssemblyError(line_no, "missing source operand");
            insn.srcs.push_back(parseReg(line_no, ops[idx++]));
        }
        if (spec.takesTarget) {
            if (idx >= ops.size() || ops[idx].empty() ||
                ops[idx][0] != '@') {
                throw AssemblyError(line_no,
                                    "expected @label branch target");
            }
            insn.target_label = ops[idx++].substr(1);
        }
        if (spec.needsImm && idx >= ops.size())
            throw AssemblyError(line_no, "missing immediate");
        if ((spec.takesImm || spec.needsImm) && idx < ops.size())
            insn.imm = parseImm(line_no, ops[idx++]);
        if (idx < ops.size())
            throw AssemblyError(line_no, "trailing operand '" +
                                             ops[idx] + "'");
        insns.push_back(std::move(insn));
    }

    if (insns.empty())
        throw AssemblyError(line_no, "no instructions");
    if (insns.back().op != Opcode::Exit) {
        PendingInsn exit_insn;
        exit_insn.line = line_no;
        exit_insn.op = Opcode::Exit;
        insns.push_back(exit_insn);
    }

    std::vector<Instruction> out;
    out.reserve(insns.size());
    for (const PendingInsn &p : insns) {
        Pc target = invalidPc;
        if (!p.target_label.empty()) {
            auto lit = labels.find(p.target_label);
            if (lit == labels.end())
                throw AssemblyError(p.line, "undefined label '" +
                                                p.target_label + "'");
            target = lit->second;
        }
        out.emplace_back(p.op, p.dst, p.srcs, p.imm, target);
    }

    Kernel kernel(name, std::move(out));
    kernel.setWarpsPerBlock(warps_per_block);
    kernel.setWorkScale(work_scale);
    kernel.setValueProfile(profile);
    return kernel;
}

Kernel
assembleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open assembly file '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string stem = path;
    std::size_t slash = stem.find_last_of('/');
    if (slash != std::string::npos)
        stem = stem.substr(slash + 1);
    std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos)
        stem = stem.substr(0, dot);
    return assemble(buffer.str(), stem);
}

std::string
disassembleToAsm(const Kernel &kernel)
{
    std::ostringstream oss;
    oss << ".kernel " << kernel.name() << "\n";
    oss << ".warps_per_block " << kernel.warpsPerBlock() << "\n";
    const ValueProfile &p = kernel.valueProfile();
    oss << ".values constant=" << p.constantFrac
        << " stride1=" << p.stride1Frac << " stride4=" << p.stride4Frac
        << " half=" << p.halfWarpFrac << "\n\n";

    // Labels for every branch target.
    std::map<Pc, std::string> labels;
    for (const Instruction &insn : kernel.instructions()) {
        if (insn.target() != invalidPc &&
            !labels.count(insn.target())) {
            labels[insn.target()] =
                "L" + std::to_string(insn.target());
        }
    }

    for (Pc pc = 0; pc < kernel.numInsns(); ++pc) {
        auto lit = labels.find(pc);
        if (lit != labels.end())
            oss << lit->second << ":\n";
        const Instruction &insn = kernel.insn(pc);
        std::string mnemonic = opcodeName(insn.op());
        if (mnemonic == "ld.global")
            mnemonic = "ld";
        else if (mnemonic == "st.global")
            mnemonic = "st";
        else if (mnemonic == "ld.shared")
            mnemonic = "lds";
        else if (mnemonic == "st.shared")
            mnemonic = "sts";
        oss << "    " << mnemonic;
        bool first = true;
        auto sep = [&]() -> std::ostream & {
            oss << (first ? " " : ", ");
            first = false;
            return oss;
        };
        if (insn.writesReg())
            sep() << "r" << insn.dst();
        for (RegId src : insn.srcs())
            sep() << "r" << src;
        if (insn.target() != invalidPc)
            sep() << "@" << labels.at(insn.target());
        const bool imm_form = insn.op() == Opcode::MovImm ||
                              insn.op() == Opcode::IAddImm ||
                              insn.op() == Opcode::IMulImm ||
                              insn.isMemAccess();
        if (imm_form)
            sep() << insn.imm();
        oss << "\n";
    }
    return oss.str();
}

} // namespace regless::ir
