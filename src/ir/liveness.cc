#include "ir/liveness.hh"

#include <algorithm>

#include "common/logging.hh"

namespace regless::ir
{

bool
RegSet::unionWith(const RegSet &other)
{
    bool changed = false;
    for (std::size_t i = 0; i < _bits.size(); ++i) {
        if (other._bits[i] && !_bits[i]) {
            _bits[i] = true;
            changed = true;
        }
    }
    return changed;
}

unsigned
RegSet::count() const
{
    unsigned n = 0;
    for (bool b : _bits)
        n += b;
    return n;
}

std::vector<RegId>
RegSet::toVector() const
{
    std::vector<RegId> out;
    for (std::size_t i = 0; i < _bits.size(); ++i) {
        if (_bits[i])
            out.push_back(static_cast<RegId>(i));
    }
    return out;
}

Liveness::Liveness(const Kernel &kernel, const CfgAnalysis &cfg)
    : _kernel(kernel), _cfg(cfg)
{
    const unsigned num_regs = _kernel.numRegs();
    _defs.assign(num_regs, {});
    _uses.assign(num_regs, {});
    for (Pc pc = 0; pc < _kernel.numInsns(); ++pc) {
        const Instruction &insn = _kernel.insn(pc);
        if (insn.writesReg())
            _defs[insn.dst()].push_back(pc);
        for (RegId r : usedRegs(insn))
            _uses[r].push_back(pc);
    }

    _softDef.assign(_kernel.numInsns(), false);

    // Pass 1: conventional liveness (all definitions kill).
    solveDataflow(/*corrected=*/false);
    // Detect soft definitions against the pass-1 edge liveness.
    detectSoftDefs();
    // Pass 2: corrected liveness (soft definitions keep the value live).
    solveDataflow(/*corrected=*/true);
    computePerPcSets();
}

std::vector<RegId>
Liveness::usedRegs(const Instruction &insn)
{
    // All source operands are reads, including branch predicates and
    // store data/address registers; srcs() already covers those.
    std::vector<RegId> regs = insn.srcs();
    std::sort(regs.begin(), regs.end());
    regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
    return regs;
}

void
Liveness::applyInsnBackward(Pc pc, RegSet &live, bool corrected) const
{
    const Instruction &insn = _kernel.insn(pc);
    if (insn.writesReg()) {
        if (corrected && _softDef[pc]) {
            // A soft definition merges new lanes into the old value:
            // the register stays live above this point.
            live.set(insn.dst());
        } else {
            live.clear(insn.dst());
        }
    }
    for (RegId r : insn.srcs())
        live.set(r);
}

void
Liveness::solveDataflow(bool corrected)
{
    const std::size_t num_blocks = _kernel.blocks().size();
    const unsigned num_regs = _kernel.numRegs();
    _blockLiveIn.assign(num_blocks, RegSet(num_regs));
    _blockLiveOut.assign(num_blocks, RegSet(num_regs));

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t bi = num_blocks; bi-- > 0;) {
            const BasicBlock &bb = _kernel.block(static_cast<BlockId>(bi));
            RegSet out(num_regs);
            for (BlockId s : bb.successors())
                out.unionWith(_blockLiveIn[s]);
            if (!(out == _blockLiveOut[bi])) {
                _blockLiveOut[bi] = out;
                changed = true;
            }
            RegSet live = out;
            for (Pc pc = bb.lastPc() + 1; pc-- > bb.firstPc();)
                applyInsnBackward(pc, live, corrected);
            if (!(live == _blockLiveIn[bi])) {
                _blockLiveIn[bi] = live;
                changed = true;
            }
        }
    }
}

void
Liveness::computePerPcSets()
{
    _liveBeforePc.assign(_kernel.numInsns(), RegSet(_kernel.numRegs()));
    for (const BasicBlock &bb : _kernel.blocks()) {
        RegSet live = _blockLiveOut[bb.id()];
        for (Pc pc = bb.lastPc() + 1; pc-- > bb.firstPc();) {
            applyInsnBackward(pc, live, /*corrected=*/true);
            _liveBeforePc[pc] = live;
        }
    }
}

void
Liveness::detectSoftDefs()
{
    // Paper Algorithm 2, run for every defining instruction. Note this
    // uses pass-1 (conventional) block liveness, matching the paper's
    // staging: softness is a property of the def site's control
    // conditions relative to other defs that reach uses.
    for (Pc pc = 0; pc < _kernel.numInsns(); ++pc) {
        const Instruction &insn = _kernel.insn(pc);
        if (!insn.writesReg())
            continue;
        const RegId reg = insn.dst();
        const BlockId insn_bb = _kernel.blockOf(pc);
        if (!_cfg.reachable(insn_bb))
            continue;

        bool soft = false;
        for (BlockId dom_bb : _cfg.dominatorsOf(insn_bb)) {
            if (dom_bb == insn_bb || !_cfg.reachable(dom_bb))
                continue;
            // Skip dominators separated from the candidate by a
            // reconvergence point: a strict postdominator of domBB that
            // also dominates the candidate block.
            bool reconverged = false;
            for (BlockId pd : _cfg.postdominatorsOf(dom_bb)) {
                if (pd != dom_bb && _cfg.dominates(pd, insn_bb)) {
                    reconverged = true;
                    break;
                }
            }
            if (reconverged)
                continue;
            for (BlockId succ : _kernel.block(dom_bb).successors()) {
                if (_cfg.dominates(succ, insn_bb))
                    continue;
                if (liveOnEdge(dom_bb, succ, reg)) {
                    soft = true;
                    break;
                }
            }
            if (soft)
                break;
        }
        _softDef[pc] = soft;
    }
}

bool
Liveness::liveBefore(Pc pc, RegId reg) const
{
    return _liveBeforePc.at(pc).test(reg);
}

bool
Liveness::liveAfter(Pc pc, RegId reg) const
{
    const BasicBlock &bb = _kernel.block(_kernel.blockOf(pc));
    if (pc == bb.lastPc())
        return _blockLiveOut[bb.id()].test(reg);
    return _liveBeforePc.at(pc + 1).test(reg);
}

unsigned
Liveness::liveCountBefore(Pc pc) const
{
    return _liveBeforePc.at(pc).count();
}

std::vector<RegId>
Liveness::liveRegsBefore(Pc pc) const
{
    return _liveBeforePc.at(pc).toVector();
}

bool
Liveness::blockLiveIn(BlockId bb, RegId reg) const
{
    return _blockLiveIn.at(bb).test(reg);
}

bool
Liveness::blockLiveOut(BlockId bb, RegId reg) const
{
    return _blockLiveOut.at(bb).test(reg);
}

bool
Liveness::liveOnEdge(BlockId from, BlockId to, RegId reg) const
{
    (void)from; // Liveness on an edge is the target's live-in.
    return _blockLiveIn.at(to).test(reg);
}

bool
Liveness::hasSoftDef(RegId reg) const
{
    for (Pc pc : _defs.at(reg)) {
        if (_softDef[pc])
            return true;
    }
    return false;
}

const std::vector<Pc> &
Liveness::defsOf(RegId reg) const
{
    return _defs.at(reg);
}

const std::vector<Pc> &
Liveness::usesOf(RegId reg) const
{
    return _uses.at(reg);
}

bool
Liveness::isLastUse(Pc pc, RegId reg) const
{
    const Instruction &insn = _kernel.insn(pc);
    const auto &srcs = insn.srcs();
    if (std::find(srcs.begin(), srcs.end(), reg) == srcs.end())
        return false;
    return !liveAfter(pc, reg);
}

namespace
{

/**
 * Blocks reachable from @a from without entering @a stop (the
 * branch's reconvergence point; invalidBlock = no boundary).
 */
BlockSet
influenceFrom(const Kernel &kernel, BlockId from, BlockId stop)
{
    BlockSet seen(kernel.blocks().size());
    if (from == stop)
        return seen;
    std::vector<BlockId> work{from};
    seen.set(from);
    while (!work.empty()) {
        BlockId bb = work.back();
        work.pop_back();
        for (BlockId succ : kernel.block(bb).successors()) {
            if (succ == stop || seen.test(succ))
                continue;
            seen.set(succ);
            work.push_back(succ);
        }
    }
    return seen;
}

} // namespace

bool
divergentSiblingMayRead(const Kernel &kernel, const CfgAnalysis &cfg,
                        const Liveness &live, BlockId b, RegId reg)
{
    const std::size_t num_blocks = kernel.blocks().size();
    for (const BasicBlock &branch : kernel.blocks()) {
        const auto &succs = branch.successors();
        if (!cfg.reachable(branch.id()) || succs.size() < 2)
            continue;
        const BlockId rp = cfg.immediatePostdominator(branch.id());

        std::vector<BlockSet> influence;
        influence.reserve(succs.size());
        for (BlockId succ : succs)
            influence.push_back(influenceFrom(kernel, succ, rp));

        for (std::size_t i = 0; i < succs.size(); ++i) {
            if (!influence[i].test(b))
                continue;
            // A diverged warp runs the other sides after this one.
            for (std::size_t j = 0; j < succs.size(); ++j) {
                if (j == i)
                    continue;
                for (BlockId d = 0; d < num_blocks; ++d) {
                    if (influence[j].test(d) &&
                        live.blockLiveIn(d, reg)) {
                        return true;
                    }
                }
            }
        }
    }
    return false;
}

} // namespace regless::ir
