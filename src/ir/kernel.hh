/**
 * @file
 * Kernel: an instruction stream plus its control-flow graph.
 */

#ifndef REGLESS_IR_KERNEL_HH
#define REGLESS_IR_KERNEL_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "ir/basic_block.hh"
#include "ir/instruction.hh"

namespace regless::ir
{

/**
 * Fractions describing the lane-value structure of data returned by the
 * kernel's global loads. The eviction compressor (paper section 5.3)
 * matches constant, stride-1, stride-4, and half-warp patterns, so these
 * fractions determine each workload's register compressibility.
 * Fractions must sum to <= 1; the remainder is incompressible noise.
 */
struct ValueProfile
{
    double constantFrac = 0.3;
    double stride1Frac = 0.3;
    double stride4Frac = 0.1;
    double halfWarpFrac = 0.1;
};

/**
 * One GPU kernel. Instructions are immutable after construction;
 * buildCfg() derives basic blocks and edges. The kernel also records
 * launch geometry defaults used by the workload generators.
 */
class Kernel
{
  public:
    Kernel(std::string name, std::vector<Instruction> insns);

    const std::string &name() const { return _name; }

    const std::vector<Instruction> &instructions() const { return _insns; }
    const Instruction &insn(Pc pc) const { return _insns.at(pc); }
    Pc numInsns() const { return static_cast<Pc>(_insns.size()); }

    const std::vector<BasicBlock> &blocks() const { return _blocks; }
    const BasicBlock &block(BlockId id) const { return _blocks.at(id); }

    /** Block containing @a pc. */
    BlockId blockOf(Pc pc) const { return _pcToBlock.at(pc); }

    /** Highest register number used, plus one. */
    unsigned numRegs() const { return _numRegs; }

    /** Warps per thread block (launch geometry default). */
    unsigned warpsPerBlock() const { return _warpsPerBlock; }
    void setWarpsPerBlock(unsigned w) { _warpsPerBlock = w; }

    /** Dynamic iteration hint: loop trip counts scale with this. */
    unsigned workScale() const { return _workScale; }
    void setWorkScale(unsigned s) { _workScale = s; }

    const ValueProfile &valueProfile() const { return _valueProfile; }
    void setValueProfile(const ValueProfile &p) { _valueProfile = p; }

    /** Render the full instruction listing for debugging. */
    std::string disassemble() const;

  private:
    /** Partition the instruction stream into blocks and wire edges. */
    void buildCfg();

    /** Validate branch targets and operand register numbers. */
    void validate() const;

    std::string _name;
    std::vector<Instruction> _insns;
    std::vector<BasicBlock> _blocks;
    std::vector<BlockId> _pcToBlock;
    unsigned _numRegs = 0;
    unsigned _warpsPerBlock = 8;
    unsigned _workScale = 1;
    ValueProfile _valueProfile;
};

} // namespace regless::ir

#endif // REGLESS_IR_KERNEL_HH
