/**
 * @file
 * Dominator, postdominator, reachability, and loop analyses over a
 * kernel's CFG. These feed the soft-definition detector (paper
 * Algorithm 2) and the invalidation-placement pass.
 */

#ifndef REGLESS_IR_CFG_ANALYSIS_HH
#define REGLESS_IR_CFG_ANALYSIS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/kernel.hh"

namespace regless::ir
{

/** Dense bit set over block ids; small helper for dataflow fixpoints. */
class BlockSet
{
  public:
    explicit BlockSet(std::size_t num_blocks = 0, bool value = false)
        : _bits(num_blocks, value)
    {
    }

    bool test(BlockId id) const { return _bits[id]; }
    void set(BlockId id) { _bits[id] = true; }
    void clear(BlockId id) { _bits[id] = false; }
    std::size_t size() const { return _bits.size(); }

    /** this &= other; @return true when any bit changed. */
    bool intersectWith(const BlockSet &other);

    bool operator==(const BlockSet &other) const = default;

  private:
    std::vector<bool> _bits;
};

/**
 * Forward and reverse dominance over one kernel. Unreachable blocks are
 * reported as dominated by everything (the dataflow convention); callers
 * should filter on reachable().
 */
class CfgAnalysis
{
  public:
    explicit CfgAnalysis(const Kernel &kernel);

    /** @return true when control must pass @a a before reaching @a b. */
    bool dominates(BlockId a, BlockId b) const;

    /** @return true when control must pass @a a after leaving @a b. */
    bool postdominates(BlockId a, BlockId b) const;

    /** Blocks dominating @a b, including @a b itself. */
    std::vector<BlockId> dominatorsOf(BlockId b) const;

    /** Blocks postdominating @a b, including @a b itself. */
    std::vector<BlockId> postdominatorsOf(BlockId b) const;

    /** @return true when @a b is reachable from the entry block. */
    bool reachable(BlockId b) const { return _reachable.test(b); }

    /** @return true when edge from->to is a natural-loop back edge. */
    bool isBackEdge(BlockId from, BlockId to) const;

    /** All back edges (from, to) where to dominates from. */
    const std::vector<std::pair<BlockId, BlockId>> &
    backEdges() const
    {
        return _backEdges;
    }

    /**
     * Blocks in the natural loop of back edge (@a from, @a to): the set
     * of blocks that can reach @a from without passing through @a to,
     * plus the header @a to itself.
     */
    std::vector<BlockId> naturalLoop(BlockId from, BlockId to) const;

    /** @return true when @a b sits inside any natural loop. */
    bool inAnyLoop(BlockId b) const { return _inLoop.test(b); }

    /**
     * Immediate postdominator of @a b: the nearest strict
     * postdominator, used as the SIMT reconvergence point for branches
     * terminating @a b. Returns invalidBlock for exit blocks.
     */
    BlockId immediatePostdominator(BlockId b) const;

  private:
    void computeReachability();
    void computeDominators();
    void computePostdominators();
    void findLoops();

    const Kernel &_kernel;
    std::vector<BlockSet> _dom;
    std::vector<BlockSet> _pdom;
    BlockSet _reachable;
    BlockSet _inLoop;
    std::vector<std::pair<BlockId, BlockId>> _backEdges;
};

} // namespace regless::ir

#endif // REGLESS_IR_CFG_ANALYSIS_HH
