/**
 * @file
 * GPU-correct register liveness.
 *
 * Standard liveness assumes every definition kills the whole register,
 * which is wrong under SIMT divergence: a definition executed with a
 * partial lane mask (a "soft definition", paper section 4.4) leaves the
 * inactive lanes' old values live. The analysis here runs in two passes:
 * a conventional pass, then soft-definition detection (paper Algorithm
 * 2), then a corrected pass in which soft definitions neither kill the
 * register nor start a fresh range — they additionally *use* the old
 * value, since the hardware must merge it with the new lanes.
 */

#ifndef REGLESS_IR_LIVENESS_HH
#define REGLESS_IR_LIVENESS_HH

#include <vector>

#include "ir/cfg_analysis.hh"
#include "ir/kernel.hh"

namespace regless::ir
{

/** Dense bit set over register ids. */
class RegSet
{
  public:
    explicit RegSet(std::size_t num_regs = 0) : _bits(num_regs, false) {}

    bool test(RegId r) const { return _bits[r]; }
    void set(RegId r) { _bits[r] = true; }
    void clear(RegId r) { _bits[r] = false; }
    std::size_t size() const { return _bits.size(); }

    /** this |= other; @return true when any bit changed. */
    bool unionWith(const RegSet &other);

    /** Number of set bits. */
    unsigned count() const;

    /** Set bits as a sorted vector. */
    std::vector<RegId> toVector() const;

    bool operator==(const RegSet &other) const = default;

  private:
    std::vector<bool> _bits;
};

/** Liveness facts for one kernel. */
class Liveness
{
  public:
    Liveness(const Kernel &kernel, const CfgAnalysis &cfg);

    /** Registers read by @a insn (sources, incl. branch predicates). */
    static std::vector<RegId> usedRegs(const Instruction &insn);

    /** @return true when @a reg is live immediately before @a pc. */
    bool liveBefore(Pc pc, RegId reg) const;

    /** @return true when @a reg is live immediately after @a pc. */
    bool liveAfter(Pc pc, RegId reg) const;

    /** Number of registers live immediately before @a pc. */
    unsigned liveCountBefore(Pc pc) const;

    /** Registers live immediately before @a pc. */
    std::vector<RegId> liveRegsBefore(Pc pc) const;

    bool blockLiveIn(BlockId bb, RegId reg) const;
    bool blockLiveOut(BlockId bb, RegId reg) const;

    /**
     * @return true when @a reg is live along the CFG edge @a from ->
     * @a to, i.e. live into @a to.
     */
    bool liveOnEdge(BlockId from, BlockId to, RegId reg) const;

    /** @return true when the definition at @a pc is a soft definition. */
    bool isSoftDef(Pc pc) const { return _softDef[pc]; }

    /** @return true when @a reg has any soft definition in the kernel. */
    bool hasSoftDef(RegId reg) const;

    /** PCs that define @a reg. */
    const std::vector<Pc> &defsOf(RegId reg) const;

    /** PCs that read @a reg. */
    const std::vector<Pc> &usesOf(RegId reg) const;

    /**
     * @return true when @a pc reads @a reg and the value is dead
     * afterwards (accounting for divergence-corrected liveness).
     */
    bool isLastUse(Pc pc, RegId reg) const;

  private:
    /** Effective gen/kill at @a pc under the corrected (pass-2) rules. */
    void applyInsnBackward(Pc pc, RegSet &live, bool corrected) const;

    /** One fixpoint over blocks; fills block live-in/out. */
    void solveDataflow(bool corrected);

    /** Fill the per-PC live-before cache from block live-outs. */
    void computePerPcSets();

    void detectSoftDefs();

    const Kernel &_kernel;
    const CfgAnalysis &_cfg;
    std::vector<RegSet> _blockLiveIn;
    std::vector<RegSet> _blockLiveOut;
    std::vector<RegSet> _liveBeforePc;
    std::vector<bool> _softDef;
    std::vector<std::vector<Pc>> _defs;
    std::vector<std::vector<Pc>> _uses;
};

/**
 * SIMT-order liveness escape: @return true when a *divergent sibling*
 * of block @a b may still read @a reg after @a b executes.
 *
 * CFG liveness proves death along graph paths, but a diverged warp
 * executes both sides of a branch in sequence — then-side first, then
 * the else-side — with no CFG edge between them. A value that is dead
 * after @a b on every CFG path can therefore still be read by blocks
 * on the *other* successor paths of any branch whose influence region
 * (blocks between a successor and the branch's reconvergence point,
 * per CfgAnalysis::immediatePostdominator) contains @a b. Destroying
 * the last copy of such a value (an invalidating preload, §4.3) is
 * only sound when this predicate is false as well.
 */
bool divergentSiblingMayRead(const Kernel &kernel, const CfgAnalysis &cfg,
                             const Liveness &live, BlockId b, RegId reg);

} // namespace regless::ir

#endif // REGLESS_IR_LIVENESS_HH
