/**
 * @file
 * Basic blocks: maximal straight-line instruction ranges.
 */

#ifndef REGLESS_IR_BASIC_BLOCK_HH
#define REGLESS_IR_BASIC_BLOCK_HH

#include <vector>

#include "common/types.hh"

namespace regless::ir
{

/** Index of a basic block within its kernel. */
using BlockId = std::uint32_t;

constexpr BlockId invalidBlock = 0xffffffffu;

/**
 * A half-open PC range [firstPc, lastPc] with CFG edges. Blocks are
 * created by Kernel::buildCfg and never span a branch, jump, barrier,
 * exit, or branch target.
 */
class BasicBlock
{
  public:
    BasicBlock(BlockId id, Pc first_pc, Pc last_pc)
        : _id(id), _firstPc(first_pc), _lastPc(last_pc)
    {
    }

    BlockId id() const { return _id; }

    /** PC of the first instruction in the block. */
    Pc firstPc() const { return _firstPc; }

    /** PC of the last instruction in the block (inclusive). */
    Pc lastPc() const { return _lastPc; }

    /** Number of instructions in the block. */
    unsigned size() const { return _lastPc - _firstPc + 1; }

    const std::vector<BlockId> &successors() const { return _succs; }
    const std::vector<BlockId> &predecessors() const { return _preds; }

    /** @return true when @a pc falls inside this block. */
    bool contains(Pc pc) const { return pc >= _firstPc && pc <= _lastPc; }

    void addSuccessor(BlockId succ) { _succs.push_back(succ); }
    void addPredecessor(BlockId pred) { _preds.push_back(pred); }

  private:
    BlockId _id;
    Pc _firstPc;
    Pc _lastPc;
    std::vector<BlockId> _succs;
    std::vector<BlockId> _preds;
};

} // namespace regless::ir

#endif // REGLESS_IR_BASIC_BLOCK_HH
