#include "ir/cfg_analysis.hh"

#include <deque>

#include "common/logging.hh"

namespace regless::ir
{

bool
BlockSet::intersectWith(const BlockSet &other)
{
    bool changed = false;
    for (std::size_t i = 0; i < _bits.size(); ++i) {
        if (_bits[i] && !other._bits[i]) {
            _bits[i] = false;
            changed = true;
        }
    }
    return changed;
}

CfgAnalysis::CfgAnalysis(const Kernel &kernel)
    : _kernel(kernel),
      _reachable(kernel.blocks().size()),
      _inLoop(kernel.blocks().size())
{
    computeReachability();
    computeDominators();
    computePostdominators();
    findLoops();
}

void
CfgAnalysis::computeReachability()
{
    std::deque<BlockId> work{0};
    _reachable.set(0);
    while (!work.empty()) {
        BlockId b = work.front();
        work.pop_front();
        for (BlockId s : _kernel.block(b).successors()) {
            if (!_reachable.test(s)) {
                _reachable.set(s);
                work.push_back(s);
            }
        }
    }
}

void
CfgAnalysis::computeDominators()
{
    const std::size_t n = _kernel.blocks().size();
    _dom.assign(n, BlockSet(n, true));
    _dom[0] = BlockSet(n, false);
    _dom[0].set(0);

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b = 1; b < n; ++b) {
            if (!_reachable.test(b))
                continue;
            BlockSet inter(n, true);
            bool any_pred = false;
            for (BlockId p : _kernel.block(b).predecessors()) {
                if (!_reachable.test(p))
                    continue;
                inter.intersectWith(_dom[p]);
                any_pred = true;
            }
            if (!any_pred)
                inter = BlockSet(n, false);
            inter.set(b);
            if (!(inter == _dom[b])) {
                _dom[b] = inter;
                changed = true;
            }
        }
    }
}

void
CfgAnalysis::computePostdominators()
{
    const std::size_t n = _kernel.blocks().size();
    // Virtual exit: every block with no successors postdominates itself
    // only; others intersect over successors.
    std::vector<bool> is_exit(n, false);
    for (BlockId b = 0; b < n; ++b)
        is_exit[b] = _kernel.block(b).successors().empty();

    _pdom.assign(n, BlockSet(n, true));
    for (BlockId b = 0; b < n; ++b) {
        if (is_exit[b]) {
            _pdom[b] = BlockSet(n, false);
            _pdom[b].set(b);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate in reverse id order: blocks are laid out roughly in
        // program order, so this converges quickly.
        for (BlockId bi = n; bi-- > 0;) {
            if (is_exit[bi] || !_reachable.test(bi))
                continue;
            BlockSet inter(n, true);
            bool any_succ = false;
            for (BlockId s : _kernel.block(bi).successors()) {
                inter.intersectWith(_pdom[s]);
                any_succ = true;
            }
            if (!any_succ)
                inter = BlockSet(n, false);
            inter.set(bi);
            if (!(inter == _pdom[bi])) {
                _pdom[bi] = inter;
                changed = true;
            }
        }
    }
}

void
CfgAnalysis::findLoops()
{
    for (const BasicBlock &bb : _kernel.blocks()) {
        if (!_reachable.test(bb.id()))
            continue;
        for (BlockId s : bb.successors()) {
            if (dominates(s, bb.id()))
                _backEdges.emplace_back(bb.id(), s);
        }
    }
    for (const auto &[from, to] : _backEdges) {
        for (BlockId b : naturalLoop(from, to))
            _inLoop.set(b);
    }
}

bool
CfgAnalysis::dominates(BlockId a, BlockId b) const
{
    return _dom.at(b).test(a);
}

bool
CfgAnalysis::postdominates(BlockId a, BlockId b) const
{
    return _pdom.at(b).test(a);
}

std::vector<BlockId>
CfgAnalysis::dominatorsOf(BlockId b) const
{
    std::vector<BlockId> out;
    for (BlockId i = 0; i < _dom.at(b).size(); ++i) {
        if (_dom[b].test(i))
            out.push_back(i);
    }
    return out;
}

std::vector<BlockId>
CfgAnalysis::postdominatorsOf(BlockId b) const
{
    std::vector<BlockId> out;
    for (BlockId i = 0; i < _pdom.at(b).size(); ++i) {
        if (_pdom[b].test(i))
            out.push_back(i);
    }
    return out;
}

bool
CfgAnalysis::isBackEdge(BlockId from, BlockId to) const
{
    for (const auto &[f, t] : _backEdges) {
        if (f == from && t == to)
            return true;
    }
    return false;
}

BlockId
CfgAnalysis::immediatePostdominator(BlockId b) const
{
    // The nearest strict postdominator: the one that every other
    // strict postdominator of b also postdominates... from the other
    // side: p is immediate iff no other strict pdom q of b has p as a
    // strict pdom of q (p is the closest to b).
    BlockId best = invalidBlock;
    for (BlockId p : postdominatorsOf(b)) {
        if (p == b)
            continue;
        bool closest = true;
        for (BlockId q : postdominatorsOf(b)) {
            if (q == b || q == p)
                continue;
            // If p postdominates q, then q is between b and p: p is
            // not the closest.
            if (postdominates(p, q)) {
                closest = false;
                break;
            }
        }
        if (closest) {
            best = p;
            break;
        }
    }
    return best;
}

std::vector<BlockId>
CfgAnalysis::naturalLoop(BlockId from, BlockId to) const
{
    const std::size_t n = _kernel.blocks().size();
    BlockSet in_loop(n);
    in_loop.set(to);
    std::deque<BlockId> work;
    if (!in_loop.test(from)) {
        in_loop.set(from);
        work.push_back(from);
    }
    while (!work.empty()) {
        BlockId b = work.front();
        work.pop_front();
        for (BlockId p : _kernel.block(b).predecessors()) {
            if (!in_loop.test(p)) {
                in_loop.set(p);
                work.push_back(p);
            }
        }
    }
    std::vector<BlockId> out;
    for (BlockId b = 0; b < n; ++b) {
        if (in_loop.test(b))
            out.push_back(b);
    }
    return out;
}

} // namespace regless::ir
