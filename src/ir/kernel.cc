#include "ir/kernel.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace regless::ir
{

Kernel::Kernel(std::string name, std::vector<Instruction> insns)
    : _name(std::move(name)), _insns(std::move(insns))
{
    if (_insns.empty())
        fatal("kernel '", _name, "' has no instructions");
    validate();

    for (const Instruction &insn : _insns) {
        if (insn.writesReg())
            _numRegs = std::max<unsigned>(_numRegs, insn.dst() + 1);
        for (RegId src : insn.srcs())
            _numRegs = std::max<unsigned>(_numRegs, src + 1);
    }

    buildCfg();
}

void
Kernel::validate() const
{
    bool has_exit = false;
    for (Pc pc = 0; pc < _insns.size(); ++pc) {
        const Instruction &insn = _insns[pc];
        if (insn.isBranch() || insn.isJump()) {
            if (insn.target() >= _insns.size()) {
                fatal("kernel '", _name, "': pc ", pc,
                      " branches to out-of-range target ", insn.target());
            }
        }
        if (insn.isBranch() && insn.srcs().empty()) {
            fatal("kernel '", _name, "': conditional branch at pc ", pc,
                  " has no predicate source");
        }
        if (insn.isExit())
            has_exit = true;
    }
    if (!has_exit)
        fatal("kernel '", _name, "' has no exit instruction");
    if (!_insns.back().isExit() && !_insns.back().isJump() &&
        !_insns.back().isBranch()) {
        fatal("kernel '", _name, "' can fall off the end of the stream");
    }
}

void
Kernel::buildCfg()
{
    // Leaders: entry, branch targets, and instructions following any
    // terminator (branch, jump, barrier, exit).
    std::set<Pc> leaders;
    leaders.insert(0);
    for (Pc pc = 0; pc < _insns.size(); ++pc) {
        const Instruction &insn = _insns[pc];
        if (insn.isBranch() || insn.isJump())
            leaders.insert(insn.target());
        if (insn.isBlockTerminator() && pc + 1 < _insns.size())
            leaders.insert(pc + 1);
    }

    std::vector<Pc> starts(leaders.begin(), leaders.end());
    _blocks.clear();
    _blocks.reserve(starts.size());
    for (std::size_t i = 0; i < starts.size(); ++i) {
        Pc first = starts[i];
        Pc last = (i + 1 < starts.size()) ? starts[i + 1] - 1
                                          : numInsns() - 1;
        _blocks.emplace_back(static_cast<BlockId>(i), first, last);
    }

    _pcToBlock.assign(_insns.size(), invalidBlock);
    for (const BasicBlock &bb : _blocks) {
        for (Pc pc = bb.firstPc(); pc <= bb.lastPc(); ++pc)
            _pcToBlock[pc] = bb.id();
    }

    for (BasicBlock &bb : _blocks) {
        const Instruction &term = _insns[bb.lastPc()];
        std::vector<BlockId> succs;
        if (term.isExit()) {
            // no successors
        } else if (term.isJump()) {
            succs.push_back(_pcToBlock[term.target()]);
        } else if (term.isBranch()) {
            // Fall-through first, then taken target.
            if (bb.lastPc() + 1 < numInsns())
                succs.push_back(_pcToBlock[bb.lastPc() + 1]);
            succs.push_back(_pcToBlock[term.target()]);
        } else {
            // Barrier or plain fall-through into the next block.
            if (bb.lastPc() + 1 < numInsns())
                succs.push_back(_pcToBlock[bb.lastPc() + 1]);
        }
        // Deduplicate (a branch whose target is the fall-through).
        std::sort(succs.begin(), succs.end());
        succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
        for (BlockId s : succs)
            bb.addSuccessor(s);
    }

    for (const BasicBlock &bb : _blocks) {
        for (BlockId s : bb.successors())
            _blocks[s].addPredecessor(bb.id());
    }
}

std::string
Kernel::disassemble() const
{
    std::ostringstream oss;
    oss << "kernel " << _name << " (" << numInsns() << " insns, "
        << _blocks.size() << " blocks, " << _numRegs << " regs)\n";
    for (const BasicBlock &bb : _blocks) {
        oss << "BB" << bb.id() << ":\n";
        for (Pc pc = bb.firstPc(); pc <= bb.lastPc(); ++pc)
            oss << "  " << pc << ": " << _insns[pc].toString() << "\n";
    }
    return oss.str();
}

} // namespace regless::ir
