#include "ir/instruction.hh"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace regless::ir
{

namespace
{

float
asFloat(std::uint32_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

std::uint32_t
asBits(float f)
{
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

} // namespace

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Mov: return "mov";
      case Opcode::MovImm: return "movi";
      case Opcode::Tid: return "tid";
      case Opcode::CtaId: return "ctaid";
      case Opcode::IAdd: return "iadd";
      case Opcode::ISub: return "isub";
      case Opcode::IMul: return "imul";
      case Opcode::IMad: return "imad";
      case Opcode::IAddImm: return "iaddi";
      case Opcode::IMulImm: return "imuli";
      case Opcode::FAdd: return "fadd";
      case Opcode::FMul: return "fmul";
      case Opcode::FFma: return "ffma";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::IMin: return "imin";
      case Opcode::IMax: return "imax";
      case Opcode::SetLt: return "setlt";
      case Opcode::SetGe: return "setge";
      case Opcode::SetEq: return "seteq";
      case Opcode::SetNe: return "setne";
      case Opcode::Selp: return "selp";
      case Opcode::Rcp: return "rcp";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::LdGlobal: return "ld.global";
      case Opcode::StGlobal: return "st.global";
      case Opcode::LdShared: return "ld.shared";
      case Opcode::StShared: return "st.shared";
      case Opcode::Bra: return "bra";
      case Opcode::Jmp: return "jmp";
      case Opcode::Bar: return "bar";
      case Opcode::Exit: return "exit";
    }
    return "?";
}

Instruction::Instruction(Opcode op, RegId dst, std::vector<RegId> srcs,
                         std::int64_t imm, Pc target)
    : _op(op), _dst(dst), _srcs(std::move(srcs)), _imm(imm), _target(target)
{
}

bool
Instruction::isSharedAccess() const
{
    return _op == Opcode::LdShared || _op == Opcode::StShared;
}

bool
Instruction::isMemAccess() const
{
    return isGlobalLoad() || isGlobalStore() || isSharedAccess();
}

bool
Instruction::isBlockTerminator() const
{
    return isBranch() || isJump() || isExit() || isBarrier();
}

FuClass
Instruction::fuClass() const
{
    switch (_op) {
      case Opcode::Rcp:
      case Opcode::Sqrt:
        return FuClass::Sfu;
      case Opcode::LdGlobal:
      case Opcode::StGlobal:
      case Opcode::LdShared:
      case Opcode::StShared:
        return FuClass::Mem;
      case Opcode::Bra:
      case Opcode::Jmp:
      case Opcode::Bar:
      case Opcode::Exit:
        return FuClass::Control;
      default:
        return FuClass::Alu;
    }
}

LaneValues
Instruction::evaluate(const std::vector<LaneValues> &srcs) const
{
    auto src = [&](unsigned idx, unsigned lane) -> std::uint32_t {
        return srcs.at(idx)[lane];
    };

    LaneValues out{};
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        std::uint32_t v = 0;
        switch (_op) {
          case Opcode::Mov:
            v = src(0, lane);
            break;
          case Opcode::MovImm:
            v = static_cast<std::uint32_t>(_imm);
            break;
          case Opcode::Tid:
            // Warp-relative offset is added by the SM; evaluate yields
            // the lane component so the IR stays context-free.
            v = lane + static_cast<std::uint32_t>(_imm);
            break;
          case Opcode::CtaId:
            v = static_cast<std::uint32_t>(_imm);
            break;
          case Opcode::IAdd:
            v = src(0, lane) + src(1, lane);
            break;
          case Opcode::ISub:
            v = src(0, lane) - src(1, lane);
            break;
          case Opcode::IMul:
            v = src(0, lane) * src(1, lane);
            break;
          case Opcode::IMad:
            v = src(0, lane) * src(1, lane) + src(2, lane);
            break;
          case Opcode::IAddImm:
            v = src(0, lane) + static_cast<std::uint32_t>(_imm);
            break;
          case Opcode::IMulImm:
            v = src(0, lane) * static_cast<std::uint32_t>(_imm);
            break;
          case Opcode::FAdd:
            v = asBits(asFloat(src(0, lane)) + asFloat(src(1, lane)));
            break;
          case Opcode::FMul:
            v = asBits(asFloat(src(0, lane)) * asFloat(src(1, lane)));
            break;
          case Opcode::FFma:
            v = asBits(asFloat(src(0, lane)) * asFloat(src(1, lane)) +
                       asFloat(src(2, lane)));
            break;
          case Opcode::Shl:
            v = src(0, lane) << (src(1, lane) & 31);
            break;
          case Opcode::Shr:
            v = src(0, lane) >> (src(1, lane) & 31);
            break;
          case Opcode::And:
            v = src(0, lane) & src(1, lane);
            break;
          case Opcode::Or:
            v = src(0, lane) | src(1, lane);
            break;
          case Opcode::Xor:
            v = src(0, lane) ^ src(1, lane);
            break;
          case Opcode::IMin:
            v = static_cast<std::uint32_t>(
                std::min(static_cast<std::int32_t>(src(0, lane)),
                         static_cast<std::int32_t>(src(1, lane))));
            break;
          case Opcode::IMax:
            v = static_cast<std::uint32_t>(
                std::max(static_cast<std::int32_t>(src(0, lane)),
                         static_cast<std::int32_t>(src(1, lane))));
            break;
          case Opcode::SetLt:
            v = static_cast<std::int32_t>(src(0, lane)) <
                static_cast<std::int32_t>(src(1, lane));
            break;
          case Opcode::SetGe:
            v = static_cast<std::int32_t>(src(0, lane)) >=
                static_cast<std::int32_t>(src(1, lane));
            break;
          case Opcode::SetEq:
            v = src(0, lane) == src(1, lane);
            break;
          case Opcode::SetNe:
            v = src(0, lane) != src(1, lane);
            break;
          case Opcode::Selp:
            v = src(2, lane) ? src(0, lane) : src(1, lane);
            break;
          case Opcode::Rcp: {
            float f = asFloat(src(0, lane));
            v = asBits(f == 0.0f ? 0.0f : 1.0f / f);
            break;
          }
          case Opcode::Sqrt: {
            float f = asFloat(src(0, lane));
            v = asBits(f < 0.0f ? 0.0f : std::sqrt(f));
            break;
          }
          default:
            panic("Instruction::evaluate on non-ALU opcode ",
                  opcodeName(_op));
        }
        out[lane] = v;
    }
    return out;
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << opcodeName(_op);
    bool first = true;
    auto sep = [&]() -> std::ostream & {
        oss << (first ? " " : ", ");
        first = false;
        return oss;
    };
    if (_dst != invalidReg)
        sep() << "r" << _dst;
    for (RegId s : _srcs)
        sep() << "r" << s;
    if (_op == Opcode::MovImm || _op == Opcode::IAddImm ||
        _op == Opcode::IMulImm || isMemAccess()) {
        sep() << _imm;
    }
    if (_target != invalidPc)
        sep() << "@" << _target;
    return oss.str();
}

} // namespace regless::ir
