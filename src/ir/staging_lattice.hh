/**
 * @file
 * Abstract staging-location lattice for register values.
 *
 * Both the compiler's static staging checker and the runtime shadow
 * checker reason about *where* a register's architecturally live value
 * can be at a program point: staged in the OSU, saved in the backing
 * store, destroyed by an invalidating read, or intentionally dead
 * after an erase. A StageSet is the powerset of those locations (plus
 * Undef for "never defined on this path"), ordered by set inclusion:
 * the empty set is bottom ("point not reached"), union is join, and a
 * read is sound only when every element of the set is Staged or
 * Backing.
 */

#ifndef REGLESS_IR_STAGING_LATTICE_HH
#define REGLESS_IR_STAGING_LATTICE_HH

#include <cstdint>
#include <string>

namespace regless::ir
{

/** One possible abstract location of a register's current value. */
enum class StageLoc : std::uint8_t
{
    Undef,       ///< never defined on some path to this point
    Staged,      ///< resident in the operand staging unit
    Backing,     ///< recoverable from the backing store (L1/compressor)
    Invalidated, ///< destroyed by an invalidating read or §4.4 clear
    Dead,        ///< explicitly freed by an erase annotation
};

constexpr unsigned numStageLocs = 5;

/** Short lower-case name, e.g. "staged". */
const char *stageLocName(StageLoc loc);

/** A set of possible StageLocs; the abstract value of one register. */
class StageSet
{
  public:
    constexpr StageSet() = default;

    constexpr static StageSet
    of(StageLoc loc)
    {
        StageSet s;
        s.add(loc);
        return s;
    }

    constexpr void
    add(StageLoc loc)
    {
        _bits |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(loc));
    }

    constexpr bool
    contains(StageLoc loc) const
    {
        return _bits & (1u << static_cast<unsigned>(loc));
    }

    /** Bottom: no path reaches this point. */
    constexpr bool empty() const { return _bits == 0; }

    /** this |= other; @return true when any bit changed. */
    constexpr bool
    join(StageSet other)
    {
        std::uint8_t joined = _bits | other._bits;
        bool changed = joined != _bits;
        _bits = joined;
        return changed;
    }

    /** Every possible location is readable (Staged or Backing)? */
    constexpr bool
    readable() const
    {
        constexpr std::uint8_t ok =
            (1u << static_cast<unsigned>(StageLoc::Staged)) |
            (1u << static_cast<unsigned>(StageLoc::Backing));
        return _bits != 0 && (_bits & ~ok) == 0;
    }

    constexpr bool operator==(const StageSet &other) const = default;

    /** "{staged|backing}" style rendering for findings. */
    std::string toString() const;

  private:
    std::uint8_t _bits = 0;
};

} // namespace regless::ir

#endif // REGLESS_IR_STAGING_LATTICE_HH
