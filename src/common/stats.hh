/**
 * @file
 * Lightweight statistics primitives used by every hardware model.
 *
 * Modelled loosely on gem5's stats package: named scalar counters,
 * distributions, and fixed-window time series, grouped per component and
 * dumpable as text. All stats are plain doubles/integers; no sampling
 * happens unless the owning model calls the accessors.
 */

#ifndef REGLESS_COMMON_STATS_HH
#define REGLESS_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace regless
{

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++_value; }
    void operator++(int) { ++_value; }
    void operator+=(std::uint64_t delta) { _value += delta; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * Running distribution: tracks count, sum, min, max, and the sums needed
 * for a streaming standard deviation (Welford's algorithm).
 */
class Distribution
{
  public:
    /** Record one sample. */
    void sample(double value);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const { return _count ? _sum / _count : 0.0; }

    /** Population standard deviation of the samples seen so far. */
    double stddev() const;

    void reset();

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0;
};

/**
 * Fixed-window time series: accumulates a value per window of @a period
 * cycles, recording one point per elapsed window. Used for the paper's
 * "per 100 cycles" plots (Figures 2 and 3).
 */
class WindowedSeries
{
  public:
    explicit WindowedSeries(Cycle period = 100) : _period(period) {}

    /** Add @a delta to the window containing @a now. */
    void record(Cycle now, double delta);

    /** Close any open window so points() reflects all recorded data. */
    void flush();

    Cycle period() const { return _period; }
    const std::vector<double> &points() const { return _points; }

    /** Mean of all completed window totals. */
    double meanPerWindow() const;

    void reset();

  private:
    Cycle _period;
    Cycle _windowStart = 0;
    double _accum = 0.0;
    bool _open = false;
    std::vector<double> _points;
};

/**
 * Named bag of counters and distributions owned by one component.
 * Components create stats up front and hold references; the group owns
 * storage and provides dumping.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create (or fetch) a named counter. */
    Counter &counter(const std::string &stat_name);

    /** Create (or fetch) a named distribution. */
    Distribution &distribution(const std::string &stat_name);

    const std::string &name() const { return _name; }

    /** Write "group.stat value" lines for every registered stat. */
    void dump(std::ostream &os) const;

  private:
    std::string _name;
    std::map<std::string, Counter> _counters;
    std::map<std::string, Distribution> _distributions;
};

/** Geometric mean of a vector of strictly positive values. */
double geomean(const std::vector<double> &values);

} // namespace regless

#endif // REGLESS_COMMON_STATS_HH
