#include "common/rng.hh"

#include "common/logging.hh"

namespace regless
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : _state)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound 0");
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange: lo ", lo, " > hi ", hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

} // namespace regless
