#include "common/logging.hh"

#include <iostream>

#include "common/sim_error.hh"

namespace regless
{

namespace
{

bool verboseFlag = false;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verboseEnabled()
{
    return verboseFlag;
}

namespace detail
{

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Inform && !verboseFlag)
        return;
    std::cerr << levelName(level) << ": " << msg << "\n";
}

void
logAndDie(LogLevel level, const std::string &msg)
{
    // The library never terminates the process: the error unwinds to
    // the caller (the experiment engine isolates it per job; the CLI
    // mains catch, print, and pick an exit status).
    throw sim::SimError(level == LogLevel::Panic
                            ? sim::SimErrorKind::Internal
                            : sim::SimErrorKind::Config,
                        msg);
}

} // namespace detail

} // namespace regless
