#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace regless
{

namespace
{

bool verboseFlag = false;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verboseEnabled()
{
    return verboseFlag;
}

namespace detail
{

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Inform && !verboseFlag)
        return;
    std::cerr << levelName(level) << ": " << msg << "\n";
}

void
logAndDie(LogLevel level, const std::string &msg)
{
    std::cerr << levelName(level) << ": " << msg << std::endl;
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace regless
