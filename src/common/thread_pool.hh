/**
 * @file
 * Minimal persistent worker pool for barrier-synchronized parallel
 * loops.
 *
 * Built for the multi-SM executor, which dispatches one small batch of
 * independent per-SM jobs every simulated epoch: workers persist across
 * dispatches (no thread spawn per epoch), items are claimed from a
 * shared atomic cursor, and the calling thread participates in the work
 * so a pool of size 1 runs everything inline on the caller — the
 * serial reference path and the parallel path are the same code.
 *
 * Determinism contract: parallelFor() makes no ordering promise between
 * items; callers must ensure items touch disjoint state (plus read-only
 * shared state) so results are independent of the worker assignment.
 */

#ifndef REGLESS_COMMON_THREAD_POOL_HH
#define REGLESS_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace regless
{

/** Fixed-size pool executing indexed parallel-for batches. */
class ThreadPool
{
  public:
    /**
     * @param num_threads Total workers including the calling thread;
     *        1 (or 0) means no extra threads — fully inline execution.
     */
    explicit ThreadPool(unsigned num_threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers available including the caller (>= 1). */
    unsigned size() const
    {
        return static_cast<unsigned>(_workers.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, count) and wait for completion.
     * fn is invoked concurrently on distinct indices; each index runs
     * exactly once. Must not be called re-entrantly from within fn.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Reasonable default worker count for @a jobs parallel jobs:
     * min(jobs, hardware_concurrency), at least 1.
     */
    static unsigned defaultThreads(unsigned jobs);

  private:
    void workerLoop();

    /** Claim and run items until the current batch is exhausted. */
    void drainBatch(const std::function<void(std::size_t)> &fn,
                    std::size_t count);

    std::vector<std::thread> _workers;

    std::mutex _mutex;
    std::condition_variable _wakeWorkers;
    std::condition_variable _batchDone;
    /** Incremented per dispatch; workers watch it to pick up batches. */
    std::uint64_t _generation = 0;
    /** Workers that finished draining the current batch. */
    unsigned _acked = 0;
    bool _stopping = false;

    const std::function<void(std::size_t)> *_job = nullptr;
    std::size_t _count = 0;
    std::atomic<std::size_t> _next{0};
};

} // namespace regless

#endif // REGLESS_COMMON_THREAD_POOL_HH
