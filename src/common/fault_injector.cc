#include "common/fault_injector.hh"

namespace regless
{

const char *
faultKindName(FaultPlan::Kind kind)
{
    switch (kind) {
      case FaultPlan::Kind::None: return "none";
      case FaultPlan::Kind::LeakOsuSlot: return "leak_osu_slot";
      case FaultPlan::Kind::DropDramResponse:
        return "drop_dram_response";
      case FaultPlan::Kind::ProviderThrow: return "provider_throw";
    }
    return "?";
}

bool
FaultInjector::fire(FaultPlan::Kind kind, Cycle now)
{
    if (_fired || kind != _plan.kind || kind == FaultPlan::Kind::None)
        return false;
    if (now < _plan.triggerCycle)
        return false;
    _fired = true;
    return true;
}

} // namespace regless
