/**
 * @file
 * Deterministic pseudo-random number generator for workload synthesis.
 *
 * Simulations must be bit-reproducible across runs and platforms, so we
 * use a fixed xoshiro256** implementation rather than std::mt19937 with
 * distribution objects (whose outputs are not standardized).
 */

#ifndef REGLESS_COMMON_RNG_HH
#define REGLESS_COMMON_RNG_HH

#include <cstdint>

namespace regless
{

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound), bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** @return uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @a p. */
    bool chance(double p);

  private:
    std::uint64_t _state[4];
};

} // namespace regless

#endif // REGLESS_COMMON_RNG_HH
