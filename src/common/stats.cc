#include "common/stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace regless
{

void
Distribution::sample(double value)
{
    ++_count;
    _sum += value;
    if (_count == 1) {
        _min = _max = value;
    } else {
        if (value < _min)
            _min = value;
        if (value > _max)
            _max = value;
    }
    // Welford's online update.
    double delta = value - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (value - _mean);
}

double
Distribution::stddev() const
{
    if (_count < 1)
        return 0.0;
    return std::sqrt(_m2 / static_cast<double>(_count));
}

void
Distribution::reset()
{
    *this = Distribution();
}

void
WindowedSeries::record(Cycle now, double delta)
{
    if (!_open) {
        _windowStart = (now / _period) * _period;
        _open = true;
    }
    while (now >= _windowStart + _period) {
        _points.push_back(_accum);
        _accum = 0.0;
        _windowStart += _period;
    }
    _accum += delta;
}

void
WindowedSeries::flush()
{
    if (_open) {
        _points.push_back(_accum);
        _accum = 0.0;
        _open = false;
    }
}

double
WindowedSeries::meanPerWindow() const
{
    if (_points.empty())
        return 0.0;
    double total = 0.0;
    for (double p : _points)
        total += p;
    return total / static_cast<double>(_points.size());
}

void
WindowedSeries::reset()
{
    _accum = 0.0;
    _open = false;
    _points.clear();
}

Counter &
StatGroup::counter(const std::string &stat_name)
{
    return _counters[stat_name];
}

Distribution &
StatGroup::distribution(const std::string &stat_name)
{
    return _distributions[stat_name];
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, ctr] : _counters)
        os << _name << "." << stat_name << " " << ctr.value() << "\n";
    for (const auto &[stat_name, dist] : _distributions) {
        os << _name << "." << stat_name << ".mean " << dist.mean() << "\n";
        os << _name << "." << stat_name << ".stddev " << dist.stddev()
           << "\n";
        os << _name << "." << stat_name << ".count " << dist.count() << "\n";
    }
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace regless
