/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * fatal() reports user/configuration errors; panic() reports internal
 * simulator bugs. Both throw sim::SimError (common/sim_error.hh) —
 * library code never exits the process; only the CLI mains in bench/
 * and tools/ catch at top level and terminate. warn() and inform()
 * print and continue.
 */

#ifndef REGLESS_COMMON_LOGGING_HH
#define REGLESS_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace regless
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/** Raise the error: throws sim::SimError for Fatal and Panic. */
[[noreturn]] void logAndDie(LogLevel level, const std::string &msg);

/** Emit a non-terminating message. */
void logMessage(LogLevel level, const std::string &msg);

/** Fold a parameter pack into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Verbosity gate for inform(); warnings always print. */
void setVerbose(bool verbose);

/** @return true when inform() messages are being printed. */
bool verboseEnabled();

/**
 * Report a condition that prevents the simulation from continuing and is
 * the user's fault (bad configuration, invalid arguments).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::logAndDie(LogLevel::Fatal,
                      detail::formatMessage(std::forward<Args>(args)...));
}

/**
 * Report a condition that should never happen regardless of user input,
 * i.e. an internal simulator bug.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::logAndDie(LogLevel::Panic,
                      detail::formatMessage(std::forward<Args>(args)...));
}

/** Report suspicious but survivable behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logMessage(LogLevel::Warn,
                       detail::formatMessage(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logMessage(LogLevel::Inform,
                       detail::formatMessage(std::forward<Args>(args)...));
}

} // namespace regless

#endif // REGLESS_COMMON_LOGGING_HH
