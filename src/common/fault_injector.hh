/**
 * @file
 * Deterministic fault-injection harness (DESIGN.md §9).
 *
 * A FaultPlan is part of GpuConfig (and hence of the canonical config
 * fingerprint), so an injected failure is an ordinary, reproducible
 * simulation point: the same plan at the same trigger cycle provokes
 * the same failure on every run. The plan is delivered by a
 * FaultInjector that the simulator wires into the component the fault
 * targets; each consumer polls fire() with its own kind.
 *
 * The three plans cover the simulator's failure classes:
 *  - LeakOsuSlot: the capacity manager permanently loses OSU lines to
 *    phantom reservations, so no region ever fits again — the
 *    §4.4-style deadlock the forward-progress watchdog must catch.
 *  - DropDramResponse: one DRAM response never arrives, wedging the
 *    dependent warp behind a scoreboard entry that never clears.
 *  - ProviderThrow: the operand provider raises an internal error
 *    (SimError) mid-run — the crash-isolation path.
 */

#ifndef REGLESS_COMMON_FAULT_INJECTOR_HH
#define REGLESS_COMMON_FAULT_INJECTOR_HH

#include "common/types.hh"

namespace regless
{

/** What to break, and when. */
struct FaultPlan
{
    enum class Kind : std::uint8_t
    {
        None,             ///< no fault (the default for every run)
        LeakOsuSlot,      ///< leak CM reservations -> staging deadlock
        DropDramResponse, ///< swallow one DRAM response -> stuck warp
        ProviderThrow,    ///< provider raises SimError at the trigger
    };

    Kind kind = Kind::None;

    /** First cycle at which the fault may fire. */
    Cycle triggerCycle = 0;

    /**
     * A transient fault models a recoverable environment failure: the
     * experiment engine strips the plan when it retries the job, so
     * the retry runs clean (and must reproduce the fault-free result).
     */
    bool transient = false;
};

/** Canonical plan-kind name for config dumps and diagnostics. */
const char *faultKindName(FaultPlan::Kind kind);

/**
 * Delivers one FaultPlan to the component it targets. Each consumer
 * polls fire(kind, now); the injector arms once the trigger cycle is
 * reached and reports each kind at most once per run, so a fault is a
 * single deterministic event, not a recurring condition.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan) : _plan(plan) {}

    /**
     * @return true exactly once: the first poll of the plan's kind at
     * or after the trigger cycle.
     */
    bool fire(FaultPlan::Kind kind, Cycle now);

    /** The plan under delivery. */
    const FaultPlan &plan() const { return _plan; }

    /** Has the fault been delivered yet? */
    bool fired() const { return _fired; }

  private:
    FaultPlan _plan;
    bool _fired = false;
};

} // namespace regless

#endif // REGLESS_COMMON_FAULT_INJECTOR_HH
