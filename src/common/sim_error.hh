/**
 * @file
 * sim::SimError — the library's error boundary.
 *
 * Library code under src/ never terminates the process: fatal() and
 * panic() (common/logging.hh) throw SimError, and the forward-progress
 * watchdog throws DeadlockError carrying a structured DeadlockReport.
 * Process exit happens only at the top of the CLI mains (bench/,
 * tools/), which catch, render, and choose an exit status — so one
 * pathological job can never take down a whole report run.
 */

#ifndef REGLESS_COMMON_SIM_ERROR_HH
#define REGLESS_COMMON_SIM_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"

namespace regless::sim
{

/** What class of failure a SimError reports. */
enum class SimErrorKind
{
    Config,   ///< user/configuration error (was fatal())
    Internal, ///< internal simulator bug (was panic())
    Deadlock, ///< forward-progress watchdog fired (DeadlockError)
};

/** Human-readable kind name ("config", "internal", "deadlock"). */
const char *simErrorKindName(SimErrorKind kind);

/** Any error raised by library code under src/. */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, const std::string &what)
        : std::runtime_error(what), _kind(kind)
    {
    }

    SimErrorKind kind() const { return _kind; }

  private:
    SimErrorKind _kind;
};

/**
 * Structured diagnosis of a run the watchdog terminated: why it
 * fired, and a snapshot of every structure whose occupancy can pin a
 * warp (scheduler state, next-region preloads, OSU banks, CM
 * reservations, MSHRs). Attached to the run's result by the
 * experiment engine and rendered by regless_report / regless_lint.
 */
struct DeadlockReport
{
    std::string kernel;
    /** What tripped: stall window, cycle budget, or wall clock. */
    std::string reason;
    /** Cycle at which the watchdog fired. */
    Cycle cycle = 0;
    /** Last cycle at which any progress event was observed. */
    Cycle lastProgressCycle = 0;
    /** Configured no-progress window (SmConfig::watchdogWindow). */
    Cycle watchdogWindow = 0;
    /** Configured hard budget (SmConfig::maxCycles). */
    Cycle maxCycles = 0;
    /** Instructions retired before the stall. */
    std::uint64_t insnsIssued = 0;
    /** Progress events (retired insns + CM activations) observed. */
    std::uint64_t progressEvents = 0;
    /** One line per unfinished warp: scheduler + CM state, region. */
    std::vector<std::string> warps;
    /** One line per OSU bank: occupancy and CM reservations. */
    std::vector<std::string> banks;
    /** Memory-system state (MSHR fill per cache level). */
    std::string memState;
    /**
     * Issue-slot attribution since the last progress event, one
     * "cause: N slots" line per non-zero cause (DESIGN.md section 10).
     * Pre-formatted strings keep common/ free of arch/ dependencies.
     */
    std::vector<std::string> stallBreakdown;
    /**
     * Cause with the most slots in the window, preferring causes that
     * pin a live warp over no_warp (idle schedulers); "none" when the
     * window charged nothing.
     */
    std::string dominantStall;

    /**
     * Multi-tenant starvation (DESIGN.md §16): when the per-tenant
     * progress watchdog fired — a tenant that is neither suspended
     * nor finished made no progress for a full window while the SM as
     * a whole kept moving — these name the starved tenant. Left at
     * the defaults (and unrendered) for whole-SM trips.
     */
    int starvedTenant = -1;
    std::string starvedTenantKernel;
    /** The starved tenant's dominant stall cause over the run. */
    std::string starvedTenantStall;

    /** Multi-line human-readable rendering. */
    std::string render() const;
};

bool operator==(const DeadlockReport &a, const DeadlockReport &b);

/** A watchdog termination, carrying its diagnosis. */
class DeadlockError : public SimError
{
  public:
    explicit DeadlockError(DeadlockReport report);

    const DeadlockReport &report() const { return _report; }

  private:
    DeadlockReport _report;
};

} // namespace regless::sim

#endif // REGLESS_COMMON_SIM_ERROR_HH
