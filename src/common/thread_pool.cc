#include "common/thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace regless
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    unsigned extra = num_threads > 1 ? num_threads - 1 : 0;
    _workers.reserve(extra);
    for (unsigned i = 0; i < extra; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _wakeWorkers.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

unsigned
ThreadPool::defaultThreads(unsigned jobs)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    return std::max(1u, std::min(jobs, hw));
}

void
ThreadPool::drainBatch(const std::function<void(std::size_t)> &fn,
                       std::size_t count)
{
    for (;;) {
        std::size_t i = _next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            return;
        fn(i);
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *job = nullptr;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wakeWorkers.wait(lock, [&] {
                return _stopping || _generation != seen;
            });
            if (_stopping)
                return;
            seen = _generation;
            job = _job;
            count = _count;
        }
        drainBatch(*job, count);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            // Every item a worker claimed is finished before it acks,
            // so all-acked (plus the caller's own drain) means the
            // whole batch is done.
            if (++_acked == _workers.size())
                _batchDone.notify_one();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (_workers.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_job)
            panic("re-entrant ThreadPool::parallelFor");
        _job = &fn;
        _count = count;
        _next.store(0, std::memory_order_relaxed);
        _acked = 0;
        ++_generation;
    }
    _wakeWorkers.notify_all();

    // The caller works too; a pool of size 1 ran everything inline
    // above, so the serial path never touches the machinery.
    drainBatch(fn, count);

    std::unique_lock<std::mutex> lock(_mutex);
    _batchDone.wait(lock, [&] { return _acked == _workers.size(); });
    _job = nullptr;
}

} // namespace regless
