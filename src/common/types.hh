/**
 * @file
 * Fundamental scalar types shared across the RegLess simulator.
 */

#ifndef REGLESS_COMMON_TYPES_HH
#define REGLESS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace regless
{

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Hardware warp identifier within one SM (0..63 on the GTX 980). */
using WarpId = std::uint32_t;

/** Architectural register number assigned by the register allocator. */
using RegId = std::uint16_t;

/** Program counter: index of an instruction within a kernel. */
using Pc = std::uint32_t;

/** Byte address in the simulated global memory space. */
using Addr = std::uint64_t;

/** Lane activity mask for a 32-wide warp. */
using LaneMask = std::uint32_t;

/** Number of SIMD lanes per warp (fixed by the modelled architecture). */
constexpr unsigned warpSize = 32;

/** All 32 lanes active. */
constexpr LaneMask fullMask = 0xffffffffu;

/** Sentinel for "no register". */
constexpr RegId invalidReg = std::numeric_limits<RegId>::max();

/** Sentinel for "no warp". */
constexpr WarpId invalidWarp = std::numeric_limits<WarpId>::max();

/** Sentinel for "no PC". */
constexpr Pc invalidPc = std::numeric_limits<Pc>::max();

/** Bytes in one register: 32 lanes x 4 bytes, one OSU/cache line. */
constexpr unsigned regBytes = warpSize * 4;

} // namespace regless

#endif // REGLESS_COMMON_TYPES_HH
