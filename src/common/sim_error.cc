#include "common/sim_error.hh"

#include <sstream>

namespace regless::sim
{

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Config: return "config";
      case SimErrorKind::Internal: return "internal";
      case SimErrorKind::Deadlock: return "deadlock";
    }
    return "?";
}

std::string
DeadlockReport::render() const
{
    std::ostringstream oss;
    oss << "deadlock: kernel '" << kernel << "' " << reason << "\n"
        << "  cycle " << cycle << ", last progress at cycle "
        << lastProgressCycle << " (window " << watchdogWindow
        << ", budget " << maxCycles << " cycles)\n"
        << "  " << insnsIssued << " instructions retired, "
        << progressEvents << " progress events\n";
    if (starvedTenant >= 0) {
        oss << "  starved tenant " << starvedTenant << " ('"
            << starvedTenantKernel << "'), dominant stall "
            << starvedTenantStall << "\n";
    }
    if (!warps.empty()) {
        oss << "  unfinished warps:\n";
        for (const std::string &line : warps)
            oss << "    " << line << "\n";
    }
    if (!banks.empty()) {
        oss << "  OSU banks (owned/clean/dirty/free, reserved):\n";
        for (const std::string &line : banks)
            oss << "    " << line << "\n";
    }
    if (!memState.empty())
        oss << "  memory: " << memState << "\n";
    if (!stallBreakdown.empty()) {
        oss << "  last-window stall breakdown (dominant: "
            << dominantStall << "):\n";
        for (const std::string &line : stallBreakdown)
            oss << "    " << line << "\n";
    }
    return oss.str();
}

bool
operator==(const DeadlockReport &a, const DeadlockReport &b)
{
    return a.kernel == b.kernel && a.reason == b.reason &&
           a.cycle == b.cycle &&
           a.lastProgressCycle == b.lastProgressCycle &&
           a.watchdogWindow == b.watchdogWindow &&
           a.maxCycles == b.maxCycles &&
           a.insnsIssued == b.insnsIssued &&
           a.progressEvents == b.progressEvents && a.warps == b.warps &&
           a.banks == b.banks && a.memState == b.memState &&
           a.stallBreakdown == b.stallBreakdown &&
           a.dominantStall == b.dominantStall &&
           a.starvedTenant == b.starvedTenant &&
           a.starvedTenantKernel == b.starvedTenantKernel &&
           a.starvedTenantStall == b.starvedTenantStall;
}

namespace
{

std::string
summaryLine(const DeadlockReport &report)
{
    std::ostringstream oss;
    oss << "kernel '" << report.kernel << "' " << report.reason
        << " at cycle " << report.cycle;
    return oss.str();
}

} // namespace

DeadlockError::DeadlockError(DeadlockReport report)
    : SimError(SimErrorKind::Deadlock, summaryLine(report)),
      _report(std::move(report))
{
}

} // namespace regless::sim
