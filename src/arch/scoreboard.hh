/**
 * @file
 * Register-dependency scoreboard.
 *
 * Because the timing model resolves every operation's completion cycle
 * at issue, the scoreboard simply records per-(warp, register) ready
 * cycles: an instruction may issue when all sources and its
 * destination are ready (RAW and WAW; WAR is safe with in-order issue
 * per warp).
 */

#ifndef REGLESS_ARCH_SCOREBOARD_HH
#define REGLESS_ARCH_SCOREBOARD_HH

#include <vector>

#include "common/types.hh"
#include "ir/instruction.hh"

namespace regless::arch
{

/**
 * Scoreboard over one contiguous warp range's registers.
 *
 * The range is explicit (base + extent) rather than implicitly
 * 0..num_warps: a multi-tenant SM gives each tenant its own scoreboard
 * over its warp partition, still addressed with *global* warp ids.
 * Every access asserts the id lies inside the supervised range, so an
 * off-by-base index is a panic, not a silent read of a neighbouring
 * tenant's state.
 */
class Scoreboard
{
  public:
    /**
     * @param num_warps Warps supervised (the extent of the range).
     * @param num_regs Architectural registers per warp.
     * @param warp_base First supervised global warp id (default 0:
     *        the classic whole-SM scoreboard).
     */
    Scoreboard(unsigned num_warps, unsigned num_regs,
               WarpId warp_base = 0);

    /** @return true when @a insn's operands are ready for @a warp. */
    bool ready(WarpId warp, const ir::Instruction &insn, Cycle now) const;

    /**
     * @return true when at least one register blocking @a insn for
     * @a warp at @a now has a global load as its pending producer
     * (distinguishes MemPending from ScoreboardDep attribution).
     */
    bool blockedOnMem(WarpId warp, const ir::Instruction &insn,
                      Cycle now) const;

    /** Record that @a insn's destination becomes ready at @a when. */
    void recordWrite(WarpId warp, const ir::Instruction &insn,
                     Cycle when);

    /** Ready cycle of a specific register (for drain tracking). */
    Cycle readyAt(WarpId warp, RegId reg) const;

    /**
     * Earliest cycle after @a now at which the set of registers
     * blocking @a insn for @a warp can shrink: the minimum pending
     * ready cycle across the instruction's sources and destination.
     * Returns 0 when nothing is pending (the caller should only ask
     * for insns that failed ready()). This is the scoreboard's
     * next-event bound for cycle skipping — attribution between
     * MemPending and ScoreboardDep can flip as individual registers
     * clear, so the bound is the *minimum*, not the last, pending
     * write.
     */
    Cycle nextReadyChange(WarpId warp, const ir::Instruction &insn,
                          Cycle now) const;

    /** Latest pending-write cycle across @a regs for @a warp. */
    Cycle lastPendingWrite(WarpId warp,
                           const std::vector<RegId> &regs) const;

    /** First supervised global warp id. */
    WarpId warpBase() const { return _warpBase; }
    /** Supervised warp count. */
    unsigned numWarps() const { return _numWarps; }

  private:
    /** Flat index of (warp, reg); panics outside the range. */
    std::size_t index(WarpId warp, RegId reg) const;

    unsigned _numRegs;
    unsigned _numWarps;
    WarpId _warpBase;
    std::vector<Cycle> _readyCycle; ///< [(warp - base) * numRegs + reg]
    std::vector<bool> _fromMem;     ///< pending producer is a global load
};

} // namespace regless::arch

#endif // REGLESS_ARCH_SCOREBOARD_HH
