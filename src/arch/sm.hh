/**
 * @file
 * Streaming multiprocessor (SM) timing model.
 *
 * Models one GTX-980-style SM: 64 warp slots split across 4 scheduling
 * groups, dual issue per group, a scoreboard, SIMT divergence stacks,
 * shared memory, and a single L1 port into the memory hierarchy. The
 * operand path is delegated to a RegisterProvider, which is the only
 * thing that differs between the baseline, RFH, RFV, and RegLess.
 *
 * Multi-tenant operation (DESIGN.md §16): the SM can host several
 * co-resident kernel launches ("tenants"). Each tenant owns a
 * contiguous range of scheduler groups and the contiguous warp range
 * those groups serve, its own scoreboard, its own provider instance,
 * and its own data/shared address segments. Every issue slot and stall
 * cause is charged to exactly one tenant, so the PR 5 closed-account
 * invariant holds per tenant and in total. A single-tenant SM takes
 * exactly the pre-tenant code paths cycle for cycle.
 */

#ifndef REGLESS_ARCH_SM_HH
#define REGLESS_ARCH_SM_HH

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "arch/exec_unit.hh"
#include "arch/scheduler.hh"
#include "arch/scoreboard.hh"
#include "arch/stall.hh"
#include "arch/warp.hh"
#include "common/stats.hh"
#include "compiler/compiler.hh"
#include "ir/cfg_analysis.hh"
#include "mem/memory_system.hh"
#include "regfile/register_provider.hh"

namespace regless::arch
{

/** SM configuration (Table 1 defaults). */
struct SmConfig
{
    unsigned numWarps = 64;
    unsigned numSchedulers = 4;
    unsigned issueWidth = 2;
    SchedulerPolicy scheduler = SchedulerPolicy::Gto;
    ExecLatencies latencies;
    /** Abort threshold for runaway kernels. */
    Cycle maxCycles = 200'000'000;
    /**
     * Forward-progress watchdog: terminate with a DeadlockReport when
     * no warp retires (and no CM activation happens) for this many
     * cycles. 0 disables the stall check; the hard maxCycles budget
     * still applies.
     */
    Cycle watchdogWindow = 1'000'000;
    /** Base of the program-data segment in the flat address space. */
    Addr dataBase = 0x1000'0000;
    /** Base of the per-block shared-memory segments. */
    Addr sharedBase = 0x8000'0000;
    /** Pending-source latency that counts as a "long" stall. */
    Cycle longStallThreshold = 40;

    /**
     * Maximum concurrently resident warps (0 = all). Non-resident
     * warps wait until a resident thread block finishes; admission is
     * block-granular so barriers cannot deadlock. Models register-file
     * occupancy limits for fixed-capacity designs.
     */
    unsigned maxResidentWarps = 0;

    /**
     * Event-driven cycle skipping (DESIGN.md §12): when no scheduler
     * group can issue and every component is quiescent, jump straight
     * to the next event cycle, bulk-charging the skipped slots to the
     * already-attributed stall causes. Results are byte-identical to
     * cycle-by-cycle stepping (enforced by the differential oracle in
     * tests/test_cycle_skip.cc); this flag exists so those reference
     * runs can be produced.
     */
    bool cycleSkip = true;
};

/** One co-resident kernel launch on a multi-tenant SM. */
struct SmTenantSpec
{
    /** Compiled kernel this tenant executes. */
    const compiler::CompiledKernel *ck = nullptr;
    /** This tenant's operand-storage model over its warp partition. */
    regfile::RegisterProvider *provider = nullptr;
    /** Base of this tenant's program-data segment. */
    Addr dataBase = 0;
    /** Base of this tenant's shared-memory segments. */
    Addr sharedBase = 0;
};

/** One SM executing one or more kernel launches to completion. */
class Sm
{
  public:
    /**
     * Single-tenant launch (the classic configuration).
     *
     * @param ck Compiled kernel (regions are ignored by non-RegLess
     *        providers but the type carries the instruction stream).
     * @param mem The SM's memory hierarchy.
     * @param provider Operand-storage model.
     * @param config SM parameters.
     */
    Sm(const compiler::CompiledKernel &ck, mem::MemorySystem &mem,
       regfile::RegisterProvider &provider, const SmConfig &config);

    /**
     * Multi-tenant launch: @a tenants kernels co-resident on one SM.
     * Tenant t owns scheduler groups [t*S/T, (t+1)*S/T) and warps
     * [t*W/T, (t+1)*W/T); both divisions must be exact.
     */
    Sm(std::vector<SmTenantSpec> tenants, mem::MemorySystem &mem,
       const SmConfig &config);

    /**
     * Run the kernel to completion.
     * @return total cycles elapsed.
     */
    Cycle run();

    /** Advance exactly one cycle (exposed for unit tests). */
    void step();

    /**
     * Advance one cycle, then — if that cycle proved no warp can issue
     * and every component is quiescent — jump directly to the earliest
     * next event, charging the skipped scheduler slots and per-warp
     * stall cycles exactly as stepping them would have. Never advances
     * past @a limit (the caller's watchdog / budget / epoch boundary).
     */
    void stepSkipping(Cycle limit);

    /** Cycles collapsed by stepSkipping() so far. */
    std::uint64_t skippedCycles() const { return _skippedCycles.value(); }
    /** Number of skip jumps taken. */
    std::uint64_t skipEvents() const { return _skipEvents.value(); }

    /** @return true when every warp has finished. */
    bool done() const;

    Cycle now() const { return _now; }
    const std::vector<Warp> &warps() const { return _warps; }
    Warp &warp(WarpId id) { return _warps.at(id); }

    StatGroup &stats() { return _stats; }
    std::uint64_t totalInsns() const { return _issued.value(); }

    /** Observer invoked for every issued instruction (tracing). */
    using IssueHook = std::function<void(
        const Warp &, Pc, const ir::Instruction &, Cycle)>;
    void setIssueHook(IssueHook hook) { _issueHook = std::move(hook); }

    /**
     * Observer for per-warp state runs: called with (warp, label,
     * first cycle, one past last cycle) whenever a warp's issue/stall
     * label changes. Labels are "issue", "ready", or a StallCause
     * name. Call flushStallTrace() after the run to close open runs.
     */
    using StallTraceHook =
        std::function<void(WarpId, const char *, Cycle, Cycle)>;
    void setStallTraceHook(StallTraceHook hook);
    void flushStallTrace();

    /** @name Issue-slot attribution (one slot per scheduler-cycle). */
    ///@{
    std::uint64_t issuedSlots() const { return _slotIssued.value(); }
    std::uint64_t stallSlots(StallCause cause) const
    {
        return _stallSlots[static_cast<std::size_t>(cause)]->value();
    }
    StallSnapshot slotSnapshot() const;
    /** Cumulative per-warp stall cycles by cause (Running warps only). */
    const std::array<std::uint64_t, kNumStallCauses> &
    warpStalls(WarpId warp) const
    {
        return _warpStalls.at(warp);
    }
    ///@}

    /** @name Per-tenant residency, preemption, and attribution. */
    ///@{
    std::size_t tenantCount() const { return _tenants.size(); }
    unsigned tenantOfWarp(WarpId warp) const
    {
        return _tenantOf.at(warp);
    }
    /** First warp slot of tenant @a t. */
    WarpId tenantWarpBase(unsigned t) const
    {
        return tenant(t).warpBase;
    }
    /** Warp slots owned by tenant @a t. */
    unsigned tenantWarpCount(unsigned t) const
    {
        return tenant(t).warpCount;
    }
    /** Scheduler groups owned by tenant @a t. */
    unsigned tenantSchedulerCount(unsigned t) const
    {
        return tenant(t).schedCount;
    }
    const compiler::CompiledKernel &tenantKernel(unsigned t) const
    {
        return *tenant(t).ck;
    }

    /**
     * Region-boundary preemption: stop tenant @a t from starting new
     * work; once its provider reaches a preemption boundary the
     * staged state is handed off and the tenant's warps stop issuing
     * entirely. Idempotent; a no-op for finished tenants.
     */
    void requestSuspend(unsigned t, Cycle now);

    /** Resume tenant @a t after a suspension (or cancel a pending
     *  suspend request). Idempotent. */
    void resumeTenant(unsigned t, Cycle now);

    /** Fully suspended (handoff complete, warps parked)? */
    bool tenantSuspended(unsigned t) const
    {
        return tenant(t).suspended;
    }
    /** Suspend requested but the boundary not yet reached? */
    bool tenantSuspendPending(unsigned t) const
    {
        return tenant(t).suspendRequested;
    }
    /** Every warp of tenant @a t finished? */
    bool tenantDone(unsigned t) const;

    /** @name Per-tenant closed account: for each tenant,
     *  issuedSlots + sum(stallSlots) == schedCount * cycles. */
    ///@{
    std::uint64_t tenantInsns(unsigned t) const
    {
        return tenant(t).insns;
    }
    std::uint64_t tenantIssuedSlots(unsigned t) const
    {
        return tenant(t).slotIssued;
    }
    std::uint64_t tenantStallSlots(unsigned t, StallCause cause) const
    {
        return tenant(t).stallSlots[static_cast<std::size_t>(cause)];
    }
    ///@}

    /** Cycle tenant @a t's last warp finished (0 while running). */
    Cycle tenantFinishCycle(unsigned t) const
    {
        return tenant(t).finishCycle;
    }
    /** Cycles tenant @a t has spent fully suspended so far. */
    std::uint64_t tenantSuspendedCycles(unsigned t) const;
    /** Suspensions requested against tenant @a t. */
    std::uint64_t tenantPreemptions(unsigned t) const
    {
        return tenant(t).preemptions;
    }
    ///@}

  private:
    /** Per-tenant execution context and accounting. */
    struct Tenant
    {
        const compiler::CompiledKernel *ck;
        const ir::Kernel *kernel;
        regfile::RegisterProvider *provider;
        ir::CfgAnalysis cfgAnalysis;
        Scoreboard scoreboard;
        WarpId warpBase;
        unsigned warpCount;
        unsigned schedBase;
        unsigned schedCount;
        Addr dataBase;
        Addr sharedBase;
        unsigned nextBlockToAdmit = 0;
        unsigned residentWarps = 0;
        /** @name Region-boundary preemption state. */
        ///@{
        bool suspendRequested = false;
        bool suspended = false;
        Cycle suspendStart = 0;
        std::uint64_t suspendedCycles = 0;
        std::uint64_t preemptions = 0;
        ///@}
        bool finished = false;
        Cycle finishCycle = 0;
        /** @name Closed per-tenant account (plain counters: they
         *  shadow the SM-wide Counter objects slot for slot). */
        ///@{
        std::uint64_t insns = 0;
        std::uint64_t slotIssued = 0;
        std::array<std::uint64_t, kNumStallCauses> stallSlots{};
        ///@}

        Tenant(const SmTenantSpec &spec, WarpId warp_base,
               unsigned warp_count, unsigned sched_base,
               unsigned sched_count);
    };

    /**
     * What one probed cycle learned about whether the stalled window
     * it starts can be collapsed (filled by stepImpl when requested).
     */
    struct SkipProbe
    {
        bool anyIssue = false;
        bool anyEligible = false;
        /** Min next-event bound over all per-warp blockers. */
        Cycle nextEvent = regfile::kNoProviderEvent;
    };

    Tenant &tenant(unsigned t) { return *_tenants.at(t); }
    const Tenant &tenant(unsigned t) const { return *_tenants.at(t); }
    Tenant &tenantOf(const Warp &warp)
    {
        return *_tenants[_tenantOf[warp.id()]];
    }

    /**
     * Can @a warp issue its next instruction now?
     * @param long_stall Set when the blocker is a long-latency source.
     * @param cause If non-null and the warp cannot issue, receives the
     *        attributed StallCause.
     * @param next_event If non-null and the warp cannot issue, lowered
     *        to the earliest cycle its blocker can clear (left alone
     *        for blockers with no SM-visible bound: barriers,
     *        non-residency, suspension, and provider gating, which the
     *        provider's own nextEventCycle covers).
     */
    bool eligible(Tenant &tn, const Warp &warp, Cycle now,
                  bool *long_stall, StallCause *cause = nullptr,
                  Cycle *next_event = nullptr);

    /** One cycle of the SM; fills @a probe when non-null. */
    void stepImpl(SkipProbe *probe);

    /** Complete suspend requests whose provider reached a boundary. */
    void pollSuspends(Cycle now);

    /** Run-length tracking behind the stall-trace hook. */
    void updateTraceLabel(WarpId warp, const char *label);

    /** Issue and functionally execute the instruction at warp's PC. */
    void issue(Tenant &tn, Warp &warp, Cycle now);

    void execAlu(Tenant &tn, Warp &warp, const ir::Instruction &insn,
                 Cycle now);
    void execGlobalLoad(Tenant &tn, Warp &warp,
                        const ir::Instruction &insn, Cycle now);
    void execGlobalStore(Tenant &tn, Warp &warp,
                         const ir::Instruction &insn, Cycle now);
    void execShared(Tenant &tn, Warp &warp,
                    const ir::Instruction &insn, Cycle now);
    void execBranch(Tenant &tn, Warp &warp,
                    const ir::Instruction &insn, Cycle now);
    void execBarrier(Tenant &tn, Warp &warp, Cycle now);
    void execExit(Tenant &tn, Warp &warp, Cycle now);

    /** Reconvergence PC for branches ending @a block. */
    Pc reconvergePcFor(const Tenant &tn, ir::BlockId block) const;

    /** Per-lane effective addresses of a memory instruction. */
    std::vector<Addr> laneAddrs(const Warp &warp,
                                const ir::Instruction &insn,
                                Addr base) const;

    /** Distinct 128B lines touched by active lanes. */
    std::vector<Addr> coalesce(const std::vector<Addr> &addrs,
                               LaneMask mask) const;

    /** Release a block's barrier when everyone has arrived. */
    void checkBarrier(Tenant &tn, unsigned block_id);

    /** Admit further thread blocks while residency allows. */
    void admitBlocks(Tenant &tn);

    mem::MemorySystem &_mem;
    SmConfig _cfg;
    std::vector<std::unique_ptr<Tenant>> _tenants;
    /** Owning tenant of each warp slot. */
    std::vector<unsigned> _tenantOf;
    /** Owning tenant of each scheduler group. */
    std::vector<unsigned> _groupTenant;
    std::vector<Warp> _warps;
    std::vector<std::unique_ptr<WarpScheduler>> _schedulers;
    Cycle _now = 0;
    IssueHook _issueHook;
    std::vector<bool> _resident;
    /** Any tenant between requestSuspend and its boundary? Gates the
     *  per-cycle poll and disables cycle skipping while set. */
    bool _anySuspendPending = false;
    StatGroup _stats;
    Counter &_issued;
    Counter &_slotIssued;
    std::array<Counter *, kNumStallCauses> _stallSlots{};
    Counter &_divergentBranches;
    Counter &_memTransactions;
    Counter &_skippedCycles;
    Counter &_skipEvents;
    std::vector<std::array<std::uint64_t, kNumStallCauses>> _warpStalls;
    /** All schedulers safe to skip over? (precomputed at build) */
    bool _schedulersQuiescent = true;
    /** @name Preallocated per-group scan buffers (no per-cycle heap). */
    ///@{
    std::vector<bool> _scanCan;
    std::vector<StallCause> _scanCause;
    ///@}
    /** Per-group slot charge of the last probed all-stalled cycle. */
    std::vector<StallCause> _groupCharge;
    /** (warp, cause) pairs charged per-warp in the probed cycle. */
    std::vector<std::pair<WarpId, StallCause>> _chargedWarps;
    StallTraceHook _traceHook;
    std::vector<const char *> _traceLabel;
    std::vector<Cycle> _traceStart;
};

} // namespace regless::arch

#endif // REGLESS_ARCH_SM_HH
