/**
 * @file
 * Warp schedulers: GTO (greedy-then-oldest, the baseline), two-level
 * (used by the RFH comparison and Figure 2), and loose round-robin.
 *
 * A scheduler only *orders* warps; eligibility (scoreboard, barriers,
 * register-provider gating) is decided by the SM and passed in.
 */

#ifndef REGLESS_ARCH_SCHEDULER_HH
#define REGLESS_ARCH_SCHEDULER_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace regless::arch
{

/** Scheduler policy selector. */
enum class SchedulerPolicy
{
    Gto,      ///< greedy-then-oldest (baseline, Table 1)
    TwoLevel, ///< active pool + pending pool [9]
    Rr,       ///< loose round-robin
};

/** Parse "gto" / "two_level" / "rr". */
SchedulerPolicy schedulerPolicyFromString(const std::string &name);

/** Abstract warp picker for one scheduling group. */
class WarpScheduler
{
  public:
    explicit WarpScheduler(std::vector<WarpId> warps)
        : _warps(std::move(warps))
    {
    }

    virtual ~WarpScheduler() = default;

    /**
     * Pick the warp to issue from this cycle.
     *
     * @param eligible eligible[i] says whether supervised warp i (by
     *        position in warps()) can issue right now.
     * @return index into warps(), or -1 when nothing is eligible.
     */
    virtual int pick(const std::vector<bool> &eligible) = 0;

    /**
     * Feedback: the warp picked last cycle stalled on a long-latency
     * operation (used by the two-level scheduler for demotion).
     */
    virtual void notifyLongStall(WarpId) {}

    /**
     * Does this scheduler's internal state stay constant across a
     * cycle in which nothing is eligible? Required for event-driven
     * cycle skipping: a window of all-stalled cycles may be collapsed
     * only when replaying them one by one would not have changed the
     * scheduler (pick() is never called while nothing is eligible, so
     * only per-cycle side effects outside pick() matter). The
     * two-level scheduler ages promotion timers and shuffles pools
     * every cycle, so it opts out.
     */
    virtual bool quiescentWhenStalled() const { return true; }

    const std::vector<WarpId> &warps() const { return _warps; }

    /** Factory for @a policy over @a warps. */
    static std::unique_ptr<WarpScheduler>
    create(SchedulerPolicy policy, std::vector<WarpId> warps);

  protected:
    std::vector<WarpId> _warps;
};

/**
 * Greedy-then-oldest: keep issuing from the same warp until it cannot
 * issue, then fall back to the oldest (lowest slot) eligible warp.
 */
class GtoScheduler : public WarpScheduler
{
  public:
    explicit GtoScheduler(std::vector<WarpId> warps)
        : WarpScheduler(std::move(warps))
    {
    }

    int pick(const std::vector<bool> &eligible) override;

  private:
    int _current = -1;
};

/**
 * Two-level scheduler [9]: a small active pool is scheduled
 * round-robin; warps that stall on long-latency operations are demoted
 * to the pending pool and replaced by the oldest pending warp.
 */
class TwoLevelScheduler : public WarpScheduler
{
  public:
    /**
     * @param active_size Warps in the active pool.
     * @param promotion_delay pick() calls (cycles) a freshly promoted
     *        warp needs before it can issue (ibuffer refill) — the
     *        main reason GTO outperforms two-level scheduling [56].
     */
    TwoLevelScheduler(std::vector<WarpId> warps, unsigned active_size,
                      unsigned promotion_delay = 30);

    int pick(const std::vector<bool> &eligible) override;
    void notifyLongStall(WarpId warp) override;
    bool quiescentWhenStalled() const override { return false; }

    /** Warps currently in the active pool (exposed for Figure 2). */
    const std::deque<unsigned> &activePool() const { return _active; }

  private:
    unsigned _activeSize;
    unsigned _promotionDelay;
    std::uint64_t _cycle = 0;
    std::deque<unsigned> _active;  ///< indices into warps()
    std::deque<unsigned> _pending; ///< indices into warps()
    std::vector<std::uint64_t> _readyAt; ///< per warp index
};

/** Loose round-robin over all supervised warps. */
class RrScheduler : public WarpScheduler
{
  public:
    explicit RrScheduler(std::vector<WarpId> warps)
        : WarpScheduler(std::move(warps))
    {
    }

    int pick(const std::vector<bool> &eligible) override;

  private:
    unsigned _next = 0;
};

} // namespace regless::arch

#endif // REGLESS_ARCH_SCHEDULER_HH
