#include "arch/exec_unit.hh"

// ExecLatencies is header-only; this file anchors the header in the
// build so the target list stays uniform.
