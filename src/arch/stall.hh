/**
 * @file
 * Stall-attribution taxonomy (DESIGN.md section 10).
 *
 * Every scheduler slot (one per scheduler per cycle) either issues or
 * is charged to exactly one StallCause.  The taxonomy is fixed so
 * stats_io keys, trace labels, and figure columns never drift apart.
 */

#ifndef REGLESS_ARCH_STALL_HH
#define REGLESS_ARCH_STALL_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace regless::arch
{

/**
 * Why a scheduler slot failed to issue.  One cause per slot; when
 * several warps are blocked for different reasons the slot is charged
 * to the cause of the warp closest to issuing (see stallPrecedence).
 */
enum class StallCause : std::uint8_t
{
    NoWarp,          ///< No resident runnable warp (or pick declined).
    ScoreboardDep,   ///< RAW/WAW hazard on a non-memory producer.
    CmNotStaged,     ///< CM has not activated the warp's region yet.
    CmNoCapacity,    ///< Region activation blocked on OSU free lines.
    OsuBankConflict, ///< Preload blocked on a busy OSU bank port.
    MemPending,      ///< Waiting on an outstanding memory access.
    ExecPortBusy,    ///< L1 port taken by an earlier issue this cycle.
    SyncBarrier,     ///< Warp parked at a bar.sync.
};

constexpr std::size_t kNumStallCauses = 8;

/** Snake-case name, also the trace label and the "stall_" key stem. */
constexpr const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::NoWarp: return "no_warp";
      case StallCause::ScoreboardDep: return "scoreboard_dep";
      case StallCause::CmNotStaged: return "cm_not_staged";
      case StallCause::CmNoCapacity: return "cm_no_capacity";
      case StallCause::OsuBankConflict: return "osu_bank_conflict";
      case StallCause::MemPending: return "mem_pending";
      case StallCause::ExecPortBusy: return "exec_port_busy";
      case StallCause::SyncBarrier: return "sync_barrier";
    }
    return "unknown";
}

/**
 * Charging precedence: lower rank is closer to issuing and wins the
 * slot.  Order reflects how far a warp got through Sm::eligible —
 * provider refusals (checked last) outrank the L1 port, which
 * outranks the scoreboard, which outranks parked/absent warps.
 * Within the provider causes a transient bank conflict outranks a
 * capacity wait, which outranks plain not-yet-staged.
 */
constexpr unsigned
stallPrecedence(StallCause cause)
{
    switch (cause) {
      case StallCause::OsuBankConflict: return 0;
      case StallCause::CmNoCapacity: return 1;
      case StallCause::CmNotStaged: return 2;
      case StallCause::ExecPortBusy: return 3;
      case StallCause::MemPending: return 4;
      case StallCause::ScoreboardDep: return 5;
      case StallCause::SyncBarrier: return 6;
      case StallCause::NoWarp: return 7;
    }
    return 8;
}

/**
 * Point-in-time copy of an SM's slot counters; differences between
 * two snapshots give the breakdown for a window (used by the
 * watchdog's DeadlockReport).
 */
struct StallSnapshot
{
    std::uint64_t issuedSlots = 0;
    std::array<std::uint64_t, kNumStallCauses> stallSlots{};
};

} // namespace regless::arch

#endif // REGLESS_ARCH_STALL_HH
