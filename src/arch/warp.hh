/**
 * @file
 * Warp: 32 threads executing in lockstep, with functional register
 * state and divergence tracking.
 */

#ifndef REGLESS_ARCH_WARP_HH
#define REGLESS_ARCH_WARP_HH

#include <vector>

#include "arch/simt_stack.hh"
#include "common/types.hh"
#include "ir/instruction.hh"

namespace regless::arch
{

/** Execution status of a warp. */
enum class WarpStatus
{
    Running,
    AtBarrier, ///< arrived at a barrier, waiting for the block
    Finished,
};

/**
 * Architectural state of one warp. Timing state (scoreboard entries,
 * staging-unit residency) lives in the SM and register providers.
 */
class Warp
{
  public:
    /**
     * @param id Hardware warp slot in the SM.
     * @param block_id Thread-block this warp belongs to (tenant-local
     *        under multi-tenant operation).
     * @param num_regs Register count of the kernel.
     * @param local_id Kernel-local warp index: equals @a id for a
     *        whole-SM launch; under multi-tenant operation it is the
     *        offset inside the tenant's warp partition, so Tid/CtaId
     *        see the same launch geometry as a solo run.
     */
    Warp(WarpId id, unsigned block_id, unsigned num_regs,
         WarpId local_id);
    Warp(WarpId id, unsigned block_id, unsigned num_regs);

    WarpId id() const { return _id; }
    WarpId localId() const { return _localId; }
    unsigned blockId() const { return _blockId; }

    WarpStatus status() const { return _status; }
    void setStatus(WarpStatus s) { _status = s; }
    bool finished() const { return _status == WarpStatus::Finished; }

    Pc pc() const { return _stack.pc(); }
    LaneMask activeMask() const { return _stack.activeMask(); }
    SimtStack &stack() { return _stack; }
    const SimtStack &stack() const { return _stack; }

    /** Kernel-local thread index of lane 0 (used by Tid). */
    unsigned threadBase() const { return _localId * warpSize; }

    /** @name Functional register file (per-lane values). */
    /// @{
    const ir::LaneValues &regValue(RegId reg) const;

    /**
     * Write @a value into @a reg, merging under @a mask (inactive
     * lanes keep their old value — the soft-definition semantics).
     */
    void writeReg(RegId reg, const ir::LaneValues &value, LaneMask mask);
    /// @}

    /** Dynamic instruction count executed by this warp. */
    std::uint64_t insnsExecuted() const { return _insnsExecuted; }
    void countInsn() { ++_insnsExecuted; }

  private:
    WarpId _id;
    WarpId _localId;
    unsigned _blockId;
    WarpStatus _status = WarpStatus::Running;
    SimtStack _stack;
    std::vector<ir::LaneValues> _regs;
    std::uint64_t _insnsExecuted = 0;
};

} // namespace regless::arch

#endif // REGLESS_ARCH_WARP_HH
