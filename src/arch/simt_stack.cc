#include "arch/simt_stack.hh"

#include "common/logging.hh"

namespace regless::arch
{

SimtStack::SimtStack()
{
    _entries.push_back(SimtEntry{0, fullMask, invalidPc});
}

Pc
SimtStack::pc() const
{
    if (_entries.empty())
        panic("SimtStack::pc on exited warp");
    return _entries.back().pc;
}

LaneMask
SimtStack::activeMask() const
{
    if (_entries.empty())
        return 0;
    return _entries.back().mask;
}

void
SimtStack::reconverge()
{
    while (!_entries.empty() &&
           _entries.back().pc == _entries.back().reconvergePc) {
        _entries.pop_back();
    }
}

void
SimtStack::advance()
{
    if (_entries.empty())
        panic("advance on exited warp");
    ++_entries.back().pc;
    reconverge();
}

bool
SimtStack::branch(LaneMask taken_mask, Pc target, Pc reconverge_pc)
{
    if (_entries.empty())
        panic("branch on exited warp");
    SimtEntry &top = _entries.back();
    taken_mask &= top.mask;
    LaneMask fall_mask = top.mask & ~taken_mask;

    if (taken_mask == 0) {
        ++top.pc;
        reconverge();
        return false;
    }
    if (fall_mask == 0) {
        top.pc = target;
        reconverge();
        return false;
    }

    // Divergence: the current entry becomes the reconvergence frame;
    // push the fall-through side, then the taken side (executed first).
    Pc fall_pc = top.pc + 1;
    top.pc = reconverge_pc;
    // top.mask stays the merged mask.
    _entries.push_back(SimtEntry{fall_pc, fall_mask, reconverge_pc});
    _entries.push_back(SimtEntry{target, taken_mask, reconverge_pc});
    reconverge();
    return true;
}

void
SimtStack::jump(Pc target)
{
    if (_entries.empty())
        panic("jump on exited warp");
    _entries.back().pc = target;
    reconverge();
}

void
SimtStack::exitLanes()
{
    if (_entries.empty())
        panic("exit on exited warp");
    LaneMask exited = _entries.back().mask;
    _entries.pop_back();
    // Remove the exited lanes from every remaining frame; frames left
    // empty are dropped (can happen with exits inside divergence).
    for (auto it = _entries.begin(); it != _entries.end();) {
        it->mask &= ~exited;
        if (it->mask == 0)
            it = _entries.erase(it);
        else
            ++it;
    }
    reconverge();
}

} // namespace regless::arch
