#include "arch/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace regless::arch
{

SchedulerPolicy
schedulerPolicyFromString(const std::string &name)
{
    if (name == "gto")
        return SchedulerPolicy::Gto;
    if (name == "two_level")
        return SchedulerPolicy::TwoLevel;
    if (name == "rr")
        return SchedulerPolicy::Rr;
    fatal("unknown scheduler policy '", name, "'");
}

std::unique_ptr<WarpScheduler>
WarpScheduler::create(SchedulerPolicy policy, std::vector<WarpId> warps)
{
    switch (policy) {
      case SchedulerPolicy::Gto:
        return std::make_unique<GtoScheduler>(std::move(warps));
      case SchedulerPolicy::TwoLevel:
        return std::make_unique<TwoLevelScheduler>(std::move(warps), 4);
      case SchedulerPolicy::Rr:
        return std::make_unique<RrScheduler>(std::move(warps));
    }
    panic("bad scheduler policy");
}

int
GtoScheduler::pick(const std::vector<bool> &eligible)
{
    // Bounds guard: the greedy index may outlive a warp-count change
    // in the eligibility vector; never read past its end.
    if (_current >= 0
        && static_cast<std::size_t>(_current) < eligible.size()
        && eligible[_current])
        return _current;
    for (unsigned i = 0; i < eligible.size(); ++i) {
        if (eligible[i]) {
            _current = static_cast<int>(i);
            return _current;
        }
    }
    _current = -1;
    return -1;
}

TwoLevelScheduler::TwoLevelScheduler(std::vector<WarpId> warps,
                                     unsigned active_size,
                                     unsigned promotion_delay)
    : WarpScheduler(std::move(warps)),
      _activeSize(active_size),
      _promotionDelay(promotion_delay),
      _readyAt(_warps.size(), 0)
{
    for (unsigned i = 0; i < _warps.size(); ++i) {
        if (i < _activeSize)
            _active.push_back(i);
        else
            _pending.push_back(i);
    }
}

int
TwoLevelScheduler::pick(const std::vector<bool> &eligible)
{
    ++_cycle;
    // Round-robin within the active pool; freshly promoted warps wait
    // out their instruction-buffer refill.
    for (std::size_t tries = 0; tries < _active.size(); ++tries) {
        unsigned idx = _active.front();
        _active.pop_front();
        _active.push_back(idx);
        if (eligible[idx] && _cycle >= _readyAt[idx])
            return static_cast<int>(idx);
    }
    return -1;
}

void
TwoLevelScheduler::notifyLongStall(WarpId warp)
{
    // Demote the stalled warp; promote the oldest pending warp.  With
    // nothing pending the demotion must be a no-op: demoting anyway
    // would permanently shrink the active pool (down to empty with a
    // single warp, deadlocking the scheduler).
    if (_pending.empty())
        return;
    auto it = std::find_if(_active.begin(), _active.end(),
                           [&](unsigned idx) {
                               return _warps[idx] == warp;
                           });
    if (it == _active.end())
        return;
    unsigned idx = *it;
    _active.erase(it);
    unsigned promoted = _pending.front();
    _pending.pop_front();
    _readyAt[promoted] = _cycle + _promotionDelay;
    _active.push_back(promoted);
    _pending.push_back(idx);
}

int
RrScheduler::pick(const std::vector<bool> &eligible)
{
    const unsigned n = static_cast<unsigned>(eligible.size());
    for (unsigned i = 0; i < n; ++i) {
        unsigned idx = (_next + i) % n;
        if (eligible[idx]) {
            _next = (idx + 1) % n;
            return static_cast<int>(idx);
        }
    }
    return -1;
}

} // namespace regless::arch
