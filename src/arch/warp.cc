#include "arch/warp.hh"

#include "common/logging.hh"

namespace regless::arch
{

Warp::Warp(WarpId id, unsigned block_id, unsigned num_regs)
    : _id(id), _blockId(block_id), _regs(num_regs, ir::LaneValues{})
{
}

const ir::LaneValues &
Warp::regValue(RegId reg) const
{
    return _regs.at(reg);
}

void
Warp::writeReg(RegId reg, const ir::LaneValues &value, LaneMask mask)
{
    ir::LaneValues &slot = _regs.at(reg);
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (mask & (1u << lane))
            slot[lane] = value[lane];
    }
}

} // namespace regless::arch
