#include "arch/warp.hh"

#include "common/logging.hh"

namespace regless::arch
{

Warp::Warp(WarpId id, unsigned block_id, unsigned num_regs,
           WarpId local_id)
    : _id(id), _localId(local_id), _blockId(block_id),
      _regs(num_regs, ir::LaneValues{})
{
}

Warp::Warp(WarpId id, unsigned block_id, unsigned num_regs)
    : Warp(id, block_id, num_regs, id)
{
}

const ir::LaneValues &
Warp::regValue(RegId reg) const
{
    return _regs.at(reg);
}

void
Warp::writeReg(RegId reg, const ir::LaneValues &value, LaneMask mask)
{
    ir::LaneValues &slot = _regs.at(reg);
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (mask & (1u << lane))
            slot[lane] = value[lane];
    }
}

} // namespace regless::arch
