#include "arch/scoreboard.hh"

#include <algorithm>

#include "common/logging.hh"

namespace regless::arch
{

Scoreboard::Scoreboard(unsigned num_warps, unsigned num_regs,
                       WarpId warp_base)
    : _numRegs(num_regs), _numWarps(num_warps), _warpBase(warp_base),
      _readyCycle(static_cast<std::size_t>(num_warps) * num_regs, 0),
      _fromMem(static_cast<std::size_t>(num_warps) * num_regs, false)
{
}

std::size_t
Scoreboard::index(WarpId warp, RegId reg) const
{
    if (warp < _warpBase || warp >= _warpBase + _numWarps) {
        panic("scoreboard: warp ", warp, " outside supervised range [",
              _warpBase, ", ", _warpBase + _numWarps, ")");
    }
    if (reg >= _numRegs)
        panic("scoreboard: register ", reg, " >= ", _numRegs);
    return static_cast<std::size_t>(warp - _warpBase) * _numRegs + reg;
}

bool
Scoreboard::ready(WarpId warp, const ir::Instruction &insn,
                  Cycle now) const
{
    for (RegId src : insn.srcs()) {
        if (readyAt(warp, src) > now)
            return false;
    }
    if (insn.writesReg() && readyAt(warp, insn.dst()) > now)
        return false;
    return true;
}

void
Scoreboard::recordWrite(WarpId warp, const ir::Instruction &insn,
                        Cycle when)
{
    if (!insn.writesReg())
        return;
    const std::size_t i = index(warp, insn.dst());
    _readyCycle[i] = when;
    _fromMem[i] = insn.isGlobalLoad();
}

bool
Scoreboard::blockedOnMem(WarpId warp, const ir::Instruction &insn,
                         Cycle now) const
{
    auto pending_mem = [&](RegId reg) {
        return readyAt(warp, reg) > now && _fromMem[index(warp, reg)];
    };
    for (RegId src : insn.srcs()) {
        if (pending_mem(src))
            return true;
    }
    return insn.writesReg() && pending_mem(insn.dst());
}

Cycle
Scoreboard::nextReadyChange(WarpId warp, const ir::Instruction &insn,
                            Cycle now) const
{
    Cycle next = 0;
    auto consider = [&](RegId reg) {
        const Cycle at = readyAt(warp, reg);
        if (at > now && (next == 0 || at < next))
            next = at;
    };
    for (RegId src : insn.srcs())
        consider(src);
    if (insn.writesReg())
        consider(insn.dst());
    return next;
}

Cycle
Scoreboard::readyAt(WarpId warp, RegId reg) const
{
    return _readyCycle[index(warp, reg)];
}

Cycle
Scoreboard::lastPendingWrite(WarpId warp,
                             const std::vector<RegId> &regs) const
{
    Cycle latest = 0;
    for (RegId reg : regs)
        latest = std::max(latest, readyAt(warp, reg));
    return latest;
}

} // namespace regless::arch
