/**
 * @file
 * Execution-unit latency model.
 *
 * Units are fully pipelined: an instruction issued at cycle t writes
 * back at t + latency(class). Memory latency is computed by the memory
 * system; the LSU latency here covers address generation and the
 * shared-memory path.
 */

#ifndef REGLESS_ARCH_EXEC_UNIT_HH
#define REGLESS_ARCH_EXEC_UNIT_HH

#include "common/types.hh"
#include "ir/instruction.hh"

namespace regless::arch
{

/** Pipeline latencies per functional-unit class. */
struct ExecLatencies
{
    Cycle alu = 6;
    Cycle sfu = 20;
    Cycle sharedMem = 28;
    Cycle control = 1;

    /** Latency for @a insn, excluding global-memory time. */
    Cycle
    latency(const ir::Instruction &insn) const
    {
        switch (insn.fuClass()) {
          case ir::FuClass::Alu:
            return alu;
          case ir::FuClass::Sfu:
            return sfu;
          case ir::FuClass::Mem:
            return insn.isSharedAccess() ? sharedMem : 0;
          case ir::FuClass::Control:
            return control;
        }
        return alu;
    }
};

} // namespace regless::arch

#endif // REGLESS_ARCH_EXEC_UNIT_HH
