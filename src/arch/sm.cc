#include "arch/sm.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"

namespace regless::arch
{

Sm::Tenant::Tenant(const SmTenantSpec &spec, WarpId warp_base,
                   unsigned warp_count, unsigned sched_base,
                   unsigned sched_count)
    : ck(spec.ck),
      kernel(&spec.ck->kernel()),
      provider(spec.provider),
      cfgAnalysis(spec.ck->kernel()),
      scoreboard(warp_count, spec.ck->kernel().numRegs(), warp_base),
      warpBase(warp_base),
      warpCount(warp_count),
      schedBase(sched_base),
      schedCount(sched_count),
      dataBase(spec.dataBase),
      sharedBase(spec.sharedBase)
{
}

Sm::Sm(const compiler::CompiledKernel &ck, mem::MemorySystem &mem,
       regfile::RegisterProvider &provider, const SmConfig &config)
    : Sm(std::vector<SmTenantSpec>{SmTenantSpec{
             &ck, &provider, config.dataBase, config.sharedBase}},
         mem, config)
{
}

Sm::Sm(std::vector<SmTenantSpec> tenants, mem::MemorySystem &mem,
       const SmConfig &config)
    : _mem(mem),
      _cfg(config),
      _stats("sm"),
      _issued(_stats.counter("insns_issued")),
      _slotIssued(_stats.counter("issued_slots")),
      _divergentBranches(_stats.counter("divergent_branches")),
      _memTransactions(_stats.counter("global_mem_transactions")),
      _skippedCycles(_stats.counter("skipped_cycles")),
      _skipEvents(_stats.counter("skip_events")),
      _warpStalls(config.numWarps)
{
    for (std::size_t c = 0; c < kNumStallCauses; ++c) {
        _stallSlots[c] = &_stats.counter(
            std::string("stall_") +
            stallCauseName(static_cast<StallCause>(c)));
    }
    if (_cfg.numWarps % _cfg.numSchedulers != 0)
        fatal("warps must divide evenly among schedulers");
    if (tenants.empty())
        fatal("SM needs at least one tenant");
    const auto num_tenants = static_cast<unsigned>(tenants.size());
    if (_cfg.numSchedulers % num_tenants != 0 ||
        _cfg.numWarps % num_tenants != 0) {
        fatal(num_tenants, " tenants must divide ",
              _cfg.numSchedulers, " schedulers and ", _cfg.numWarps,
              " warps evenly");
    }
    const unsigned warp_count = _cfg.numWarps / num_tenants;
    const unsigned sched_count = _cfg.numSchedulers / num_tenants;
    if (warp_count % sched_count != 0)
        fatal("tenant warps must divide evenly among tenant schedulers");

    // Tenant t owns the contiguous warp range [t*W/T, (t+1)*W/T) and
    // scheduler groups [t*S/T, (t+1)*S/T). Warps carry global slot
    // ids; block ids and thread indices are tenant-local, so each
    // tenant sees the same launch geometry as a solo run.
    _warps.reserve(_cfg.numWarps);
    _tenantOf.resize(_cfg.numWarps);
    for (unsigned t = 0; t < num_tenants; ++t) {
        const SmTenantSpec &spec = tenants[t];
        if (!spec.ck || !spec.provider)
            fatal("tenant ", t, " missing kernel or provider");
        const WarpId base = t * warp_count;
        _tenants.push_back(std::make_unique<Tenant>(
            spec, base, warp_count, t * sched_count, sched_count));
        Tenant &tn = *_tenants.back();
        const unsigned wpb = tn.kernel->warpsPerBlock();
        for (unsigned l = 0; l < warp_count; ++l) {
            const WarpId w = base + l;
            _warps.emplace_back(w, l / wpb, tn.kernel->numRegs(), l);
            _tenantOf[w] = t;
        }
    }

    // Residency: admit thread blocks up to the occupancy limit.
    _resident.assign(_cfg.numWarps, _cfg.maxResidentWarps == 0);
    if (_cfg.maxResidentWarps != 0) {
        for (auto &tn : _tenants)
            admitBlocks(*tn);
    }

    // Interleaved assignment within each tenant: group sg of tenant t
    // serves warps {base + sg + k*schedCount}, which for one tenant is
    // exactly warp w in group w % numSchedulers (matches how
    // consecutive warps spread across GTX 980 schedulers).
    _groupTenant.resize(_cfg.numSchedulers);
    for (unsigned g = 0; g < _cfg.numSchedulers; ++g) {
        const unsigned t = g / sched_count;
        _groupTenant[g] = t;
        Tenant &tn = *_tenants[t];
        const unsigned sg = g % sched_count;
        std::vector<WarpId> group;
        for (WarpId w = tn.warpBase + sg;
             w < tn.warpBase + tn.warpCount; w += sched_count) {
            group.push_back(w);
        }
        _schedulers.push_back(
            WarpScheduler::create(_cfg.scheduler, std::move(group)));
    }
    for (const auto &sched : _schedulers)
        _schedulersQuiescent &= sched->quiescentWhenStalled();
    _scanCan.resize(_cfg.numWarps / _cfg.numSchedulers);
    _scanCause.resize(_scanCan.size());
    _groupCharge.resize(_cfg.numSchedulers, StallCause::NoWarp);
    _chargedWarps.reserve(_cfg.numWarps);
}

bool
Sm::done() const
{
    return std::all_of(_warps.begin(), _warps.end(),
                       [](const Warp &w) { return w.finished(); });
}

bool
Sm::tenantDone(unsigned t) const
{
    return tenant(t).finished;
}

std::uint64_t
Sm::tenantSuspendedCycles(unsigned t) const
{
    const Tenant &tn = tenant(t);
    std::uint64_t cycles = tn.suspendedCycles;
    if (tn.suspended)
        cycles += _now - tn.suspendStart;
    return cycles;
}

void
Sm::requestSuspend(unsigned t, Cycle now)
{
    Tenant &tn = tenant(t);
    if (tn.suspended || tn.suspendRequested || tn.finished)
        return;
    tn.suspendRequested = true;
    ++tn.preemptions;
    tn.provider->requestSuspend(now);
    _anySuspendPending = true;
}

void
Sm::resumeTenant(unsigned t, Cycle now)
{
    Tenant &tn = tenant(t);
    if (tn.suspended) {
        tn.suspendedCycles += now - tn.suspendStart;
        tn.suspended = false;
    }
    tn.suspendRequested = false;
    tn.provider->resume(now);
    bool pending = false;
    for (const auto &other : _tenants)
        pending |= other->suspendRequested;
    _anySuspendPending = pending;
}

void
Sm::pollSuspends(Cycle now)
{
    bool pending = false;
    for (auto &tn : _tenants) {
        if (!tn->suspendRequested)
            continue;
        if (tn->provider->suspendComplete()) {
            // Boundary reached: hand off the staged state. From the
            // next eligibility scan on, the tenant's warps park.
            tn->provider->finalizeSuspend(now);
            tn->suspendRequested = false;
            tn->suspended = true;
            tn->suspendStart = now;
        } else {
            pending = true;
        }
    }
    _anySuspendPending = pending;
}

Pc
Sm::reconvergePcFor(const Tenant &tn, ir::BlockId block) const
{
    ir::BlockId ipdom = tn.cfgAnalysis.immediatePostdominator(block);
    if (ipdom == ir::invalidBlock)
        return invalidPc;
    return tn.kernel->block(ipdom).firstPc();
}

void
Sm::admitBlocks(Tenant &tn)
{
    const unsigned wpb = tn.kernel->warpsPerBlock();
    const unsigned num_blocks = tn.warpCount / wpb;
    // Always keep at least one block admitted so progress is possible.
    while (tn.nextBlockToAdmit < num_blocks &&
           (tn.residentWarps == 0 ||
            tn.residentWarps + wpb <= _cfg.maxResidentWarps)) {
        for (WarpId w = tn.warpBase + tn.nextBlockToAdmit * wpb;
             w < tn.warpBase + (tn.nextBlockToAdmit + 1) * wpb; ++w) {
            _resident[w] = true;
        }
        tn.residentWarps += wpb;
        ++tn.nextBlockToAdmit;
    }
}

bool
Sm::eligible(Tenant &tn, const Warp &warp, Cycle now, bool *long_stall,
             StallCause *cause, Cycle *next_event)
{
    *long_stall = false;
    auto blocked = [&](StallCause why) {
        if (cause)
            *cause = why;
        return false;
    };
    auto bound = [&](Cycle at) {
        if (next_event)
            *next_event = std::min(*next_event, at);
    };
    // Suspended tenants park with no bound: resumption is an external
    // control decision (the QoS controller clamps the skip limit to
    // its own decision points). Non-resident, finished, and
    // barrier-parked warps likewise have no bound: their release
    // requires another warp to issue, which cannot happen inside an
    // all-stalled window.
    if (tn.suspended)
        return blocked(StallCause::NoWarp);
    if (!_resident[warp.id()])
        return blocked(StallCause::NoWarp);
    if (warp.status() == WarpStatus::AtBarrier)
        return blocked(StallCause::SyncBarrier);
    if (warp.status() != WarpStatus::Running)
        return blocked(StallCause::NoWarp);
    const ir::Instruction &insn = tn.kernel->insn(warp.pc());
    if (!tn.scoreboard.ready(warp.id(), insn, now)) {
        // Long-latency source? (feeds the two-level demotion)
        for (RegId src : insn.srcs()) {
            if (tn.scoreboard.readyAt(warp.id(), src) >
                now + _cfg.longStallThreshold) {
                *long_stall = true;
            }
        }
        bound(tn.scoreboard.nextReadyChange(warp.id(), insn, now));
        return blocked(tn.scoreboard.blockedOnMem(warp.id(), insn, now)
                           ? StallCause::MemPending
                           : StallCause::ScoreboardDep);
    }
    if (insn.isGlobalLoad() || insn.isGlobalStore()) {
        if (!_mem.l1PortFree(now)) {
            bound(_mem.nextEventCycle(now));
            return blocked(StallCause::ExecPortBusy);
        }
    }
    // The provider check comes last so its internal gating (e.g. the
    // RegLess capacity manager) sees only otherwise-issuable warps.
    // No per-warp bound: the provider's own nextEventCycle covers it.
    if (!tn.provider->canIssue(warp, now))
        return blocked(tn.provider->blockCause(warp, now));
    return true;
}

std::vector<Addr>
Sm::laneAddrs(const Warp &warp, const ir::Instruction &insn,
              Addr base) const
{
    // Loads: address register is src 0; stores: src 1 (data is src 0).
    const RegId addr_reg =
        insn.isGlobalStore() || insn.op() == ir::Opcode::StShared
            ? insn.srcs().at(1)
            : insn.srcs().at(0);
    const ir::LaneValues &av = warp.regValue(addr_reg);
    std::vector<Addr> addrs(warpSize);
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        addrs[lane] = base + static_cast<Addr>(av[lane]) +
                      static_cast<Addr>(insn.imm());
    }
    return addrs;
}

std::vector<Addr>
Sm::coalesce(const std::vector<Addr> &addrs, LaneMask mask) const
{
    std::vector<Addr> lines;
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (!(mask & (1u << lane)))
            continue;
        Addr line = mem::lineAddr(addrs[lane]);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }
    return lines;
}

void
Sm::execAlu(Tenant &tn, Warp &warp, const ir::Instruction &insn,
            Cycle now)
{
    ir::LaneValues result{};
    if (insn.op() == ir::Opcode::Tid) {
        for (unsigned lane = 0; lane < warpSize; ++lane)
            result[lane] = warp.threadBase() + lane;
    } else if (insn.op() == ir::Opcode::CtaId) {
        result.fill(warp.blockId());
    } else {
        std::vector<ir::LaneValues> srcs;
        srcs.reserve(insn.srcs().size());
        for (RegId src : insn.srcs())
            srcs.push_back(warp.regValue(src));
        result = insn.evaluate(srcs);
    }
    warp.writeReg(insn.dst(), result, warp.activeMask());
    tn.scoreboard.recordWrite(warp.id(), insn,
                              now + _cfg.latencies.latency(insn));
    warp.stack().advance();
}

void
Sm::execGlobalLoad(Tenant &tn, Warp &warp, const ir::Instruction &insn,
                   Cycle now)
{
    LaneMask mask = warp.activeMask();
    std::vector<Addr> addrs = laneAddrs(warp, insn, tn.dataBase);

    ir::LaneValues result{};
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (mask & (1u << lane))
            result[lane] = _mem.readWord(addrs[lane]);
    }
    warp.writeReg(insn.dst(), result, mask);

    Cycle ready = now;
    for (Addr line : coalesce(addrs, mask)) {
        ++_memTransactions;
        Cycle t = std::max(now, _mem.l1PortNextFree());
        mem::MemAccessResult res =
            _mem.access(line, /*is_write=*/false, mem::MemSpace::Data, t);
        ready = std::max(ready, res.readyCycle);
    }
    tn.scoreboard.recordWrite(warp.id(), insn, ready);
    warp.stack().advance();
}

void
Sm::execGlobalStore(Tenant &tn, Warp &warp, const ir::Instruction &insn,
                    Cycle now)
{
    LaneMask mask = warp.activeMask();
    std::vector<Addr> addrs = laneAddrs(warp, insn, tn.dataBase);
    const ir::LaneValues &data = warp.regValue(insn.srcs().at(0));
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (mask & (1u << lane))
            _mem.writeWord(addrs[lane], data[lane]);
    }
    for (Addr line : coalesce(addrs, mask)) {
        ++_memTransactions;
        Cycle t = std::max(now, _mem.l1PortNextFree());
        _mem.access(line, /*is_write=*/true, mem::MemSpace::Data, t);
    }
    warp.stack().advance();
}

void
Sm::execShared(Tenant &tn, Warp &warp, const ir::Instruction &insn,
               Cycle now)
{
    LaneMask mask = warp.activeMask();
    const Addr seg =
        tn.sharedBase + (static_cast<Addr>(warp.blockId()) << 20);
    std::vector<Addr> addrs = laneAddrs(warp, insn, seg);
    if (insn.op() == ir::Opcode::LdShared) {
        ir::LaneValues result{};
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (mask & (1u << lane))
                result[lane] = _mem.readWord(addrs[lane]);
        }
        warp.writeReg(insn.dst(), result, mask);
        tn.scoreboard.recordWrite(warp.id(), insn,
                                  now + _cfg.latencies.sharedMem);
    } else {
        const ir::LaneValues &data = warp.regValue(insn.srcs().at(0));
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (mask & (1u << lane))
                _mem.writeWord(addrs[lane], data[lane]);
        }
    }
    warp.stack().advance();
}

void
Sm::execBranch(Tenant &tn, Warp &warp, const ir::Instruction &insn,
               Cycle now)
{
    (void)now;
    LaneMask mask = warp.activeMask();
    const ir::LaneValues &pred = warp.regValue(insn.srcs().at(0));
    LaneMask taken = 0;
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if ((mask & (1u << lane)) && pred[lane] != 0)
            taken |= 1u << lane;
    }
    Pc rpc = reconvergePcFor(tn, tn.kernel->blockOf(warp.pc()));
    if (warp.stack().branch(taken, insn.target(), rpc))
        ++_divergentBranches;
}

void
Sm::checkBarrier(Tenant &tn, unsigned block_id)
{
    // Block ids are tenant-local: only this tenant's warps take part
    // in the barrier, never a co-resident kernel's.
    bool all_arrived = true;
    for (WarpId w = tn.warpBase; w < tn.warpBase + tn.warpCount; ++w) {
        const Warp &wp = _warps[w];
        if (wp.blockId() != block_id)
            continue;
        if (wp.status() == WarpStatus::Running) {
            all_arrived = false;
            break;
        }
    }
    if (!all_arrived)
        return;
    for (WarpId w = tn.warpBase; w < tn.warpBase + tn.warpCount; ++w) {
        Warp &wp = _warps[w];
        if (wp.blockId() == block_id &&
            wp.status() == WarpStatus::AtBarrier) {
            wp.setStatus(WarpStatus::Running);
        }
    }
}

void
Sm::execBarrier(Tenant &tn, Warp &warp, Cycle now)
{
    (void)now;
    warp.stack().advance();
    warp.setStatus(WarpStatus::AtBarrier);
    checkBarrier(tn, warp.blockId());
}

void
Sm::execExit(Tenant &tn, Warp &warp, Cycle now)
{
    warp.stack().exitLanes();
    if (warp.stack().allExited()) {
        warp.setStatus(WarpStatus::Finished);
        tn.provider->onWarpFinished(warp, now);
        checkBarrier(tn, warp.blockId());
        if (!tn.finished) {
            bool all = true;
            for (WarpId w = tn.warpBase;
                 w < tn.warpBase + tn.warpCount; ++w) {
                all &= _warps[w].finished();
            }
            if (all) {
                tn.finished = true;
                tn.finishCycle = now;
            }
        }
        // If the whole block finished, its residency slots free up.
        if (_cfg.maxResidentWarps != 0) {
            const unsigned wpb = tn.kernel->warpsPerBlock();
            bool block_done = true;
            for (WarpId w = tn.warpBase + warp.blockId() * wpb;
                 w < tn.warpBase + (warp.blockId() + 1) * wpb; ++w) {
                block_done &= _warps[w].finished();
            }
            if (block_done) {
                tn.residentWarps -= wpb;
                admitBlocks(tn);
            }
        }
    }
}

void
Sm::issue(Tenant &tn, Warp &warp, Cycle now)
{
    const Pc pc = warp.pc();
    const ir::Instruction &insn = tn.kernel->insn(pc);
    if (_issueHook)
        _issueHook(warp, pc, insn, now);
    Cycle delay = tn.provider->operandDelay(warp, insn, now);
    Cycle t = now + delay;

    switch (insn.fuClass()) {
      case ir::FuClass::Alu:
      case ir::FuClass::Sfu:
        execAlu(tn, warp, insn, t);
        break;
      case ir::FuClass::Mem:
        if (insn.isGlobalLoad())
            execGlobalLoad(tn, warp, insn, t);
        else if (insn.isGlobalStore())
            execGlobalStore(tn, warp, insn, t);
        else
            execShared(tn, warp, insn, t);
        break;
      case ir::FuClass::Control:
        if (insn.isBranch())
            execBranch(tn, warp, insn, t);
        else if (insn.isJump())
            warp.stack().jump(insn.target());
        else if (insn.isBarrier())
            execBarrier(tn, warp, t);
        else
            execExit(tn, warp, t);
        break;
    }

    warp.countInsn();
    ++_issued;
    ++tn.insns;
    Cycle writeback = insn.writesReg()
                          ? tn.scoreboard.readyAt(warp.id(), insn.dst())
                          : t;
    tn.provider->onIssue(warp, pc, insn, now, writeback);
}

void
Sm::step()
{
    stepImpl(nullptr);
}

void
Sm::stepImpl(SkipProbe *probe)
{
    for (auto &tn : _tenants)
        tn->provider->tick(_now);
    if (_anySuspendPending)
        pollSuspends(_now);
    if (probe)
        _chargedWarps.clear();

    for (std::size_t g = 0; g < _schedulers.size(); ++g) {
        Tenant &tn = *_tenants[_groupTenant[g]];
        auto &sched = _schedulers[g];
        const auto &group = sched->warps();
        std::vector<bool> &can = _scanCan;
        std::vector<StallCause> &cause = _scanCause;
        std::fill(can.begin(), can.end(), false);
        std::fill(cause.begin(), cause.end(), StallCause::NoWarp);
        bool any = false;
        for (std::size_t i = 0; i < group.size(); ++i) {
            bool long_stall = false;
            bool eligible_now =
                eligible(tn, _warps[group[i]], _now, &long_stall,
                         &cause[i], probe ? &probe->nextEvent : nullptr);
            can[i] = eligible_now;
            any |= eligible_now;
            // Warps blocked indefinitely (finished, at a barrier) must
            // vacate a two-level scheduler's active pool, or pending
            // warps never get promoted and the SM deadlocks.
            if (long_stall ||
                _warps[group[i]].status() != WarpStatus::Running) {
                sched->notifyLongStall(group[i]);
            }
            // Per-warp stall detail (feeds the trace and the deadlock
            // report); the per-slot charge below is separate so every
            // scheduler-cycle is charged exactly once.
            if (!eligible_now &&
                _warps[group[i]].status() == WarpStatus::Running) {
                ++_warpStalls[group[i]]
                             [static_cast<std::size_t>(cause[i])];
                if (probe)
                    _chargedWarps.emplace_back(group[i], cause[i]);
            }
        }
        const int picked = any ? sched->pick(can) : -1;
        if (picked >= 0) {
            ++_slotIssued;
            ++tn.slotIssued;
        } else if (any) {
            // An eligible warp existed but the policy declined the
            // slot (e.g. two-level promotion delay): no warp was
            // available *to the selector*.
            ++*_stallSlots[static_cast<std::size_t>(
                StallCause::NoWarp)];
            ++tn.stallSlots[static_cast<std::size_t>(
                StallCause::NoWarp)];
        } else {
            // Charge the slot to the blocked warp closest to issuing.
            StallCause charge = StallCause::NoWarp;
            for (std::size_t i = 0; i < group.size(); ++i) {
                if (stallPrecedence(cause[i]) <
                    stallPrecedence(charge)) {
                    charge = cause[i];
                }
            }
            ++*_stallSlots[static_cast<std::size_t>(charge)];
            ++tn.stallSlots[static_cast<std::size_t>(charge)];
            if (probe)
                _groupCharge[g] = charge;
        }
        if (probe) {
            probe->anyIssue |= picked >= 0;
            probe->anyEligible |= any;
        }
        if (_traceHook) {
            for (std::size_t i = 0; i < group.size(); ++i) {
                const char *label =
                    static_cast<int>(i) == picked ? "issue"
                    : can[i]                      ? "ready"
                    : stallCauseName(cause[i]);
                updateTraceLabel(group[i], label);
            }
        }
        if (picked < 0)
            continue;
        Warp &warp = _warps[group[picked]];
        issue(tn, warp, _now);
        // Dual issue: a second independent instruction from the same
        // warp, re-checked against the updated scoreboard. The extra
        // issue shares the slot already counted above.
        for (unsigned extra = 1; extra < _cfg.issueWidth; ++extra) {
            bool long_stall = false;
            if (warp.status() != WarpStatus::Running ||
                !eligible(tn, warp, _now, &long_stall)) {
                break;
            }
            issue(tn, warp, _now);
        }
    }

    ++_now;
}

void
Sm::stepSkipping(Cycle limit)
{
    SkipProbe probe;
    stepImpl(&probe);
    // Collapse only provably dead windows: nothing issued, nothing was
    // even eligible (so no scheduler pick() was consulted), every
    // scheduler is stall-quiescent, no suspend handoff is in flight
    // (its boundary poll is per-cycle work), and the SM is not
    // finished.
    if (probe.anyIssue || probe.anyEligible || !_schedulersQuiescent ||
        _anySuspendPending || done()) {
        return;
    }
    // Next event is the min over every tenant's provider: a window is
    // only dead if no co-resident kernel has background work either.
    Cycle target = probe.nextEvent;
    for (const auto &tn : _tenants)
        target = std::min(target, tn->provider->nextEventCycle(_now));
    target = std::min(target, limit);
    if (target <= _now)
        return;
    const Cycle n = target - _now;
    // Bulk charging: state is constant across the window, so each
    // skipped cycle would have charged exactly the causes the probe
    // cycle did — one slot per scheduler group plus the per-warp
    // detail. This preserves the closed-account invariant
    // issued + stalls == schedulers * cycles, per tenant and in total.
    for (std::size_t g = 0; g < _groupCharge.size(); ++g) {
        *_stallSlots[static_cast<std::size_t>(_groupCharge[g])] += n;
        _tenants[_groupTenant[g]]->stallSlots[static_cast<std::size_t>(
            _groupCharge[g])] += n;
    }
    for (const auto &[w, cause] : _chargedWarps)
        _warpStalls[w][static_cast<std::size_t>(cause)] += n;
    for (auto &tn : _tenants)
        tn->provider->onCyclesSkipped(_now, n);
    _skippedCycles += n;
    ++_skipEvents;
    _now = target;
}

void
Sm::setStallTraceHook(StallTraceHook hook)
{
    _traceHook = std::move(hook);
    _traceLabel.assign(_cfg.numWarps, nullptr);
    _traceStart.assign(_cfg.numWarps, 0);
}

void
Sm::updateTraceLabel(WarpId warp, const char *label)
{
    // Labels are interned string literals (stallCauseName or the
    // "issue"/"ready" constants in step), so pointer comparison is a
    // run-length check.
    if (_traceLabel[warp] == label)
        return;
    if (_traceLabel[warp] && _now > _traceStart[warp])
        _traceHook(warp, _traceLabel[warp], _traceStart[warp], _now);
    _traceLabel[warp] = label;
    _traceStart[warp] = _now;
}

void
Sm::flushStallTrace()
{
    if (!_traceHook)
        return;
    for (WarpId w = 0; w < _traceLabel.size(); ++w) {
        if (_traceLabel[w] && _now > _traceStart[w])
            _traceHook(w, _traceLabel[w], _traceStart[w], _now);
        _traceLabel[w] = nullptr;
    }
}

StallSnapshot
Sm::slotSnapshot() const
{
    StallSnapshot snap;
    snap.issuedSlots = _slotIssued.value();
    for (std::size_t c = 0; c < kNumStallCauses; ++c)
        snap.stallSlots[c] = _stallSlots[c]->value();
    return snap;
}

Cycle
Sm::run()
{
    while (!done()) {
        step();
        if (_now >= _cfg.maxCycles) {
            fatal("kernel '", _tenants.front()->kernel->name(),
                  "' exceeded ", _cfg.maxCycles,
                  " cycles; likely deadlock");
        }
    }
    return _now;
}

} // namespace regless::arch
