/**
 * @file
 * SIMT reconvergence stack.
 *
 * Implements the classic immediate-postdominator reconvergence scheme:
 * a divergent branch pushes the two sides with a shared reconvergence
 * PC; when the executing side reaches that PC it pops and the other
 * side (or the merged mask) resumes. Divergence is what creates soft
 * definitions, so the stack is load-bearing for the whole evaluation.
 */

#ifndef REGLESS_ARCH_SIMT_STACK_HH
#define REGLESS_ARCH_SIMT_STACK_HH

#include <vector>

#include "common/types.hh"

namespace regless::arch
{

/** One reconvergence-stack entry. */
struct SimtEntry
{
    Pc pc = 0;
    LaneMask mask = fullMask;
    Pc reconvergePc = invalidPc;
};

/** Per-warp divergence state. */
class SimtStack
{
  public:
    /** Start executing at PC 0 with all lanes active. */
    SimtStack();

    /** Current fetch PC. */
    Pc pc() const;

    /** Current active mask. */
    LaneMask activeMask() const;

    /** @return true when every lane has exited. */
    bool allExited() const { return _entries.empty(); }

    /** Advance past a non-control instruction. */
    void advance();

    /**
     * Resolve a conditional branch.
     *
     * @param taken_mask Lanes (subset of active) taking the branch.
     * @param target Branch target PC.
     * @param reconverge_pc First PC of the immediate postdominator
     *        block, or invalidPc when control never reconverges.
     * @return true when the branch diverged (both sides non-empty).
     */
    bool branch(LaneMask taken_mask, Pc target, Pc reconverge_pc);

    /** Unconditional jump. */
    void jump(Pc target);

    /** Active lanes exit; pops emptied entries. */
    void exitLanes();

    /** Stack depth (for stats / divergence detection). */
    std::size_t depth() const { return _entries.size(); }

  private:
    /** Pop entries whose pc reached their reconvergence point. */
    void reconverge();

    std::vector<SimtEntry> _entries;
};

} // namespace regless::arch

#endif // REGLESS_ARCH_SIMT_STACK_HH
