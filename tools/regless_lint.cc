/**
 * @file
 * regless_lint — standalone staging-annotation linter.
 *
 * Compiles each requested kernel and runs the full lint (structural
 * verifier + path-sensitive staging-state checker, see
 * compiler/staging_checker.hh). With --runtime it additionally
 * executes the kernel under RegLess with the dynamic shadow checker
 * enabled and reports any runtime staging violations.
 *
 * Exit status: 0 all kernels clean, 1 findings reported, 2 bad usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/sim_error.hh"
#include "compiler/compiler.hh"
#include "compiler/staging_checker.hh"
#include "sim/gpu_config.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/random_kernel.hh"
#include "workloads/rodinia.hh"

namespace
{

using namespace regless;

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: regless_lint [options]\n"
        "\n"
        "Lints the staging annotations of compiled kernels. With no\n"
        "kernel selection, lints all %zu built-in Rodinia workloads.\n"
        "\n"
        "  --kernel NAME   lint this built-in workload (repeatable)\n"
        "  --fuzz N        also lint N random fuzzer kernels\n"
        "  --seed S        first fuzzer seed (default 1)\n"
        "  --runtime       also run each kernel under RegLess with the\n"
        "                  dynamic shadow checker and report violations\n"
        "  --osu N         OSU entries per SM for --runtime runs\n"
        "                  (default 512; small values stress reclaims)\n"
        "  --advisory      also report advisory value-range warnings\n"
        "                  (bank-overclaim, dead-staged-line)\n"
        "  --json          machine-readable output (lint schema 2:\n"
        "                  object with kernels + per-code summary)\n"
        "  --list          print available workload names and exit\n"
        "  --help          this text\n",
        workloads::rodiniaNames().size());
}

/**
 * Version of the --json output layout. 1 was a bare array of kernel
 * objects; 2 wraps it in {"lint_schema", "kernels", "summary"} with a
 * per-code finding-count summary.
 */
constexpr unsigned kLintSchemaVersion = 2;

struct Options
{
    std::vector<std::string> kernels;
    unsigned fuzz = 0;
    std::uint64_t seed = 1;
    bool runtime = false;
    unsigned osuEntries = 0; ///< 0 = config default
    bool advisory = false;
    bool json = false;
};

struct KernelReport
{
    std::string name;
    std::vector<compiler::Finding> findings;
};

/** Run the static lint (and optionally the dynamic cross-check). */
KernelReport
lintOne(const ir::Kernel &kernel, const Options &opt)
{
    KernelReport report;
    report.name = kernel.name();
    compiler::CompiledKernel ck = compiler::compile(kernel);
    compiler::LintOptions lint_options;
    lint_options.advisory = opt.advisory;
    report.findings = compiler::lintCompiledKernel(ck, lint_options);
    if (opt.runtime) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        cfg.regless.runtimeCheck = true;
        if (opt.osuEntries)
            cfg.setOsuCapacity(opt.osuEntries);
        sim::GpuSimulator gpu(kernel, cfg);
        // A watchdog trip or simulator error on one kernel is a
        // finding on that kernel, not the end of the lint run.
        try {
            gpu.run();
            for (compiler::Finding &f : gpu.runtimeViolations())
                report.findings.push_back(std::move(f));
        } catch (const sim::DeadlockError &e) {
            compiler::Finding f;
            f.code = "runtime-deadlock";
            f.message = e.report().render();
            report.findings.push_back(std::move(f));
        } catch (const sim::SimError &e) {
            compiler::Finding f;
            f.code = "runtime-aborted";
            f.message = e.what();
            report.findings.push_back(std::move(f));
        }
    }
    return report;
}

void
printText(const std::vector<KernelReport> &reports)
{
    unsigned total = 0;
    for (const KernelReport &r : reports) {
        if (r.findings.empty()) {
            std::printf("%-18s clean\n", r.name.c_str());
            continue;
        }
        std::printf("%-18s %zu finding%s\n", r.name.c_str(),
                    r.findings.size(),
                    r.findings.size() == 1 ? "" : "s");
        for (const compiler::Finding &f : r.findings)
            std::printf("  %s\n", f.toString().c_str());
        total += r.findings.size();
    }
    std::printf("%zu kernel%s linted, %u finding%s\n", reports.size(),
                reports.size() == 1 ? "" : "s", total,
                total == 1 ? "" : "s");
}

void
printJson(const std::vector<KernelReport> &reports)
{
    std::printf("{\n  \"lint_schema\": %u,\n  \"kernels\": [\n",
                kLintSchemaVersion);
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const KernelReport &r = reports[i];
        std::printf("    {\"kernel\": \"%s\", \"findings\": [",
                    r.name.c_str());
        for (std::size_t j = 0; j < r.findings.size(); ++j)
            std::printf("%s\n      %s", j ? "," : "",
                        r.findings[j].toJson().c_str());
        std::printf("%s]}%s\n", r.findings.empty() ? "" : "\n    ",
                    i + 1 < reports.size() ? "," : "");
    }
    // Per-code counts across all kernels, so CI can gate on specific
    // finding classes without re-parsing every finding object.
    std::map<std::string, unsigned> by_code;
    for (const KernelReport &r : reports) {
        for (const compiler::Finding &f : r.findings)
            ++by_code[f.code];
    }
    std::printf("  ],\n  \"summary\": {");
    std::size_t k = 0;
    for (const auto &[code, count] : by_code) {
        std::printf("%s\n    \"%s\": %u", k ? "," : "", code.c_str(),
                    count);
        ++k;
    }
    std::printf("%s}\n}\n", by_code.empty() ? "" : "\n  ");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "regless_lint: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--kernel") {
            opt.kernels.push_back(value());
        } else if (arg == "--fuzz") {
            opt.fuzz = std::strtoul(value(), nullptr, 10);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--runtime") {
            opt.runtime = true;
        } else if (arg == "--osu") {
            opt.osuEntries = std::strtoul(value(), nullptr, 10);
        } else if (arg == "--advisory") {
            opt.advisory = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--list") {
            for (const std::string &name : workloads::rodiniaNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "regless_lint: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    // Library code throws SimError (e.g. an unknown --kernel name);
    // this main is the process-exit boundary. Usage-class errors exit
    // 2, like the option parser above.
    try {
        std::vector<ir::Kernel> kernels;
        if (opt.kernels.empty() && opt.fuzz == 0) {
            for (const std::string &name : workloads::rodiniaNames())
                kernels.push_back(workloads::makeRodinia(name));
        } else {
            for (const std::string &name : opt.kernels)
                kernels.push_back(workloads::makeRodinia(name));
        }
        for (unsigned i = 0; i < opt.fuzz; ++i)
            kernels.push_back(workloads::randomKernel(opt.seed + i));

        std::vector<KernelReport> reports;
        reports.reserve(kernels.size());
        bool dirty = false;
        for (const ir::Kernel &kernel : kernels) {
            reports.push_back(lintOne(kernel, opt));
            dirty = dirty || !reports.back().findings.empty();
        }
        if (opt.json)
            printJson(reports);
        else
            printText(reports);
        return dirty ? 1 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "regless_lint: %s\n", e.what());
        return 2;
    }
}
