/**
 * @file
 * regless_cache: maintenance CLI for the shared experiment cache
 * (DESIGN.md §15). A fleet of report processes leaves a cache
 * directory behind; this tool audits and prunes it.
 *
 *   regless_cache stats  [--dir DIR]            # what's in there
 *   regless_cache verify [--dir DIR] [--strict] # is it healthy
 *   regless_cache gc     [--dir DIR] [--max-age-sec S]
 *                        [--max-bytes B] [--grace-sec S]
 *                        [--remove-corrupt] [--dry-run]
 *
 * verify exits 0 on a healthy cache (corrupt or misplaced entries
 * make it exit 1; --strict also fails on wrong-schema entries, temp
 * files, and strays), so CI can gate on it. gc removes stale writer
 * temps always, then applies the age and size policies oldest-first;
 * every removal happens under the shard's advisory lock with a
 * bounded wait (a busy shard is skipped — gc never live-locks
 * against writers) and never touches files younger than the grace
 * margin, which is what makes it safe to run while a fleet is
 * writing.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/job_cache.hh"

using namespace regless;

namespace
{

constexpr const char *kDefaultDir = ".regless-cache";

[[noreturn]] void
usage(int code)
{
    std::cerr
        << "usage: regless_cache <stats|verify|gc> [--dir DIR]\n"
           "  stats   summarize entries, shards, and sizes\n"
           "  verify  audit every entry; exit 1 on corruption\n"
           "          [--strict] also fail on schema skew, temps,\n"
           "          and strays\n"
           "  gc      prune the cache\n"
           "          [--max-age-sec S]  drop entries older than S\n"
           "          [--max-bytes B]    evict oldest past B bytes\n"
           "          [--grace-sec S]    never touch files younger\n"
           "                             than S (default 300)\n"
           "          [--remove-corrupt] also drop corrupt/misplaced\n"
           "          [--dry-run]        report, don't delete\n";
    std::exit(code);
}

int
runStats(const std::string &dir)
{
    const sim::CacheSurvey s = sim::cacheSurveyDir(dir);
    std::cout << "cache " << dir << ":\n"
              << "  entries:      " << s.entries << " (" << s.okRecords
              << " ok, " << s.failedRecords << " failed, "
              << s.deadlockedRecords << " deadlocked)\n"
              << "  shards used:  " << s.shardsUsed << "/256\n"
              << "  total bytes:  " << s.totalBytes << "\n"
              << "  schema skew:  " << s.wrongSchema << " ("
              << s.newerSchema << " from newer builds; expected schema "
              << sim::kJobCacheSchemaVersion << ")\n"
              << "  corrupt:      " << s.corrupt << "\n"
              << "  misplaced:    " << s.misplaced << "\n"
              << "  temp files:   " << s.tempFiles << "\n"
              << "  other files:  " << s.otherFiles << "\n";
    return 0;
}

int
runVerify(const std::string &dir, bool strict)
{
    const sim::CacheSurvey s = sim::cacheSurveyDir(dir);
    bool bad = s.corrupt > 0 || s.misplaced > 0;
    if (strict)
        bad = bad || s.wrongSchema > 0 || s.tempFiles > 0 ||
              s.otherFiles > 0;
    std::cout << "verify " << dir << ": " << s.entries << " entries, "
              << s.corrupt << " corrupt, " << s.misplaced
              << " misplaced, " << s.wrongSchema << " schema skew, "
              << s.tempFiles << " temps\n";
    for (const std::string &path : s.suspects)
        std::cout << "  suspect: " << path << "\n";
    std::cout << (bad ? "verify: FAILED\n" : "verify: ok\n");
    return bad ? 1 : 0;
}

int
runGc(const std::string &dir, const sim::CacheGcOptions &options)
{
    const sim::CacheGcResult r = sim::cacheGcDir(dir, options);
    std::cout << "gc " << dir << (options.dryRun ? " (dry run)" : "")
              << ": removed " << r.removedEntries << " entries + "
              << r.removedTemps << " temps (" << r.removedBytes
              << " bytes), kept " << r.keptEntries;
    if (r.skippedShards)
        std::cout << ", skipped " << r.skippedShards
                  << " locked shards";
    std::cout << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Library code throws SimError; this main is the process-exit
    // boundary.
    try {
        if (argc < 2)
            usage(1);
        const std::string command = argv[1];
        if (command == "--help" || command == "-h")
            usage(0);

        std::string dir = kDefaultDir;
        bool strict = false;
        sim::CacheGcOptions gc;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for ", arg);
                return argv[++i];
            };
            if (arg == "--dir") {
                dir = value();
            } else if (arg == "--strict" && command == "verify") {
                strict = true;
            } else if (arg == "--max-age-sec" && command == "gc") {
                gc.maxAgeSec = std::strtod(value().c_str(), nullptr);
            } else if (arg == "--max-bytes" && command == "gc") {
                gc.maxBytes = std::strtoull(value().c_str(), nullptr,
                                            10);
            } else if (arg == "--grace-sec" && command == "gc") {
                gc.graceSec = std::strtod(value().c_str(), nullptr);
            } else if (arg == "--remove-corrupt" && command == "gc") {
                gc.removeCorrupt = true;
            } else if (arg == "--dry-run" && command == "gc") {
                gc.dryRun = true;
            } else {
                usage(arg == "--help" ? 0 : 1);
            }
        }

        if (command == "stats")
            return runStats(dir);
        if (command == "verify")
            return runVerify(dir, strict);
        if (command == "gc")
            return runGc(dir, gc);
        usage(1);
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
