/**
 * @file
 * regless_trace — run one kernel with per-warp stall tracing enabled
 * and write a Chrome-trace-format JSON timeline (open it at
 * ui.perfetto.dev or chrome://tracing; see EXPERIMENTS.md).
 *
 * The timeline has one track per warp (tid) under one process per SM
 * (pid): "issue"/"ready" spans and one span per stall cause, plus
 * "cm_activate rN" instants when the capacity manager activates a
 * region. After the run the tool re-reads the file it wrote and
 * validates it (well-formed JSON, required fields, monotonic
 * timestamps), so a broken trace fails loudly here instead of in the
 * viewer.
 *
 * Exit status: 0 trace written and valid, 1 run or validation failed,
 * 2 bad usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/sim_error.hh"
#include "sim/gpu_config.hh"
#include "sim/gpu_simulator.hh"
#include "sim/multi_sm.hh"
#include "sim/run_stats.hh"
#include "sim/trace_writer.hh"
#include "workloads/rodinia.hh"

namespace
{

using namespace regless;

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: regless_trace [options]\n"
        "\n"
        "Runs one built-in workload with stall tracing enabled and\n"
        "writes a Chrome-trace JSON file per SM (PATH.sm<i>).\n"
        "\n"
        "  --kernel NAME     workload to trace (default nn)\n"
        "  --provider NAME   baseline|regless|rfh|rfv|... (default\n"
        "                    regless)\n"
        "  --out PATH        trace path stem (default\n"
        "                    regless_trace.json)\n"
        "  --sms N           number of SMs (default 1)\n"
        "  --max-cycles N    override the watchdog cycle budget\n"
        "  --list            print available workload names and exit\n"
        "  --help            this text\n");
}

/** Validate one written trace file; returns false and prints on error. */
bool
validateFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "regless_trace: cannot re-read %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!sim::validateChromeTrace(text.str(), &error)) {
        std::fprintf(stderr, "regless_trace: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    std::printf("%s: valid (%zu bytes)\n", path.c_str(),
                text.str().size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kernel = "nn";
    std::string provider = "regless";
    std::string out = "regless_trace.json";
    unsigned sms = 1;
    Cycle max_cycles = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "regless_trace: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernel = value();
        } else if (arg == "--provider") {
            provider = value();
        } else if (arg == "--out") {
            out = value();
        } else if (arg == "--sms") {
            sms = std::strtoul(value(), nullptr, 10);
        } else if (arg == "--max-cycles") {
            max_cycles = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--list") {
            for (const std::string &name : workloads::rodiniaNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "regless_trace: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }
    if (sms == 0) {
        std::fprintf(stderr, "regless_trace: --sms must be >= 1\n");
        return 2;
    }

    try {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::providerFromName(provider));
        cfg.trace.enabled = true;
        cfg.trace.path = out;
        if (max_cycles)
            cfg.sm.maxCycles = max_cycles;

        ir::Kernel k = workloads::makeRodinia(kernel);
        sim::RunStats stats;
        // A deadlocked run has already written its trace files; report
        // the diagnosis but still validate what was written.
        bool ran = true;
        try {
            if (sms == 1) {
                sim::GpuSimulator gpu(k, cfg);
                stats = gpu.run();
            } else {
                sim::MultiSmSimulator gpu(k, cfg, sms);
                stats = gpu.run();
            }
        } catch (const sim::DeadlockError &e) {
            std::fprintf(stderr, "%s\n", e.report().render().c_str());
            ran = false;
        }

        if (ran) {
            std::uint64_t stalled = 0;
            for (std::uint64_t s : stats.stallSlots)
                stalled += s;
            std::printf("%s/%s: %llu cycles, %llu slots issued, "
                        "%llu stalled\n",
                        kernel.c_str(), provider.c_str(),
                        static_cast<unsigned long long>(stats.cycles),
                        static_cast<unsigned long long>(
                            stats.issuedSlots),
                        static_cast<unsigned long long>(stalled));
        }
        bool valid = true;
        for (unsigned i = 0; i < sms; ++i)
            valid = validateFile(out + ".sm" + std::to_string(i)) &&
                    valid;
        return ran && valid ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "regless_trace: %s\n", e.what());
        return 2;
    }
}
