
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch.cc" "tests/CMakeFiles/regless_tests.dir/test_arch.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_arch.cc.o.d"
  "/root/repo/tests/test_assembler.cc" "tests/CMakeFiles/regless_tests.dir/test_assembler.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_assembler.cc.o.d"
  "/root/repo/tests/test_capacity_manager.cc" "tests/CMakeFiles/regless_tests.dir/test_capacity_manager.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_capacity_manager.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/regless_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/regless_tests.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_ir.cc.o.d"
  "/root/repo/tests/test_liveness.cc" "tests/CMakeFiles/regless_tests.dir/test_liveness.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_liveness.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/regless_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_property.cc" "tests/CMakeFiles/regless_tests.dir/test_property.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_property.cc.o.d"
  "/root/repo/tests/test_providers.cc" "tests/CMakeFiles/regless_tests.dir/test_providers.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_providers.cc.o.d"
  "/root/repo/tests/test_regions.cc" "tests/CMakeFiles/regless_tests.dir/test_regions.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_regions.cc.o.d"
  "/root/repo/tests/test_regless.cc" "tests/CMakeFiles/regless_tests.dir/test_regless.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_regless.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/regless_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_tools.cc" "tests/CMakeFiles/regless_tests.dir/test_tools.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_tools.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/regless_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/regless_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/regless_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
