# Empty dependencies file for regless_tests.
# This may be replaced when dependencies are built.
