file(REMOVE_RECURSE
  "CMakeFiles/regless_tests.dir/test_arch.cc.o"
  "CMakeFiles/regless_tests.dir/test_arch.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_assembler.cc.o"
  "CMakeFiles/regless_tests.dir/test_assembler.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_capacity_manager.cc.o"
  "CMakeFiles/regless_tests.dir/test_capacity_manager.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_common.cc.o"
  "CMakeFiles/regless_tests.dir/test_common.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_ir.cc.o"
  "CMakeFiles/regless_tests.dir/test_ir.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_liveness.cc.o"
  "CMakeFiles/regless_tests.dir/test_liveness.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_mem.cc.o"
  "CMakeFiles/regless_tests.dir/test_mem.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_property.cc.o"
  "CMakeFiles/regless_tests.dir/test_property.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_providers.cc.o"
  "CMakeFiles/regless_tests.dir/test_providers.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_regions.cc.o"
  "CMakeFiles/regless_tests.dir/test_regions.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_regless.cc.o"
  "CMakeFiles/regless_tests.dir/test_regless.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_sim.cc.o"
  "CMakeFiles/regless_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_tools.cc.o"
  "CMakeFiles/regless_tests.dir/test_tools.cc.o.d"
  "CMakeFiles/regless_tests.dir/test_workloads.cc.o"
  "CMakeFiles/regless_tests.dir/test_workloads.cc.o.d"
  "regless_tests"
  "regless_tests.pdb"
  "regless_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regless_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
