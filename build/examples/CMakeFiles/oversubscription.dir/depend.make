# Empty dependencies file for oversubscription.
# This may be replaced when dependencies are built.
