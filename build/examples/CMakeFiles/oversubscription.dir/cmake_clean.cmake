file(REMOVE_RECURSE
  "CMakeFiles/oversubscription.dir/oversubscription.cpp.o"
  "CMakeFiles/oversubscription.dir/oversubscription.cpp.o.d"
  "oversubscription"
  "oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
