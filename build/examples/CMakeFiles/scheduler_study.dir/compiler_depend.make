# Empty compiler generated dependencies file for scheduler_study.
# This may be replaced when dependencies are built.
