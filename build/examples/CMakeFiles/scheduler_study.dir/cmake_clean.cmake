file(REMOVE_RECURSE
  "CMakeFiles/scheduler_study.dir/scheduler_study.cpp.o"
  "CMakeFiles/scheduler_study.dir/scheduler_study.cpp.o.d"
  "scheduler_study"
  "scheduler_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
