file(REMOVE_RECURSE
  "CMakeFiles/regless_sim.dir/regless_sim.cpp.o"
  "CMakeFiles/regless_sim.dir/regless_sim.cpp.o.d"
  "regless_sim"
  "regless_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regless_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
