# Empty dependencies file for regless_sim.
# This may be replaced when dependencies are built.
