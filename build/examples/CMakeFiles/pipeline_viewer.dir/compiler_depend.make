# Empty compiler generated dependencies file for pipeline_viewer.
# This may be replaced when dependencies are built.
