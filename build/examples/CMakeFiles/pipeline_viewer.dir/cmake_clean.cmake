file(REMOVE_RECURSE
  "CMakeFiles/pipeline_viewer.dir/pipeline_viewer.cpp.o"
  "CMakeFiles/pipeline_viewer.dir/pipeline_viewer.cpp.o.d"
  "pipeline_viewer"
  "pipeline_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
