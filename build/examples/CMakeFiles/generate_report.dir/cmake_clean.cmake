file(REMOVE_RECURSE
  "CMakeFiles/generate_report.dir/generate_report.cpp.o"
  "CMakeFiles/generate_report.dir/generate_report.cpp.o.d"
  "generate_report"
  "generate_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
