# Empty dependencies file for generate_report.
# This may be replaced when dependencies are built.
