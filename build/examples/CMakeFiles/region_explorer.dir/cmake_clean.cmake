file(REMOVE_RECURSE
  "CMakeFiles/region_explorer.dir/region_explorer.cpp.o"
  "CMakeFiles/region_explorer.dir/region_explorer.cpp.o.d"
  "region_explorer"
  "region_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
