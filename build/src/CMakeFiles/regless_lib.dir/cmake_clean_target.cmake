file(REMOVE_RECURSE
  "libregless_lib.a"
)
