# Empty dependencies file for regless_lib.
# This may be replaced when dependencies are built.
