
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/exec_unit.cc" "src/CMakeFiles/regless_lib.dir/arch/exec_unit.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/arch/exec_unit.cc.o.d"
  "/root/repo/src/arch/scheduler.cc" "src/CMakeFiles/regless_lib.dir/arch/scheduler.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/arch/scheduler.cc.o.d"
  "/root/repo/src/arch/scoreboard.cc" "src/CMakeFiles/regless_lib.dir/arch/scoreboard.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/arch/scoreboard.cc.o.d"
  "/root/repo/src/arch/simt_stack.cc" "src/CMakeFiles/regless_lib.dir/arch/simt_stack.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/arch/simt_stack.cc.o.d"
  "/root/repo/src/arch/sm.cc" "src/CMakeFiles/regless_lib.dir/arch/sm.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/arch/sm.cc.o.d"
  "/root/repo/src/arch/warp.cc" "src/CMakeFiles/regless_lib.dir/arch/warp.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/arch/warp.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/regless_lib.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/regless_lib.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/regless_lib.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/common/stats.cc.o.d"
  "/root/repo/src/compiler/bank_assigner.cc" "src/CMakeFiles/regless_lib.dir/compiler/bank_assigner.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/compiler/bank_assigner.cc.o.d"
  "/root/repo/src/compiler/compiler.cc" "src/CMakeFiles/regless_lib.dir/compiler/compiler.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/compiler/compiler.cc.o.d"
  "/root/repo/src/compiler/lifetime_annotator.cc" "src/CMakeFiles/regless_lib.dir/compiler/lifetime_annotator.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/compiler/lifetime_annotator.cc.o.d"
  "/root/repo/src/compiler/metadata_encoder.cc" "src/CMakeFiles/regless_lib.dir/compiler/metadata_encoder.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/compiler/metadata_encoder.cc.o.d"
  "/root/repo/src/compiler/name_compactor.cc" "src/CMakeFiles/regless_lib.dir/compiler/name_compactor.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/compiler/name_compactor.cc.o.d"
  "/root/repo/src/compiler/region.cc" "src/CMakeFiles/regless_lib.dir/compiler/region.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/compiler/region.cc.o.d"
  "/root/repo/src/compiler/region_builder.cc" "src/CMakeFiles/regless_lib.dir/compiler/region_builder.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/compiler/region_builder.cc.o.d"
  "/root/repo/src/compiler/verifier.cc" "src/CMakeFiles/regless_lib.dir/compiler/verifier.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/compiler/verifier.cc.o.d"
  "/root/repo/src/energy/area_model.cc" "src/CMakeFiles/regless_lib.dir/energy/area_model.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/energy/area_model.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/regless_lib.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/ir/assembler.cc" "src/CMakeFiles/regless_lib.dir/ir/assembler.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/ir/assembler.cc.o.d"
  "/root/repo/src/ir/basic_block.cc" "src/CMakeFiles/regless_lib.dir/ir/basic_block.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/ir/basic_block.cc.o.d"
  "/root/repo/src/ir/cfg_analysis.cc" "src/CMakeFiles/regless_lib.dir/ir/cfg_analysis.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/ir/cfg_analysis.cc.o.d"
  "/root/repo/src/ir/instruction.cc" "src/CMakeFiles/regless_lib.dir/ir/instruction.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/ir/instruction.cc.o.d"
  "/root/repo/src/ir/kernel.cc" "src/CMakeFiles/regless_lib.dir/ir/kernel.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/ir/kernel.cc.o.d"
  "/root/repo/src/ir/liveness.cc" "src/CMakeFiles/regless_lib.dir/ir/liveness.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/ir/liveness.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/regless_lib.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/regless_lib.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/regless_lib.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/regfile/baseline_rf.cc" "src/CMakeFiles/regless_lib.dir/regfile/baseline_rf.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/regfile/baseline_rf.cc.o.d"
  "/root/repo/src/regfile/rf_hierarchy.cc" "src/CMakeFiles/regless_lib.dir/regfile/rf_hierarchy.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/regfile/rf_hierarchy.cc.o.d"
  "/root/repo/src/regfile/rf_virtualization.cc" "src/CMakeFiles/regless_lib.dir/regfile/rf_virtualization.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/regfile/rf_virtualization.cc.o.d"
  "/root/repo/src/regless/capacity_manager.cc" "src/CMakeFiles/regless_lib.dir/regless/capacity_manager.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/regless/capacity_manager.cc.o.d"
  "/root/repo/src/regless/compressor.cc" "src/CMakeFiles/regless_lib.dir/regless/compressor.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/regless/compressor.cc.o.d"
  "/root/repo/src/regless/operand_staging_unit.cc" "src/CMakeFiles/regless_lib.dir/regless/operand_staging_unit.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/regless/operand_staging_unit.cc.o.d"
  "/root/repo/src/regless/regless_provider.cc" "src/CMakeFiles/regless_lib.dir/regless/regless_provider.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/regless/regless_provider.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/regless_lib.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/gpu_config.cc" "src/CMakeFiles/regless_lib.dir/sim/gpu_config.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/sim/gpu_config.cc.o.d"
  "/root/repo/src/sim/gpu_simulator.cc" "src/CMakeFiles/regless_lib.dir/sim/gpu_simulator.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/sim/gpu_simulator.cc.o.d"
  "/root/repo/src/sim/multi_sm.cc" "src/CMakeFiles/regless_lib.dir/sim/multi_sm.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/sim/multi_sm.cc.o.d"
  "/root/repo/src/sim/run_stats.cc" "src/CMakeFiles/regless_lib.dir/sim/run_stats.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/sim/run_stats.cc.o.d"
  "/root/repo/src/sim/stats_io.cc" "src/CMakeFiles/regless_lib.dir/sim/stats_io.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/sim/stats_io.cc.o.d"
  "/root/repo/src/sim/trace_checker.cc" "src/CMakeFiles/regless_lib.dir/sim/trace_checker.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/sim/trace_checker.cc.o.d"
  "/root/repo/src/workloads/kernel_builder.cc" "src/CMakeFiles/regless_lib.dir/workloads/kernel_builder.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/workloads/kernel_builder.cc.o.d"
  "/root/repo/src/workloads/rodinia.cc" "src/CMakeFiles/regless_lib.dir/workloads/rodinia.cc.o" "gcc" "src/CMakeFiles/regless_lib.dir/workloads/rodinia.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
