# Empty compiler generated dependencies file for multi_sm_scaling.
# This may be replaced when dependencies are built.
