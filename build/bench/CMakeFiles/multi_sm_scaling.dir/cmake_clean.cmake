file(REMOVE_RECURSE
  "CMakeFiles/multi_sm_scaling.dir/multi_sm_scaling.cc.o"
  "CMakeFiles/multi_sm_scaling.dir/multi_sm_scaling.cc.o.d"
  "multi_sm_scaling"
  "multi_sm_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
