file(REMOVE_RECURSE
  "CMakeFiles/fig19_region_registers.dir/fig19_region_registers.cc.o"
  "CMakeFiles/fig19_region_registers.dir/fig19_region_registers.cc.o.d"
  "fig19_region_registers"
  "fig19_region_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_region_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
