# Empty compiler generated dependencies file for fig19_region_registers.
# This may be replaced when dependencies are built.
