# Empty dependencies file for fig03_backing_store.
# This may be replaced when dependencies are built.
