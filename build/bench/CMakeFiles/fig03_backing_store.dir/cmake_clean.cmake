file(REMOVE_RECURSE
  "CMakeFiles/fig03_backing_store.dir/fig03_backing_store.cc.o"
  "CMakeFiles/fig03_backing_store.dir/fig03_backing_store.cc.o.d"
  "fig03_backing_store"
  "fig03_backing_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_backing_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
