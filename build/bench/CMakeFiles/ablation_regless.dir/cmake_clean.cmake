file(REMOVE_RECURSE
  "CMakeFiles/ablation_regless.dir/ablation_regless.cc.o"
  "CMakeFiles/ablation_regless.dir/ablation_regless.cc.o.d"
  "ablation_regless"
  "ablation_regless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
