# Empty compiler generated dependencies file for ablation_regless.
# This may be replaced when dependencies are built.
