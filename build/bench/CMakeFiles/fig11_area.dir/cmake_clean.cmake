file(REMOVE_RECURSE
  "CMakeFiles/fig11_area.dir/fig11_area.cc.o"
  "CMakeFiles/fig11_area.dir/fig11_area.cc.o.d"
  "fig11_area"
  "fig11_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
