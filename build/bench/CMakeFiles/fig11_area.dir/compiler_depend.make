# Empty compiler generated dependencies file for fig11_area.
# This may be replaced when dependencies are built.
