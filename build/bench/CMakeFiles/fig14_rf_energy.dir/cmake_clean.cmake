file(REMOVE_RECURSE
  "CMakeFiles/fig14_rf_energy.dir/fig14_rf_energy.cc.o"
  "CMakeFiles/fig14_rf_energy.dir/fig14_rf_energy.cc.o.d"
  "fig14_rf_energy"
  "fig14_rf_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rf_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
