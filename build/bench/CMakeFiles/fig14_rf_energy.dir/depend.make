# Empty dependencies file for fig14_rf_energy.
# This may be replaced when dependencies are built.
