file(REMOVE_RECURSE
  "CMakeFiles/fig15_gpu_energy.dir/fig15_gpu_energy.cc.o"
  "CMakeFiles/fig15_gpu_energy.dir/fig15_gpu_energy.cc.o.d"
  "fig15_gpu_energy"
  "fig15_gpu_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_gpu_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
