# Empty dependencies file for fig15_gpu_energy.
# This may be replaced when dependencies are built.
