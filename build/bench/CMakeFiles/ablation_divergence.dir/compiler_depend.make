# Empty compiler generated dependencies file for ablation_divergence.
# This may be replaced when dependencies are built.
