file(REMOVE_RECURSE
  "CMakeFiles/ablation_divergence.dir/ablation_divergence.cc.o"
  "CMakeFiles/ablation_divergence.dir/ablation_divergence.cc.o.d"
  "ablation_divergence"
  "ablation_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
