# Empty compiler generated dependencies file for fig18_l1_bandwidth.
# This may be replaced when dependencies are built.
