file(REMOVE_RECURSE
  "CMakeFiles/fig18_l1_bandwidth.dir/fig18_l1_bandwidth.cc.o"
  "CMakeFiles/fig18_l1_bandwidth.dir/fig18_l1_bandwidth.cc.o.d"
  "fig18_l1_bandwidth"
  "fig18_l1_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_l1_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
