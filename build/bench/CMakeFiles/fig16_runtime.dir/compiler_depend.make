# Empty compiler generated dependencies file for fig16_runtime.
# This may be replaced when dependencies are built.
