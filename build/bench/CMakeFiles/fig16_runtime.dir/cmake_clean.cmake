file(REMOVE_RECURSE
  "CMakeFiles/fig16_runtime.dir/fig16_runtime.cc.o"
  "CMakeFiles/fig16_runtime.dir/fig16_runtime.cc.o.d"
  "fig16_runtime"
  "fig16_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
