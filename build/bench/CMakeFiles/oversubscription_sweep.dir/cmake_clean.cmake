file(REMOVE_RECURSE
  "CMakeFiles/oversubscription_sweep.dir/oversubscription_sweep.cc.o"
  "CMakeFiles/oversubscription_sweep.dir/oversubscription_sweep.cc.o.d"
  "oversubscription_sweep"
  "oversubscription_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversubscription_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
